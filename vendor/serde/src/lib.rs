//! Vendored minimal `serde` (offline stub).
//!
//! The container this workspace builds in has no registry access, so the
//! real serde cannot be fetched. This stub keeps the workspace-facing API
//! (`Serialize`/`Deserialize` traits + derive macros) but replaces the
//! visitor architecture with a simple tree data model: serialisation
//! produces a [`Value`], deserialisation consumes one. `serde_json` (also
//! vendored) prints and parses that tree.
//!
//! Supported shapes are exactly what the workspace uses: scalars,
//! strings, tuples, arrays, `Vec`, `Option`, string-keyed maps, and
//! derived structs/enums without `#[serde]` attributes or generics.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// Object representation: ordered string-keyed map (matches the
/// `preserve_order`-off default of real serde_json, i.e. sorted keys).
pub type Map = BTreeMap<String, Value>;

/// A JSON-style number: unsigned, signed, or floating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A floating-point number.
    Float(f64),
}

impl Number {
    /// Lossy view as `f64`.
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(n) => n as f64,
            Number::NegInt(n) => n as f64,
            Number::Float(f) => f,
        }
    }
}

/// The serialisation tree: what `Serialize` produces and `Deserialize`
/// consumes.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// A string-keyed object.
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    /// Numeric view (integers widen losslessly).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// Unsigned-integer view.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::PosInt(n)) => Some(*n),
            _ => None,
        }
    }

    /// Signed-integer view.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::PosInt(n)) => i64::try_from(*n).ok(),
            Value::Number(Number::NegInt(n)) => Some(*n),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object view.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Is this `Null`?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Is this an array?
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// Is this an object?
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Object view or a typed error (used by derived `Deserialize`).
    pub fn as_object_or_err(&self, ty: &str) -> Result<&Map, DeError> {
        self.as_object()
            .ok_or_else(|| DeError::custom(format!("{ty}: expected object, got {self:?}")))
    }

    /// Fixed-arity array view or a typed error (used by derived
    /// `Deserialize`).
    pub fn as_array_or_err(&self, ty: &str, n: usize) -> Result<&Vec<Value>, DeError> {
        let a = self
            .as_array()
            .ok_or_else(|| DeError::custom(format!("{ty}: expected array, got {self:?}")))?;
        if a.len() != n {
            return Err(DeError::custom(format!(
                "{ty}: expected {n} elements, got {}",
                a.len()
            )));
        }
        Ok(a)
    }

    /// Externally-tagged enum view: a single-key object `{tag: payload}`.
    pub fn as_variant(&self) -> Option<(&str, &Value)> {
        let m = self.as_object()?;
        if m.len() != 1 {
            return None;
        }
        m.iter().next().map(|(k, v)| (k.as_str(), v))
    }
}

/// Externally-tagged enum payload: `{tag: payload}` (used by derived
/// `Serialize`).
pub fn variant_value(tag: &str, payload: Value) -> Value {
    let mut m = Map::new();
    m.insert(tag.to_string(), payload);
    Value::Object(m)
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

macro_rules! eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_i64().is_some_and(|v| i64::try_from(*other).is_ok_and(|o| v == o))
                    || self.as_u64().is_some_and(|v| u64::try_from(*other).is_ok_and(|o| v == o))
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}
eq_int!(i32, i64, u32, u64, usize);

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(Number::PosInt(n)) => out.push_str(&n.to_string()),
        Value::Number(Number::NegInt(n)) => out.push_str(&n.to_string()),
        // `{:?}` is the shortest representation that round-trips, and
        // prints whole floats as "1.0" (matching real serde_json).
        Value::Number(Number::Float(f)) => out.push_str(&format!("{f:?}")),
        Value::String(s) => escape_into(s, out),
        Value::Array(a) => {
            out.push('[');
            for (i, item) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(m) => {
            out.push('{');
            for (i, (k, item)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(k, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        write_value(self, &mut s);
        f.write_str(&s)
    }
}

/// Deserialisation error.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// An error with a free-form message.
    pub fn custom(msg: impl Into<String>) -> DeError {
        DeError { msg: msg.into() }
    }

    /// A required object field was absent.
    pub fn missing_field(ty: &str, field: &str) -> DeError {
        DeError { msg: format!("{ty}: missing field `{field}`") }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Serialisation into the [`Value`] tree.
pub trait Serialize {
    /// Produce the tree form of `self`.
    fn serialize_value(&self) -> Value;
}

/// Deserialisation from the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from its tree form.
    fn deserialize_value(v: &Value) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::custom(format!("expected bool, got {v:?}")))
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_u64()
                    .ok_or_else(|| DeError::custom(format!("expected unsigned int, got {v:?}")))?;
                <$t>::try_from(n).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 {
                    Value::Number(Number::PosInt(n as u64))
                } else {
                    Value::Number(Number::NegInt(n))
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_i64()
                    .ok_or_else(|| DeError::custom(format!("expected int, got {v:?}")))?;
                <$t>::try_from(n).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Deserialize for f64 {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::custom(format!("expected number, got {v:?}")))
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::Number(Number::Float(*self as f64))
    }
}

impl Deserialize for f32 {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        f64::deserialize_value(v).map(|f| f as f32)
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::custom(format!("expected string, got {v:?}")))
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.serialize_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        self.as_slice().serialize_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::custom(format!("expected array, got {v:?}")))?
            .iter()
            .map(T::deserialize_value)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        self.as_slice().serialize_value()
    }
}

impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        let a = v.as_array_or_err("array", N)?;
        let mut out = [T::default(); N];
        for (slot, item) in out.iter_mut().zip(a.iter()) {
            *slot = T::deserialize_value(item)?;
        }
        Ok(out)
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.serialize_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        v.as_object_or_err("map")?
            .iter()
            .map(|(k, item)| Ok((k.clone(), V::deserialize_value(item)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize_value(&self) -> Value {
        // Sorted for deterministic output.
        let sorted: BTreeMap<&String, &V> = self.iter().collect();
        Value::Object(sorted.iter().map(|(k, v)| ((*k).clone(), v.serialize_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        v.as_object_or_err("map")?
            .iter()
            .map(|(k, item)| Ok((k.clone(), V::deserialize_value(item)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$n.serialize_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                const N: usize = 0 $(+ { let _ = $n; 1 })+;
                let a = v.as_array_or_err("tuple", N)?;
                Ok(($($t::deserialize_value(&a[$n])?,)+))
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}
