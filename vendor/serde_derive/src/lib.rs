//! Minimal vendored `serde_derive` (offline stub).
//!
//! Generates `serde::Serialize` / `serde::Deserialize` impls against the
//! vendored serde's tree data model (`serde::Value`). Supports the shapes
//! this workspace actually uses:
//!
//! * structs with named fields
//! * tuple structs (newtype and n-ary)
//! * unit structs
//! * enums with unit, tuple and struct variants
//!
//! No `#[serde(...)]` attributes, no generics — the workspace uses
//! neither. Parsing is done directly on the `proc_macro` token stream
//! (no `syn`/`quote`: this stub must build with nothing but std).

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Shape {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<Variant> },
}

/// Skip one attribute (`#` already consumed positionally: we peek).
fn skip_attrs(iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                // Either `#[...]` or `#![...]` — consume up to the group.
                if let Some(TokenTree::Punct(p)) = iter.peek() {
                    if p.as_char() == '!' {
                        iter.next();
                    }
                }
                iter.next(); // the [...] group
            }
            _ => return,
        }
    }
}

fn skip_visibility(iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    if let Some(TokenTree::Ident(id)) = iter.peek() {
        if id.to_string() == "pub" {
            iter.next();
            if let Some(TokenTree::Group(g)) = iter.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    iter.next(); // pub(crate) / pub(super)
                }
            }
        }
    }
}

/// Parse the fields of a brace group: named fields `a: T, b: U`.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut iter = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attrs(&mut iter);
        skip_visibility(&mut iter);
        match iter.next() {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            None => break,
            other => panic!("unexpected token in named fields: {other:?}"),
        }
        // expect ':'
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected ':' after field name, got {other:?}"),
        }
        // consume the type: until a ',' at angle-bracket depth 0
        let mut depth = 0i32;
        loop {
            match iter.peek() {
                None => break,
                Some(TokenTree::Punct(p)) => {
                    let c = p.as_char();
                    if c == '<' {
                        depth += 1;
                    } else if c == '>' {
                        depth -= 1;
                    } else if c == ',' && depth == 0 {
                        iter.next();
                        break;
                    }
                    iter.next();
                }
                Some(_) => {
                    iter.next();
                }
            }
        }
    }
    fields
}

/// Count the fields of a paren group (tuple struct / tuple variant).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut any = false;
    let mut count = 0usize;
    for tok in stream {
        any = true;
        if let TokenTree::Punct(p) = &tok {
            let c = p.as_char();
            if c == '<' {
                depth += 1;
            } else if c == '>' {
                depth -= 1;
            } else if c == ',' && depth == 0 {
                count += 1;
            }
        }
    }
    if !any {
        0
    } else {
        count + 1
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut iter = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("unexpected token in enum body: {other:?}"),
        };
        let fields = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                iter.next();
                Fields::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_named_fields(g.stream());
                iter.next();
                Fields::Named(f)
            }
            _ => Fields::Unit,
        };
        variants.push(Variant { name, fields });
        // consume to the ',' separating variants (skips `= discr` if ever present)
        loop {
            match iter.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => break,
                None => break,
                _ => {}
            }
        }
    }
    variants
}

fn parse_shape(input: TokenStream) -> Shape {
    let mut iter = input.into_iter().peekable();
    skip_attrs(&mut iter);
    skip_visibility(&mut iter);
    let kind = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected struct/enum, got {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            panic!("vendored serde_derive does not support generic types ({name})");
        }
    }
    match kind.as_str() {
        "struct" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Struct {
                name,
                fields: Fields::Named(parse_named_fields(g.stream())),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Struct { name, fields: Fields::Tuple(count_tuple_fields(g.stream())) }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                Shape::Struct { name, fields: Fields::Unit }
            }
            other => panic!("unexpected struct body: {other:?}"),
        },
        "enum" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum { name, variants: parse_variants(g.stream()) }
            }
            other => panic!("unexpected enum body: {other:?}"),
        },
        other => panic!("expected struct or enum, got {other}"),
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let src = match &shape {
        Shape::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Named(fs) => {
                    let mut b = String::from(
                        "{ let mut __m = ::serde::Map::new();\n",
                    );
                    for f in fs {
                        b.push_str(&format!(
                            "__m.insert(\"{f}\".to_string(), ::serde::Serialize::serialize_value(&self.{f}));\n"
                        ));
                    }
                    b.push_str("::serde::Value::Object(__m) }");
                    b
                }
                Fields::Tuple(1) => {
                    "::serde::Serialize::serialize_value(&self.0)".to_string()
                }
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::serialize_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n fn serialize_value(&self) -> ::serde::Value {{ {body} }}\n}}\n"
            )
        }
        Shape::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String(\"{vn}\".to_string()),\n"
                    )),
                    Fields::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(__a0) => ::serde::variant_value(\"{vn}\", ::serde::Serialize::serialize_value(__a0)),\n"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__a{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::serialize_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::variant_value(\"{vn}\", ::serde::Value::Array(vec![{}])),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    Fields::Named(fs) => {
                        let binds = fs.join(", ");
                        let mut body = String::from("{ let mut __m = ::serde::Map::new();\n");
                        for f in fs {
                            body.push_str(&format!(
                                "__m.insert(\"{f}\".to_string(), ::serde::Serialize::serialize_value({f}));\n"
                            ));
                        }
                        body.push_str("::serde::Value::Object(__m) }");
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => ::serde::variant_value(\"{vn}\", {body}),\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n fn serialize_value(&self) -> ::serde::Value {{ match self {{ {arms} }} }}\n}}\n"
            )
        }
    };
    src.parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let src = match &shape {
        Shape::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("let _ = __v; Ok({name})"),
                Fields::Named(fs) => {
                    let mut b = format!(
                        "let __m = __v.as_object_or_err(\"{name}\")?;\n"
                    );
                    for f in fs {
                        b.push_str(&format!(
                            "let {f} = ::serde::Deserialize::deserialize_value(__m.get(\"{f}\").ok_or_else(|| ::serde::DeError::missing_field(\"{name}\", \"{f}\"))?)?;\n"
                        ));
                    }
                    b.push_str(&format!("Ok({name} {{ {} }})", fs.join(", ")));
                    b
                }
                Fields::Tuple(1) => format!(
                    "Ok({name}(::serde::Deserialize::deserialize_value(__v)?))"
                ),
                Fields::Tuple(n) => {
                    let mut b = format!(
                        "let __a = __v.as_array_or_err(\"{name}\", {n})?;\n"
                    );
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::deserialize_value(&__a[{i}])?"))
                        .collect();
                    b.push_str(&format!("Ok({name}({}))", items.join(", ")));
                    b
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n fn deserialize_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n}}\n"
            )
        }
        Shape::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => return Ok({name}::{vn}),\n"
                    )),
                    Fields::Tuple(1) => data_arms.push_str(&format!(
                        "\"{vn}\" => return Ok({name}::{vn}(::serde::Deserialize::deserialize_value(__payload)?)),\n"
                    )),
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| {
                                format!("::serde::Deserialize::deserialize_value(&__a[{i}])?")
                            })
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{ let __a = __payload.as_array_or_err(\"{name}::{vn}\", {n})?; return Ok({name}::{vn}({})); }}\n",
                            items.join(", ")
                        ));
                    }
                    Fields::Named(fs) => {
                        let mut b = format!(
                            "{{ let __m = __payload.as_object_or_err(\"{name}::{vn}\")?;\n"
                        );
                        for f in fs {
                            b.push_str(&format!(
                                "let {f} = ::serde::Deserialize::deserialize_value(__m.get(\"{f}\").ok_or_else(|| ::serde::DeError::missing_field(\"{name}::{vn}\", \"{f}\"))?)?;\n"
                            ));
                        }
                        b.push_str(&format!(
                            "return Ok({name}::{vn} {{ {} }}); }}\n",
                            fs.join(", ")
                        ));
                        data_arms.push_str(&format!("\"{vn}\" => {b}\n"));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n fn deserialize_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 if let ::serde::Value::String(__s) = __v {{ match __s.as_str() {{ {unit_arms} _ => {{}} }} }}\n\
                 if let Some((__tag, __payload)) = __v.as_variant() {{ match __tag {{ {data_arms} _ => {{}} }} }}\n\
                 Err(::serde::DeError::custom(format!(\"invalid value for enum {name}: {{:?}}\", __v)))\n\
                 }}\n}}\n"
            )
        }
    };
    src.parse().expect("generated Deserialize impl parses")
}
