//! Vendored minimal `rand` (offline stub).
//!
//! Implements the slice of the rand 0.8 API this workspace uses:
//! [`RngCore`], [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`]
//! (`from_seed`, `seed_from_u64`), and [`thread_rng`]. Uniform sampling
//! uses 53-bit mantissa conversion for floats and rejection-free modulo
//! reduction for integers (bias is negligible at the ranges used here).

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: raw output words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types samplable uniformly over their "natural" range (`[0,1)` for
/// floats, the full domain for integers) — the stand-in for rand's
/// `Standard` distribution.
pub trait SampleStandard {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl SampleStandard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl SampleStandard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl SampleStandard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-domain inclusive range.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        *self.start() + f64::sample(rng) * (*self.end() - *self.start())
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Sample from the standard distribution of `T`.
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a fixed seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Build from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, expanded through SplitMix64 (deterministic).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut s = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let w = splitmix64(&mut s);
            let bytes = w.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// One SplitMix64 step (public so sibling vendored crates reuse it).
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The thread-local generator behind [`thread_rng`]: xoshiro256++-class
/// quality is not needed here, SplitMix64 suffices.
#[derive(Debug, Clone)]
pub struct ThreadRng {
    state: u64,
}

impl RngCore for ThreadRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
    fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }
}

/// A fresh nondeterministically-seeded generator (per call).
pub fn thread_rng() -> ThreadRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let t = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let mut s = t ^ COUNTER.fetch_add(0x9E37_79B9, Ordering::Relaxed);
    ThreadRng { state: splitmix64(&mut s) }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(u64);
    impl RngCore for Fixed {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.0)
        }
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut r = Fixed(7);
        for _ in 0..1000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut r = Fixed(9);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = r.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = r.gen_range(0usize..=4);
            assert!(i <= 4);
        }
    }

    #[test]
    fn mean_of_uniform_is_centered() {
        let mut r = Fixed(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
