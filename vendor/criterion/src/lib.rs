//! Vendored minimal `criterion` (offline stub).
//!
//! A wall-clock micro-benchmark harness with the criterion API shape the
//! workspace's benches use: `criterion_group!`/`criterion_main!`,
//! `Criterion::benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Throughput`, and `Bencher::iter`. No statistics
//! beyond median-of-samples; each bench prints one line:
//!
//! ```text
//! group/id  time: 1.234 ms/iter  thrpt: 8.1 Melem/s
//! ```

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of the std black box (API parity with criterion 0.5).
pub use std::hint::black_box;

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }

    /// Parameter only.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Median nanoseconds per iteration of the last `iter` call.
    pub last_ns_per_iter: f64,
}

impl Bencher {
    /// Time `routine`, storing the median time per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: find an iteration count giving a
        // measurable sample without dragging the run out.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(50));
        let per_sample = (Duration::from_millis(20).as_nanos() / once.as_nanos()).max(1) as usize;
        let mut samples: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            samples.push(t.elapsed().as_nanos() as f64 / per_sample as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
        self.last_ns_per_iter = samples[samples.len() / 2];
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn report(name: &str, ns: f64, throughput: Option<Throughput>) {
    let thrpt = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  thrpt: {:.2} Kelem/s", n as f64 / ns * 1e6)
        }
        Some(Throughput::Bytes(n)) => {
            format!("  thrpt: {:.2} MiB/s", n as f64 / ns * 1e9 / (1024.0 * 1024.0))
        }
        None => String::new(),
    };
    println!("{name:<50} time: {:>12}/iter{thrpt}", human_time(ns));
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the throughput annotation for following benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Set the sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Benchmark `f` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { samples: self.samples, last_ns_per_iter: 0.0 };
        f(&mut b, input);
        report(&format!("{}/{id}", self.name), b.last_ns_per_iter, self.throughput);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { samples: self.samples, last_ns_per_iter: 0.0 };
        f(&mut b);
        report(&format!("{}/{id}", self.name), b.last_ns_per_iter, self.throughput);
        self
    }

    /// End the group.
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    samples: usize,
}

impl Criterion {
    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = if self.samples == 0 { 10 } else { self.samples };
        BenchmarkGroup {
            name: name.into(),
            samples,
            throughput: None,
            _criterion: self,
        }
    }

    /// Benchmark a standalone closure.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = if self.samples == 0 { 10 } else { self.samples };
        let mut b = Bencher { samples, last_ns_per_iter: 0.0 };
        f(&mut b);
        report(name, b.last_ns_per_iter, None);
        self
    }
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the bench binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes `--bench` (and possibly filters); ignored.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3).throughput(Throughput::Elements(100));
        g.bench_with_input(BenchmarkId::from_parameter(1), &42u64, |b, &x| {
            b.iter(|| (0..x).sum::<u64>())
        });
        g.finish();
    }
}
