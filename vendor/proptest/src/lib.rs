//! Vendored minimal `proptest` (offline stub).
//!
//! Random-case property testing with the proptest macro surface this
//! workspace uses: the [`proptest!`] block macro, `prop_assert!` /
//! `prop_assert_eq!`, `ProptestConfig::with_cases`, range and tuple
//! strategies, and `prop::collection::vec`. Differences from the real
//! crate: no shrinking (a failing case reports its inputs verbatim) and
//! a fixed deterministic seed per test body.

use std::fmt;
use std::ops::Range;

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Record a failure with a message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError { msg: msg.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

/// Deterministic test RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded construction.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed ^ 0x5DEE_CE66_D1CE_CAFE }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;
    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f` (`prop_map` in real proptest).
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        T: fmt::Debug,
        F: Fn(Self::Value) -> T,
    {
        Map { source: self, f }
    }

    /// Derive a second strategy from each generated value
    /// (`prop_flat_map` in real proptest).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Type-erase the strategy (for heterogeneous unions).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy mapping another strategy's values (see [`Strategy::prop_map`]).
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    T: fmt::Debug,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.source.generate(rng))
    }
}

/// Strategy derived per-value (see [`Strategy::prop_flat_map`]).
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// Uniform choice between type-erased strategies — the engine behind
/// [`prop_oneof!`].
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T: fmt::Debug> Union<T> {
    /// A union over `arms` (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "empty prop_oneof");
        Union { arms }
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let arm = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[arm].generate(rng)
    }
}

/// Choose uniformly between strategies of a common value type (the real
/// crate supports weights; this stub draws arms uniformly).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

/// A constant strategy (`Just` in real proptest).
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategy {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// The `prop::` namespace.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::fmt;
        use std::ops::Range;

        /// Strategy for `Vec<T>` with a length drawn from `len`.
        #[derive(Debug)]
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        /// `Vec` of values from `element`, length in `len`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S>
        where
            S::Value: fmt::Debug,
        {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.len.clone().generate(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Run one property: `cases` random draws, each executing `body`; panics
/// with the case inputs on the first failure.
pub fn run_property<S: Strategy>(
    name: &str,
    config: &ProptestConfig,
    strategy: &S,
    mut body: impl FnMut(S::Value) -> Result<(), TestCaseError>,
) {
    // Seed from the test name so distinct properties explore distinct
    // streams but every run of one property is reproducible.
    let seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
    });
    let mut rng = TestRng::new(seed);
    // `PROPTEST_CASES` caps the per-property case count from the
    // environment, so expensive interpreters (Miri in CI) can run the
    // same suites with a bounded budget. It only ever *lowers* the
    // configured count.
    let cases = match std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse::<u32>().ok()) {
        Some(cap) => config.cases.min(cap.max(1)),
        None => config.cases,
    };
    for case in 0..cases {
        let value = strategy.generate(&mut rng);
        let debug = format!("{value:?}");
        if let Err(e) = body(value) {
            panic!("property {name} failed at case {case}/{cases}: {e}\ninput: {debug}");
        }
    }
}

/// The proptest prelude.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError, Union,
    };
}

/// Assert inside a property body (records the failure instead of
/// panicking, like real proptest).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Assert inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} == {:?}", a, b);
    }};
}

/// Define property tests: each `fn` runs its body over random draws of
/// its argument strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let strategy = ($($strat,)+);
                $crate::run_property(
                    stringify!($name),
                    &config,
                    &strategy,
                    |($($arg,)+)| {
                        $body
                        ::core::result::Result::Ok(())
                    },
                );
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name ( $($arg in $strat),+ ) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Range strategies stay in range.
        #[test]
        fn ranges_hold(
            x in 3usize..17,
            f in -2.0f64..2.0,
            v in prop::collection::vec(0u64..100, 1..20),
        ) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&e| e < 100));
        }

        /// Tuple strategies compose.
        #[test]
        fn tuples_compose(pair in (0usize..4, 0.5f64..1.0)) {
            prop_assert!(pair.0 < 4);
            prop_assert_eq!(pair.0, pair.0);
        }

        /// `prop_map` transforms, `prop_flat_map` derives, `prop_oneof`
        /// draws every arm eventually.
        #[test]
        fn combinators_compose(
            doubled in (0u32..50).prop_map(|x| x * 2),
            sized in (1usize..5).prop_flat_map(|n| prop::collection::vec(0u32..10, n..n + 1)),
            pick in prop_oneof![Just(1u8), Just(2u8), (3u16..5).prop_map(|x| x as u8)],
        ) {
            prop_assert!(doubled % 2 == 0 && doubled < 100);
            prop_assert!(!sized.is_empty() && sized.len() < 5);
            prop_assert!((1..5).contains(&pick));
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failures_report_inputs() {
        crate::run_property(
            "always_fails",
            &ProptestConfig::with_cases(4),
            &(0u32..10),
            |_x| Err(TestCaseError::fail("nope")),
        );
    }
}
