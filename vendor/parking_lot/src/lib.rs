//! Vendored minimal `parking_lot` (offline stub).
//!
//! Thin wrappers over `std::sync` primitives exposing the parking_lot
//! API shape the workspace uses: non-poisoning `lock()` without
//! `unwrap()`, and `Condvar::wait(&mut guard)`.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutual-exclusion lock (std-backed, poison-transparent).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can move the std guard out and back.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Unwrap the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock (blocking; ignores poisoning like parking_lot).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// A condition variable compatible with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// A fresh condition variable.
    pub const fn new() -> Condvar {
        Condvar { inner: std::sync::Condvar::new() }
    }

    /// Block until notified, releasing the guard while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        guard.inner = Some(self.inner.wait(g).unwrap_or_else(PoisonError::into_inner));
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// A reader-writer lock (std-backed, poison-transparent).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock { inner: std::sync::RwLock::new(value) }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;
    use std::sync::Arc;

    #[test]
    fn condvar_wait_roundtrips_the_guard() {
        let q: Arc<(Mutex<VecDeque<u32>>, Condvar)> =
            Arc::new((Mutex::new(VecDeque::new()), Condvar::new()));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || {
            let (m, c) = &*q2;
            let mut guard = m.lock();
            while guard.is_empty() {
                c.wait(&mut guard);
            }
            guard.pop_front().expect("non-empty")
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        {
            let (m, c) = &*q;
            m.lock().push_back(99);
            c.notify_all();
        }
        assert_eq!(h.join().expect("joins"), 99);
    }
}
