//! Vendored minimal `rayon` (offline stub).
//!
//! Real data parallelism over std scoped threads: a shared work queue
//! fans items out to `available_parallelism()` workers, and results are
//! reassembled **in input order**, so `collect()` output is identical to
//! the sequential map. The API skin covers what the workspace uses:
//! `par_iter()`, `into_par_iter()`, `par_chunks()`, `map`, `collect`,
//! [`join`], and [`current_num_threads`].
//!
//! Items are materialised into a `Vec` up front; this trades rayon's
//! splitting machinery for simplicity, which is fine at the coarse task
//! granularity (one STG location, one analysis window) used here.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Number of worker threads the pool will use.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

fn parallel_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    if n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let workers = current_num_threads().min(n).max(2);
    let queue: Mutex<VecDeque<(usize, T)>> = Mutex::new(items.into_iter().enumerate().collect());
    let done: Mutex<Vec<(usize, U)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let next = queue.lock().expect("queue lock").pop_front();
                match next {
                    Some((i, item)) => {
                        let out = f(item);
                        done.lock().expect("result lock").push((i, out));
                    }
                    None => break,
                }
            });
        }
    });
    let mut out = done.into_inner().expect("results");
    out.sort_by_key(|(i, _)| *i);
    out.into_iter().map(|(_, u)| u).collect()
}

/// A materialised parallel iterator.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Parallel map; evaluation is deferred until `collect`.
    pub fn map<U, F>(self, f: F) -> ParMap<T, F>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        ParMap { items: self.items, f }
    }

    /// Collect the items themselves.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// A mapped parallel iterator: runs on `collect`.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T, F> ParMap<T, F>
where
    T: Send,
{
    /// Execute the map across the thread pool, preserving input order.
    pub fn collect<U, C>(self) -> C
    where
        U: Send,
        F: Fn(T) -> U + Sync,
        C: FromIterator<U>,
    {
        parallel_map(self.items, self.f).into_iter().collect()
    }
}

/// Conversion into a parallel iterator (by value).
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Materialise into a [`ParIter`].
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter { items: self.collect() }
    }
}

/// Parallel views over slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `&T`.
    fn par_iter(&self) -> ParIter<&T>;
    /// Parallel iterator over non-overlapping chunks.
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<&T> {
        ParIter { items: self.iter().collect() }
    }
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]> {
        ParIter { items: self.chunks(chunk_size).collect() }
    }
}

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        (ra, hb.join().expect("join closure panicked"))
    })
}

/// The rayon prelude: traits needed for `.par_iter()` etc.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn collect_preserves_input_order() {
        let input: Vec<usize> = (0..500).collect();
        let seq: Vec<usize> = input.iter().map(|&x| x * 3).collect();
        let par: Vec<usize> = input.into_par_iter().map(|x| x * 3).collect();
        assert_eq!(seq, par);
    }

    #[test]
    fn par_chunks_matches_sequential_chunks() {
        let xs: Vec<u32> = (0..101).collect();
        let seq: Vec<u32> = xs.chunks(2).map(|c| c.iter().sum()).collect();
        let par: Vec<u32> = xs.par_chunks(2).map(|c| c.iter().sum()).collect();
        assert_eq!(seq, par);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 2 + 2, || "x".repeat(3));
        assert_eq!(a, 4);
        assert_eq!(b, "xxx");
    }
}
