//! Vendored minimal `serde_json` (offline stub).
//!
//! JSON text printing and parsing over the vendored serde's [`Value`]
//! tree. Covers the workspace's API surface: `to_value`, `to_string`,
//! `to_vec`, `from_str`, `from_slice`, the [`json!`] macro, `Value`
//! indexing and accessors, and an [`Error`] type.

use std::fmt;

pub use serde::{Map, Number, Value};

/// Serialisation / parse error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error::new(e.to_string())
    }
}

/// Convert any serialisable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.serialize_value())
}

/// Rebuild a typed value from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T, Error> {
    Ok(T::deserialize_value(value)?)
}

/// Serialise to compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.serialize_value().to_string())
}

/// Serialise to compact JSON bytes.
pub fn to_vec<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Parse JSON text into a typed value.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse_value(s)?;
    Ok(T::deserialize_value(&v)?)
}

/// Parse JSON bytes into a typed value.
pub fn from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid utf-8: {e}")))?;
    from_str(s)
}

/// Build a [`Value`] inline. Object values and array elements may be any
/// serialisable expression; nested literals go through `json!` again.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $($crate::to_value(&$elem).expect("json! element")),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut m = $crate::Map::new();
        $( m.insert($key.to_string(), $crate::to_value(&$val).expect("json! value")); )*
        $crate::Value::Object(m)
    }};
    ($other:expr) => { $crate::to_value(&$other).expect("json! value") };
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_lit("null") => Ok(Value::Null),
            Some(b't') if self.eat_lit("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_lit("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut map = Map::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.value()?;
                    map.insert(key, val);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(map));
                        }
                        _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one (possibly multi-byte) UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| Error::new(format!("invalid utf-8: {e}")))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(n)));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(n)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::Float(f)))
            .map_err(|_| Error::new(format!("bad number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compound() {
        let v = json!({
            "a": 1,
            "b": [1.5, 2.0],
            "c": "x\"y",
            "d": Option::<f64>::None
        });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
        assert_eq!(v["a"], 1);
        assert!(v["b"].is_array());
        assert_eq!(v["b"][1].as_f64(), Some(2.0));
    }

    #[test]
    fn floats_print_with_decimal_point() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&0.25f64).unwrap(), "0.25");
    }

    #[test]
    fn typed_roundtrip() {
        let rows: Vec<(String, f64)> = vec![("x".into(), 1.25)];
        let text = to_string(&rows).unwrap();
        let back: Vec<(String, f64)> = from_str(&text).unwrap();
        assert_eq!(rows, back);
    }
}
