//! Vendored minimal `rand_chacha` (offline stub).
//!
//! The workspace only needs a *deterministic, seedable, clonable*
//! generator under the `ChaCha8Rng` name — it never relies on the actual
//! ChaCha stream. This stub backs it with SplitMix64 (from the vendored
//! `rand`), which is deterministic across platforms and statistically
//! sound for the simulation's jitter/noise sampling.

use rand::{splitmix64, RngCore, SeedableRng};

/// Deterministic seeded generator (SplitMix64-backed stand-in for the
/// real ChaCha8 stream cipher RNG).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    state: u64,
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        // Fold the 256-bit seed into the 64-bit state; distinct seeds
        // collide with probability 2^-64, irrelevant for tests.
        let mut state = 0xA076_1D64_78BD_642Fu64;
        for chunk in seed.chunks(8) {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            state = splitmix64(&mut state) ^ u64::from_le_bytes(w);
        }
        ChaCha8Rng { state }
    }
}

/// Same generator under the ChaCha12 name (API parity).
pub type ChaCha12Rng = ChaCha8Rng;
/// Same generator under the ChaCha20 name (API parity).
pub type ChaCha20Rng = ChaCha8Rng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic_and_distinct() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
