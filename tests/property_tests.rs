//! Property-based tests (proptest) on the core invariants: clustering,
//! normalisation, heat maps, region growing, V-Measure, OLS, and the
//! top-down breakdown — the algebraic backbone of the pipeline.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use vapro::core::clustering::{cluster_vectors, cluster_vectors_unpruned};
use vapro::core::detect::heatmap::HeatMap;
use vapro::core::detect::normalize::PerfPoint;
use vapro::core::detect::pipeline::{detect, detect_seq};
use vapro::core::detect::region::grow_regions;
use vapro::core::{
    diagnose_region, diagnose_regions, diagnose_regions_seq, merge_stgs, Fragment, FragmentKind,
    RegionOfInterest, StateKey, Stg, VaproConfig,
};
use vapro::pmu::{
    events, CounterDelta, CounterId, CpuConfig, CpuModel, JitterModel, NoiseEnv, TopDown,
    WorkloadSpec,
};
use vapro::sim::{CallSite, VirtualTime};
use vapro::stats::{v_measure, OlsFit};

/// A two-site STG for `rank`: invocations alternate between the sites and
/// each `(duration_ns, instructions)` entry becomes one computation
/// fragment on the edge that was just traversed. Gives `detect` several
/// vertex and edge locations to fan out over.
fn two_site_stg(rank: usize, iters: &[(u64, f64)]) -> Stg {
    let mut stg = Stg::new();
    let start = stg.state(StateKey::Start);
    let a = stg.state(StateKey::Site(CallSite("prop:MPI_Allreduce")));
    let b = stg.state(StateKey::Site(CallSite("prop:MPI_Barrier")));
    stg.transition(start, a);
    let ab = stg.transition(a, b);
    let ba = stg.transition(b, a);
    let mut t = 0u64;
    for (i, &(d, ins)) in iters.iter().enumerate() {
        let site = if i % 2 == 0 { a } else { b };
        stg.attach_vertex_fragment(
            site,
            Fragment {
                rank,
                kind: FragmentKind::Communication,
                start: VirtualTime::from_ns(t),
                end: VirtualTime::from_ns(t + 10),
                counters: CounterDelta::default(),
                args: vec![64.0, 1.0],
            },
        );
        t += 10;
        let mut c = CounterDelta::default();
        c.put(CounterId::TotIns, ins);
        stg.attach_edge_fragment(
            if i % 2 == 0 { ab } else { ba },
            Fragment {
                rank,
                kind: FragmentKind::Computation,
                start: VirtualTime::from_ns(t),
                end: VirtualTime::from_ns(t + d),
                counters: c,
                args: vec![],
            },
        );
        t += d;
    }
    stg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every input vector lands in exactly one cluster.
    #[test]
    fn clustering_partitions_the_input(
        values in prop::collection::vec(1.0f64..1e7, 1..300),
        threshold in 0.01f64..0.3,
    ) {
        let vectors: Vec<Vec<f64>> = values.iter().map(|&v| vec![v]).collect();
        let outcome = cluster_vectors(&vectors, threshold, 5);
        let mut seen = vec![0usize; vectors.len()];
        for c in outcome.usable.iter().chain(&outcome.rare) {
            for &m in &c.members {
                seen[m] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&s| s == 1), "coverage {seen:?}");
    }

    /// Members of one cluster are within the threshold of the seed.
    #[test]
    fn cluster_members_respect_the_distance_bound(
        values in prop::collection::vec(1.0f64..1e6, 2..200),
    ) {
        let vectors: Vec<Vec<f64>> = values.iter().map(|&v| vec![v]).collect();
        let outcome = cluster_vectors(&vectors, 0.05, 2);
        for c in outcome.usable.iter().chain(&outcome.rare) {
            let bound = (0.05 * c.seed_norm).max(1e-9);
            for &m in &c.members {
                let d = (values[m] - c.seed[0]).abs();
                prop_assert!(d <= bound + 1e-9, "member {m} at distance {d} > {bound}");
            }
        }
    }

    /// The cluster seed is its smallest-norm member.
    #[test]
    fn seed_is_the_minimum_of_its_cluster(
        values in prop::collection::vec(1.0f64..1e6, 2..200),
    ) {
        let vectors: Vec<Vec<f64>> = values.iter().map(|&v| vec![v]).collect();
        let outcome = cluster_vectors(&vectors, 0.05, 2);
        for c in outcome.usable.iter().chain(&outcome.rare) {
            let min = c.members.iter().map(|&m| values[m]).fold(f64::INFINITY, f64::min);
            prop_assert!((c.seed_norm - min).abs() < 1e-9);
        }
    }

    /// Scaling all vectors by a constant scales cluster structure with it
    /// (the threshold is relative).
    #[test]
    fn clustering_is_scale_invariant(
        values in prop::collection::vec(1.0f64..1e5, 2..100),
        scale in 1.5f64..100.0,
    ) {
        let a: Vec<Vec<f64>> = values.iter().map(|&v| vec![v]).collect();
        let b: Vec<Vec<f64>> = values.iter().map(|&v| vec![v * scale]).collect();
        let oa = cluster_vectors(&a, 0.05, 2);
        let ob = cluster_vectors(&b, 0.05, 2);
        prop_assert_eq!(oa.usable.len(), ob.usable.len());
        prop_assert_eq!(oa.all_labels(values.len()), ob.all_labels(values.len()));
    }

    /// Heat-map cell means stay inside the span of point performances,
    /// and total weight equals total clipped duration.
    #[test]
    fn heatmap_preserves_mass_and_bounds(
        points in prop::collection::vec(
            (0usize..4, 0u64..10_000, 1u64..2_000, 0.05f64..1.0),
            1..100,
        ),
    ) {
        let pts: Vec<PerfPoint> = points
            .iter()
            .map(|&(rank, start, dur, perf)| PerfPoint {
                rank,
                start: VirtualTime::from_ns(start),
                end: VirtualTime::from_ns(start + dur),
                perf,
                loss_ns: 0.0,
            })
            .collect();
        let hm = HeatMap::spanning(&pts, 16, 4);
        let lo = pts.iter().map(|p| p.perf).fold(f64::INFINITY, f64::min);
        let hi = pts.iter().map(|p| p.perf).fold(0.0f64, f64::max);
        let mut cell_weight = 0.0;
        for r in 0..4 {
            for b in 0..16 {
                if let Some(p) = hm.perf(r, b) {
                    prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "cell {p} outside [{lo},{hi}]");
                }
                cell_weight += hm.weight_of(r, b);
            }
        }
        let total: f64 = pts.iter().map(|p| (p.end.ns() - p.start.ns()) as f64).sum();
        prop_assert!((cell_weight - total).abs() / total < 1e-6, "weight {cell_weight} vs {total}");
    }

    /// Region growing is an exact partition of the below-threshold
    /// covered cells: every such cell lands in exactly one region (so
    /// regions are pairwise disjoint and internally duplicate-free), and
    /// regions contain nothing else.
    #[test]
    fn region_growing_is_exact(
        points in prop::collection::vec(
            (0usize..4, 0u64..8_000, 100u64..2_000, 0.05f64..1.0),
            1..60,
        ),
        threshold in 0.3f64..0.95,
    ) {
        let pts: Vec<PerfPoint> = points
            .iter()
            .map(|&(rank, start, dur, perf)| PerfPoint {
                rank,
                start: VirtualTime::from_ns(start),
                end: VirtualTime::from_ns(start + dur),
                perf,
                loss_ns: 0.0,
            })
            .collect();
        let hm = HeatMap::spanning(&pts, 12, 4);
        let regions = grow_regions(&hm, threshold);
        let mut covers = [0u32; 4 * 12];
        for r in &regions {
            for &(rank, bin) in &r.cells {
                let p = hm.perf(rank, bin).expect("region cell covered");
                prop_assert!(p < threshold, "region cell at {p} >= {threshold}");
                covers[rank * 12 + bin] += 1;
            }
        }
        for rank in 0..4 {
            for bin in 0..12 {
                let expected =
                    u32::from(hm.perf(rank, bin).is_some_and(|p| p < threshold));
                prop_assert_eq!(
                    covers[rank * 12 + bin],
                    expected,
                    "cell ({},{})",
                    rank,
                    bin
                );
            }
        }
    }

    /// V-Measure bounds and the perfect-clustering identity.
    #[test]
    fn v_measure_bounds(
        labels in prop::collection::vec((0usize..5, 0usize..5), 1..200),
    ) {
        let classes: Vec<usize> = labels.iter().map(|l| l.0).collect();
        let clusters: Vec<usize> = labels.iter().map(|l| l.1).collect();
        let v = v_measure(&classes, &clusters);
        prop_assert!((0.0..=1.0).contains(&v.homogeneity));
        prop_assert!((0.0..=1.0).contains(&v.completeness));
        prop_assert!((0.0..=1.0).contains(&v.v_measure));
        let perfect = v_measure(&classes, &classes);
        prop_assert!((perfect.v_measure - 1.0).abs() < 1e-9);
    }

    /// OLS on exactly linear data recovers the coefficients.
    #[test]
    fn ols_recovers_exact_linear_models(
        coefs in prop::collection::vec(-10.0f64..10.0, 1..4),
        intercept in -100.0f64..100.0,
        n in 12usize..60,
    ) {
        let k = coefs.len();
        let x: Vec<Vec<f64>> = (0..k)
            .map(|j| (0..n).map(|i| ((i * (j + 2) * 7919) % 101) as f64).collect())
            .collect();
        let y: Vec<f64> = (0..n)
            .map(|i| {
                intercept + (0..k).map(|j| coefs[j] * x[j][i]).sum::<f64>()
            })
            .collect();
        if let Some(fit) = OlsFit::fit(&x, &y, true) {
            prop_assert!((fit.terms[0].coef - intercept).abs() < 1e-6);
            for (j, c) in coefs.iter().enumerate() {
                prop_assert!((fit.terms[j + 1].coef - c).abs() < 1e-6);
            }
        }
    }

    /// The top-down breakdown always sums to 1 for any valid workload and
    /// noise environment.
    #[test]
    fn topdown_always_sums_to_one(
        ins in 1e4f64..1e8,
        mem_frac in 0.0f64..0.9,
        steal in 0.0f64..0.9,
        contention in 0.0f64..3.0,
    ) {
        let spec = WorkloadSpec {
            instructions: ins,
            mem_refs: ins * mem_frac,
            ..WorkloadSpec::default()
        };
        let env = NoiseEnv { cpu_steal: steal, mem_contention: contention, ..NoiseEnv::default() };
        let model = CpuModel::with_jitter(CpuConfig::default(), JitterModel::exact());
        let mut rng = rand::thread_rng();
        let out = model.execute(&spec, &env, &mut rng);
        let td = TopDown::from_delta(&out.counters).expect("full counters");
        prop_assert!((td.total() - 1.0).abs() < 1e-6, "total {}", td.total());
        prop_assert!(td.retiring >= 0.0 && td.suspension >= 0.0);
    }
}

/// A CpuModel-backed run with full stage-3 memory counters — deep enough
/// for the progressive drill-down to reach real factors. Every rank runs
/// the same memory-bound workload on one self-loop site; `slow_rank`
/// suffers 2× memory contention over the middle third of its iterations.
/// Returns the STGs and the latest fragment end, ns.
fn noisy_run(nranks: usize, n: usize, slow_rank: usize) -> (Vec<Stg>, u64) {
    let model = CpuModel::with_jitter(CpuConfig::default(), JitterModel::exact());
    let spec = WorkloadSpec::memory_bound(2e6);
    let mut t_max = 0u64;
    let stgs = (0..nranks)
        .map(|rank| {
            let mut rng = ChaCha8Rng::seed_from_u64(rank as u64);
            let mut stg = Stg::new();
            let s0 = stg.state(StateKey::Start);
            let s1 = stg.state(StateKey::Site(CallSite("prop:MPI_Barrier")));
            stg.transition(s0, s1);
            let e = stg.transition(s1, s1);
            let mut t = 0u64;
            for i in 0..n {
                let env = if rank == slow_rank && (n / 3..2 * n / 3).contains(&i) {
                    NoiseEnv { mem_contention: 2.0, ..NoiseEnv::default() }
                } else {
                    NoiseEnv::quiet()
                };
                let out = model.execute(&spec, &env, &mut rng);
                let start = VirtualTime::from_ns(t);
                let end = start + VirtualTime::from_ns_f64(out.wall_ns);
                t = end.ns() + 500;
                t_max = t_max.max(end.ns());
                stg.attach_edge_fragment(
                    e,
                    Fragment {
                        rank,
                        kind: FragmentKind::Computation,
                        start,
                        end,
                        counters: out.counters.project(events::s3_memory_set()),
                        args: vec![],
                    },
                );
            }
            stg
        })
        .collect();
    (stgs, t_max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The rayon fan-out is an implementation detail: `detect` and
    /// `detect_seq` produce bit-identical results on arbitrary multi-rank
    /// STGs.
    #[test]
    fn parallel_detect_matches_sequential(
        per_rank in prop::collection::vec(
            prop::collection::vec((50u64..2_000, 500.0f64..50_000.0), 1..25),
            1..5,
        ),
        bins in 4usize..32,
    ) {
        let stgs: Vec<Stg> = per_rank
            .iter()
            .enumerate()
            .map(|(rank, iters)| two_site_stg(rank, iters))
            .collect();
        let cfg = VaproConfig::default();
        let par = detect(&stgs, stgs.len(), bins, &cfg);
        let seq = detect_seq(&stgs, stgs.len(), bins, &cfg);
        prop_assert_eq!(&par.series, &seq.series);
        prop_assert_eq!(&par.rare_paths, &seq.rare_paths);
        prop_assert_eq!(&par.comp_map, &seq.comp_map);
        prop_assert_eq!(&par.comm_map, &seq.comm_map);
        prop_assert_eq!(&par.io_map, &seq.io_map);
        prop_assert_eq!(&par.comp_regions, &seq.comp_regions);
        prop_assert_eq!(&par.comm_regions, &seq.comm_regions);
        prop_assert_eq!(&par.io_regions, &seq.io_regions);
        prop_assert_eq!(par.coverage.to_bits(), seq.coverage.to_bits());
    }

    /// The norm-window early break never changes the clustering: pruned
    /// and exhaustive scans agree on arbitrary one-dimensional inputs
    /// across the whole threshold range.
    #[test]
    fn norm_pruned_clustering_matches_unpruned(
        values in prop::collection::vec(1.0f64..1e7, 1..300),
        threshold in 0.01f64..0.3,
        min_cluster_size in 1usize..6,
    ) {
        let vectors: Vec<Vec<f64>> = values.iter().map(|&v| vec![v]).collect();
        let pruned = cluster_vectors(&vectors, threshold, min_cluster_size);
        let unpruned = cluster_vectors_unpruned(&vectors, threshold, min_cluster_size);
        prop_assert_eq!(pruned, unpruned);
    }

    /// Batched diagnosis is a pure optimisation: over arbitrary noisy
    /// runs and selection grids, `diagnose_regions` (sequential and under
    /// the rayon fan-out) returns exactly what a loop over the per-region
    /// driver returns.
    #[test]
    fn batched_diagnosis_matches_the_per_region_driver(
        nranks in 2usize..4,
        n in 9usize..20,
        slow in 0usize..4,
        cols in 2usize..5,
    ) {
        let (stgs, t_max) = noisy_run(nranks, n, slow % nranks);
        let cfg = VaproConfig::default();
        let col_ns = (t_max / cols as u64).max(1);
        let mut rois = Vec::new();
        for rank in 0..nranks {
            for c in 0..cols {
                rois.push(RegionOfInterest {
                    ranks: (rank, rank),
                    t_start: VirtualTime::from_ns(c as u64 * col_ns),
                    t_end: VirtualTime::from_ns((c as u64 + 1) * col_ns),
                });
            }
        }
        // A whole-run, all-ranks selection on top of the grid.
        rois.push(RegionOfInterest {
            ranks: (0, nranks - 1),
            t_start: VirtualTime::ZERO,
            t_end: VirtualTime::from_ns(t_max.max(1)),
        });
        let merged = merge_stgs(&stgs);
        let batch_seq = diagnose_regions_seq(&merged, &rois, &cfg);
        let batch_par = diagnose_regions(&merged, &rois, &cfg);
        let driver: Vec<_> = rois.iter().map(|r| diagnose_region(&stgs, r, &cfg)).collect();
        prop_assert_eq!(&batch_seq, &driver);
        prop_assert_eq!(&batch_seq, &batch_par);
    }

    /// Same agreement on multi-dimensional vectors, where norm proximity
    /// no longer implies euclidean proximity and the break bound does real
    /// work.
    #[test]
    fn norm_pruned_clustering_matches_unpruned_multidim(
        values in prop::collection::vec(1.0f64..1e6, 3..240),
        dim in 1usize..4,
        threshold in 0.01f64..0.3,
    ) {
        let vectors: Vec<Vec<f64>> = values
            .chunks_exact(dim)
            .map(|c| c.to_vec())
            .collect();
        let pruned = cluster_vectors(&vectors, threshold, 2);
        let unpruned = cluster_vectors_unpruned(&vectors, threshold, 2);
        prop_assert_eq!(pruned, unpruned);
    }
}
