//! Integration: detection → diagnosis across crates — every injected
//! noise kind must be traced back to its true factor through the full
//! pipeline (runtime → collector → clustering → breakdown → drill-down).

use vapro::core::diagnose::{diagnose_progressively, Factor};
use vapro::core::fragment::Fragment;
use vapro::core::VaproConfig;
use vapro::harness::run_under_vapro;
use vapro::apps::AppParams;
use vapro::pmu::{events, CounterSet};
use vapro::sim::{NoiseEvent, NoiseKind, NoiseSchedule, SimConfig, TargetSet, VirtualTime};

/// Run CG with a windowed noise on rank 0, collect under `counters`, and
/// progressively diagnose the hottest edge's pooled fragments.
fn diagnose_under(
    noise: NoiseKind,
    counters: CounterSet,
) -> Option<vapro::core::diagnose::DiagnosisReport> {
    let params = AppParams::default().with_iterations(24);
    // Alternate noise windows so clean and dirty executions coexist.
    let mut schedule = NoiseSchedule::quiet();
    for w in 0..300u64 {
        if w % 2 == 1 {
            schedule = schedule.with(NoiseEvent::during(
                noise,
                TargetSet::Ranks(vec![0]),
                VirtualTime::from_ms(w * 30),
                VirtualTime::from_ms((w + 1) * 30),
            ));
        }
    }
    let cfg = SimConfig::new(4).with_noise(schedule);
    let vcfg = VaproConfig::default().with_counters(counters);
    let run = run_under_vapro(&cfg, &vcfg, |ctx| vapro::apps::npb::cg::run(ctx, &params));
    let stg = &run.stgs[0];
    let edge = stg.hottest_edge()?;
    let pool: Vec<Fragment> = edge.fragments.clone();
    let mut provider = move |set: CounterSet| -> Vec<Fragment> {
        pool.iter()
            .map(|f| Fragment { counters: f.counters.project(set), ..f.clone() })
            .collect()
    };
    diagnose_progressively(&mut provider, 1.2, 0.25, 0.05)
}

#[test]
fn cpu_contention_traces_to_involuntary_context_switches() {
    let rep = diagnose_under(
        NoiseKind::CpuContention { steal: 0.5 },
        events::full_set(),
    )
    .expect("diagnosis ran");
    assert!(rep.steps[0].report.of(Factor::Suspension).unwrap().major);
    assert!(
        rep.culprits.contains(&Factor::InvoluntaryCs),
        "culprits {:?}",
        rep.culprits
    );
}

#[test]
fn memory_contention_traces_to_dram() {
    let rep = diagnose_under(
        NoiseKind::MemContention { intensity: 2.0 },
        events::full_set(),
    )
    .expect("diagnosis ran");
    assert!(rep.steps[0].report.of(Factor::BackendBound).unwrap().major);
    assert!(
        rep.culprits
            .iter()
            .any(|c| matches!(c, Factor::DramBound | Factor::L3Bound)),
        "culprits {:?}",
        rep.culprits
    );
}

#[test]
fn signal_storm_traces_to_the_signal_factor() {
    // A runaway interval timer delivering ~100k signals/s: suspension is
    // the S1 major, and the S2 stage pins it on signals rather than page
    // faults or context switches.
    let rep = diagnose_under(
        NoiseKind::SignalStorm { signals_per_sec: 100_000.0 },
        events::full_set(),
    )
    .expect("diagnosis ran");
    assert!(rep.steps[0].report.of(Factor::Suspension).unwrap().major);
    assert!(
        rep.culprits.contains(&Factor::Signal),
        "culprits {:?}",
        rep.culprits
    );
    // The sibling suspension factors stay minor.
    let s2 = rep
        .steps
        .iter()
        .find(|s| s.factors.contains(&Factor::Signal))
        .expect("S2 suspension stage ran");
    assert!(!s2.report.of(Factor::PageFault).unwrap().major);
}

#[test]
fn swap_pressure_traces_to_hard_page_faults() {
    let rep = diagnose_under(
        NoiseKind::SwapPressure { faults_per_sec: 400.0 },
        events::full_set(),
    )
    .expect("diagnosis ran");
    assert!(rep.steps[0].report.of(Factor::Suspension).unwrap().major);
    assert!(
        rep.culprits.contains(&Factor::HardPageFault),
        "culprits {:?}",
        rep.culprits
    );
}

#[test]
fn diagnosis_depth_matches_collection_periods() {
    let rep = diagnose_under(
        NoiseKind::MemContention { intensity: 2.0 },
        events::full_set(),
    )
    .expect("diagnosis ran");
    assert_eq!(rep.periods, rep.steps.len());
    assert!(rep.periods >= 2, "memory noise needs ≥ 2 stages, got {}", rep.periods);
    // Counter demand grows monotonically down the stages.
    for w in rep.steps.windows(2) {
        assert!(w[1].counters_used >= w[0].counters_used);
    }
}

#[test]
fn detected_region_feeds_straight_into_region_diagnosis() {
    // The full user journey: run → detect → take the top region →
    // diagnose that region of interest (paper §3.5's "users are able to
    // select regions of interest on the heat map for diagnosis").
    use vapro::core::diagnose::{diagnose_region, RegionOfInterest};
    let params = AppParams::default().with_iterations(24);
    let mut schedule = NoiseSchedule::quiet();
    for w in 0..300u64 {
        if w % 2 == 1 {
            schedule = schedule.with(NoiseEvent::during(
                NoiseKind::MemContention { intensity: 2.0 },
                TargetSet::Ranks(vec![2]),
                VirtualTime::from_ms(w * 30),
                VirtualTime::from_ms((w + 1) * 30),
            ));
        }
    }
    let cfg = SimConfig::new(4).with_noise(schedule);
    let vcfg = VaproConfig::default().with_counters(events::s3_memory_set());
    let run = vapro::harness::run_under_vapro_binned(&cfg, &vcfg, 32, |ctx| {
        vapro::apps::npb::cg::run(ctx, &params)
    });
    let region = run
        .detection
        .comp_regions
        .iter()
        .find(|r| r.covers_rank(2))
        .expect("memory noise detected on rank 2");
    let roi: RegionOfInterest = region.into();
    let rep = diagnose_region(&run.stgs, &roi, &vcfg).expect("region diagnosed");
    assert!(rep.steps[0].report.of(Factor::BackendBound).unwrap().major);
    assert!(
        rep.culprits
            .iter()
            .any(|c| matches!(c, Factor::DramBound | Factor::L3Bound | Factor::MemoryBound)),
        "culprits {:?}",
        rep.culprits
    );
}

#[test]
fn narrow_detection_counters_prevent_deep_diagnosis() {
    // Collected with only TSC+TOT_INS (the plain detection set), the
    // fragments cannot support S1 analysis — the provider returns
    // projected fragments lacking the top-down events.
    let rep = diagnose_under(
        NoiseKind::MemContention { intensity: 2.0 },
        events::detection_set(),
    );
    assert!(rep.is_none(), "diagnosis should not run without S1 events");
}
