//! End-to-end integration: app → runtime → collector → STG → clustering →
//! detection, across every crate of the workspace.

use vapro::apps::{all_apps, AppKind, AppParams};
use vapro::core::VaproConfig;
use vapro::harness::{overhead, run_under_vapro, run_under_vapro_binned};
use vapro::sim::{NoiseEvent, NoiseKind, NoiseSchedule, SimConfig, TargetSet, Topology, VirtualTime};

fn topo_for(app: &vapro::apps::AppSpec, ranks: usize) -> Topology {
    match app.kind {
        AppKind::MultiProcess => Topology::tianhe_like(ranks),
        AppKind::MultiThreaded => Topology::single_node(ranks),
    }
}

#[test]
fn every_registered_app_detects_nothing_on_a_quiet_machine() {
    let params = AppParams::default().with_iterations(8);
    for app in all_apps() {
        let cfg = SimConfig::new(8).with_topology(topo_for(&app, 8));
        let run = run_under_vapro(&cfg, &VaproConfig::default(), |ctx| {
            (app.run)(ctx, &params)
        });
        assert!(
            run.detection.comp_regions.is_empty(),
            "{}: false-positive computation regions {:?}",
            app.name,
            run.detection.comp_regions
        );
        assert!(
            run.detection.coverage > 0.3,
            "{}: coverage {:.2} too low",
            app.name,
            run.detection.coverage
        );
    }
}

#[test]
fn every_app_survives_noise_without_crashing_detection() {
    let params = AppParams::default().with_iterations(6);
    let noise = NoiseSchedule::quiet().with(NoiseEvent::always(
        NoiseKind::CpuContention { steal: 0.4 },
        TargetSet::Ranks(vec![1]),
    ));
    for app in all_apps() {
        let cfg = SimConfig::new(4)
            .with_topology(topo_for(&app, 4))
            .with_noise(noise.clone());
        let run = run_under_vapro(&cfg, &VaproConfig::default(), |ctx| {
            (app.run)(ctx, &params)
        });
        assert!(run.makespan.ns() > 0, "{} produced no time", app.name);
    }
}

#[test]
fn cpu_noise_on_one_rank_is_localised_by_detection() {
    let params = AppParams::default().with_iterations(20);
    let noise = NoiseSchedule::quiet().with(NoiseEvent::during(
        NoiseKind::CpuContention { steal: 0.5 },
        TargetSet::Ranks(vec![3]),
        VirtualTime::from_ms(5),
        VirtualTime::from_secs(1_000),
    ));
    let cfg = SimConfig::new(8).with_noise(noise);
    let run = run_under_vapro_binned(&cfg, &VaproConfig::default(), 32, |ctx| {
        vapro::apps::npb::cg::run(ctx, &params)
    });
    let region = run
        .detection
        .comp_regions
        .first()
        .expect("noise must be detected");
    assert!(region.covers_rank(3));
    assert!(!region.covers_rank(0));
    assert!(region.mean_perf < 0.75, "perf {}", region.mean_perf);
}

#[test]
fn context_modes_agree_on_detection_but_differ_in_cost() {
    let params = AppParams::default().with_iterations(10).with_scale(0.1);
    let cfg = SimConfig::new(4);
    let app = |ctx: &mut vapro::sim::RankCtx| vapro::apps::npb::cg::run(ctx, &params);
    let cf = overhead(&cfg, &VaproConfig::context_free(), app);
    let ca = overhead(&cfg, &VaproConfig::context_aware(), app);
    assert!(ca > cf, "CA {ca} should cost more than CF {cf}");
    assert!(ca < 0.2, "CA overhead {ca} unreasonably high");
}

#[test]
fn network_jitter_shows_up_as_communication_variance_only() {
    // A jittery fabric inflates message transfers: the *communication*
    // category flags it while computation stays clean — the categorical
    // split of the paper's reports.
    let params = AppParams::default().with_iterations(25);
    let noise = NoiseSchedule::quiet().with(NoiseEvent::during(
        NoiseKind::NetworkJitter { amplitude: 60.0 },
        TargetSet::All,
        VirtualTime::from_ms(2),
        VirtualTime::from_secs(1_000),
    ));
    let cfg = SimConfig::new(4).with_noise(noise);
    let run = run_under_vapro_binned(&cfg, &VaproConfig::default(), 32, |ctx| {
        vapro::apps::npb::lu::run(ctx, &params)
    });
    assert!(
        run.detection.comp_regions.is_empty(),
        "computation wrongly flagged: {:?}",
        run.detection.comp_regions.first()
    );
    assert!(
        !run.detection.comm_regions.is_empty(),
        "network jitter not detected in the communication category"
    );
}

#[test]
fn sampling_enabled_detection_still_localises_noise() {
    // With the skip-short back-off active, the long fragments that carry
    // the variance survive, so detection is unimpaired (§3.5's claim).
    let params = AppParams::default().with_iterations(20);
    let noise = NoiseSchedule::quiet().with(NoiseEvent::during(
        NoiseKind::CpuContention { steal: 0.5 },
        TargetSet::Ranks(vec![2]),
        VirtualTime::from_ms(5),
        VirtualTime::from_secs(1_000),
    ));
    let cfg = SimConfig::new(6).with_noise(noise);
    let vcfg = VaproConfig {
        sampling_enabled: true,
        sampling_min_ns: 40_000.0,
        ..VaproConfig::default()
    };
    let run = run_under_vapro_binned(&cfg, &vcfg, 32, |ctx| {
        vapro::apps::npb::cg::run(ctx, &params)
    });
    let region = run
        .detection
        .comp_regions
        .first()
        .expect("noise detected despite sampling");
    assert!(region.covers_rank(2));
    assert!(run.detection.coverage > 0.5, "coverage {}", run.detection.coverage);
}

#[test]
fn detection_is_deterministic() {
    let params = AppParams::default().with_iterations(8);
    let noise = NoiseSchedule::quiet().with(NoiseEvent::always(
        NoiseKind::MemContention { intensity: 1.0 },
        TargetSet::Ranks(vec![0]),
    ));
    let mk = || {
        let cfg = SimConfig::new(4).with_noise(noise.clone()).with_seed(99);
        run_under_vapro(&cfg, &VaproConfig::default(), |ctx| {
            vapro::apps::npb::cg::run(ctx, &params)
        })
    };
    let a = mk();
    let b = mk();
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.detection.coverage, b.detection.coverage);
    assert_eq!(a.detection.comp_regions.len(), b.detection.comp_regions.len());
    assert_eq!(a.invocations, b.invocations);
}

#[test]
fn windowed_server_analysis_runs_over_a_long_horizon() {
    use vapro::core::ServerPool;
    let params = AppParams::default().with_iterations(30).with_scale(50.0);
    let cfg = SimConfig::new(4);
    let run = run_under_vapro(&cfg, &VaproConfig::default(), |ctx| {
        vapro::apps::npb::cg::run(ctx, &params)
    });
    // At scale 20 a run spans multiple 15-second reporting periods.
    assert!(run.makespan > VirtualTime::from_secs(15), "makespan {}", run.makespan);
    let pool = ServerPool::new(2, 4);
    let reports = pool.analyze_windows(&run.stgs, 4, 16, &VaproConfig::default());
    assert!(reports.len() >= 2, "only {} windows", reports.len());
    for r in &reports {
        assert!(r.result.comp_regions.is_empty(), "quiet run flagged in {:?}", r.window);
    }
}
