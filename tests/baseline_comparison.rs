//! Integration: Vapro vs the baselines on identical runs — the Table 1 /
//! Fig. 12 / Fig. 14 relationships as executable assertions.

use vapro::apps::{find_app, AppParams};
use vapro::baselines::mpip::MpipProfiler;
use vapro::baselines::vsensor::VSensor;
use vapro::core::VaproConfig;
use vapro::harness::run_under_vapro;
use vapro::sim::{run_simulation, Interceptor, NoiseEvent, NoiseKind, NoiseSchedule, SimConfig, TargetSet};

fn noisy_schedule() -> NoiseSchedule {
    NoiseSchedule::quiet().with(NoiseEvent::always(
        NoiseKind::CpuContention { steal: 0.5 },
        TargetSet::Ranks(vec![1]),
    ))
}

#[test]
fn vapro_coverage_beats_vsensor_on_every_supported_app() {
    let params = AppParams::default().with_iterations(8);
    for name in ["CG", "BT", "FT", "LU", "MG", "SP", "AMG", "EP"] {
        let app = find_app(name).unwrap();
        let cfg = SimConfig::new(8);
        let vapro_run = run_under_vapro(&cfg, &VaproConfig::default(), |ctx| {
            (app.run)(ctx, &params)
        });
        let sensors: Vec<VSensor> = run_simulation(
            &cfg,
            |rank| {
                Box::new(VSensor::new(rank, app.static_fixed_sites)) as Box<dyn Interceptor>
            },
            |ctx| (app.run)(ctx, &params),
        )
        .into_tools();
        let vs_cov =
            sensors.iter().map(VSensor::coverage).sum::<f64>() / sensors.len() as f64;
        assert!(
            vapro_run.detection.coverage > vs_cov,
            "{name}: Vapro {:.2} vs vSensor {:.2}",
            vapro_run.detection.coverage,
            vs_cov
        );
    }
}

#[test]
fn same_noise_two_tools_two_stories() {
    // Under CPU noise on rank 1, Vapro localises the variance to rank 1,
    // while mpiP's aggregate misattributes the effect to communication on
    // the bystanders (the paper's Fig. 13 vs Fig. 14 contrast).
    let params = AppParams::default().with_iterations(12);
    let cfg = SimConfig::new(4).with_noise(noisy_schedule());

    // Vapro's story.
    let run = run_under_vapro(&cfg, &VaproConfig::default(), |ctx| {
        vapro::apps::npb::cg::run(ctx, &params)
    });
    let region = run.detection.comp_regions.first().expect("detected");
    assert!(region.covers_rank(1));
    assert!(!region.covers_rank(2));

    // mpiP's story.
    let quiet_cfg = SimConfig::new(4);
    let profile = |cfg: &SimConfig| -> Vec<_> {
        run_simulation(
            cfg,
            |rank| Box::new(MpipProfiler::new(rank)) as Box<dyn Interceptor>,
            |ctx| vapro::apps::npb::cg::run(ctx, &params),
        )
        .into_tools::<MpipProfiler>()
        .iter()
        .map(MpipProfiler::summary)
        .collect()
    };
    let quiet = profile(&quiet_cfg);
    let noisy = profile(&cfg);
    // Bystander rank 2: computation flat, communication inflated.
    let comp_ratio = noisy[2].comp_ns / quiet[2].comp_ns;
    let comm_ratio = noisy[2].comm_ns / quiet[2].comm_ns;
    assert!((comp_ratio - 1.0).abs() < 0.05, "comp {comp_ratio}");
    assert!(comm_ratio > 1.3, "comm {comm_ratio}");
}

#[test]
fn vsensor_cannot_handle_what_vapro_can() {
    use vapro::baselines::vsensor::VSensorError;
    // Closed-source (HPL), analysis-breaking (CESM), multi-threaded.
    assert_eq!(
        VSensor::check_supported(false, false, false),
        Err(VSensorError::NoSource)
    );
    assert_eq!(
        VSensor::check_supported(false, false, true),
        Err(VSensorError::AnalysisFailed)
    );
    assert_eq!(
        VSensor::check_supported(true, true, true),
        Err(VSensorError::MultithreadUnsupported)
    );
    // Vapro runs all three classes (verified end-to-end elsewhere; here we
    // spot-check HPL, the closed-source one).
    let params = AppParams::default().with_iterations(5);
    let hpl = find_app("HPL").unwrap();
    let run = run_under_vapro(&SimConfig::new(4), &VaproConfig::default(), |ctx| {
        (hpl.run)(ctx, &params)
    });
    assert!(run.detection.coverage > 0.5);
}
