# Convenience targets. The container has no registry access, so every
# cargo invocation runs --offline against the vendored dependencies.

CARGO := cargo
OFFLINE := --offline

.PHONY: check test lint lint-accept miri tsan perf ingest-perf diagnose-perf fleet-perf chaos soak vopr vopr-nightly bench clippy clean

# The full gate: release build, tests, workspace clippy with warnings
# denied, the static-analysis pass, sanitizer runs (skipped gracefully
# where the toolchain component is absent), the chaos fault-injection
# suite, then all three throughput harnesses (each compares against its
# previous BENCH_*.json and warns on >20% drops).
check:
	$(CARGO) build --release $(OFFLINE)
	$(CARGO) test -q $(OFFLINE)
	$(CARGO) clippy $(OFFLINE) --workspace -- -D warnings
	$(MAKE) lint
	$(MAKE) miri
	$(MAKE) tsan
	$(CARGO) run --release $(OFFLINE) -p vapro-bench --bin chaos
	$(MAKE) soak
	$(CARGO) run --release $(OFFLINE) -p vapro-bench --bin perf
	$(CARGO) run --release $(OFFLINE) -p vapro-bench --bin ingest_perf
	$(CARGO) run --release $(OFFLINE) -p vapro-bench --bin diagnose_perf
	$(CARGO) run --release $(OFFLINE) -p vapro-bench --bin fleet_perf
	$(MAKE) vopr

# Workspace static analysis: per-body rules (R1 no-hot-path-clone,
# R2 no-panic-decode, R3 float-hygiene, R4 reserve-before-push) plus the
# call-graph rules (R5 transitive panic-freedom, R6 transitive hot-path
# allocation, R7 lock hygiene); see DESIGN.md §10 and §15. Fails on any
# unwaived finding or on a per-rule waiver-count increase over the
# committed LINT_report.json. Unchanged files are served from the
# content-hash cache; SARIF goes next to it for code-scanning upload.
lint:
	$(CARGO) run --release $(OFFLINE) -q -p vapro-lint -- --root . \
		--report LINT_report.json --cache target/vapro-lint-cache.tsv \
		--sarif target/vapro-lint.sarif

# Deliberately accept a larger waiver budget (rewrites LINT_report.json).
lint-accept:
	$(CARGO) run --release $(OFFLINE) -q -p vapro-lint -- --root . \
		--report LINT_report.json --cache target/vapro-lint-cache.tsv \
		--sarif target/vapro-lint.sarif --accept-waivers

# Bounded Miri pass over the wire-codec property tests (UB check on the
# byte-level decode paths). Skips when the miri component is not
# installed — CI runs it on nightly.
miri:
	@if $(CARGO) miri --version >/dev/null 2>&1; then \
		PROPTEST_CASES=8 MIRIFLAGS="-Zmiri-disable-isolation" \
			$(CARGO) miri test $(OFFLINE) -p vapro-core --test wire_properties; \
	else \
		echo "miri: component not installed, skipping (CI covers this)"; \
	fi

# ThreadSanitizer build of the rayon detection/diagnosis tests. Needs a
# nightly toolchain with rust-src; skips when unavailable — CI covers it.
tsan:
	@if rustc +nightly --version >/dev/null 2>&1 \
		&& rustup +nightly component list 2>/dev/null | grep -q "rust-src (installed)"; then \
		RUSTFLAGS="-Zsanitizer=thread" RUST_TEST_THREADS=2 PROPTEST_CASES=8 \
			$(CARGO) +nightly test $(OFFLINE) -Zbuild-std -p vapro-core \
			--target $$(rustc -vV | sed -n 's/host: //p') \
			--lib parallel; \
	else \
		echo "tsan: nightly toolchain with rust-src not installed, skipping (CI covers this)"; \
	fi

test:
	$(CARGO) test -q $(OFFLINE) --workspace

clippy:
	$(CARGO) clippy $(OFFLINE) --workspace --all-targets -- -D warnings

# Criterion microbenches plus the detection-throughput harness; the
# harness compares against the previous BENCH_detect.json (warning on
# >20% throughput drops) before overwriting it.
perf: bench
	$(CARGO) run --release $(OFFLINE) -p vapro-bench --bin perf

# Wire-format + windowed-ingestion harness: writes BENCH_ingest.json and
# enforces the release-mode wire targets (>=4x smaller, >=5x faster
# decode than JSON).
ingest-perf:
	$(CARGO) run --release $(OFFLINE) -p vapro-bench --bin ingest_perf

# Region-diagnosis harness: writes BENCH_diagnose.json and enforces the
# release-mode batching targets (>=5x over the naive per-region loop,
# zero Fragment clones on the batch path).
diagnose-perf:
	$(CARGO) run --release $(OFFLINE) -p vapro-bench --bin diagnose_perf

# Sharded fleet ingest-plane harness: writes BENCH_fleet.json and
# enforces the release-mode fleet targets (single-job overhead < 10%;
# >=1.5x aggregate throughput at 4 shards, gated only on runners with
# enough hardware threads).
fleet-perf:
	$(CARGO) run --release $(OFFLINE) -p vapro-bench --bin fleet_perf

# Seeded fault-injection suite against the streaming ingestor: clean
# transports must stay bit-identical to the one-shot analysis, hostile
# ones (drops, duplicates, reordering, corruption, rank deaths) must
# keep the window cover and the coverage accounting sound.
chaos:
	$(CARGO) run --release $(OFFLINE) -p vapro-bench --bin chaos

# VOPR deterministic simulation run (PR profile, canaries compiled):
# gates on >=80% fault-point coverage, every required invariant
# executed, zero violations, same-seed determinism and a 100%
# canary-mutation score; rewrites the committed VOPR_report.json so CI
# can `git diff --exit-code` it as a ratchet.
vopr:
	$(CARGO) run --release $(OFFLINE) -p vapro-vopr --features canary --bin vopr -- --report VOPR_report.json

# The wider nightly seed sweep (no report rewrite: seeds differ from the
# committed PR-profile report by design).
vopr-nightly:
	$(CARGO) run --release $(OFFLINE) -p vapro-vopr --features canary --bin vopr -- --profile nightly

# Release-mode long-stream soak: >=1000 half-overlapped windows through
# the streaming ingestor plus a ~900-window 3-job fleet, proving
# bit-identity to the one-shot analysis, a shrinking arena peak under
# finer windowing (eviction works), and zero Fragment clones — with an
# internal wall-clock cap so a super-linear regression fails loudly.
soak:
	$(CARGO) test -q --release $(OFFLINE) -p vapro-bench --test soak -- --include-ignored

bench:
	$(CARGO) bench $(OFFLINE) -p vapro-bench --bench clustering
	$(CARGO) bench $(OFFLINE) -p vapro-bench --bench detection
	$(CARGO) bench $(OFFLINE) -p vapro-bench --bench stg

clean:
	$(CARGO) clean
