# Convenience targets. The container has no registry access, so every
# cargo invocation runs --offline against the vendored dependencies.

CARGO := cargo
OFFLINE := --offline

.PHONY: check test perf ingest-perf diagnose-perf chaos bench clippy clean

# The full gate: release build, tests, workspace clippy with warnings
# denied, the chaos fault-injection suite, then all three throughput
# harnesses (each compares against its previous BENCH_*.json and warns
# on >20% drops).
check:
	$(CARGO) build --release $(OFFLINE)
	$(CARGO) test -q $(OFFLINE)
	$(CARGO) clippy $(OFFLINE) --workspace -- -D warnings
	$(CARGO) run --release $(OFFLINE) -p vapro-bench --bin chaos
	$(CARGO) run --release $(OFFLINE) -p vapro-bench --bin perf
	$(CARGO) run --release $(OFFLINE) -p vapro-bench --bin ingest_perf
	$(CARGO) run --release $(OFFLINE) -p vapro-bench --bin diagnose_perf

test:
	$(CARGO) test -q $(OFFLINE) --workspace

clippy:
	$(CARGO) clippy $(OFFLINE) --workspace --all-targets -- -D warnings

# Criterion microbenches plus the detection-throughput harness; the
# harness compares against the previous BENCH_detect.json (warning on
# >20% throughput drops) before overwriting it.
perf: bench
	$(CARGO) run --release $(OFFLINE) -p vapro-bench --bin perf

# Wire-format + windowed-ingestion harness: writes BENCH_ingest.json and
# enforces the release-mode wire targets (>=4x smaller, >=5x faster
# decode than JSON).
ingest-perf:
	$(CARGO) run --release $(OFFLINE) -p vapro-bench --bin ingest_perf

# Region-diagnosis harness: writes BENCH_diagnose.json and enforces the
# release-mode batching targets (>=5x over the naive per-region loop,
# zero Fragment clones on the batch path).
diagnose-perf:
	$(CARGO) run --release $(OFFLINE) -p vapro-bench --bin diagnose_perf

# Seeded fault-injection suite against the streaming ingestor: clean
# transports must stay bit-identical to the one-shot analysis, hostile
# ones (drops, duplicates, reordering, corruption, rank deaths) must
# keep the window cover and the coverage accounting sound.
chaos:
	$(CARGO) run --release $(OFFLINE) -p vapro-bench --bin chaos

bench:
	$(CARGO) bench $(OFFLINE) -p vapro-bench --bench clustering
	$(CARGO) bench $(OFFLINE) -p vapro-bench --bench detection
	$(CARGO) bench $(OFFLINE) -p vapro-bench --bench stg

clean:
	$(CARGO) clean
