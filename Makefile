# Convenience targets. The container has no registry access, so every
# cargo invocation runs --offline against the vendored dependencies.

CARGO := cargo
OFFLINE := --offline

.PHONY: check test perf bench clippy clean

# The full gate: release build, tests, clippy with warnings denied.
check:
	$(CARGO) build --release $(OFFLINE)
	$(CARGO) test -q $(OFFLINE)
	$(CARGO) clippy $(OFFLINE) -- -D warnings

test:
	$(CARGO) test -q $(OFFLINE) --workspace

clippy:
	$(CARGO) clippy $(OFFLINE) --workspace --all-targets -- -D warnings

# Criterion microbenches plus the detection-throughput harness; the
# harness compares against the previous BENCH_detect.json (warning on
# >20% throughput drops) before overwriting it.
perf: bench
	$(CARGO) run --release $(OFFLINE) -p vapro-bench --bin perf

bench:
	$(CARGO) bench $(OFFLINE) -p vapro-bench --bench clustering
	$(CARGO) bench $(OFFLINE) -p vapro-bench --bench detection
	$(CARGO) bench $(OFFLINE) -p vapro-bench --bench stg

clean:
	$(CARGO) clean
