#![warn(missing_docs)]

//! # vapro — performance variance detection and diagnosis
//!
//! A full Rust reproduction of *"Vapro: Performance Variance Detection
//! and Diagnosis for Production-Run Parallel Applications"* (Zheng et
//! al., PPoPP 2022): the Vapro tool itself plus every substrate its
//! evaluation needs — a virtual-time parallel runtime, a simulated PMU,
//! a statistics library, the evaluation applications, and the vSensor /
//! mpiP baselines.
//!
//! This facade crate re-exports the workspace and offers [`harness`], a
//! one-call API that runs an application under Vapro and returns the
//! detection (and optionally diagnosis) results.
//!
//! ```
//! use vapro::harness::{run_under_vapro, VaproRun};
//! use vapro::sim::SimConfig;
//! use vapro::core::VaproConfig;
//! use vapro::apps::AppParams;
//!
//! let run = run_under_vapro(
//!     &SimConfig::new(4),
//!     &VaproConfig::default(),
//!     |ctx| vapro::apps::npb::cg::run(ctx, &AppParams::default().with_iterations(3)),
//! );
//! assert!(run.detection.coverage > 0.3);
//! assert!(run.detection.comp_regions.is_empty()); // quiet machine
//! ```

pub use vapro_apps as apps;
pub use vapro_baselines as baselines;
pub use vapro_core as core;
pub use vapro_pmu as pmu;
pub use vapro_sim as sim;
pub use vapro_stats as stats;

pub mod harness {
    //! The high-level entry point: run an app under Vapro's collector and
    //! analyse the result.

    use vapro_core::detect::pipeline::{detect, DetectionResult};
    use vapro_core::{Collector, Stg, VaproConfig};
    use vapro_sim::{run_simulation, Interceptor, RankCtx, SimConfig, VirtualTime};

    /// Everything one monitored run produces.
    pub struct VaproRun {
        /// Per-rank STGs built by the collectors.
        pub stgs: Vec<Stg>,
        /// Per-rank execution times.
        pub rank_clocks: Vec<VirtualTime>,
        /// The slowest rank's clock.
        pub makespan: VirtualTime,
        /// Detection output (heat maps, regions, coverage, rare paths).
        pub detection: DetectionResult,
        /// Bytes of performance data recorded per rank.
        pub bytes_recorded: Vec<u64>,
        /// Total intercepted invocations.
        pub invocations: u64,
    }

    /// Default number of heat-map time bins.
    pub const DEFAULT_BINS: usize = 64;

    /// Run `app` on the simulated cluster with a Vapro collector in every
    /// rank, then run the full detection pipeline.
    pub fn run_under_vapro(
        sim_cfg: &SimConfig,
        vapro_cfg: &VaproConfig,
        app: impl Fn(&mut RankCtx) + Sync,
    ) -> VaproRun {
        run_under_vapro_binned(sim_cfg, vapro_cfg, DEFAULT_BINS, app)
    }

    /// Like [`run_under_vapro`] with an explicit heat-map bin count.
    pub fn run_under_vapro_binned(
        sim_cfg: &SimConfig,
        vapro_cfg: &VaproConfig,
        bins: usize,
        app: impl Fn(&mut RankCtx) + Sync,
    ) -> VaproRun {
        let result = run_simulation(
            sim_cfg,
            |rank| Box::new(Collector::new(rank, vapro_cfg.clone())) as Box<dyn Interceptor>,
            app,
        );
        let rank_clocks: Vec<VirtualTime> = result.ranks.iter().map(|r| r.clock).collect();
        let makespan = result.makespan();
        let invocations = result.total_invocations();
        let collectors = result.into_tools::<Collector>();
        let bytes_recorded: Vec<u64> =
            collectors.iter().map(|c| c.bytes_recorded()).collect();
        let stgs: Vec<Stg> = collectors.into_iter().map(Collector::into_stg).collect();
        let detection = detect(&stgs, rank_clocks.len(), bins, vapro_cfg);
        VaproRun {
            stgs,
            rank_clocks,
            makespan,
            detection,
            bytes_recorded,
            invocations,
        }
    }

    /// Run the same app bare (null interceptor) — the baseline for
    /// overhead measurement.
    pub fn run_bare(sim_cfg: &SimConfig, app: impl Fn(&mut RankCtx) + Sync) -> VirtualTime {
        run_simulation(
            sim_cfg,
            |_| Box::new(vapro_sim::NullInterceptor) as Box<dyn Interceptor>,
            app,
        )
        .makespan()
    }

    /// Tool overhead: `(monitored − bare) / bare`, the Table 1 metric.
    pub fn overhead(
        sim_cfg: &SimConfig,
        vapro_cfg: &VaproConfig,
        app: impl Fn(&mut RankCtx) + Sync,
    ) -> f64 {
        let bare = run_bare(sim_cfg, &app).ns() as f64;
        let monitored = run_under_vapro(sim_cfg, vapro_cfg, &app).makespan.ns() as f64;
        (monitored - bare) / bare
    }
}

#[cfg(test)]
mod tests {
    use super::harness::*;
    use vapro_apps::AppParams;
    use vapro_core::VaproConfig;
    use vapro_sim::SimConfig;

    #[test]
    fn harness_runs_cg_end_to_end() {
        let run = run_under_vapro(&SimConfig::new(4), &VaproConfig::default(), |ctx| {
            vapro_apps::npb::cg::run(ctx, &AppParams::default().with_iterations(4))
        });
        assert_eq!(run.stgs.len(), 4);
        assert!(run.detection.coverage > 0.3);
        assert!(run.invocations > 0);
        assert!(run.bytes_recorded.iter().all(|&b| b > 0));
    }

    #[test]
    fn overhead_is_small_but_positive() {
        let oh = overhead(&SimConfig::new(2), &VaproConfig::default(), |ctx| {
            vapro_apps::npb::cg::run(ctx, &AppParams::default().with_iterations(4))
        });
        assert!(oh > 0.0, "overhead {oh}");
        assert!(oh < 0.10, "overhead {oh} too large");
    }
}
