//! IO-variance detection and the file-buffer fix — the RAxML case study
//! (paper §6.5.3) as a library user would run it.
//!
//! ```sh
//! cargo run --release --example io_variance
//! ```
//!
//! Runs the RAxML mini-app on a contended shared filesystem, shows the IO
//! heat map flagging rank 0 (the file-merging process), then repeats the
//! run with the client-side file buffer enabled and compares the
//! execution-time spread.

use vapro::apps::{raxml, AppParams};
use vapro::core::{viz, VaproConfig};
use vapro::harness::{run_bare, run_under_vapro_binned};
use vapro::sim::{NoiseEvent, NoiseKind, NoiseSchedule, SimConfig, TargetSet};
use vapro::stats::Summary;

fn fs_noise() -> NoiseSchedule {
    NoiseSchedule::quiet().with(NoiseEvent::always(
        NoiseKind::FsInterference { max_slowdown: 12.0 },
        TargetSet::All,
    ))
}

fn main() {
    let ranks = 16;
    let params = AppParams::default().with_iterations(40);

    // Detection pass.
    let cfg = SimConfig::new(ranks).with_noise(fs_noise());
    let run = run_under_vapro_binned(&cfg, &VaproConfig::default(), 40, |ctx| {
        raxml::run(ctx, &params)
    });
    println!("IO performance heat map:");
    print!("{}", viz::render_heatmap(&run.detection.io_map, 16));
    match run.detection.io_regions.first() {
        Some(r) if r.covers_rank(0) => {
            println!("\nVapro flags rank 0's IO: {}", viz::describe_region(r))
        }
        Some(r) => println!("\ntop IO region: {}", viz::describe_region(r)),
        None => println!("\nno IO variance detected"),
    }
    println!(
        "computation clean: {}  communication clean: {}",
        run.detection.comp_regions.is_empty(),
        run.detection.comm_regions.is_empty()
    );

    // The fix: repeat runs with and without the client-side file buffer.
    let times = |buffered: bool| -> Vec<f64> {
        (0..10)
            .map(|i| {
                let mut c = SimConfig::new(ranks)
                    .with_noise(fs_noise())
                    .with_seed(0xBEEF + i);
                c.fs_buffered = buffered;
                run_bare(&c, |ctx| raxml::run(ctx, &params)).as_secs_f64()
            })
            .collect()
    };
    let before = Summary::of(&times(false)).unwrap();
    let after = Summary::of(&times(true)).unwrap();
    println!("\nfile-buffer fix over 10 repeats:");
    println!("  unbuffered: mean {:.3}s  σ {:.4}s", before.mean, before.std_dev);
    println!("  buffered:   mean {:.3}s  σ {:.4}s", after.mean, after.std_dev);
    println!(
        "  σ reduction {:.1}%  speedup {:.1}%  (paper: 73.5% and 17.5%)",
        (1.0 - after.std_dev / before.std_dev) * 100.0,
        (before.mean / after.mean - 1.0) * 100.0
    );
}
