//! Monitoring a "closed-source" application — the capability that
//! separates Vapro from source-analysis tools (the paper's HPL case
//! study, §6.5.1): no source, no recompilation, just interposition at
//! the MPI boundary.
//!
//! ```sh
//! cargo run --release --example closed_source
//! ```
//!
//! Runs the HPL mini-app (which the vSensor baseline refuses: no source)
//! on a dual-socket node where socket 1 suffers the Intel L2-eviction
//! hardware bug, and shows Vapro's inter-process comparison catching the
//! socket-wide slowdown.

use vapro::apps::{hpl, AppParams};
use vapro::baselines::vsensor::{VSensor, VSensorError};
use vapro::core::{viz, VaproConfig};
use vapro::harness::run_under_vapro_binned;
use vapro::sim::{NoiseEvent, NoiseKind, NoiseSchedule, SimConfig, TargetSet, Topology};

fn main() {
    let ranks = 16;
    let params = AppParams::default().with_iterations(30);

    // The source-analysis baseline cannot even start.
    let app = vapro::apps::find_app("HPL").expect("registered");
    match VSensor::check_supported(app.vsensor_supported, false, false) {
        Err(VSensorError::NoSource) => {
            println!("vSensor: cannot analyse HPL — closed-source binary\n")
        }
        other => println!("vSensor: unexpected {other:?}\n"),
    }

    // Vapro needs only the MPI boundary.
    let topo = Topology::dual_socket(ranks / 2);
    let cfg = SimConfig::new(ranks)
        .with_topology(topo.clone())
        .with_noise(NoiseSchedule::quiet().with(NoiseEvent::always(
            NoiseKind::L2CacheBug { prob: 0.5, severity: 0.12 },
            TargetSet::Sockets(vec![1]),
        )));
    // Collect the S3 memory events so diagnosis can reach the cache level.
    let vcfg =
        VaproConfig::default().with_counters(vapro::pmu::events::s3_memory_set());
    let run =
        run_under_vapro_binned(&cfg, &vcfg, 40, |ctx| hpl::run(ctx, &params));

    println!("computation performance heat map (rows = MPI ranks):");
    print!("{}", viz::render_heatmap(&run.detection.comp_map, 16));
    let socket1 = topo.ranks_on_socket(1, ranks);
    println!("\nsocket-1 ranks: {socket1:?}");
    match run.detection.comp_regions.first() {
        Some(r) => {
            println!("top region: {}", viz::describe_region(r));
            let on_socket1 = socket1.iter().filter(|&&v| r.covers_rank(v)).count();
            println!(
                "{} of {} socket-1 ranks inside the region — the hardware bug is \
                 visible purely from inter-process comparison of fixed workload",
                on_socket1,
                socket1.len()
            );
        }
        None => println!("no variance detected"),
    }
}
