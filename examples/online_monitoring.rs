//! Online monitoring: the analysis-server view of a long run — overlapped
//! 15-second windows, per-window detection, tree aggregation of per-server
//! heat-map slabs, and the combined text report (paper Fig. 2, steps 5-7
//! and Fig. 8's periodic analysis).
//!
//! ```sh
//! cargo run --release --example online_monitoring
//! ```

use vapro::apps::{npb::lu, AppParams};
use vapro::core::detect::server::tree_aggregate;
use vapro::core::{HeatMap, ServerPool, VaproConfig, VaproReport};
use vapro::harness::{run_bare, run_under_vapro};
use vapro::pmu::events;
use vapro::sim::{NoiseEvent, NoiseKind, NoiseSchedule, SimConfig, TargetSet, VirtualTime};

fn main() {
    let ranks = 8;
    // A long-horizon run spanning several 15-second reporting periods.
    let params = AppParams::default().with_iterations(40).with_scale(120.0);
    let base = SimConfig::new(ranks);
    let span = run_bare(&base, |ctx| lu::run(ctx, &params));
    println!("quiet makespan: {span}");

    // A memory hog visits rank 5 for the middle third of the run.
    let noise = NoiseSchedule::quiet().with(NoiseEvent::during(
        NoiseKind::MemContention { intensity: 2.0 },
        TargetSet::Ranks(vec![5]),
        VirtualTime::from_ns(span.ns() / 3),
        VirtualTime::from_ns(2 * span.ns() / 3),
    ));
    let cfg = base.with_noise(noise);
    let vcfg = VaproConfig::default().with_counters(events::s3_memory_set());

    let run = run_under_vapro(&cfg, &vcfg, |ctx| lu::run(ctx, &params));
    println!("monitored makespan: {}", run.makespan);

    // Two analysis servers share the 8 clients; the overlapped windows
    // analyse in parallel (rayon inside the pool).
    let pool = ServerPool::new(2, ranks);
    println!(
        "server pool: {} servers, {:.2}% resource overhead",
        pool.servers.len(),
        pool.resource_overhead() * 100.0
    );
    let reports = pool.analyze_windows(&run.stgs, ranks, 24, &vcfg);
    println!("analysed {} overlapped windows of {}", reports.len(), vcfg.report_period);
    for r in &reports {
        let flagged = r
            .result
            .comp_regions
            .first()
            .map(|reg| format!("VARIANCE ranks {}..={}", reg.rank_range.0, reg.rank_range.1));
        println!(
            "  window {:>6.1}s..{:>6.1}s: {}",
            r.window.start.as_secs_f64(),
            r.window.end.as_secs_f64(),
            flagged.unwrap_or_else(|| "clean".into())
        );
        // Each closed window ships its top-K region diagnoses along with
        // the detection result — no second pass over the run needed.
        for d in &r.diagnoses {
            println!(
                "    diagnosed ranks {}..={}: culprits {:?}",
                d.roi.ranks.0, d.roi.ranks.1, d.report.culprits
            );
        }
    }

    // Tree aggregation (the MRNet-style reduction of §5): each leaf
    // server builds a same-geometry slab holding only its clients'
    // normalised points; the tree reduces them to the root overview map.
    let geometry = HeatMap::spanning(&run.detection.series.computation, 48, ranks);
    let slabs: Vec<HeatMap> = pool
        .servers
        .iter()
        .map(|server| {
            let mut slab = HeatMap::new(geometry.t0, geometry.bin_ns, geometry.bins, ranks);
            for p in &run.detection.series.computation {
                if server.clients.contains(&p.rank) {
                    slab.add_point(p);
                }
            }
            slab
        })
        .collect();
    let root = tree_aggregate(slabs).expect("slabs present");
    println!(
        "\nroot overview map: coverage {:.1}%, overall perf {:.3}",
        root.coverage() * 100.0,
        root.overall_perf()
    );
    print!("{}", vapro::core::viz::render_heatmap(&root, 8));

    // The combined end-of-run report with per-region diagnosis.
    let report = VaproReport::build(&run.detection, &run.stgs, &vcfg);
    println!("\n{}", report.to_text());
}
