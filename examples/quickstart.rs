//! Quickstart: monitor a parallel application with Vapro and read the
//! detection report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Runs mini NPB-CG on 16 simulated ranks with a CPU hog co-scheduled on
//! one node for part of the run, then prints the computation heat map,
//! the located variance regions, and the detection coverage.

use vapro::apps::{npb::cg, AppParams};
use vapro::core::{viz, VaproConfig};
use vapro::harness::{run_bare, run_under_vapro_binned};
use vapro::sim::{NoiseEvent, NoiseKind, NoiseSchedule, SimConfig, TargetSet, VirtualTime};

fn main() {
    let ranks = 16;
    let params = AppParams::default().with_iterations(20);

    // 1. Size the noise window from a quiet dry-run.
    let base = SimConfig::new(ranks);
    let quiet_span = run_bare(&base, |ctx| cg::run(ctx, &params));
    println!("quiet run: {quiet_span}");

    // 2. A `stress`-style CPU hog lands on four of the ranks' cores for
    //    the middle third of the run.
    let noise = NoiseSchedule::quiet().with(NoiseEvent::during(
        NoiseKind::CpuContention { steal: 0.5 },
        TargetSet::Ranks(vec![4, 5, 6, 7]),
        VirtualTime::from_ns(quiet_span.ns() / 3),
        VirtualTime::from_ns(2 * quiet_span.ns() / 3),
    ));
    let cfg = base.with_noise(noise);

    // 3. Run under Vapro (context-free STG, the paper's default).
    let run = run_under_vapro_binned(&cfg, &VaproConfig::default(), 48, |ctx| {
        cg::run(ctx, &params)
    });

    // 4. Read the report.
    println!("\ncomputation performance heat map ('#'=slow, ' '=full speed):");
    print!("{}", viz::render_heatmap(&run.detection.comp_map, 16));
    println!("\ndetection coverage: {:.1}%", run.detection.coverage * 100.0);
    match run.detection.comp_regions.first() {
        Some(region) => {
            println!("top variance region: {}", viz::describe_region(region));
            println!("(ranks 4-7 run at ~50% speed while the hog is active)");
        }
        None => println!("no variance detected"),
    }
}
