//! Progressive variance diagnosis: drill from "this rank is slow" down to
//! the responsible hardware/OS factor, stage by stage, exactly as Vapro's
//! server drives its clients (paper §4.3).
//!
//! ```sh
//! cargo run --release --example diagnose_noise
//! ```
//!
//! Injects memory-bandwidth contention into a fixed-workload kernel and
//! watches the diagnosis walk: S1 backend-bound → S2 memory-bound →
//! S3 DRAM-bound, widening the active counter set only along that branch.

use vapro::core::diagnose::{diagnose_progressively, Factor};
use vapro::core::fragment::{Fragment, FragmentKind};
use vapro::pmu::{CounterSet, CpuConfig, CpuModel, JitterModel, NoiseEnv, WorkloadSpec};
use vapro::sim::VirtualTime;

fn main() {
    // A fixed-workload kernel: identical every execution.
    let spec = WorkloadSpec::memory_bound(4e6);
    let noisy = NoiseEnv { mem_contention: 2.0, ..NoiseEnv::default() };

    // The data provider plays the client side: each diagnosis stage asks
    // for the cluster's fragments collected under a wider counter set
    // (one reporting period per stage). Odd executions suffer the noise.
    let mut provider = move |set: CounterSet| -> Vec<Fragment> {
        let model = CpuModel::with_jitter(CpuConfig::default(), JitterModel::default());
        let mut rng = rand::thread_rng();
        let mut t = 0u64;
        (0..40)
            .map(|i| {
                let env = if i % 2 == 1 { noisy } else { NoiseEnv::quiet() };
                let out = model.execute(&spec, &env, &mut rng);
                let start = VirtualTime::from_ns(t);
                let end = start + VirtualTime::from_ns_f64(out.wall_ns);
                t = end.ns() + 1_000;
                Fragment {
                    rank: 0,
                    kind: FragmentKind::Computation,
                    start,
                    end,
                    counters: out.counters.project(set),
                    args: vec![],
                }
            })
            .collect()
    };

    let report = diagnose_progressively(&mut provider, 1.2, 0.25, 0.05)
        .expect("variance present");

    println!("progressive diagnosis ({} periods):\n", report.periods);
    for (i, step) in report.steps.iter().enumerate() {
        println!(
            "stage {}: {} counters active, {} abnormal / {} normal fragments",
            i + 1,
            step.counters_used,
            step.report.abnormal_count,
            step.report.normal_count
        );
        for f in &step.report.factors {
            let share = if f.impact_share.is_nan() {
                "  (count factor — OLS)".to_string()
            } else {
                format!("{:6.1}% of slowdown", f.impact_share * 100.0)
            };
            println!(
                "    {:<28} {}{}",
                f.factor.to_string(),
                share,
                if f.major { "  << major" } else { "" }
            );
        }
    }
    println!("\nculprits: {:?}", report.culprits);
    assert!(report.culprits.contains(&Factor::DramBound));
    println!("=> the memory noise was correctly traced to DRAM-bound stalls");
}
