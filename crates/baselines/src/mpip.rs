//! An mpiP-style lightweight profiler: per-rank and per-call-site
//! computation vs communication time totals.
//!
//! The paper's Fig. 14 point: under a computing noise, mpiP's summary
//! shows *communication* time rising while computation stays flat —
//! because the slowdown propagates through message dependencies into
//! other ranks' waiting time — which misleads the user toward a network
//! problem. The profiler here is deliberately faithful to that aggregate
//! view: totals only, no time sequence, no workload comparison.

use serde::{Deserialize, Serialize};
use std::any::Any;
use std::collections::HashMap;
use vapro_sim::{EnterEvent, ExitEvent, Interceptor, InvocationKind, VirtualTime};

/// Per-rank mpiP totals.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MpipSummary {
    /// The rank.
    pub rank: usize,
    /// Total wall time observed (ns).
    pub total_ns: f64,
    /// Time inside MPI/IO invocations (ns).
    pub comm_ns: f64,
    /// Time outside invocations (ns).
    pub comp_ns: f64,
    /// Per-operation invocation time totals.
    pub per_op_ns: HashMap<String, f64>,
    /// Per-operation call counts.
    pub per_op_calls: HashMap<String, u64>,
}

impl MpipSummary {
    /// Communication share of wall time.
    pub fn comm_fraction(&self) -> f64 {
        if self.total_ns <= 0.0 {
            0.0
        } else {
            self.comm_ns / self.total_ns
        }
    }
}

/// The per-rank profiler.
pub struct MpipProfiler {
    rank: usize,
    current_enter: Option<(VirtualTime, &'static str)>,
    prev_exit: VirtualTime,
    comm_ns: f64,
    comp_ns: f64,
    per_op_ns: HashMap<&'static str, f64>,
    per_op_calls: HashMap<&'static str, u64>,
    last_time: VirtualTime,
}

impl MpipProfiler {
    /// A profiler for `rank`.
    pub fn new(rank: usize) -> Self {
        MpipProfiler {
            rank,
            current_enter: None,
            prev_exit: VirtualTime::ZERO,
            comm_ns: 0.0,
            comp_ns: 0.0,
            per_op_ns: HashMap::new(),
            per_op_calls: HashMap::new(),
            last_time: VirtualTime::ZERO,
        }
    }

    /// The final summary.
    pub fn summary(&self) -> MpipSummary {
        MpipSummary {
            rank: self.rank,
            total_ns: self.last_time.ns() as f64,
            comm_ns: self.comm_ns,
            comp_ns: self.comp_ns,
            per_op_ns: self
                .per_op_ns
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
            per_op_calls: self
                .per_op_calls
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
        }
    }
}

impl Interceptor for MpipProfiler {
    fn on_enter(&mut self, ev: &EnterEvent) {
        // Time since the previous exit is computation.
        self.comp_ns += ev.time.saturating_since(self.prev_exit).ns() as f64;
        let op = match &ev.kind {
            InvocationKind::Comm { op, .. } => op,
            InvocationKind::Io { op, .. } => op,
            InvocationKind::Thread { op } => op,
            InvocationKind::UserMarker { label } => label,
        };
        self.current_enter = Some((ev.time, op));
        self.last_time = ev.time;
    }

    fn on_exit(&mut self, ev: &ExitEvent) {
        if let Some((t_enter, op)) = self.current_enter.take() {
            let dur = ev.time.saturating_since(t_enter).ns() as f64;
            self.comm_ns += dur;
            *self.per_op_ns.entry(op).or_insert(0.0) += dur;
            *self.per_op_calls.entry(op).or_insert(0) += 1;
        }
        self.prev_exit = ev.time;
        self.last_time = ev.time;
    }

    fn hook_cost_ns(&self) -> f64 {
        100.0
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vapro_apps::AppParams;
    use vapro_sim::{run_simulation, SimConfig};
    use vapro_sim::{NoiseEvent, NoiseKind, NoiseSchedule, TargetSet};

    fn profile_cg(noise: NoiseSchedule, ranks: usize) -> Vec<MpipSummary> {
        let cfg = SimConfig::new(ranks).with_noise(noise);
        let params = AppParams::default().with_iterations(8);
        let res = run_simulation(
            &cfg,
            |rank| Box::new(MpipProfiler::new(rank)) as Box<dyn Interceptor>,
            move |ctx| vapro_apps::npb::cg::run(ctx, &params),
        );
        res.into_tools::<MpipProfiler>()
            .iter()
            .map(|p| p.summary())
            .collect()
    }

    #[test]
    fn totals_partition_wall_time() {
        let s = &profile_cg(NoiseSchedule::quiet(), 4)[0];
        assert!(s.total_ns > 0.0);
        let sum = s.comm_ns + s.comp_ns;
        // Hook costs make a sliver of unattributed time; within 2 %.
        assert!((sum - s.total_ns).abs() / s.total_ns < 0.02, "{s:?}");
        assert!(s.per_op_calls["MPI_Send"] > 0);
        assert!(s.per_op_ns["MPI_Allreduce"] > 0.0);
    }

    #[test]
    fn computing_noise_masquerades_as_communication_time() {
        // The Fig. 14 effect: noise on rank 1 inflates *other* ranks'
        // communication (waiting) time far more than their computation.
        let quiet = profile_cg(NoiseSchedule::quiet(), 4);
        let noisy = profile_cg(
            NoiseSchedule::quiet().with(NoiseEvent::always(
                NoiseKind::CpuContention { steal: 0.5 },
                TargetSet::Ranks(vec![1]),
            )),
            4,
        );
        // Rank 3 is unaffected directly: its computation time barely moves…
        let comp_ratio = noisy[3].comp_ns / quiet[3].comp_ns;
        assert!((comp_ratio - 1.0).abs() < 0.05, "comp ratio {comp_ratio}");
        // …but its communication (waiting) time grows a lot.
        let comm_ratio = noisy[3].comm_ns / quiet[3].comm_ns;
        assert!(comm_ratio > 1.5, "comm ratio {comm_ratio}");
    }

    #[test]
    fn noisy_rank_itself_shows_longer_computation() {
        let noisy = profile_cg(
            NoiseSchedule::quiet().with(NoiseEvent::always(
                NoiseKind::CpuContention { steal: 0.5 },
                TargetSet::Ranks(vec![1]),
            )),
            4,
        );
        let quiet = profile_cg(NoiseSchedule::quiet(), 4);
        let ratio = noisy[1].comp_ns / quiet[1].comp_ns;
        assert!(ratio > 1.7, "victim comp ratio {ratio}");
    }

    #[test]
    fn comm_fraction_is_bounded() {
        for s in profile_cg(NoiseSchedule::quiet(), 2) {
            let f = s.comm_fraction();
            assert!((0.0..=1.0).contains(&f), "fraction {f}");
        }
    }
}
