#![warn(missing_docs)]

//! # vapro-baselines — the tools Vapro is compared against
//!
//! * [`vsensor`] — a detector in the style of vSensor (Tang et al.,
//!   PPoPP'18), the paper's state-of-the-art baseline: it instruments only
//!   the code snippets a *static* analysis can prove fixed-workload, so it
//!   misses runtime-fixed snippets entirely (AMG, EP), cannot process huge
//!   or closed-source codebases (CESM, HPL), and has no multi-threading
//!   support — the limitations driving Table 1 and Fig. 12.
//! * [`mpip`] — a profiler in the style of mpiP: per-rank computation vs
//!   communication time totals. Sound, but its aggregate view misreads
//!   dependence-propagated waiting as a network problem (Fig. 14).

pub mod mpip;
pub mod vsensor;

pub use mpip::{MpipProfiler, MpipSummary};
pub use vsensor::{VSensor, VSensorError};
