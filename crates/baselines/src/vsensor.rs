//! A vSensor-style variance detector: static-analysis-driven
//! fixed-workload snippet instrumentation.
//!
//! The defining differences from Vapro, modelled faithfully:
//!
//! 1. it observes only the computation snippets whose workload a static
//!    analysis proved fixed (the per-app `static_fixed_sites`
//!    annotations) — one snippet per marked call-site, identified by
//!    *ending* at that site;
//! 2. snippets with de-facto fixed (runtime-classed) workload are
//!    invisible, so coverage collapses on AMG/EP-style programs;
//! 3. apps flagged `vsensor_supported = false` (CESM-scale codebases,
//!    closed-source HPL) cannot run under it at all;
//! 4. within a marked snippet, detection uses timing only (no clustering,
//!    no PMU workload vector, no diagnosis).

use std::any::Any;
use std::collections::HashSet;
use vapro_core::detect::heatmap::HeatMap;
use vapro_core::detect::normalize::PerfPoint;
use vapro_core::detect::region::{grow_regions, VarianceRegion};
use vapro_sim::{EnterEvent, ExitEvent, Interceptor, VirtualTime};

/// Why vSensor cannot analyse an application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VSensorError {
    /// The codebase is too large/complex for the source analysis (CESM).
    AnalysisFailed,
    /// No source code is available (closed-source HPL).
    NoSource,
    /// vSensor has no multi-threaded support.
    MultithreadUnsupported,
}

/// One timed snippet observation. Snippets are identified by the pair
/// (site the program came from, marked site the snippet ends at): the
/// same marked site reached from different predecessors is a *different*
/// source snippet, and vSensor's instrumentation knows which one it is.
#[derive(Debug, Clone, Copy)]
struct SnippetObs {
    snippet: (&'static str, &'static str),
    start: VirtualTime,
    end: VirtualTime,
}

/// The per-rank vSensor instance.
pub struct VSensor {
    rank: usize,
    marked_set: HashSet<&'static str>,
    /// The previous invocation's exit time and site (snippet start).
    prev_exit: Option<(VirtualTime, &'static str)>,
    /// The site of the invocation currently in flight.
    pending_site: Option<&'static str>,
    observations: Vec<SnippetObs>,
    /// Total virtual time covered by instrumented snippets.
    covered_ns: f64,
    last_event_time: VirtualTime,
    hook_cost_ns: f64,
}

impl VSensor {
    /// A vSensor instance instrumenting the given statically-proven sites.
    pub fn new(rank: usize, static_fixed_sites: &[&'static str]) -> Self {
        VSensor {
            rank,
            marked_set: static_fixed_sites.iter().copied().collect(),
            prev_exit: None,
            pending_site: None,
            observations: Vec::new(),
            covered_ns: 0.0,
            last_event_time: VirtualTime::ZERO,
            hook_cost_ns: 150.0,
        }
    }

    /// Guard used by drivers before running an app under vSensor.
    pub fn check_supported(
        vsensor_supported: bool,
        multithreaded: bool,
        has_source: bool,
    ) -> Result<(), VSensorError> {
        if multithreaded {
            return Err(VSensorError::MultithreadUnsupported);
        }
        if !has_source {
            return Err(VSensorError::NoSource);
        }
        if !vsensor_supported {
            return Err(VSensorError::AnalysisFailed);
        }
        Ok(())
    }

    /// The observing rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Detection coverage: instrumented-snippet time over total time.
    pub fn coverage(&self) -> f64 {
        let total = self.last_event_time.ns() as f64;
        if total <= 0.0 {
            0.0
        } else {
            (self.covered_ns / total).min(1.0)
        }
    }

    /// Normalised performance points over all snippets: each snippet's
    /// fastest observation defines 1.0 (vSensor's per-snippet comparison).
    pub fn perf_points(&self) -> Vec<PerfPoint> {
        let mut snippets: HashSet<(&'static str, &'static str)> =
            HashSet::with_capacity(8);
        for o in &self.observations {
            snippets.insert(o.snippet);
        }
        let mut out = Vec::new();
        for snippet in snippets {
            let durs: Vec<f64> = self
                .observations
                .iter()
                .filter(|o| o.snippet == snippet)
                .map(|o| (o.end.ns() - o.start.ns()) as f64)
                .collect();
            let min = durs.iter().cloned().fold(f64::INFINITY, f64::min);
            if !min.is_finite() || min <= 0.0 {
                continue;
            }
            for o in self.observations.iter().filter(|o| o.snippet == snippet) {
                let dur = (o.end.ns() - o.start.ns()) as f64;
                out.push(PerfPoint {
                    rank: self.rank,
                    start: o.start,
                    end: o.end,
                    perf: (min / dur).min(1.0),
                    loss_ns: (dur - min).max(0.0),
                });
            }
        }
        out
    }

    /// Number of snippet observations.
    pub fn observation_count(&self) -> usize {
        self.observations.len()
    }
}

impl Interceptor for VSensor {
    fn on_enter(&mut self, ev: &EnterEvent) {
        self.last_event_time = ev.time;
        if let Some((start, from)) = self.prev_exit {
            if self.marked_set.contains(ev.site.label()) {
                self.observations.push(SnippetObs {
                    snippet: (from, ev.site.label()),
                    start,
                    end: ev.time,
                });
                self.covered_ns += (ev.time.ns() - start.ns()) as f64;
            }
        }
        // Remember where we are so the next snippet knows its origin.
        self.pending_site = Some(ev.site.label());
    }

    fn on_exit(&mut self, ev: &ExitEvent) {
        self.last_event_time = ev.time;
        self.prev_exit = Some((ev.time, self.pending_site.unwrap_or("<start>")));
    }

    fn hook_cost_ns(&self) -> f64 {
        self.hook_cost_ns
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// Build the vSensor heat map and regions across ranks — the Fig. 12
/// right-panel view.
pub fn vsensor_detect(
    sensors: &[VSensor],
    nranks: usize,
    bins: usize,
    perf_threshold: f64,
) -> (HeatMap, Vec<VarianceRegion>) {
    let points: Vec<PerfPoint> = sensors.iter().flat_map(|s| s.perf_points()).collect();
    let map = if points.is_empty() {
        HeatMap::new(VirtualTime::ZERO, 1, 1, nranks.max(1))
    } else {
        HeatMap::spanning(&points, bins, nranks.max(1))
    };
    let regions = grow_regions(&map, perf_threshold);
    (map, regions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vapro_apps::AppParams;
    use vapro_sim::{run_simulation, SimConfig};

    fn run_under_vsensor(
        app: fn(&mut vapro_sim::RankCtx, &AppParams),
        sites: &'static [&'static str],
        ranks: usize,
        iterations: usize,
    ) -> Vec<VSensor> {
        let cfg = SimConfig::new(ranks);
        let params = AppParams::default().with_iterations(iterations);
        let res = run_simulation(
            &cfg,
            |rank| Box::new(VSensor::new(rank, sites)) as Box<dyn Interceptor>,
            move |ctx| app(ctx, &params),
        );
        res.into_tools::<VSensor>()
    }

    #[test]
    fn unsupported_apps_error_out() {
        assert_eq!(
            VSensor::check_supported(true, true, true),
            Err(VSensorError::MultithreadUnsupported)
        );
        assert_eq!(
            VSensor::check_supported(false, false, false),
            Err(VSensorError::NoSource)
        );
        assert_eq!(
            VSensor::check_supported(false, false, true),
            Err(VSensorError::AnalysisFailed)
        );
        assert_eq!(VSensor::check_supported(true, false, true), Ok(()));
    }

    #[test]
    fn amg_and_ep_have_zero_coverage() {
        // The Table 1 result: runtime-classed workloads are invisible.
        for (app, sites) in [
            (
                vapro_apps::amg::run as fn(&mut vapro_sim::RankCtx, &AppParams),
                vapro_apps::amg::STATIC_FIXED_SITES,
            ),
            (vapro_apps::npb::ep::run as _, vapro_apps::npb::ep::STATIC_FIXED_SITES),
        ] {
            let sensors = run_under_vsensor(app, sites, 2, 4);
            for s in &sensors {
                assert_eq!(s.coverage(), 0.0);
                assert_eq!(s.observation_count(), 0);
            }
        }
    }

    #[test]
    fn cg_has_partial_coverage() {
        let sensors = run_under_vsensor(
            vapro_apps::npb::cg::run,
            vapro_apps::npb::cg::STATIC_FIXED_SITES,
            4,
            6,
        );
        let cov = sensors[0].coverage();
        assert!(cov > 0.02, "coverage {cov}");
        assert!(cov < 0.7, "coverage {cov} suspiciously high for vSensor");
        assert!(sensors[0].observation_count() > 0);
    }

    #[test]
    fn perf_points_normalise_per_site() {
        let sensors = run_under_vsensor(
            vapro_apps::npb::cg::run,
            vapro_apps::npb::cg::STATIC_FIXED_SITES,
            2,
            8,
        );
        let pts = sensors[0].perf_points();
        assert!(!pts.is_empty());
        assert!(pts.iter().any(|p| p.perf > 0.999));
        assert!(pts.iter().all(|p| p.perf > 0.0 && p.perf <= 1.0));
    }

    #[test]
    fn detect_produces_a_heatmap() {
        let sensors = run_under_vsensor(
            vapro_apps::npb::cg::run,
            vapro_apps::npb::cg::STATIC_FIXED_SITES,
            4,
            8,
        );
        let (map, regions) = vsensor_detect(&sensors, 4, 16, 0.85);
        assert_eq!(map.ranks, 4);
        assert!(map.coverage() > 0.0);
        // Quiet run: no variance regions.
        assert!(regions.is_empty(), "{regions:?}");
    }
}
