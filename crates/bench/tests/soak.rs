//! Long-stream soak of the bounded-memory streaming core: thousands of
//! half-overlapped windows pushed through a [`WindowedIngestor`] and a
//! 3-job [`FleetIngestor`], asserting the three steady-state guarantees
//! at once:
//!
//! * **bit-identity** — the streamed report sequence equals the one-shot
//!   `analyze_windows` (and, for the fleet, each job equals its solo
//!   run), with watermark eviction and the pipelined analysis stage both
//!   armed at their defaults;
//! * **bounded memory** — the arena's high-water bytes shrink when the
//!   same data is sliced into more (smaller) windows, which is only
//!   possible if eviction reclaims closed history instead of retaining
//!   the stream;
//! * **zero fragment clones** — the whole admission→seal→analyze path,
//!   pipeline workers included, never clones a `Fragment`
//!   (`clone_count::in_process()` sees every thread).
//!
//! The small variant runs everywhere; the full ≥1000-window variant is
//! `#[ignore]`d under debug builds (it would take minutes unoptimised)
//! and runs in release via `make soak`, with an internal wall-clock cap
//! so a quadratic regression fails loudly instead of hanging CI.

use std::time::{Duration, Instant};
use vapro_bench::chaos::reports_identical;
use vapro_bench::perf::synthetic_stgs;
use vapro_core::detect::window::Window;
use vapro_core::fragment::clone_count;
use vapro_core::wire::FragmentBatch;
use vapro_core::{
    FleetConfig, FleetIngestor, FleetWindow, JobKey, ServerPool, Stg, VaproConfig,
    WindowedIngestor,
};
use vapro_sim::VirtualTime;

/// Latest fragment end across the run, ns.
fn t_end_ns(stgs: &[Stg]) -> u64 {
    stgs.iter()
        .flat_map(|s| {
            s.vertices()
                .iter()
                .flat_map(|v| v.fragments.iter())
                .chain(s.edges().iter().flat_map(|e| e.fragments.iter()))
        })
        .map(|f| f.end.ns())
        .max()
        .unwrap_or(0)
}

/// Per-rank, per-period frames in period-major shipping order. `job`
/// stamps v3 routing (fleet path); `None` encodes plain v2 frames.
fn periodic_frames(stgs: &[Stg], period_ns: u64, job: Option<(u32, u32)>) -> Vec<Vec<u8>> {
    let t_end = t_end_ns(stgs);
    let mut out = Vec::new();
    let mut start = 0u64;
    let mut period_index = 0u64;
    while start < t_end {
        let period = Window {
            start: VirtualTime::from_ns(start),
            end: VirtualTime::from_ns(start + period_ns),
        };
        for (rank, stg) in stgs.iter().enumerate() {
            let batch = FragmentBatch::from_stg_starting_in(stg, rank, period)
                .with_seq(period_index + 1);
            out.push(match job {
                Some((tenant, job)) => batch.with_job(tenant, job).encode_v3(),
                None => batch.encode(),
            });
        }
        start += period_ns;
        period_index += 1;
    }
    out
}

/// Stream one run sliced into `periods` reporting periods through a
/// default-configured ingestor (eviction + pipelining armed), assert
/// clone-freedom and internal arena consistency, and prove the report
/// sequence bit-identical to the one-shot analysis. Returns
/// `(windows closed, arena high-water bytes)`.
fn soak_windowed(periods: usize, frags_per_rank: usize) -> (usize, u64) {
    let nranks = 3;
    let stgs = synthetic_stgs(nranks, frags_per_rank, 16, 0x50AC);
    let period_ns = (t_end_ns(&stgs) / periods as u64).max(1);
    let frames = periodic_frames(&stgs, period_ns, None);
    let cfg = VaproConfig {
        report_period: VirtualTime::from_ns(period_ns),
        ..VaproConfig::default()
    };

    let clones_before = clone_count::in_process();
    let mut ingestor = WindowedIngestor::new(nranks, 16, cfg.clone());
    let mut reports = Vec::new();
    for frame in &frames {
        reports.extend(ingestor.push_encoded(frame).expect("own frame"));
    }
    let resident = ingestor.arena().resident_bytes();
    let high_water = ingestor.arena().high_water_bytes();
    reports.extend(ingestor.finish());
    let clones = clone_count::in_process() - clones_before;
    assert_eq!(clones, 0, "streaming ingest cloned {clones} fragments");
    assert!(resident <= high_water, "resident {resident} above high water {high_water}");
    assert!(high_water > 0, "no arena peak registered");

    let reference = ServerPool::new(1, nranks).analyze_windows(&stgs, nranks, 16, &cfg);
    reports_identical(&reports, &reference).expect("soak stream diverged from one-shot");
    (reports.len(), high_water)
}

/// Stream three jobs round-robin through a 2-shard fleet, assert
/// clone-freedom, and prove every job's fleet output bit-identical to a
/// solo ingestor fed the same frames. Returns total windows closed.
fn soak_fleet(periods: usize, frags_per_rank: usize) -> usize {
    let nranks = 2;
    let jobs: [(u32, u32); 3] = [(1, 0), (2, 1), (3, 2)];
    let job_stgs: Vec<Vec<Stg>> = (0..jobs.len())
        .map(|j| synthetic_stgs(nranks, frags_per_rank, 12, 0xF50AC + j as u64))
        .collect();
    let period_ns = (job_stgs.iter().map(|s| t_end_ns(s)).max().unwrap_or(0)
        / periods.max(1) as u64)
        .max(1);
    let streams: Vec<Vec<Vec<u8>>> = job_stgs
        .iter()
        .zip(jobs)
        .map(|(stgs, (tenant, job))| periodic_frames(stgs, period_ns, Some((tenant, job))))
        .collect();
    let cfg = VaproConfig {
        report_period: VirtualTime::from_ns(period_ns),
        ..VaproConfig::default()
    };

    let clones_before = clone_count::in_process();
    let mut fleet = FleetIngestor::new(FleetConfig {
        shards: 2,
        default_nranks: nranks,
        bins_per_window: 16,
        vapro: cfg.clone(),
        queue_capacity_frames: 8,
        default_tenant_budget_bytes: u64::MAX,
    });
    for (tenant, job) in jobs {
        fleet.register_tenant(tenant, u64::MAX);
        fleet.register_job(JobKey { tenant, job }, nranks, tenant);
    }
    let mut windows: Vec<FleetWindow> = Vec::new();
    let longest = streams.iter().map(Vec::len).max().unwrap_or(0);
    for i in 0..longest {
        for stream in &streams {
            if let Some(frame) = stream.get(i) {
                windows.extend(fleet.push_encoded(frame).expect("own frame admitted"));
            }
        }
    }
    let (report, flushed) = fleet.into_report();
    windows.extend(flushed);
    let clones = clone_count::in_process() - clones_before;
    assert_eq!(clones, 0, "fleet ingest cloned {clones} fragments");
    assert!(report.arena_high_water_bytes() > 0, "no job registered an arena peak");

    let total = windows.len();
    let mut by_key: std::collections::BTreeMap<JobKey, Vec<_>> = std::collections::BTreeMap::new();
    for w in windows {
        by_key.entry(w.key).or_default().push(w.report);
    }
    for ((tenant, job), stream) in jobs.into_iter().zip(&streams) {
        let key = JobKey { tenant, job };
        let fleet_reports = by_key.remove(&key).unwrap_or_default();
        let mut solo = WindowedIngestor::new(nranks, 16, cfg.clone());
        let mut solo_reports = Vec::new();
        for frame in stream {
            let batch = FragmentBatch::decode(frame).expect("own frame");
            solo_reports.extend(solo.push(batch));
        }
        solo_reports.extend(solo.finish());
        assert!(!solo_reports.is_empty(), "job {key:?} closed no windows");
        reports_identical(&fleet_reports, &solo_reports)
            .unwrap_or_else(|e| panic!("job {key:?} diverged from its solo run: {e}"));
    }
    total
}

/// The always-on variant: a few dozen windows, cheap enough for debug
/// builds, covering the same three guarantees as the full soak.
#[test]
fn soak_small_stream_and_fleet() {
    let (windows, _) = soak_windowed(25, 1500);
    assert!(windows >= 45, "only {windows} windows closed");
    let fleet_windows = soak_fleet(10, 300);
    assert!(fleet_windows >= 45, "only {fleet_windows} fleet windows closed");
}

/// The full soak: ≥1000 windows through the streaming ingestor plus a
/// ~900-window 3-job fleet, with the eviction bound proven by slicing
/// the same data into 8× more windows and watching the arena peak
/// *shrink*. Release-only (`make soak`); the wall-clock cap turns a
/// super-linear regression into a loud failure.
#[test]
#[cfg_attr(debug_assertions, ignore = "release-only: run via `make soak`")]
fn soak_thousand_windows_bounded_and_identical() {
    let started = Instant::now();
    let (windows, hw_long) = soak_windowed(520, 24_000);
    assert!(windows >= 1000, "only {windows} windows closed");
    // Same data, 8× fewer (so 8× larger) windows: a larger share of the
    // stream is live per window, so the evicting arena must peak higher.
    // If eviction were broken both runs would peak at the whole stream
    // and the inequality would fail.
    let (_, hw_short) = soak_windowed(65, 24_000);
    assert!(
        hw_long < hw_short,
        "arena peak did not shrink with window size: {hw_long} >= {hw_short}"
    );
    let fleet_windows = soak_fleet(150, 4_000);
    assert!(fleet_windows >= 800, "only {fleet_windows} fleet windows closed");
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(120),
        "soak took {elapsed:?}: streaming cost is no longer flat"
    );
}
