//! Registry mini-apps through the fleet plane: three applications (NPB
//! CG, HPL, PageRank) run under the collector, are sliced into
//! sequenced v3 wire frames, and stream — interleaved, as separate jobs
//! of separate tenants — through one sharded [`FleetIngestor`]. Each
//! job's streamed output must be bit-identical to the one-shot windowed
//! analysis of its own run ([`ServerPool::analyze_windows`]): the fleet
//! plane adds routing, queueing and admission, never analysis drift.

use vapro::harness::run_under_vapro;
use vapro_apps::{find_app, AppParams};
use vapro_bench::chaos::reports_identical;
use vapro_core::detect::window::Window;
use vapro_core::wire::FragmentBatch;
use vapro_core::{FleetConfig, FleetIngestor, JobKey, ServerPool, Stg, VaproConfig};
use vapro_sim::{SimConfig, VirtualTime};

const BINS: usize = 8;

/// Latest fragment end across a run, ns.
fn t_end_ns(stgs: &[Stg]) -> u64 {
    stgs.iter()
        .flat_map(|s| {
            s.vertices()
                .iter()
                .flat_map(|v| v.fragments.iter())
                .chain(s.edges().iter().flat_map(|e| e.fragments.iter()))
        })
        .map(|f| f.end.ns())
        .max()
        .unwrap_or(0)
}

/// Slice one app run into sequenced per-rank, per-period v3 frames
/// stamped with the job's routing identity, in period-major order.
fn frames_of(stgs: &[Stg], period_ns: u64, tenant: u32, job: u32) -> Vec<Vec<u8>> {
    let t_end = t_end_ns(stgs);
    let mut out = Vec::new();
    let mut k = 0u64;
    while k * period_ns < t_end {
        let period = Window {
            start: VirtualTime::from_ns(k * period_ns),
            end: VirtualTime::from_ns((k + 1) * period_ns),
        };
        for (rank, stg) in stgs.iter().enumerate() {
            out.push(
                FragmentBatch::from_stg_starting_in(stg, rank, period)
                    .with_seq(k + 1)
                    .with_job(tenant, job)
                    .encode_v3(),
            );
        }
        k += 1;
    }
    out
}

#[test]
fn three_mini_apps_stream_through_the_fleet_bit_identically() {
    let apps = ["CG", "HPL", "PageRank"];
    let nranks = 4usize;
    let params = AppParams::default().with_iterations(6);

    // Run each app under the collector on its own simulated cluster.
    let runs: Vec<Vec<Stg>> = apps
        .iter()
        .enumerate()
        .map(|(j, name)| {
            let spec = find_app(name).unwrap_or_else(|| panic!("{name} not in the registry"));
            let sim = SimConfig::new(nranks).with_seed(0x5EED + j as u64);
            run_under_vapro(&sim, &VaproConfig::default(), |ctx| (spec.run)(ctx, &params)).stgs
        })
        .collect();

    // One shared analysis cadence for the whole fleet: the longest run
    // split into 6 reporting periods.
    let period_ns =
        (runs.iter().map(|stgs| t_end_ns(stgs)).max().unwrap_or(0) / 6).max(1);
    let cfg = VaproConfig {
        report_period: VirtualTime::from_ns(period_ns),
        ..VaproConfig::default()
    };

    // Each app ships as its own job under its own tenant.
    let streams: Vec<Vec<Vec<u8>>> = runs
        .iter()
        .enumerate()
        .map(|(j, stgs)| frames_of(stgs, period_ns, 1 + j as u32, j as u32))
        .collect();

    let mut fleet = FleetIngestor::new(FleetConfig {
        shards: 3,
        default_nranks: nranks,
        bins_per_window: BINS,
        vapro: cfg.clone(),
        queue_capacity_frames: 4,
        default_tenant_budget_bytes: u64::MAX,
    });
    for j in 0..apps.len() {
        let key = JobKey { tenant: 1 + j as u32, job: j as u32 };
        fleet.register_tenant(key.tenant, u64::MAX);
        fleet.register_job(key, nranks, j as u32);
    }

    // Interleave the three jobs' streams round-robin — the arrival order
    // a shared collector port would see — and push everything through.
    let mut windows = Vec::new();
    let longest = streams.iter().map(Vec::len).max().unwrap_or(0);
    let mut pushed = 0usize;
    for i in 0..longest {
        for stream in &streams {
            if let Some(frame) = stream.get(i) {
                windows.extend(fleet.push_encoded(frame).expect("own frame admitted"));
                pushed += 1;
            }
        }
    }
    assert_eq!(pushed, streams.iter().map(Vec::len).sum::<usize>());
    let (report, flushed) = fleet.into_report();
    windows.extend(flushed);

    // Every job's streamed windows equal its one-shot analysis, bit for
    // bit, no matter what the other jobs were doing on the same plane.
    for (j, (name, stgs)) in apps.iter().zip(&runs).enumerate() {
        let key = JobKey { tenant: 1 + j as u32, job: j as u32 };
        let (mine, rest): (Vec<_>, Vec<_>) =
            std::mem::take(&mut windows).into_iter().partition(|w| w.key == key);
        windows = rest;
        let mine_reports: Vec<_> = mine.into_iter().map(|w| w.report).collect();
        let reference = ServerPool::new(1, nranks).analyze_windows(stgs, nranks, BINS, &cfg);
        reports_identical(&mine_reports, &reference)
            .unwrap_or_else(|e| panic!("{name} diverged from one-shot: {e}"));
        let summary = report
            .jobs
            .iter()
            .find(|s| s.key == key)
            .unwrap_or_else(|| panic!("{name} missing from the fleet report"));
        assert_eq!(summary.windows_closed, mine_reports.len(), "{name} close count");
        assert!(
            report.tenants.iter().any(|t| t.tenant == key.tenant),
            "{name}'s tenant missing from the fleet report"
        );
    }
}
