//! Property tests of the fault-tolerant ingestion path: arbitrary
//! seeded fault plans — drops, duplicates, reordering, corruption,
//! delays, rank deaths — never panic the ingestor, always close the
//! exact window cover of the data they admitted, and keep the delivery
//! accounting sound. Clean plans stay bit-identical to the one-shot
//! analysis.

use proptest::prelude::*;
use vapro_bench::chaos::{
    birth_equivalence, check_fleet_invariants, check_invariants, fault_free_equivalence,
    pipeline_equivalence, run_fleet_plan, run_plan, FaultPlan, FleetPlan,
};

/// Small plans: the suite runs on a single-core gate, so each case is a
/// few hundred fragments over a handful of periods.
fn plan_strategy() -> impl Strategy<Value = FaultPlan> {
    (
        (0u64..1u64 << 32, 2usize..4, 100usize..250, 4usize..7),
        (0.0f64..0.25, 0.0f64..0.3, 0.0f64..0.6, 0.0f64..0.15, 0.0f64..0.3),
    )
        .prop_flat_map(|(shape, faults)| {
            let (_, nranks, _, periods) = shape;
            let deaths = prop_oneof![
                Just(Vec::new()),
                (0..nranks, 1..periods - 1).prop_map(|(r, p)| vec![(r, p)]),
            ];
            let births = prop_oneof![
                Just(Vec::new()),
                (1..3usize.min(periods - 2) + 1).prop_map(|p| vec![p]),
            ];
            let cap = prop_oneof![Just(None), (4_096u64..65_536).prop_map(Some)];
            (Just(shape), Just(faults), deaths, births, cap)
        })
        .prop_map(
            |(
                (seed, nranks, frags, periods),
                (drop, duplicate, reorder, corrupt, delay),
                deaths,
                births,
                max_buffered_bytes,
            )| FaultPlan {
                seed,
                nranks,
                frags_per_rank: frags,
                periods,
                drop,
                duplicate,
                reorder,
                corrupt,
                delay,
                deaths,
                births,
                max_buffered_bytes,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any plan: no panic, exact window cover, sound accounting.
    #[test]
    fn arbitrary_fault_plans_satisfy_the_invariants(plan in plan_strategy()) {
        let outcome = run_plan(&plan);
        if let Err(e) = check_invariants(&plan, &outcome) {
            prop_assert!(false, "{}", e);
        }
    }

    /// Any plan: the bounded pipelined analysis stage produces the same
    /// ordered report union, the same delivery accounting, and the same
    /// arena byte trajectory as inline analysis.
    #[test]
    fn pipelined_analysis_is_equivalent_to_inline(plan in plan_strategy()) {
        if let Err(e) = pipeline_equivalence(&plan) {
            prop_assert!(false, "{}", e);
        }
    }

    /// Clean transports are bit-identical to the one-shot analysis even
    /// with the straggler policy armed.
    #[test]
    fn clean_plans_match_one_shot_analysis(seed in 0u64..1u64 << 32) {
        let mut plan = FaultPlan::fault_free(seed);
        plan.frags_per_rank = 150;
        plan.periods = 5;
        if let Err(e) = fault_free_equivalence(&plan) {
            prop_assert!(false, "{}", e);
        }
    }

    /// A rank born at any admissible period, on an otherwise clean
    /// transport, leaves every post-birth window bit-identical to a run
    /// where the rank was always present.
    #[test]
    fn births_are_equivalent_to_always_present_ranks(
        seed in 0u64..1u64 << 32,
        first in 1usize..4,
    ) {
        let plan = FaultPlan { births: vec![first], ..FaultPlan::fault_free(seed) };
        if let Err(e) = birth_equivalence(&plan) {
            prop_assert!(false, "{}", e);
        }
    }

    /// Any random fleet plan — several jobs with private fault mixes
    /// (job 0 always clean) interleaved through a sharded fleet — keeps
    /// every job bit-identical to its solo run: no cross-tenant
    /// corruption, no cross-tenant stalls, exact per-job window tiling.
    #[test]
    fn arbitrary_fleet_plans_stay_isolated(seed in 0u64..1u64 << 32) {
        let plan = FleetPlan::random(seed);
        let outcome = run_fleet_plan(&plan);
        if let Err(e) = check_fleet_invariants(&plan, &outcome) {
            prop_assert!(false, "{}", e);
        }
    }
}
