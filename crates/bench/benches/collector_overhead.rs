//! Criterion bench: the collector hot path — what one intercepted
//! invocation costs inside Vapro (enter hook + exit hook, including
//! counter-delta computation, STG update and fragment attachment). The
//! paper's 1.38 % mean overhead rests on this path being cheap relative
//! to communication calls.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vapro_core::{Collector, VaproConfig};
use vapro_pmu::{CounterId, CounterSnapshot};
use vapro_sim::{
    CallPath, CallSite, EnterEvent, ExitEvent, Interceptor, InvocationKind, VirtualTime,
};

const SITES: [CallSite; 4] = [
    CallSite("hot:MPI_Irecv"),
    CallSite("hot:MPI_Send"),
    CallSite("hot:MPI_Wait"),
    CallSite("hot:MPI_Allreduce"),
];

fn snapshot(t: u64) -> CounterSnapshot {
    let mut c = CounterSnapshot::default();
    for id in CounterId::ALL {
        c.put(id, t as f64 * 1.5);
    }
    c
}

fn drive(collector: &mut Collector, events: usize) {
    for i in 0..events {
        let site = SITES[i % SITES.len()];
        let t = i as u64 * 1_000;
        collector.on_enter(&EnterEvent {
            rank: 0,
            kind: InvocationKind::Comm { op: "MPI_Send", bytes: 4096, peer: 1 },
            site,
            path: CallPath::new(&["main"], site),
            time: VirtualTime::from_ns(t),
            counters: snapshot(t),
        });
        collector.on_exit(&ExitEvent {
            rank: 0,
            time: VirtualTime::from_ns(t + 300),
            counters: snapshot(t + 300),
        });
    }
}

fn bench_hook_pair(c: &mut Criterion) {
    let mut g = c.benchmark_group("collector/hook_pair");
    for (label, cfg) in [
        ("context_free", VaproConfig::context_free()),
        ("context_aware", VaproConfig::context_aware()),
    ] {
        g.throughput(Throughput::Elements(10_000));
        g.bench_with_input(BenchmarkId::from_parameter(label), &cfg, |b, cfg| {
            b.iter(|| {
                let mut collector = Collector::new(0, cfg.clone());
                drive(&mut collector, 10_000);
                std::hint::black_box(collector.stg().total_fragments())
            })
        });
    }
    g.finish();
}

fn bench_with_sampling(c: &mut Criterion) {
    let mut cfg = VaproConfig::context_free();
    cfg.sampling_enabled = true;
    cfg.sampling_min_ns = 1e9; // everything is "short": maximal backoff work
    c.bench_function("collector/hook_pair_sampled", |b| {
        b.iter(|| {
            let mut collector = Collector::new(0, cfg.clone());
            drive(&mut collector, 10_000);
            std::hint::black_box(collector.sampled_out())
        })
    });
}

criterion_group!(benches, bench_hook_pair, bench_with_sampling);
criterion_main!(benches);
