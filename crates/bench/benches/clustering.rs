//! Criterion bench: the fixed-workload clustering algorithm (paper
//! Algorithm 1). The paper claims linear complexity in the number of
//! workload vectors (modulo the initial sort); the throughput series over
//! n ∈ {1k, 10k, 100k} lets that claim be checked directly, and the
//! cluster-count axis shows the cost of fragmented workloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use vapro_core::clustering::{cluster_vectors, cluster_vectors_unpruned};

/// `n` vectors drawn from `classes` well-separated workload classes with
/// 0.3 % PMU-style jitter.
fn synth_vectors(n: usize, classes: usize, dim: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let class = i % classes;
            let base = 1_000.0 * 1.5f64.powi(class as i32);
            (0..dim)
                .map(|d| base * (1.0 + d as f64 * 0.1) * (1.0 + rng.gen::<f64>() * 0.006 - 0.003))
                .collect()
        })
        .collect()
}

fn bench_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("clustering/scaling");
    for n in [1_000usize, 10_000, 100_000] {
        let vectors = synth_vectors(n, 7, 1, 42);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &vectors, |b, v| {
            b.iter(|| cluster_vectors(std::hint::black_box(v), 0.05, 5))
        });
    }
    g.finish();
}

fn bench_class_count(c: &mut Criterion) {
    let mut g = c.benchmark_group("clustering/classes");
    for classes in [1usize, 7, 64] {
        let vectors = synth_vectors(20_000, classes, 1, 43);
        g.bench_with_input(BenchmarkId::from_parameter(classes), &vectors, |b, v| {
            b.iter(|| cluster_vectors(std::hint::black_box(v), 0.05, 5))
        });
    }
    g.finish();
}

fn bench_dimensions(c: &mut Criterion) {
    let mut g = c.benchmark_group("clustering/dimensions");
    for dim in [1usize, 3, 8] {
        let vectors = synth_vectors(20_000, 7, dim, 44);
        g.bench_with_input(BenchmarkId::from_parameter(dim), &vectors, |b, v| {
            b.iter(|| cluster_vectors(std::hint::black_box(v), 0.05, 5))
        });
    }
    g.finish();
}

/// Norm-pruned scan vs the exhaustive reference: the gap is widest when
/// many clusters share the norm axis (the `O(n·k)` case the skip
/// pointers and the norm window exist for).
fn bench_pruned_vs_unpruned(c: &mut Criterion) {
    let mut g = c.benchmark_group("clustering/pruned_vs_unpruned");
    let n = 20_000usize;
    for classes in [7usize, 64] {
        let vectors = synth_vectors(n, classes, 1, 45);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("pruned", classes), &vectors, |b, v| {
            b.iter(|| cluster_vectors(std::hint::black_box(v), 0.05, 5))
        });
        g.bench_with_input(BenchmarkId::new("unpruned", classes), &vectors, |b, v| {
            b.iter(|| cluster_vectors_unpruned(std::hint::black_box(v), 0.05, 5))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_scaling,
    bench_class_count,
    bench_dimensions,
    bench_pruned_vs_unpruned
);
criterion_main!(benches);
