//! Criterion bench: end-to-end detection — from per-rank STGs to heat
//! maps and variance regions — plus the windowed server analysis. This is
//! the recurring server-side cost per 15-second reporting period.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vapro::harness::run_under_vapro;
use vapro_apps::AppParams;
use vapro_core::detect::pipeline::{detect, detect_seq};
use vapro_core::{ServerPool, Stg, VaproConfig};
use vapro_sim::SimConfig;

fn collect_stgs(ranks: usize, iterations: usize) -> Vec<Stg> {
    let params = AppParams::default().with_iterations(iterations);
    let run = run_under_vapro(
        &SimConfig::new(ranks),
        &VaproConfig::context_free(),
        move |ctx| vapro_apps::npb::cg::run(ctx, &params),
    );
    run.stgs
}

fn bench_detection(c: &mut Criterion) {
    let mut g = c.benchmark_group("detect/pipeline");
    g.sample_size(20);
    for ranks in [8usize, 32] {
        let stgs = collect_stgs(ranks, 15);
        let cfg = VaproConfig::context_free();
        g.bench_with_input(BenchmarkId::from_parameter(ranks), &stgs, |b, stgs| {
            b.iter(|| detect(std::hint::black_box(stgs), stgs.len(), 48, &cfg))
        });
    }
    g.finish();
}

fn bench_region_growing(c: &mut Criterion) {
    use vapro_core::detect::normalize::PerfPoint;
    use vapro_core::detect::region::grow_regions;
    use vapro_core::HeatMap;
    use vapro_sim::VirtualTime;
    // A 256×256 map with a scattered slow pattern.
    let mut hm = HeatMap::new(VirtualTime::ZERO, 1_000, 256, 256);
    for r in 0..256usize {
        for bi in 0..256u64 {
            hm.add_point(&PerfPoint {
                rank: r,
                start: VirtualTime::from_ns(bi * 1_000),
                end: VirtualTime::from_ns(bi * 1_000 + 900),
                perf: if (r + bi as usize).is_multiple_of(9) { 0.4 } else { 1.0 },
                loss_ns: 0.0,
            });
        }
    }
    c.bench_function("detect/region_growing_256x256", |b| {
        b.iter(|| grow_regions(std::hint::black_box(&hm), 0.85))
    });
}

fn bench_windowed_server(c: &mut Criterion) {
    let stgs = collect_stgs(8, 30);
    let cfg = VaproConfig::context_free();
    let pool = ServerPool::new(2, 8);
    let mut g = c.benchmark_group("detect/windowed_server");
    g.sample_size(10);
    g.bench_function("8ranks_30iters", |b| {
        b.iter(|| pool.analyze_windows(std::hint::black_box(&stgs), 8, 24, &cfg))
    });
    g.finish();
}

/// The rayon fan-out against its sequential reference on the harness's
/// synthetic 4-rank/8k-fragment STG. Meaningful speedup needs a
/// multi-core runner; the outputs are identical either way.
fn bench_seq_vs_par(c: &mut Criterion) {
    let stgs = vapro_bench::perf::synthetic_stgs(4, 2000, 32, 0xBE7C);
    let cfg = VaproConfig::default();
    let mut g = c.benchmark_group("detect/seq_vs_par");
    g.sample_size(10);
    g.bench_function("sequential", |b| {
        b.iter(|| detect_seq(std::hint::black_box(&stgs), 4, 64, &cfg))
    });
    g.bench_function("parallel", |b| {
        b.iter(|| detect(std::hint::black_box(&stgs), 4, 64, &cfg))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_detection,
    bench_region_growing,
    bench_windowed_server,
    bench_seq_vs_par
);
criterion_main!(benches);
