//! Criterion bench: the statistical engine of variance diagnosis — OLS
//! fits with significance tests, the Farrar–Glauber multicollinearity
//! screen, and the V-Measure computation. These run once per analysis
//! window per cluster on the server side, so throughput matters at scale
//! (one server handles 256 clients in the paper's deployment).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use vapro_stats::fg::remove_multicollinear;
use vapro_stats::{v_measure, OlsFit};

fn synth_regression(n: usize, k: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let x: Vec<Vec<f64>> = (0..k)
        .map(|_| (0..n).map(|_| rng.gen::<f64>() * 100.0).collect())
        .collect();
    let y: Vec<f64> = (0..n)
        .map(|i| {
            let signal: f64 = x.iter().enumerate().map(|(j, col)| (j + 1) as f64 * col[i]).sum();
            signal + rng.gen::<f64>() * 10.0
        })
        .collect();
    (x, y)
}

fn bench_ols(c: &mut Criterion) {
    let mut g = c.benchmark_group("stats/ols");
    for (n, k) in [(100usize, 4usize), (1_000, 8), (10_000, 12)] {
        let (x, y) = synth_regression(n, k, 7);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_k{k}")),
            &(x, y),
            |b, (x, y)| b.iter(|| OlsFit::fit(std::hint::black_box(x), y, true)),
        );
    }
    g.finish();
}

fn bench_fg_screen(c: &mut Criterion) {
    let mut g = c.benchmark_group("stats/farrar_glauber");
    for k in [4usize, 8, 12] {
        let (mut x, _) = synth_regression(2_000, k, 11);
        // Make two columns collinear so the removal loop actually runs.
        let alias: Vec<f64> = x[0].iter().map(|v| v * 2.0 + 1.0).collect();
        x.push(alias);
        g.bench_with_input(BenchmarkId::from_parameter(k), &x, |b, x| {
            b.iter(|| remove_multicollinear(std::hint::black_box(x), 0.05))
        });
    }
    g.finish();
}

fn bench_vmeasure(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(13);
    let n = 100_000;
    let classes: Vec<usize> = (0..n).map(|_| rng.gen_range(0..20)).collect();
    let clusters: Vec<usize> = classes
        .iter()
        .map(|&cl| if rng.gen::<f64>() < 0.9 { cl } else { rng.gen_range(0..20) })
        .collect();
    c.bench_function("stats/v_measure_100k", |b| {
        b.iter(|| v_measure(std::hint::black_box(&classes), &clusters))
    });
}

criterion_group!(benches, bench_ols, bench_fg_screen, bench_vmeasure);
criterion_main!(benches);
