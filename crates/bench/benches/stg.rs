//! Criterion bench: STG construction — state interning, transition
//! interning, and fragment attachment, in both context-free and
//! context-aware keying. This is the per-invocation bookkeeping on
//! Vapro's hot path, so its cost bounds the tool's overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vapro_core::fragment::{Fragment, FragmentKind};
use vapro_core::stg::{StateKey, Stg};
use vapro_sim::{CallPath, CallSite, VirtualTime};

const SITES: [CallSite; 4] = [
    CallSite("bench:MPI_Irecv"),
    CallSite("bench:MPI_Send"),
    CallSite("bench:MPI_Wait"),
    CallSite("bench:MPI_Allreduce"),
];

fn dummy_fragment(i: usize) -> Fragment {
    Fragment {
        rank: 0,
        kind: FragmentKind::Computation,
        start: VirtualTime::from_ns(i as u64 * 100),
        end: VirtualTime::from_ns(i as u64 * 100 + 80),
        counters: Default::default(),
        args: vec![],
    }
}

fn build_graph(events: usize, context_aware: bool) -> Stg {
    let mut stg = Stg::new();
    let mut prev = stg.state(StateKey::Start);
    for i in 0..events {
        let site = SITES[i % SITES.len()];
        let key = if context_aware {
            let frame = if (i / 100) % 2 == 0 { "phase_a" } else { "phase_b" };
            StateKey::Path(CallPath::new(&[frame], site))
        } else {
            StateKey::Site(site)
        };
        let state = stg.state(key);
        let edge = stg.transition(prev, state);
        stg.attach_edge_fragment(edge, dummy_fragment(i));
        prev = state;
    }
    stg
}

fn bench_construction(c: &mut Criterion) {
    let mut g = c.benchmark_group("stg/construction");
    for events in [1_000usize, 20_000] {
        g.throughput(Throughput::Elements(events as u64));
        g.bench_with_input(
            BenchmarkId::new("context_free", events),
            &events,
            |b, &n| b.iter(|| build_graph(std::hint::black_box(n), false)),
        );
        g.bench_with_input(
            BenchmarkId::new("context_aware", events),
            &events,
            |b, &n| b.iter(|| build_graph(std::hint::black_box(n), true)),
        );
    }
    g.finish();
}

fn bench_dot_dump(c: &mut Criterion) {
    let stg = build_graph(20_000, false);
    c.bench_function("stg/to_dot", |b| b.iter(|| std::hint::black_box(&stg).to_dot()));
}

criterion_group!(benches, bench_construction, bench_dot_dump);
criterion_main!(benches);
