//! Criterion bench: the virtual-time runtime itself — how fast the
//! substrate simulates, in intercepted invocations per second of host
//! time, across rank counts. This bounds the turnaround of the `--full`
//! paper-scale reproductions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vapro_apps::AppParams;
use vapro_core::{Collector, VaproConfig};
use vapro_sim::{run_simulation, Interceptor, NullInterceptor, SimConfig};

fn bench_bare_runtime(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim/bare_cg");
    g.sample_size(10);
    for ranks in [4usize, 16, 64] {
        let params = AppParams::default().with_iterations(5);
        let cfg = SimConfig::new(ranks);
        // Invocations per iteration ≈ 10 per rank for CG.
        g.throughput(Throughput::Elements((ranks * 5 * 10) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(ranks), &cfg, |b, cfg| {
            b.iter(|| {
                run_simulation(
                    cfg,
                    |_| Box::new(NullInterceptor) as Box<dyn Interceptor>,
                    |ctx| vapro_apps::npb::cg::run(ctx, &params),
                )
                .makespan()
            })
        });
    }
    g.finish();
}

fn bench_monitored_runtime(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim/monitored_cg");
    g.sample_size(10);
    for ranks in [4usize, 16, 64] {
        let params = AppParams::default().with_iterations(5);
        let cfg = SimConfig::new(ranks);
        g.throughput(Throughput::Elements((ranks * 5 * 10) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(ranks), &cfg, |b, cfg| {
            b.iter(|| {
                run_simulation(
                    cfg,
                    |rank| {
                        Box::new(Collector::new(rank, VaproConfig::default()))
                            as Box<dyn Interceptor>
                    },
                    |ctx| vapro_apps::npb::cg::run(ctx, &params),
                )
                .total_invocations()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_bare_runtime, bench_monitored_runtime);
criterion_main!(benches);
