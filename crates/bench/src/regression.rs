//! Between-executions regression detection: the Fig. 1 scenario seen
//! through the baseline-profile comparison. A clean submission's profile
//! is saved; later submissions on the same nodes — some clean, some on a
//! degraded neighbourhood — are compared against it. In-run detection is
//! blind to a *uniform* slowdown (every fragment slows equally, so
//! normalised performance stays 1.0); the cross-run comparison catches
//! exactly that case.

use crate::common::{header, vapro_cf, ExpOpts};
use vapro::harness::run_under_vapro;
use vapro_apps::AppParams;
use vapro_core::BaselineProfile;
use vapro_sim::{NoiseEvent, NoiseKind, NoiseSchedule, SimConfig, TargetSet};

/// Per-submission outcome.
#[derive(Debug, Clone)]
pub struct SubmissionRow {
    /// Submission index.
    pub run: usize,
    /// Was the machine degraded for this submission?
    pub degraded: bool,
    /// In-run detection: computation regions found.
    pub in_run_regions: usize,
    /// Cross-run comparison: overall slowdown vs the baseline.
    pub slowdown: f64,
    /// Regressed states beyond 1.2×.
    pub regressions: usize,
}

/// Run the experiment: one clean baseline, then alternating clean /
/// degraded submissions.
pub fn submissions(opts: &ExpOpts) -> Vec<SubmissionRow> {
    let ranks = opts.resolve_ranks(8, 64);
    let iters = opts.resolve_iters(10);
    let runs = opts.resolve_runs(6);
    let params = AppParams::default().with_iterations(iters);
    let cfg = vapro_cf();

    let run_once = |seed: u64, degraded: bool| {
        let noise = if degraded {
            NoiseSchedule::quiet().with(NoiseEvent::always(
                NoiseKind::MemContention { intensity: 1.5 },
                TargetSet::All,
            ))
        } else {
            NoiseSchedule::quiet()
        };
        run_under_vapro(
            &SimConfig::new(ranks).with_seed(seed).with_noise(noise),
            &cfg,
            |ctx| vapro_apps::npb::cg::run(ctx, &params),
        )
    };

    let baseline_run = run_once(opts.seed, false);
    let baseline = BaselineProfile::build(&baseline_run.stgs, &cfg);

    (0..runs)
        .map(|run| {
            let degraded = run % 2 == 1;
            let r = run_once(opts.seed + 100 + run as u64, degraded);
            let cmp = baseline.compare(&r.stgs, &cfg);
            SubmissionRow {
                run,
                degraded,
                in_run_regions: r.detection.comp_regions.len(),
                slowdown: cmp.overall_slowdown(),
                regressions: cmp.regressions(1.2).len(),
            }
        })
        .collect()
}

/// Run the experiment and format the report.
pub fn run(opts: &ExpOpts) -> String {
    let rows = submissions(opts);
    let mut out = header(
        "Between-executions regression detection",
        "Baseline-profile comparison over repeated CG submissions (the Fig. 1 scenario)",
    );
    out.push_str("run,degraded,in_run_regions,cross_run_slowdown,regressed_states\n");
    for r in &rows {
        out.push_str(&format!(
            "{},{},{},{:.3},{}\n",
            r.run, r.degraded, r.in_run_regions, r.slowdown, r.regressions
        ));
    }
    out.push_str(
        "\n(uniform machine-wide slowdowns are invisible to in-run detection — every\n\
         fragment slows equally — but the cross-run comparison flags them)\n",
    );
    out
}

// ---------------------------------------------------------------------
// Harness-throughput regression gate: the same idea applied to the tool
// itself. The `perf` binary records `BENCH_detect.json`; a later run is
// compared against the previous file and any throughput metric that
// dropped beyond what the measured noise can explain is reported. Each
// timed metric carries its relative MAD (see `crate::stats`); the gate's
// tolerance is the fixed floor below, widened on noisy metrics so that
// a drop inside the host's own jitter band never warns — and a real
// regression on a quiet metric still does.

use crate::diagnose::DiagnosePerf;
use crate::fleet::FleetPerf;
use crate::ingest::IngestPerf;
use crate::perf::DetectPerf;
use crate::stats::variance_tolerance;

/// Relative throughput drop beyond which a warning is emitted on a
/// noise-free metric (20 %) — the floor of the variance-aware tolerance.
pub const PERF_REGRESSION_TOLERANCE: f64 = 0.20;

/// Patch the keys the multi-sample methodology added (`samples`, the
/// per-metric `*_noise_frac`s, `history`) into a report written before
/// they existed: zeroed noise keeps the gate at its tolerance floor, an
/// absent history starts empty. The vendored serde derive has no
/// `#[serde(default)]`, so absence is repaired here, at load time.
fn patch_missing_stats(value: &mut serde_json::Value, noise_keys: &[&str]) {
    if let serde_json::Value::Object(map) = value {
        for key in noise_keys {
            map.entry(key.to_string())
                .or_insert(serde_json::Value::Number(serde_json::Number::Float(0.0)));
        }
        map.entry("samples".to_string())
            .or_insert(serde_json::Value::Number(serde_json::Number::PosInt(0)));
        map.entry("history".to_string()).or_insert(serde_json::Value::Array(Vec::new()));
    }
}

/// Load the previous harness report, if a readable one exists at `path`.
/// Reports predating the multi-sample methodology still load (see
/// [`patch_missing_stats`]).
pub fn load_previous_perf(path: &str) -> Option<DetectPerf> {
    let text = std::fs::read_to_string(path).ok()?;
    let mut value: serde_json::Value = serde_json::from_str(&text).ok()?;
    patch_missing_stats(
        &mut value,
        &["seq_noise_frac", "par_noise_frac", "cluster_noise_frac"],
    );
    serde_json::from_value(&value).ok()
}

/// Load the previous ingest report, if a readable one exists at `path`.
/// Reports written before the integrity fields or the multi-sample
/// methodology existed still load: the missing metrics default to zero,
/// which [`check_drop`] skips (a zero `prev` gates nothing), so the
/// first post-upgrade run establishes the baseline instead of failing
/// to parse.
pub fn load_previous_ingest(path: &str) -> Option<IngestPerf> {
    let text = std::fs::read_to_string(path).ok()?;
    let mut value: serde_json::Value = serde_json::from_str(&text).ok()?;
    if let serde_json::Value::Object(map) = &mut value {
        for key in ["ingest_v1_fragments_per_sec", "integrity_overhead_frac"] {
            map.entry(key.to_string())
                .or_insert(serde_json::Value::Number(serde_json::Number::Float(0.0)));
        }
        // Steady-state fields (long-stream flatness + arena plateau):
        // reports predating bounded-memory streaming load with neutral
        // values — counts at zero (gating nothing), ratios at 0.0 so the
        // first post-upgrade run seeds the baseline.
        for key in ["steady_state_flatness", "arena_plateau_ratio"] {
            map.entry(key.to_string())
                .or_insert(serde_json::Value::Number(serde_json::Number::Float(0.0)));
        }
        for key in ["long_stream_periods", "long_stream_windows", "arena_high_water_bytes"] {
            map.entry(key.to_string())
                .or_insert(serde_json::Value::Number(serde_json::Number::PosInt(0)));
        }
    }
    patch_missing_stats(
        &mut value,
        &[
            "encode_noise_frac",
            "decode_noise_frac",
            "ingest_noise_frac",
            "long_stream_noise_frac",
        ],
    );
    serde_json::from_value(&value).ok()
}

/// Load the previous fleet report, if a readable one exists at `path`.
/// A missing or unreadable file returns `None` — the first `fleet_perf`
/// run on a fresh checkout seeds the baseline instead of failing — and
/// reports written by a build predating any later noise field still
/// load (see [`patch_missing_stats`]).
pub fn load_previous_fleet(path: &str) -> Option<FleetPerf> {
    let text = std::fs::read_to_string(path).ok()?;
    let mut value: serde_json::Value = serde_json::from_str(&text).ok()?;
    if let serde_json::Value::Object(map) = &mut value {
        // Steady-state fields added with bounded-memory streaming: see
        // the matching patch in [`load_previous_ingest`].
        map.entry("steady_state_flatness".to_string())
            .or_insert(serde_json::Value::Number(serde_json::Number::Float(0.0)));
        map.entry("arena_high_water_bytes".to_string())
            .or_insert(serde_json::Value::Number(serde_json::Number::PosInt(0)));
    }
    patch_missing_stats(
        &mut value,
        &[
            "fleet_1shard_noise_frac",
            "fleet_nshard_noise_frac",
            "bare_noise_frac",
            "single_job_noise_frac",
        ],
    );
    serde_json::from_value(&value).ok()
}

/// Load the previous diagnosis report, if a readable one exists at
/// `path`. Reports predating the multi-sample methodology still load
/// (see [`patch_missing_stats`]).
pub fn load_previous_diagnose(path: &str) -> Option<DiagnosePerf> {
    let text = std::fs::read_to_string(path).ok()?;
    let mut value: serde_json::Value = serde_json::from_str(&text).ok()?;
    patch_missing_stats(
        &mut value,
        &["naive_noise_frac", "batch_seq_noise_frac", "batch_noise_frac"],
    );
    serde_json::from_value(&value).ok()
}

/// One throughput comparison: warn when `cur` dropped more than the
/// variance-aware `tolerance` below `prev` (see
/// [`crate::stats::variance_tolerance`] — the floor is
/// [`PERF_REGRESSION_TOLERANCE`], widened by the measured noise of the
/// two runs being compared).
fn check_drop(warnings: &mut Vec<String>, metric: &str, prev: f64, cur: f64, tolerance: f64) {
    if prev > 0.0 && cur < prev * (1.0 - tolerance) {
        warnings.push(format!(
            "{metric} regressed {:.0}%: {cur:.0}/s vs previous {prev:.0}/s (tolerance {:.0}%)",
            (1.0 - cur / prev) * 100.0,
            tolerance * 100.0
        ));
    }
}

/// Parallel throughput is only comparable between runs with the same
/// hardware parallelism: a 1-thread runner is not slower *code* than an
/// 8-thread one. Both BENCH files record `threads`
/// (`std::thread::available_parallelism` at measurement time); when the
/// counts differ the parallel metrics are skipped rather than flagged.
fn threads_comparable(prev: usize, cur: usize) -> bool {
    prev == cur
}

/// Compare a fresh detection report against the previous one. Returns
/// one warning line per throughput metric that regressed by more than
/// [`PERF_REGRESSION_TOLERANCE`]; empty means no regression.
pub fn perf_regression_warnings(previous: &DetectPerf, current: &DetectPerf) -> Vec<String> {
    let mut warnings = Vec::new();
    check_drop(
        &mut warnings,
        "sequential detect throughput",
        previous.seq_fragments_per_sec,
        current.seq_fragments_per_sec,
        variance_tolerance(&[previous.seq_noise_frac, current.seq_noise_frac]),
    );
    check_drop(
        &mut warnings,
        "clustering throughput",
        previous.cluster_vectors_per_sec,
        current.cluster_vectors_per_sec,
        variance_tolerance(&[previous.cluster_noise_frac, current.cluster_noise_frac]),
    );
    if threads_comparable(previous.threads, current.threads) {
        check_drop(
            &mut warnings,
            "parallel detect throughput",
            previous.par_fragments_per_sec,
            current.par_fragments_per_sec,
            variance_tolerance(&[previous.par_noise_frac, current.par_noise_frac]),
        );
    }
    warnings
}

/// Compare a fresh ingest report against the previous one, same
/// tolerance. Codec throughput and the wire format's size advantage are
/// thread-independent and always gate; the end-to-end ingest rate
/// (windows analysed on rayon) only gates between same-parallelism runs.
pub fn ingest_regression_warnings(previous: &IngestPerf, current: &IngestPerf) -> Vec<String> {
    let mut warnings = Vec::new();
    check_drop(
        &mut warnings,
        "wire encode throughput",
        previous.encode_fragments_per_sec,
        current.encode_fragments_per_sec,
        variance_tolerance(&[previous.encode_noise_frac, current.encode_noise_frac]),
    );
    check_drop(
        &mut warnings,
        "wire decode throughput",
        previous.decode_fragments_per_sec,
        current.decode_fragments_per_sec,
        variance_tolerance(&[previous.decode_noise_frac, current.decode_noise_frac]),
    );
    // The size advantage regresses when the ratio *shrinks* — same 20 %
    // tolerance, applied to json-bytes-over-binary-bytes.
    if previous.size_ratio > 0.0
        && current.size_ratio < previous.size_ratio * (1.0 - PERF_REGRESSION_TOLERANCE)
    {
        warnings.push(format!(
            "wire size advantage regressed: {:.1}x smaller than JSON vs previous {:.1}x",
            current.size_ratio, previous.size_ratio
        ));
    }
    if threads_comparable(previous.threads, current.threads) {
        check_drop(
            &mut warnings,
            "end-to-end ingest throughput",
            previous.ingest_fragments_per_sec,
            current.ingest_fragments_per_sec,
            variance_tolerance(&[previous.ingest_noise_frac, current.ingest_noise_frac]),
        );
    }
    warnings
}

/// Compare a fresh diagnosis report against the previous one, same
/// tolerance. The naive baseline and the sequential batch are
/// single-threaded and always gate; the rayon batch only gates between
/// same-parallelism runs.
pub fn diagnose_regression_warnings(
    previous: &DiagnosePerf,
    current: &DiagnosePerf,
) -> Vec<String> {
    let mut warnings = Vec::new();
    check_drop(
        &mut warnings,
        "naive diagnosis throughput",
        previous.naive_regions_per_sec,
        current.naive_regions_per_sec,
        variance_tolerance(&[previous.naive_noise_frac, current.naive_noise_frac]),
    );
    check_drop(
        &mut warnings,
        "batched diagnosis throughput",
        previous.batch_seq_regions_per_sec,
        current.batch_seq_regions_per_sec,
        variance_tolerance(&[previous.batch_seq_noise_frac, current.batch_seq_noise_frac]),
    );
    if threads_comparable(previous.threads, current.threads) {
        check_drop(
            &mut warnings,
            "parallel batched diagnosis throughput",
            previous.batch_regions_per_sec,
            current.batch_regions_per_sec,
            variance_tolerance(&[previous.batch_noise_frac, current.batch_noise_frac]),
        );
    }
    warnings
}

/// Compare a fresh fleet report against the previous one, same
/// tolerance. The single-shard aggregate rate and the single-job
/// (fleet and bare) rates are effectively single-threaded and always
/// gate; the N-shard aggregate rate only gates between runs on the same
/// hardware parallelism — and only when both measured the same shard
/// count, since "4 shards" and "8 shards" are different benchmarks.
pub fn fleet_regression_warnings(previous: &FleetPerf, current: &FleetPerf) -> Vec<String> {
    let mut warnings = Vec::new();
    check_drop(
        &mut warnings,
        "fleet 1-shard aggregate throughput",
        previous.fleet_1shard_fragments_per_sec,
        current.fleet_1shard_fragments_per_sec,
        variance_tolerance(&[previous.fleet_1shard_noise_frac, current.fleet_1shard_noise_frac]),
    );
    check_drop(
        &mut warnings,
        "single-job fleet throughput",
        previous.single_job_fragments_per_sec,
        current.single_job_fragments_per_sec,
        variance_tolerance(&[previous.single_job_noise_frac, current.single_job_noise_frac]),
    );
    check_drop(
        &mut warnings,
        "bare single-job ingest throughput",
        previous.bare_fragments_per_sec,
        current.bare_fragments_per_sec,
        variance_tolerance(&[previous.bare_noise_frac, current.bare_noise_frac]),
    );
    if threads_comparable(previous.threads, current.threads) && previous.shards == current.shards {
        check_drop(
            &mut warnings,
            "fleet sharded aggregate throughput",
            previous.fleet_nshard_fragments_per_sec,
            current.fleet_nshard_fragments_per_sec,
            variance_tolerance(&[
                previous.fleet_nshard_noise_frac,
                current.fleet_nshard_noise_frac,
            ]),
        );
    }
    warnings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_degradation_is_caught_cross_run_only() {
        let opts = ExpOpts {
            ranks: Some(4),
            iterations: Some(8),
            runs: Some(4),
            ..ExpOpts::default()
        };
        let rows = submissions(&opts);
        for r in &rows {
            if r.degraded {
                // In-run detection is blind (uniform slowdown)…
                assert_eq!(r.in_run_regions, 0, "{r:?}");
                // …the baseline comparison is not.
                assert!(r.slowdown > 1.1, "{r:?}");
                assert!(r.regressions > 0, "{r:?}");
            } else {
                assert!((r.slowdown - 1.0).abs() < 0.05, "{r:?}");
                assert_eq!(r.regressions, 0, "{r:?}");
            }
        }
    }

    fn perf_fixture(seq: f64, par: f64, cluster: f64, threads: usize) -> DetectPerf {
        DetectPerf {
            bench: "detect".to_string(),
            threads,
            ranks: 4,
            fragments: 8000,
            locations: 64,
            samples: 30,
            seq_ns: 1.0,
            par_ns: 1.0,
            seq_fragments_per_sec: seq,
            seq_noise_frac: 0.0,
            par_fragments_per_sec: par,
            par_noise_frac: 0.0,
            speedup: (threads > 1).then_some(seq / par),
            cluster_vectors: 100_000,
            cluster_vectors_per_sec: cluster,
            cluster_noise_frac: 0.0,
            unpruned_cluster_vectors_per_sec: cluster / 2.0,
            pruned_speedup: 2.0,
            history: Vec::new(),
        }
    }

    #[test]
    fn perf_gate_warns_only_beyond_tolerance() {
        let prev = perf_fixture(1_000_000.0, 2_000_000.0, 5_000_000.0, 4);
        // 10 % slower: within tolerance, silent.
        let ok = perf_fixture(900_000.0, 1_900_000.0, 4_600_000.0, 4);
        assert!(perf_regression_warnings(&prev, &ok).is_empty());
        // 30 % slower sequential + clustering: two warnings.
        let bad = perf_fixture(700_000.0, 1_900_000.0, 3_400_000.0, 4);
        let warnings = perf_regression_warnings(&prev, &bad);
        assert_eq!(warnings.len(), 2, "{warnings:?}");
        assert!(warnings[0].contains("sequential detect throughput"));
        assert!(warnings[1].contains("clustering throughput"));
    }

    #[test]
    fn perf_gate_tolerance_is_variance_aware() {
        // A 30 % drop on a quiet metric warns (floor is 20 %)…
        let prev = perf_fixture(1_000_000.0, 2_000_000.0, 5_000_000.0, 4);
        let bad = perf_fixture(700_000.0, 2_000_000.0, 5_000_000.0, 4);
        assert_eq!(perf_regression_warnings(&prev, &bad).len(), 1);
        // …but the same drop is silent when the previous run measured
        // 10 % relative MAD on that metric (4 x 0.10 = 40 % tolerance):
        // the drop is inside the host's own jitter band.
        let mut noisy_prev = prev.clone();
        noisy_prev.seq_noise_frac = 0.10;
        assert!(perf_regression_warnings(&noisy_prev, &bad).is_empty());
        // The current run's noise widens the gate symmetrically.
        let mut noisy_bad = bad.clone();
        noisy_bad.seq_noise_frac = 0.10;
        assert!(perf_regression_warnings(&prev, &noisy_bad).is_empty());
        // A collapse beyond even the widened band still warns.
        let collapse = perf_fixture(400_000.0, 2_000_000.0, 5_000_000.0, 4);
        let warnings = perf_regression_warnings(&noisy_prev, &collapse);
        assert_eq!(warnings.len(), 1, "{warnings:?}");
        assert!(warnings[0].contains("tolerance 40%"), "{warnings:?}");
        // Noise on one metric does not loosen the others: clustering
        // still gates at the floor.
        let cluster_bad = perf_fixture(1_000_000.0, 2_000_000.0, 3_400_000.0, 4);
        assert_eq!(perf_regression_warnings(&noisy_prev, &cluster_bad).len(), 1);
    }

    #[test]
    fn previous_perf_loads_reports_predating_the_stats_fields() {
        // A BENCH_detect.json written before the multi-sample
        // methodology: strip the new keys and the loader must still
        // parse it, with zeroed noise (gating at the 20 % floor) and an
        // empty history.
        let fixture = perf_fixture(1_000_000.0, 2_000_000.0, 5_000_000.0, 4);
        let mut value = serde_json::to_value(&fixture).expect("serialises");
        if let serde_json::Value::Object(map) = &mut value {
            for key in
                ["samples", "seq_noise_frac", "par_noise_frac", "cluster_noise_frac", "history"]
            {
                map.remove(key);
            }
        }
        let dir = std::env::temp_dir().join("vapro_perf_stats_gate_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("BENCH_detect.json");
        std::fs::write(&path, serde_json::to_string(&value).expect("serialises"))
            .expect("writes");
        let loaded = load_previous_perf(path.to_str().expect("utf8 path")).expect("loads");
        assert_eq!(loaded.samples, 0);
        assert_eq!(loaded.seq_noise_frac, 0.0);
        assert!(loaded.history.is_empty());
        assert!(perf_regression_warnings(&loaded, &fixture).is_empty());
    }

    #[test]
    fn perf_gate_skips_parallel_metrics_across_thread_counts() {
        // An 8-thread baseline replayed on a 1-core runner: the parallel
        // throughput collapse is environmental, not a code regression —
        // no warning. With equal thread counts the same drop gates.
        let prev = perf_fixture(1_000_000.0, 4_000_000.0, 5_000_000.0, 8);
        let single_core = perf_fixture(1_000_000.0, 1_000_000.0, 5_000_000.0, 1);
        assert!(perf_regression_warnings(&prev, &single_core).is_empty());
        let same_threads = perf_fixture(1_000_000.0, 1_000_000.0, 5_000_000.0, 8);
        let warnings = perf_regression_warnings(&prev, &same_threads);
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].contains("parallel detect throughput"), "{warnings:?}");
    }

    fn ingest_fixture(encode: f64, decode: f64, ratio: f64, e2e: f64, threads: usize) -> IngestPerf {
        IngestPerf {
            bench: "ingest".to_string(),
            threads,
            ranks: 4,
            fragments: 8000,
            batches: 48,
            windows: 24,
            binary_bytes: 300_000,
            json_bytes: (300_000.0 * ratio) as usize,
            samples: 30,
            binary_bytes_per_fragment: 37.5,
            json_bytes_per_fragment: 37.5 * ratio,
            size_ratio: ratio,
            encode_fragments_per_sec: encode,
            encode_noise_frac: 0.0,
            decode_fragments_per_sec: decode,
            decode_noise_frac: 0.0,
            json_encode_fragments_per_sec: encode / 10.0,
            json_decode_fragments_per_sec: decode / 8.0,
            decode_speedup: 8.0,
            ingest_fragments_per_sec: e2e,
            ingest_noise_frac: 0.0,
            ingest_v1_fragments_per_sec: e2e * 1.05,
            integrity_overhead_frac: 1.0 - 1.0 / 1.05,
            long_stream_periods: 101,
            long_stream_windows: 202,
            steady_state_flatness: 1.02,
            long_stream_noise_frac: 0.0,
            arena_high_water_bytes: 40_000,
            arena_plateau_ratio: 1.05,
            history: Vec::new(),
        }
    }

    #[test]
    fn ingest_gate_covers_codec_size_and_e2e() {
        let prev = ingest_fixture(9e6, 8e6, 6.0, 2e6, 8);
        // Within tolerance on everything: silent.
        assert!(ingest_regression_warnings(&prev, &ingest_fixture(8e6, 7e6, 5.5, 1.8e6, 8))
            .is_empty());
        // Decode 40 % down + ratio collapsed to 3×: two warnings.
        let bad = ingest_fixture(9e6, 4.8e6, 3.0, 2e6, 8);
        let warnings = ingest_regression_warnings(&prev, &bad);
        assert_eq!(warnings.len(), 2, "{warnings:?}");
        assert!(warnings[0].contains("wire decode throughput"));
        assert!(warnings[1].contains("size advantage"));
        // E2E drop gates on same-thread runs only.
        let slow_e2e = ingest_fixture(9e6, 8e6, 6.0, 1e6, 8);
        assert_eq!(ingest_regression_warnings(&prev, &slow_e2e).len(), 1);
        let other_runner = ingest_fixture(9e6, 8e6, 6.0, 1e6, 2);
        assert!(ingest_regression_warnings(&prev, &other_runner).is_empty());
    }

    fn diagnose_fixture(naive: f64, batch_seq: f64, batch: f64, threads: usize) -> DiagnosePerf {
        DiagnosePerf {
            bench: "diagnose".to_string(),
            threads,
            ranks: 4,
            fragments: 1600,
            locations: 36,
            regions: 34,
            diagnosed: 20,
            samples: 30,
            naive_ns: 1.0,
            batch_seq_ns: 1.0,
            batch_ns: 1.0,
            naive_regions_per_sec: naive,
            naive_noise_frac: 0.0,
            batch_seq_regions_per_sec: batch_seq,
            batch_seq_noise_frac: 0.0,
            batch_regions_per_sec: batch,
            batch_noise_frac: 0.0,
            batch_speedup: batch_seq / naive,
            parallel_speedup: (threads > 1).then_some(batch / batch_seq),
            naive_fragment_clones: 50_000,
            batch_fragment_clones: 0,
            history: Vec::new(),
        }
    }

    #[test]
    fn diagnose_gate_is_thread_aware() {
        let prev = diagnose_fixture(1_000.0, 20_000.0, 60_000.0, 8);
        // Within tolerance everywhere: silent.
        assert!(
            diagnose_regression_warnings(&prev, &diagnose_fixture(900.0, 17_000.0, 55_000.0, 8))
                .is_empty()
        );
        // Sequential batch 40 % down: gates regardless of threads.
        let bad = diagnose_fixture(1_000.0, 12_000.0, 60_000.0, 8);
        let warnings = diagnose_regression_warnings(&prev, &bad);
        assert_eq!(warnings.len(), 1, "{warnings:?}");
        assert!(warnings[0].contains("batched diagnosis throughput"));
        // The rayon batch collapsing on a smaller runner is environmental…
        let other_runner = diagnose_fixture(1_000.0, 20_000.0, 20_000.0, 1);
        assert!(diagnose_regression_warnings(&prev, &other_runner).is_empty());
        // …the same collapse on equal threads is a code regression.
        let same_threads = diagnose_fixture(1_000.0, 20_000.0, 20_000.0, 8);
        let warnings = diagnose_regression_warnings(&prev, &same_threads);
        assert_eq!(warnings.len(), 1, "{warnings:?}");
        assert!(warnings[0].contains("parallel batched diagnosis"));
    }

    fn fleet_fixture(one: f64, n: f64, solo: f64, threads: usize) -> FleetPerf {
        FleetPerf {
            bench: "fleet".to_string(),
            threads,
            shards: 4,
            jobs: 8,
            ranks_per_job: 2,
            fragments: 19_200,
            frames: 160,
            windows: 80,
            samples: 30,
            fleet_1shard_fragments_per_sec: one,
            fleet_1shard_noise_frac: 0.0,
            fleet_nshard_fragments_per_sec: n,
            fleet_nshard_noise_frac: 0.0,
            shard_speedup: (threads >= 4).then_some(n / one),
            bare_fragments_per_sec: solo * 1.02,
            bare_noise_frac: 0.0,
            single_job_fragments_per_sec: solo,
            single_job_noise_frac: 0.0,
            fleet_overhead_frac: 1.0 - 1.0 / 1.02,
            arena_high_water_bytes: 30_000,
            steady_state_flatness: 1.01,
            history: Vec::new(),
        }
    }

    #[test]
    fn fleet_gate_is_thread_and_shard_aware() {
        let prev = fleet_fixture(1e6, 2.2e6, 9e5, 8);
        // Within tolerance everywhere: silent.
        assert!(fleet_regression_warnings(&prev, &fleet_fixture(9e5, 2e6, 8.5e5, 8)).is_empty());
        // Single-shard aggregate 40 % down: gates regardless of threads.
        let bad = fleet_fixture(6e5, 2.2e6, 9e5, 8);
        let warnings = fleet_regression_warnings(&prev, &bad);
        assert_eq!(warnings.len(), 1, "{warnings:?}");
        assert!(warnings[0].contains("fleet 1-shard aggregate"));
        // The sharded rate collapsing on a smaller runner is
        // environmental, not a code regression…
        let small_runner = fleet_fixture(1e6, 1e6, 9e5, 1);
        assert!(fleet_regression_warnings(&prev, &small_runner).is_empty());
        // …the same collapse on equal threads gates.
        let same_threads = fleet_fixture(1e6, 1e6, 9e5, 8);
        let warnings = fleet_regression_warnings(&prev, &same_threads);
        assert_eq!(warnings.len(), 1, "{warnings:?}");
        assert!(warnings[0].contains("fleet sharded aggregate"), "{warnings:?}");
        // A different shard count is a different benchmark: skipped.
        let mut other_shards = same_threads.clone();
        other_shards.shards = 8;
        assert!(fleet_regression_warnings(&prev, &other_shards).is_empty());
    }

    #[test]
    fn previous_fleet_loads_from_json_and_tolerates_absence() {
        // A missing baseline seeds cleanly: the very first fleet_perf
        // run must not fail for lack of a BENCH_fleet.json.
        assert!(load_previous_fleet("/nonexistent/BENCH_fleet.json").is_none());
        let dir = std::env::temp_dir().join("vapro_fleet_gate_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        // Unreadable garbage also seeds cleanly instead of crashing.
        let garbage = dir.join("garbage.json");
        std::fs::write(&garbage, "{not json").expect("writes");
        assert!(load_previous_fleet(garbage.to_str().expect("utf8 path")).is_none());
        let path = dir.join("BENCH_fleet.json");
        let prev = fleet_fixture(1e6, 2.2e6, 9e5, 8);
        std::fs::write(&path, serde_json::to_string(&prev).expect("serialises"))
            .expect("writes");
        let loaded = load_previous_fleet(path.to_str().expect("utf8 path")).expect("loads");
        assert_eq!(loaded, prev);
        assert!(fleet_regression_warnings(&loaded, &prev).is_empty());
    }

    #[test]
    fn previous_ingest_loads_reports_predating_the_integrity_fields() {
        // A BENCH_ingest.json written before the integrity metrics
        // existed: serialise a current fixture, strip the new keys, and
        // the loader must still parse it with zeroed (non-gating)
        // defaults.
        let fixture = ingest_fixture(9e6, 8e6, 6.0, 2e6, 4);
        let mut value = serde_json::to_value(&fixture).expect("serialises");
        if let serde_json::Value::Object(map) = &mut value {
            for key in [
                "ingest_v1_fragments_per_sec",
                "integrity_overhead_frac",
                "long_stream_periods",
                "long_stream_windows",
                "steady_state_flatness",
                "long_stream_noise_frac",
                "arena_high_water_bytes",
                "arena_plateau_ratio",
            ] {
                map.remove(key);
            }
        }
        let dir = std::env::temp_dir().join("vapro_ingest_gate_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("BENCH_ingest.json");
        std::fs::write(&path, serde_json::to_string(&value).expect("serialises"))
            .expect("writes");
        let loaded = load_previous_ingest(path.to_str().expect("utf8 path")).expect("loads");
        assert_eq!(loaded.ingest_fragments_per_sec, fixture.ingest_fragments_per_sec);
        assert_eq!(loaded.ingest_v1_fragments_per_sec, 0.0);
        assert_eq!(loaded.integrity_overhead_frac, 0.0);
        // The steady-state fields added with bounded-memory streaming
        // default to their neutral values.
        assert_eq!(loaded.long_stream_windows, 0);
        assert_eq!(loaded.steady_state_flatness, 0.0);
        assert_eq!(loaded.arena_high_water_bytes, 0);
        // Zero baselines gate nothing.
        assert!(ingest_regression_warnings(&loaded, &fixture).is_empty());
    }

    #[test]
    fn previous_fleet_loads_reports_predating_the_steady_state_fields() {
        let fixture = fleet_fixture(1e6, 2.2e6, 9e5, 8);
        let mut value = serde_json::to_value(&fixture).expect("serialises");
        if let serde_json::Value::Object(map) = &mut value {
            map.remove("arena_high_water_bytes");
            map.remove("steady_state_flatness");
        }
        let dir = std::env::temp_dir().join("vapro_fleet_gate_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("BENCH_fleet_presteady.json");
        std::fs::write(&path, serde_json::to_string(&value).expect("serialises"))
            .expect("writes");
        let loaded = load_previous_fleet(path.to_str().expect("utf8 path")).expect("loads");
        assert_eq!(loaded.arena_high_water_bytes, 0);
        assert_eq!(loaded.steady_state_flatness, 0.0);
        assert!(fleet_regression_warnings(&loaded, &fixture).is_empty());
    }

    #[test]
    fn previous_diagnose_loads_from_json_and_tolerates_absence() {
        assert!(load_previous_diagnose("/nonexistent/BENCH_diagnose.json").is_none());
        let dir = std::env::temp_dir().join("vapro_diagnose_gate_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("BENCH_diagnose.json");
        let prev = diagnose_fixture(1.0, 2.0, 3.0, 4);
        std::fs::write(&path, serde_json::to_string(&prev).expect("serialises"))
            .expect("writes");
        let loaded = load_previous_diagnose(path.to_str().expect("utf8 path")).expect("loads");
        assert_eq!(loaded, prev);
    }

    #[test]
    fn previous_perf_loads_from_json_and_tolerates_absence() {
        assert!(load_previous_perf("/nonexistent/BENCH_detect.json").is_none());
        let dir = std::env::temp_dir().join("vapro_perf_gate_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("BENCH_detect.json");
        let prev = perf_fixture(1.0, 2.0, 3.0, 4);
        std::fs::write(&path, serde_json::to_string(&prev).expect("serialises"))
            .expect("writes");
        let loaded = load_previous_perf(path.to_str().expect("utf8 path")).expect("loads");
        assert_eq!(loaded, prev);
    }
}
