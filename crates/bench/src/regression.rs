//! Between-executions regression detection: the Fig. 1 scenario seen
//! through the baseline-profile comparison. A clean submission's profile
//! is saved; later submissions on the same nodes — some clean, some on a
//! degraded neighbourhood — are compared against it. In-run detection is
//! blind to a *uniform* slowdown (every fragment slows equally, so
//! normalised performance stays 1.0); the cross-run comparison catches
//! exactly that case.

use crate::common::{header, vapro_cf, ExpOpts};
use vapro::harness::run_under_vapro;
use vapro_apps::AppParams;
use vapro_core::BaselineProfile;
use vapro_sim::{NoiseEvent, NoiseKind, NoiseSchedule, SimConfig, TargetSet};

/// Per-submission outcome.
#[derive(Debug, Clone)]
pub struct SubmissionRow {
    /// Submission index.
    pub run: usize,
    /// Was the machine degraded for this submission?
    pub degraded: bool,
    /// In-run detection: computation regions found.
    pub in_run_regions: usize,
    /// Cross-run comparison: overall slowdown vs the baseline.
    pub slowdown: f64,
    /// Regressed states beyond 1.2×.
    pub regressions: usize,
}

/// Run the experiment: one clean baseline, then alternating clean /
/// degraded submissions.
pub fn submissions(opts: &ExpOpts) -> Vec<SubmissionRow> {
    let ranks = opts.resolve_ranks(8, 64);
    let iters = opts.resolve_iters(10);
    let runs = opts.resolve_runs(6);
    let params = AppParams::default().with_iterations(iters);
    let cfg = vapro_cf();

    let run_once = |seed: u64, degraded: bool| {
        let noise = if degraded {
            NoiseSchedule::quiet().with(NoiseEvent::always(
                NoiseKind::MemContention { intensity: 1.5 },
                TargetSet::All,
            ))
        } else {
            NoiseSchedule::quiet()
        };
        run_under_vapro(
            &SimConfig::new(ranks).with_seed(seed).with_noise(noise),
            &cfg,
            |ctx| vapro_apps::npb::cg::run(ctx, &params),
        )
    };

    let baseline_run = run_once(opts.seed, false);
    let baseline = BaselineProfile::build(&baseline_run.stgs, &cfg);

    (0..runs)
        .map(|run| {
            let degraded = run % 2 == 1;
            let r = run_once(opts.seed + 100 + run as u64, degraded);
            let cmp = baseline.compare(&r.stgs, &cfg);
            SubmissionRow {
                run,
                degraded,
                in_run_regions: r.detection.comp_regions.len(),
                slowdown: cmp.overall_slowdown(),
                regressions: cmp.regressions(1.2).len(),
            }
        })
        .collect()
}

/// Run the experiment and format the report.
pub fn run(opts: &ExpOpts) -> String {
    let rows = submissions(opts);
    let mut out = header(
        "Between-executions regression detection",
        "Baseline-profile comparison over repeated CG submissions (the Fig. 1 scenario)",
    );
    out.push_str("run,degraded,in_run_regions,cross_run_slowdown,regressed_states\n");
    for r in &rows {
        out.push_str(&format!(
            "{},{},{},{:.3},{}\n",
            r.run, r.degraded, r.in_run_regions, r.slowdown, r.regressions
        ));
    }
    out.push_str(
        "\n(uniform machine-wide slowdowns are invisible to in-run detection — every\n\
         fragment slows equally — but the cross-run comparison flags them)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_degradation_is_caught_cross_run_only() {
        let opts = ExpOpts {
            ranks: Some(4),
            iterations: Some(8),
            runs: Some(4),
            ..ExpOpts::default()
        };
        let rows = submissions(&opts);
        for r in &rows {
            if r.degraded {
                // In-run detection is blind (uniform slowdown)…
                assert_eq!(r.in_run_regions, 0, "{r:?}");
                // …the baseline comparison is not.
                assert!(r.slowdown > 1.1, "{r:?}");
                assert!(r.regressions > 0, "{r:?}");
            } else {
                assert!((r.slowdown - 1.0).abs() < 0.05, "{r:?}");
                assert_eq!(r.regressions, 0, "{r:?}");
            }
        }
    }
}
