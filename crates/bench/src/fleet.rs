//! Fleet ingest-plane throughput harness: the numbers behind
//! `BENCH_fleet.json`.
//!
//! Measures the sharded multi-tenant plane ([`FleetIngestor`]) over a
//! synthetic fleet of jobs, each a multi-rank run shipped as periodic v3
//! frames:
//!
//! * aggregate ingest throughput at 1 shard vs N shards, in
//!   fragments/second — the CI gate requires ≥1.5× at 4 shards on a
//!   multi-core runner;
//! * the fleet plane's single-job overhead against a bare
//!   [`WindowedIngestor`] fed the same frames, as a fraction (target
//!   ≤ 10 % on release builds);
//! * a bit-identity check before any timing: the single-job fleet output
//!   must match the bare ingestor window for window.
//!
//! Every timed metric follows the [`crate::stats`] methodology: warmup,
//! ≥30 samples, median + MAD. The shard comparison and the overhead
//! comparison both run as interleaved back-to-back pairs so machine
//! noise cannot masquerade as a (or hide a real) difference — the same
//! discipline as the integrity-overhead measurement in
//! [`crate::ingest`].

use crate::perf::{detected_threads, synthetic_stgs};
use crate::stats::{self, TrendPoint};
use serde::{Deserialize, Serialize};
use vapro_core::detect::window::Window;
use vapro_core::wire::FragmentBatch;
use vapro_core::{FleetConfig, FleetIngestor, Stg, VaproConfig, WindowedIngestor};
use vapro_sim::VirtualTime;

/// One harness run, serialised to `BENCH_fleet.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetPerf {
    /// Harness identifier (always `"fleet"`).
    pub bench: String,
    /// Detected hardware threads on the runner.
    pub threads: usize,
    /// Shards in the N-shard measurement (the 1-shard side is fixed).
    pub shards: usize,
    /// Concurrent jobs in the synthetic fleet.
    pub jobs: usize,
    /// Ranks per job.
    pub ranks_per_job: usize,
    /// Total fragments across all jobs.
    pub fragments: usize,
    /// v3 frames shipped per fleet run.
    pub frames: usize,
    /// Windows the N-shard fleet run closed (all jobs).
    pub windows: usize,
    /// Timed samples per metric (after warmup); at least
    /// [`stats::MIN_SAMPLES`].
    pub samples: usize,
    /// Aggregate fleet ingest throughput at 1 shard, fragments/second.
    pub fleet_1shard_fragments_per_sec: f64,
    /// Relative noise of the 1-shard timing (MAD/median).
    pub fleet_1shard_noise_frac: f64,
    /// Aggregate fleet ingest throughput at `shards` shards.
    pub fleet_nshard_fragments_per_sec: f64,
    /// Relative noise of the N-shard timing (MAD/median).
    pub fleet_nshard_noise_frac: f64,
    /// Best pairwise N-shard over 1-shard speedup, from interleaved
    /// back-to-back pairs. `None` when the runner has fewer hardware
    /// threads than shards — shard scaling is not demonstrable there and
    /// recording a meaningless ratio would poison the regression
    /// baseline (same convention as `DetectPerf::speedup`).
    pub shard_speedup: Option<f64>,
    /// Bare [`WindowedIngestor`] throughput over one job's frames.
    pub bare_fragments_per_sec: f64,
    /// Relative noise of the bare timing (MAD/median).
    pub bare_noise_frac: f64,
    /// Single-job fleet throughput over the same frames (1 shard).
    pub single_job_fragments_per_sec: f64,
    /// Relative noise of the single-job fleet timing (MAD/median).
    pub single_job_noise_frac: f64,
    /// Fractional cost of routing one job through the fleet plane
    /// instead of a bare ingestor: the best (smallest) `1 − bare_ns /
    /// fleet_ns` over interleaved back-to-back pairs, **unclamped** — a
    /// negative value means even the friendliest pairing never saw the
    /// bare path win, i.e. the overhead is below the noise floor. The
    /// release-mode acceptance gate requires `< 0.10`.
    pub fleet_overhead_frac: f64,
    /// Peak per-job arena resident bytes across one instrumented
    /// N-shard fleet run (the worst job): with watermark eviction this
    /// stays O(watermark lag + open windows) per job, not O(stream).
    pub arena_high_water_bytes: u64,
    /// Steady-state flatness of the fleet admission path: the median
    /// per-chunk push cost over the last quarter of the instrumented run
    /// divided by the median over the second quarter (the first quarter
    /// is warmup). ≈1.0 when per-frame cost is independent of how much
    /// history the plane has absorbed.
    pub steady_state_flatness: f64,
    /// One headline point per harness run, carried forward from the
    /// previous BENCH file (bounded; see [`stats::MAX_TREND_POINTS`]).
    pub history: Vec<TrendPoint>,
}

/// Latest fragment end across one job's run, ns.
fn t_end_ns(stgs: &[Stg]) -> u64 {
    stgs.iter()
        .flat_map(|s| {
            s.vertices()
                .iter()
                .flat_map(|v| v.fragments.iter())
                .chain(s.edges().iter().flat_map(|e| e.fragments.iter()))
        })
        .map(|f| f.end.ns())
        .max()
        .unwrap_or(0)
}

/// Slice one job's run into per-rank, per-period v3 frames stamped with
/// the job's routing identity, in period-major order (each rank's
/// sequence numbers stay monotonic — the fleet plane preserves
/// per-job arrival order, so this is the order a live client would
/// ship).
fn job_frames(stgs: &[Stg], periods: usize, tenant: u32, job: u32) -> Vec<Vec<u8>> {
    let t_end = t_end_ns(stgs);
    let period_ns = (t_end / periods.max(1) as u64).max(1);
    let mut out = Vec::new();
    let mut start = 0u64;
    let mut period_index = 0u64;
    while start < t_end {
        let period = Window {
            start: VirtualTime::from_ns(start),
            end: VirtualTime::from_ns(start + period_ns),
        };
        for (rank, stg) in stgs.iter().enumerate() {
            out.push(
                FragmentBatch::from_stg_starting_in(stg, rank, period)
                    .with_seq(period_index + 1)
                    .with_job(tenant, job)
                    .encode_v3(),
            );
        }
        start += period_ns;
        period_index += 1;
    }
    out
}

/// Round-robin merge of the per-job frame streams — the arrival order a
/// shared collector port would see with every job reporting on the same
/// cadence. Within each job the per-rank order (and so each rank's
/// sequence numbering) is preserved.
fn interleave(per_job: &[Vec<Vec<u8>>]) -> Vec<&[u8]> {
    let mut out = Vec::with_capacity(per_job.iter().map(Vec::len).sum());
    let longest = per_job.iter().map(Vec::len).max().unwrap_or(0);
    for i in 0..longest {
        for frames in per_job {
            if let Some(f) = frames.get(i) {
                out.push(f.as_slice());
            }
        }
    }
    out
}

/// Tenant id a job index reports under (a few tenants sharing the
/// fleet, none of them the pre-v3 default).
fn tenant_of(job: usize) -> u32 {
    1 + (job as u32 % 3)
}

/// Run the full measurement: `jobs` concurrent jobs of `nranks ×
/// frags_per_rank` fragments over `sites` call sites, each shipped in
/// `periods` reporting periods; the shard comparison is 1 vs `shards`.
/// `reps` requests the timed samples per metric (floored at
/// [`stats::MIN_SAMPLES`], preceded by a warmup phase).
pub fn measure(
    jobs: usize,
    nranks: usize,
    frags_per_rank: usize,
    sites: usize,
    periods: usize,
    shards: usize,
    reps: usize,
) -> FleetPerf {
    let job_stgs: Vec<Vec<Stg>> = (0..jobs)
        .map(|j| synthetic_stgs(nranks, frags_per_rank, sites, 0xF1EE7 + j as u64))
        .collect();
    let fragments: usize =
        job_stgs.iter().flat_map(|stgs| stgs.iter().map(Stg::total_fragments)).sum();
    let per_job: Vec<Vec<Vec<u8>>> = job_stgs
        .iter()
        .enumerate()
        .map(|(j, stgs)| job_frames(stgs, periods, tenant_of(j), j as u32))
        .collect();
    let frames = interleave(&per_job);
    let cfg = VaproConfig {
        report_period: VirtualTime::from_ns((t_end_ns(&job_stgs[0]) / periods.max(1) as u64).max(1)),
        ..VaproConfig::default()
    };
    let fleet_cfg = |nshards: usize| FleetConfig {
        shards: nshards,
        default_nranks: nranks,
        bins_per_window: 16,
        vapro: cfg.clone(),
        queue_capacity_frames: 16,
        default_tenant_budget_bytes: u64::MAX,
    };
    let new_fleet = |nshards: usize| {
        let mut fleet = FleetIngestor::new(fleet_cfg(nshards));
        for j in 0..jobs {
            fleet.register_tenant(tenant_of(j), u64::MAX);
        }
        fleet
    };

    // The whole-fleet run: every frame admitted, all windows flushed.
    let mut windows = 0usize;
    let run_fleet = |nshards: usize, windows: &mut usize| {
        let mut fleet = new_fleet(nshards);
        let mut closed = 0usize;
        for frame in &frames {
            closed += fleet.push_encoded(frame).expect("own frame admitted").len();
        }
        closed += fleet.finish().len();
        *windows = closed;
        closed
    };

    // Shard scaling, as interleaved back-to-back pairs: each pair sees
    // the same machine state, so a noisy-neighbour burst during one
    // phase cannot masquerade as (or hide) shard-parallel speedup.
    let pairs = reps.max(stats::MIN_SAMPLES);
    for _ in 0..stats::WARMUP_SAMPLES {
        std::hint::black_box(run_fleet(1, &mut windows));
        std::hint::black_box(run_fleet(shards, &mut windows));
    }
    let mut one_times = Vec::with_capacity(pairs);
    let mut n_times = Vec::with_capacity(pairs);
    let mut best_speedup = 0.0f64;
    for _ in 0..pairs {
        let mut w1 = 0usize;
        let one_ns = stats::time_ns(|| run_fleet(1, &mut w1));
        let n_ns = stats::time_ns(|| run_fleet(shards, &mut windows));
        assert_eq!(w1, windows, "shard count changed the windows closed");
        one_times.push(one_ns);
        n_times.push(n_ns);
        best_speedup = best_speedup.max(one_ns / n_ns);
    }
    let one = stats::summarize(&mut one_times);
    let n = stats::summarize(&mut n_times);

    // Single-job overhead vs a bare ingestor, same pairing discipline.
    // Both sides consume job 0's v3 frames; the outputs must be
    // bit-identical before the timing means anything.
    let solo = &per_job[0];
    let bins = fleet_cfg(1).bins_per_window;
    let run_bare = || {
        let mut ingestor = WindowedIngestor::new(nranks, bins, cfg.clone());
        let mut reports = Vec::new();
        for frame in solo {
            reports.extend(ingestor.push_encoded(frame).expect("own frame"));
        }
        reports.extend(ingestor.finish());
        reports
    };
    let run_solo_fleet = || {
        let mut fleet = new_fleet(1);
        let mut reports = Vec::new();
        for frame in solo {
            reports.extend(fleet.push_encoded(frame).expect("own frame admitted"));
        }
        reports.extend(fleet.finish());
        reports.into_iter().map(|w| w.report).collect::<Vec<_>>()
    };
    crate::chaos::reports_identical(&run_solo_fleet(), &run_bare())
        .expect("single-job fleet output must be bit-identical to the bare ingestor");
    for _ in 0..stats::WARMUP_SAMPLES {
        std::hint::black_box(run_solo_fleet().len());
        std::hint::black_box(run_bare().len());
    }
    let mut fleet_times = Vec::with_capacity(pairs);
    let mut bare_times = Vec::with_capacity(pairs);
    let mut overhead_frac = f64::INFINITY;
    for _ in 0..pairs {
        let fleet_ns = stats::time_ns(|| run_solo_fleet().len());
        let bare_ns = stats::time_ns(|| run_bare().len());
        fleet_times.push(fleet_ns);
        bare_times.push(bare_ns);
        overhead_frac = overhead_frac.min(1.0 - bare_ns / fleet_ns);
    }
    let solo_fleet = stats::summarize(&mut fleet_times);
    let bare = stats::summarize(&mut bare_times);
    let solo_fragments: usize = job_stgs[0].iter().map(Stg::total_fragments).sum();

    // One instrumented N-shard run for the steady-state metrics: the
    // whole interleaved stream pushed in chronological chunks, each
    // chunk timed, the per-job arena peaks read off the final report.
    let chunk_len = frames.len().div_ceil(40).max(1);
    let mut instrumented = new_fleet(shards);
    let mut per_chunk = Vec::with_capacity(frames.len().div_ceil(chunk_len));
    for chunk in frames.chunks(chunk_len) {
        per_chunk.push(stats::time_ns(|| {
            for frame in chunk {
                std::hint::black_box(
                    instrumented.push_encoded(frame).expect("own frame admitted").len(),
                );
            }
        }));
    }
    let (instrumented_report, _flushed) = instrumented.into_report();
    let arena_high_water_bytes = instrumented_report.arena_high_water_bytes();
    let (steady_state_flatness, _) = stats::steady_state_flatness(&per_chunk);

    let threads = detected_threads();
    let per_sec = |count: usize, ns: f64| count as f64 / (ns / 1e9);
    FleetPerf {
        bench: "fleet".to_string(),
        threads,
        shards,
        jobs,
        ranks_per_job: nranks,
        fragments,
        frames: frames.len(),
        windows,
        samples: one.samples,
        fleet_1shard_fragments_per_sec: per_sec(fragments, one.median_ns),
        fleet_1shard_noise_frac: one.noise_frac(),
        fleet_nshard_fragments_per_sec: per_sec(fragments, n.median_ns),
        fleet_nshard_noise_frac: n.noise_frac(),
        shard_speedup: (threads >= shards).then_some(best_speedup),
        bare_fragments_per_sec: per_sec(solo_fragments, bare.median_ns),
        bare_noise_frac: bare.noise_frac(),
        single_job_fragments_per_sec: per_sec(solo_fragments, solo_fleet.median_ns),
        single_job_noise_frac: solo_fleet.noise_frac(),
        fleet_overhead_frac: overhead_frac,
        arena_high_water_bytes,
        steady_state_flatness,
        history: Vec::new(),
    }
}

/// The defaults the acceptance measurement uses: 8 jobs × 2 ranks ×
/// 1200 fragments/rank over 16 sites, 10 reporting periods each, 1 vs 4
/// shards, 30 samples per metric.
pub fn measure_default() -> FleetPerf {
    measure(8, 2, 1200, 16, 10, 4, stats::MIN_SAMPLES)
}

/// Human summary of one report.
pub fn summary(p: &FleetPerf) -> String {
    let speedup = match p.shard_speedup {
        Some(s) => format!("{s:.2}x (best pair)"),
        None => format!("n/a ({} threads < {} shards)", p.threads, p.shards),
    };
    format!(
        "fleet:  {} jobs x {} ranks / {} fragments / {} frames / {} windows / {} threads / median of {} samples\n\
         1 shard:  {:>10.0} fragments/s aggregate (±{:.1}% MAD)\n\
         {} shards: {:>10.0} fragments/s aggregate (±{:.1}% MAD), shard speedup {}\n\
         solo job: {:>10.0} fragments/s through the fleet vs {:>10.0} fragments/s bare,\n\
                   overhead {:.1}% (best pair, unclamped)\n\
         steady state: worst-job arena high water {} B, admission flatness {:.3}\n",
        p.jobs,
        p.ranks_per_job,
        p.fragments,
        p.frames,
        p.windows,
        p.threads,
        p.samples,
        p.fleet_1shard_fragments_per_sec,
        p.fleet_1shard_noise_frac * 100.0,
        p.shards,
        p.fleet_nshard_fragments_per_sec,
        p.fleet_nshard_noise_frac * 100.0,
        speedup,
        p.single_job_fragments_per_sec,
        p.bare_fragments_per_sec,
        p.fleet_overhead_frac * 100.0,
        p.arena_high_water_bytes,
        p.steady_state_flatness,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_frames_partition_each_job_once() {
        let stgs = synthetic_stgs(3, 200, 8, 7);
        let total: usize = stgs.iter().map(Stg::total_fragments).sum();
        let frames = job_frames(&stgs, 6, 2, 9);
        let shipped: usize = frames
            .iter()
            .map(|f| FragmentBatch::decode(f).expect("own frame").len())
            .sum();
        assert_eq!(shipped, total, "periodic v3 shipping must cover exactly once");
        for f in &frames {
            let b = FragmentBatch::decode(f).expect("own frame");
            assert_eq!((b.tenant_id, b.job_id), (2, 9));
        }
    }

    #[test]
    fn interleave_preserves_per_job_order() {
        let a: Vec<Vec<u8>> = vec![vec![1], vec![2], vec![3]];
        let b: Vec<Vec<u8>> = vec![vec![9]];
        let streams = [a, b];
        let merged = interleave(&streams);
        assert_eq!(merged, vec![&[1u8][..], &[9], &[2], &[3]]);
    }

    #[test]
    fn measure_produces_a_consistent_report() {
        let p = measure(3, 2, 150, 8, 4, 2, 1);
        assert_eq!(p.bench, "fleet");
        assert_eq!(p.jobs, 3);
        assert!(p.fragments >= 3 * 2 * 150);
        assert!(p.windows > 0, "windows: {}", p.windows);
        assert!(p.fleet_1shard_fragments_per_sec > 0.0);
        assert!(p.fleet_nshard_fragments_per_sec > 0.0);
        assert!(p.bare_fragments_per_sec > 0.0);
        assert!(p.single_job_fragments_per_sec > 0.0);
        // The overhead fraction is a ratio of two measured rates; debug
        // builds can't gate the 10 % target but the value must be sane
        // and deliberately NOT clamped at zero.
        assert!(p.fleet_overhead_frac < 1.0, "{}", p.fleet_overhead_frac);
        assert!(p.fleet_overhead_frac.is_finite());
        if let Some(s) = p.shard_speedup {
            assert!(s > 0.0 && s.is_finite(), "speedup {s}");
        }
        assert!(p.samples >= crate::stats::MIN_SAMPLES);
        assert!(p.fleet_nshard_noise_frac.is_finite() && p.fleet_nshard_noise_frac >= 0.0);
        assert!(p.arena_high_water_bytes > 0, "no job registered an arena peak");
        assert!(p.steady_state_flatness.is_finite() && p.steady_state_flatness > 0.0);
    }

    #[test]
    fn report_roundtrips_through_json() {
        let p = measure(2, 2, 80, 4, 3, 2, 1);
        let json = serde_json::to_string(&p).expect("serialisable");
        let back: FleetPerf = serde_json::from_str(&json).expect("parses");
        assert_eq!(p, back);
    }
}
