//! Fig. 19: the per-operation view behind Fig. 18 — execution times of
//! the consecutive fixed-workload read and write operations of the most
//! varied IO cluster in RAxML. Reads off the shared FS scatter wildly;
//! the rare checkpoint writes sit on their own level.

use crate::common::{header, vapro_cf, ExpOpts};
use vapro::harness::run_under_vapro;
use vapro_apps::AppParams;
use vapro_core::fragment::FragmentKind;
use vapro_core::stg::StateKey;
use vapro_sim::{NoiseKind, SimConfig, TargetSet};

/// Per-operation series: (op index, seconds, is_write).
pub fn io_series(opts: &ExpOpts) -> Vec<(usize, f64, bool)> {
    let ranks = opts.resolve_ranks(8, 512);
    let iters = opts.resolve_iters(40);
    let params = AppParams::default().with_iterations(iters);
    let cfg = SimConfig::new(ranks)
        .with_noise(crate::common::always(
            NoiseKind::FsInterference { max_slowdown: 12.0 },
            TargetSet::All,
        ))
        .with_seed(opts.seed);
    let run = run_under_vapro(&cfg, &vapro_cf(), |ctx| {
        vapro_apps::raxml::run(ctx, &params)
    });
    // Rank 0's IO vertices, ordered by time.
    let stg = &run.stgs[0];
    let mut ops: Vec<(u64, f64, bool)> = Vec::new();
    for v in stg.vertices() {
        let is_write = match &v.key {
            StateKey::Site(site) => site.label().contains("write"),
            _ => false,
        };
        for f in &v.fragments {
            if f.kind == FragmentKind::Io {
                ops.push((f.start.ns(), f.duration().ns() as f64 * 1e-9, is_write));
            }
        }
    }
    ops.sort_by_key(|o| o.0);
    ops.into_iter()
        .enumerate()
        .map(|(i, (_, dur, w))| (i, dur, w))
        .collect()
}

/// Run the experiment and format the report.
pub fn run(opts: &ExpOpts) -> String {
    let series = io_series(opts);
    let mut out = header(
        "Figure 19",
        "Per-operation times of rank 0's fixed-workload IO in RAxML",
    );
    out.push_str("n,time_s,kind\n");
    for (i, t, w) in &series {
        out.push_str(&format!("{i},{t:.6},{}\n", if *w { "write" } else { "read" }));
    }
    let reads: Vec<f64> = series.iter().filter(|s| !s.2).map(|s| s.1).collect();
    let min = reads.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = reads.iter().cloned().fold(0.0f64, f64::max);
    out.push_str(&format!(
        "\n{} reads: min {:.2}ms max {:.2}ms spread {:.1}x (heavy-tailed shared-FS latency)\n",
        reads.len(),
        min * 1e3,
        max * 1e3,
        max / min
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_times_are_heavy_tailed() {
        let opts = ExpOpts { ranks: Some(4), iterations: Some(30), ..ExpOpts::default() };
        let series = io_series(&opts);
        let reads: Vec<f64> = series.iter().filter(|s| !s.2).map(|s| s.1).collect();
        assert!(reads.len() > 100, "too few reads: {}", reads.len());
        let min = reads.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = reads.iter().cloned().fold(0.0f64, f64::max);
        assert!(max / min > 2.0, "spread {:.2}", max / min);
        // Writes exist too (the checkpoint ops of Fig. 19).
        assert!(series.iter().any(|s| s.2));
    }
}
