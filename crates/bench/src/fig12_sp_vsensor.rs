//! Fig. 12: 1024-process SP under a 1-second computing noise — the
//! coverage comparison. Vapro's high coverage lets it report the true
//! ~50 % performance loss for the noise's whole duration; vSensor's low
//! coverage yields a sparse, mistimed and mis-sized report.

use crate::common::{computing_noise, header, vapro_cf, ExpOpts};
use vapro::harness::{run_under_vapro_binned, run_bare};
use vapro_apps::AppParams;
use vapro_baselines::vsensor::{vsensor_detect, VSensor};
use vapro_sim::{run_simulation, Interceptor, NoiseSchedule, SimConfig, TargetSet, VirtualTime};

/// Both tools' views of the same noisy SP run.
pub struct Fig12Run {
    /// Vapro's computation heat map.
    pub vapro_map: vapro_core::HeatMap,
    /// Vapro's top-region mean performance (≈ 0.5 expected).
    pub vapro_region_perf: Option<f64>,
    /// Vapro's detection coverage.
    pub vapro_coverage: f64,
    /// vSensor's heat map.
    pub vsensor_map: vapro_core::HeatMap,
    /// vSensor's top-region mean performance (mistimed/sparse).
    pub vsensor_region_perf: Option<f64>,
    /// vSensor's coverage.
    pub vsensor_coverage: f64,
}

/// Run the comparison.
pub fn compare(opts: &ExpOpts) -> Fig12Run {
    let ranks = opts.resolve_ranks(64, 1024);
    let iters = opts.resolve_iters(25);
    let params = AppParams::default().with_iterations(iters);
    let base = SimConfig::new(ranks).with_seed(opts.seed);

    // Place a noise window of ~1/5 of the run on a handful of ranks.
    let quiet_span = run_bare(&base, |ctx| vapro_apps::npb::sp::run(ctx, &params));
    let start = VirtualTime::from_ns(2 * quiet_span.ns() / 5);
    let end = VirtualTime::from_ns(3 * quiet_span.ns() / 5);
    let victims: Vec<usize> = (ranks / 2..ranks / 2 + (ranks / 64).max(1)).collect();
    let noise = NoiseSchedule::quiet().with(computing_noise(
        TargetSet::Ranks(victims.clone()),
        start,
        end,
    ));
    let cfg = base.with_noise(noise);

    // Vapro view.
    let vapro_run = run_under_vapro_binned(&cfg, &vapro_cf(), 48, |ctx| {
        vapro_apps::npb::sp::run(ctx, &params)
    });
    let vapro_region_perf = vapro_run
        .detection
        .comp_regions
        .iter()
        .find(|r| victims.iter().any(|&v| r.covers_rank(v)))
        .map(|r| r.mean_perf);

    // vSensor view (same run, same seed).
    let sensors: Vec<VSensor> = run_simulation(
        &cfg,
        |rank| {
            Box::new(VSensor::new(rank, vapro_apps::npb::sp::STATIC_FIXED_SITES))
                as Box<dyn Interceptor>
        },
        |ctx| vapro_apps::npb::sp::run(ctx, &params),
    )
    .into_tools();
    let vsensor_coverage =
        sensors.iter().map(VSensor::coverage).sum::<f64>() / sensors.len() as f64;
    let (vsensor_map, vsensor_regions) = vsensor_detect(&sensors, ranks, 48, 0.85);
    let vsensor_region_perf = vsensor_regions.first().map(|r| r.mean_perf);

    Fig12Run {
        vapro_map: vapro_run.detection.comp_map,
        vapro_region_perf,
        vapro_coverage: vapro_run.detection.coverage,
        vsensor_map,
        vsensor_region_perf,
        vsensor_coverage,
    }
}

/// Run the experiment and format the report.
pub fn run(opts: &ExpOpts) -> String {
    let r = compare(opts);
    let mut out = header(
        "Figure 12",
        "SP under a computing-noise window: Vapro vs vSensor",
    );
    out.push_str("-- Vapro --\n");
    out.push_str(&vapro_core::viz::render_heatmap(&r.vapro_map, 16));
    out.push_str(&format!(
        "coverage {:.1}%  detected region perf {:?}\n\n",
        r.vapro_coverage * 100.0,
        r.vapro_region_perf
    ));
    out.push_str("-- vSensor --\n");
    out.push_str(&vapro_core::viz::render_heatmap(&r.vsensor_map, 16));
    out.push_str(&format!(
        "coverage {:.1}%  detected region perf {:?}\n",
        r.vsensor_coverage * 100.0,
        r.vsensor_region_perf
    ));
    out.push_str(
        "\n(paper: Vapro 36.4% coverage sees the true ~50% loss; vSensor 8.7% coverage \
         misreports a 90% loss lasting 1/10 the true duration)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vapro_sees_the_true_loss_and_vsensor_has_less_coverage() {
        let opts = ExpOpts { ranks: Some(16), iterations: Some(20), ..ExpOpts::default() };
        let r = compare(&opts);
        // Vapro detects ≈50% performance in the noise window.
        let perf = r.vapro_region_perf.expect("Vapro detected the noise");
        assert!((perf - 0.5).abs() < 0.2, "Vapro region perf {perf}");
        // Coverage gap: Vapro far above vSensor (paper: 36.4% vs 8.7%).
        assert!(
            r.vapro_coverage > 2.0 * r.vsensor_coverage,
            "vapro {} vs vsensor {}",
            r.vapro_coverage,
            r.vsensor_coverage
        );
    }
}
