//! Fig. 14: the same noisy CG run as Fig. 13, seen through an mpiP-style
//! profiler. The profile is *misleading*: the victim's slowdown
//! propagates through message dependencies, so every other rank shows
//! increased *communication* (waiting) time while computation stays flat
//! — pointing users at the network instead of the noisy CPU.

use crate::common::{computing_noise, header, ExpOpts};
use vapro_apps::AppParams;
use vapro_baselines::mpip::{MpipProfiler, MpipSummary};
use vapro_sim::{
    run_simulation, Interceptor, NoiseSchedule, SimConfig, TargetSet, VirtualTime,
};

/// Profiles of the quiet and noisy runs.
pub struct Fig14Run {
    /// Per-rank summaries without noise.
    pub quiet: Vec<MpipSummary>,
    /// Per-rank summaries with the noise active.
    pub noisy: Vec<MpipSummary>,
    /// Victim ranks.
    pub victims: Vec<usize>,
}

fn profile(cfg: &SimConfig, params: &AppParams) -> Vec<MpipSummary> {
    run_simulation(
        cfg,
        |rank| Box::new(MpipProfiler::new(rank)) as Box<dyn Interceptor>,
        |ctx| vapro_apps::npb::cg::run(ctx, params),
    )
    .into_tools::<MpipProfiler>()
    .iter()
    .map(MpipProfiler::summary)
    .collect()
}

/// Run both profiles.
pub fn compare(opts: &ExpOpts) -> Fig14Run {
    let ranks = opts.resolve_ranks(64, 2048);
    let iters = opts.resolve_iters(15);
    let params = AppParams::default().with_iterations(iters);
    let base = SimConfig::new(ranks).with_seed(opts.seed);
    let quiet = profile(&base, &params);

    let nodes = base.topology.nodes;
    let victim_nodes = vec![nodes / 2];
    let victims = base.topology.ranks_on_node(nodes / 2, ranks);
    let noisy_cfg = base.with_noise(NoiseSchedule::quiet().with(computing_noise(
        TargetSet::Nodes(victim_nodes),
        VirtualTime::ZERO,
        VirtualTime::from_secs(1_000_000),
    )));
    let noisy = profile(&noisy_cfg, &params);
    Fig14Run { quiet, noisy, victims }
}

/// Run the experiment and format the report.
pub fn run(opts: &ExpOpts) -> String {
    let r = compare(opts);
    let mut out = header(
        "Figure 14",
        "mpiP view of the noisy CG run: per-rank computation vs communication time",
    );
    out.push_str("rank,quiet_comp_s,quiet_comm_s,noisy_comp_s,noisy_comm_s\n");
    for (q, n) in r.quiet.iter().zip(&r.noisy) {
        out.push_str(&format!(
            "{},{:.4},{:.4},{:.4},{:.4}\n",
            q.rank,
            q.comp_ns * 1e-9,
            q.comm_ns * 1e-9,
            n.comp_ns * 1e-9,
            n.comm_ns * 1e-9
        ));
    }
    let bystander = (0..r.quiet.len()).find(|i| !r.victims.contains(i)).unwrap_or(0);
    out.push_str(&format!(
        "\nbystander rank {}: computation {:.2}x, communication {:.2}x of quiet\n",
        bystander,
        r.noisy[bystander].comp_ns / r.quiet[bystander].comp_ns,
        r.noisy[bystander].comm_ns / r.quiet[bystander].comm_ns
    ));
    out.push_str(
        "(the profile suggests a network problem; the real cause is CPU noise on the \
         victim node — the paper's point about misleading time breakdowns)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bystanders_show_comm_growth_not_comp_growth() {
        // 48 ranks = 2 nodes: node 1 is the victim, node 0 bystanders.
        let opts = ExpOpts { ranks: Some(48), iterations: Some(10), ..ExpOpts::default() };
        let r = compare(&opts);
        let bystander = (0..r.quiet.len())
            .find(|i| !r.victims.contains(i))
            .expect("some rank is not a victim");
        let comp_ratio = r.noisy[bystander].comp_ns / r.quiet[bystander].comp_ns;
        let comm_ratio = r.noisy[bystander].comm_ns / r.quiet[bystander].comm_ns;
        assert!((comp_ratio - 1.0).abs() < 0.05, "comp ratio {comp_ratio}");
        assert!(comm_ratio > 1.3, "comm ratio {comm_ratio}");
        // The victim itself computes slower.
        let v = r.victims[0];
        assert!(r.noisy[v].comp_ns / r.quiet[v].comp_ns > 1.5);
    }
}
