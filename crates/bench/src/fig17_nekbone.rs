//! Fig. 17 (case study §6.5.2): 128-process Nekbone with one node whose
//! memory bandwidth is 15.5 % below spec. Vapro locates the slow node's
//! ranks; the breakdown attributes the slowdown to backend bound
//! (paper: 97.2 %), nearly all of it memory bound. Replacing the node
//! gave the paper a 1.24× speedup.

use crate::common::{header, vapro_cf, ExpOpts};
use vapro::harness::{run_bare, run_under_vapro_binned};
use vapro_apps::AppParams;
use vapro_core::diagnose::{diagnose_progressively, DiagnosisReport, Factor};
use vapro_core::fragment::Fragment;
use vapro_sim::{NoiseKind, SimConfig, TargetSet};

/// The Fig. 17 analysis output.
pub struct Fig17Run {
    /// Computation heat map.
    pub map: vapro_core::HeatMap,
    /// Ranks on the degraded node.
    pub slow_ranks: Vec<usize>,
    /// Whether the top detected region covers the slow node.
    pub located: bool,
    /// The diagnosis.
    pub diagnosis: Option<DiagnosisReport>,
    /// Makespan with the bad node present.
    pub slow_makespan_s: f64,
    /// Makespan with the node replaced (healthy machine).
    pub fixed_makespan_s: f64,
}

/// Run the scenario.
pub fn analyze(opts: &ExpOpts) -> Fig17Run {
    let ranks = opts.resolve_ranks(48, 128);
    let iters = opts.resolve_iters(25);
    let params = AppParams::default().with_iterations(iters);
    let base = SimConfig::new(ranks).with_seed(opts.seed);
    let slow_node = base.topology.nodes / 2;
    let slow_ranks = base.topology.ranks_on_node(slow_node, ranks);
    let cfg = base.clone().with_noise(crate::common::always(
        NoiseKind::SlowMemoryNode { bw_factor: 0.845 },
        TargetSet::Nodes(vec![slow_node]),
    ));

    let vcfg = vapro_cf().with_counters(vapro_pmu::events::s3_memory_set());
    let run = run_under_vapro_binned(&cfg, &vcfg, 40, |ctx| {
        vapro_apps::nekbone::run(ctx, &params)
    });
    let located = run
        .detection
        .comp_regions
        .first()
        .is_some_and(|r| slow_ranks.iter().any(|&v| r.covers_rank(v)));

    // Diagnose the pooled hottest edge (inter-process comparison).
    let merged = vapro_core::detect::pipeline::merge_stgs(&run.stgs);
    let pool: Option<Vec<Fragment>> = merged
        .edges
        .iter()
        .map(|(_, v)| v)
        .max_by_key(|v| v.iter().map(|f| f.duration().ns()).sum::<u64>())
        .map(|v| v.iter().map(|f| (*f).clone()).collect());
    let diagnosis = pool.and_then(|pool| {
        let mut provider = move |set: vapro_pmu::CounterSet| -> Vec<Fragment> {
            pool.iter()
                .map(|f| Fragment { counters: f.counters.project(set), ..f.clone() })
                .collect()
        };
        diagnose_progressively(&mut provider, 1.2, 0.25, 0.05)
    });

    // The fix: replace the node (run on a healthy machine).
    let fixed = run_bare(&base, |ctx| vapro_apps::nekbone::run(ctx, &params));

    Fig17Run {
        map: run.detection.comp_map,
        slow_ranks,
        located,
        diagnosis,
        slow_makespan_s: run.makespan.as_secs_f64(),
        fixed_makespan_s: fixed.as_secs_f64(),
    }
}

/// Run the experiment and format the report.
pub fn run(opts: &ExpOpts) -> String {
    let r = analyze(opts);
    let mut out = header(
        "Figure 17 (§6.5.2 memory-problem case study)",
        "Nekbone with one degraded-bandwidth node",
    );
    out.push_str(&vapro_core::viz::render_heatmap(&r.map, 24));
    out.push_str(&format!(
        "\nslow-node ranks {:?}… located by Vapro: {}\n",
        &r.slow_ranks[..r.slow_ranks.len().min(4)],
        r.located
    ));
    if let Some(d) = &r.diagnosis {
        if let Some(be) = d.impact_share(Factor::BackendBound) {
            out.push_str(&format!(
                "backend-bound share: {:.1}% (paper: 97.2%)\n",
                be * 100.0
            ));
        }
        if let Some(mem) = d.impact_share(Factor::MemoryBound) {
            out.push_str(&format!(
                "memory-bound share: {:.1}% (paper: nearly all of backend)\n",
                mem * 100.0
            ));
        }
        out.push_str(&format!("culprits: {:?}\n", d.culprits));
    }
    out.push_str(&format!(
        "replacing the node: {:.3}s → {:.3}s = {:.2}x speedup (paper: 1.24x)\n",
        r.slow_makespan_s,
        r.fixed_makespan_s,
        r.slow_makespan_s / r.fixed_makespan_s
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slow_node_is_located_and_memory_bound() {
        // 48 ranks = 2 Tianhe-like nodes; node 1 is degraded.
        let opts = ExpOpts { ranks: Some(48), iterations: Some(20), ..ExpOpts::default() };
        let r = analyze(&opts);
        assert!(r.located, "slow node not located");
        let d = r.diagnosis.expect("diagnosis ran");
        let be = d.impact_share(Factor::BackendBound).expect("backend analysed");
        assert!(be > 0.6, "backend share {be}");
        let mem = d.impact_share(Factor::MemoryBound).expect("memory analysed");
        assert!(mem > 0.5, "memory share {mem}");
        // Replacing the node speeds the job up.
        assert!(r.slow_makespan_s / r.fixed_makespan_s > 1.03);
    }
}
