//! Fig. 1: 100 repeated executions of 256-process NPB-CG on the same
//! group of nodes — execution time varies greatly between submissions.
//!
//! Each submission draws a random ambient-noise configuration (which
//! nodes have a co-tenant, how much memory pressure the neighbourhood
//! produces), modelling the shared-machine conditions of Tianhe-2A.

use crate::common::{header, ExpOpts};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use vapro_apps::AppParams;
use vapro_sim::{
    run_simulation, Interceptor, NoiseEvent, NoiseKind, NoiseSchedule, NullInterceptor,
    SimConfig, TargetSet,
};
use vapro_stats::Summary;

/// One submission's ambient noise: every node independently has a small
/// chance of hosting a CPU hog or suffering bandwidth contention.
fn ambient_noise(rng: &mut ChaCha8Rng, nodes: usize) -> NoiseSchedule {
    let mut schedule = NoiseSchedule::quiet();
    for node in 0..nodes {
        if rng.gen::<f64>() < 0.25 {
            schedule = schedule.with(NoiseEvent::always(
                NoiseKind::CpuContention { steal: 0.2 + rng.gen::<f64>() * 0.3 },
                TargetSet::Nodes(vec![node]),
            ));
        }
        if rng.gen::<f64>() < 0.3 {
            schedule = schedule.with(NoiseEvent::always(
                NoiseKind::MemContention { intensity: rng.gen::<f64>() * 1.5 },
                TargetSet::Nodes(vec![node]),
            ));
        }
    }
    schedule
}

/// Execution times (seconds) of `runs` repeated submissions.
pub fn submission_times(opts: &ExpOpts) -> Vec<f64> {
    let ranks = opts.resolve_ranks(64, 256);
    let iters = opts.resolve_iters(8);
    let runs = opts.resolve_runs(if opts.full { 100 } else { 30 });
    let params = AppParams::default().with_iterations(iters);
    let mut rng = ChaCha8Rng::seed_from_u64(opts.seed);
    (0..runs)
        .map(|run| {
            let base = SimConfig::new(ranks).with_seed(opts.seed + run as u64);
            let noise = ambient_noise(&mut rng, base.topology.nodes);
            let cfg = base.with_noise(noise);
            let res = run_simulation(
                &cfg,
                |_| Box::new(NullInterceptor) as Box<dyn Interceptor>,
                |ctx| vapro_apps::npb::cg::run(ctx, &params),
            );
            res.makespan().as_secs_f64()
        })
        .collect()
}

/// Run the experiment and format the report.
pub fn run(opts: &ExpOpts) -> String {
    let times = submission_times(opts);
    let summary = Summary::of(&times).expect("nonempty");
    let mut out = header(
        "Figure 1",
        "Repeated CG submissions on the same nodes: execution time per submission",
    );
    out.push_str("submission,time_s\n");
    for (i, t) in times.iter().enumerate() {
        out.push_str(&format!("{i},{t:.4}\n"));
    }
    out.push_str(&format!(
        "\nmin={:.3}s max={:.3}s mean={:.3}s std={:.3}s cv={:.1}%\n",
        summary.min,
        summary.max,
        summary.mean,
        summary.std_dev,
        summary.cv() * 100.0
    ));
    out.push_str(&format!(
        "max/min spread = {:.2}x (the paper's Fig. 1 shows roughly 12.5-25s, ~2x)\n",
        summary.max / summary.min
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submissions_vary_substantially() {
        let opts = ExpOpts {
            ranks: Some(16),
            iterations: Some(4),
            runs: Some(12),
            ..ExpOpts::default()
        };
        let times = submission_times(&opts);
        assert_eq!(times.len(), 12);
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = times.iter().cloned().fold(0.0, f64::max);
        // The paper's point: same nodes, very different times.
        assert!(max / min > 1.15, "spread {:.3}", max / min);
    }
}
