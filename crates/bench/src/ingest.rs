//! Wire-format and ingestion throughput harness: the numbers behind
//! `BENCH_ingest.json`.
//!
//! Measures, on the same synthetic multi-rank run as the detection
//! harness:
//!
//! * encode/decode throughput of the columnar binary wire format and of
//!   the JSON debugging fallback, in fragments/second;
//! * bytes per fragment on each encoding and the binary's size advantage
//!   (the wire format targets ≥4× smaller and ≥5× faster decode than
//!   JSON);
//! * end-to-end server ingestion: periodic start-partitioned batches
//!   pushed through [`WindowedIngestor`], windows analysed as they
//!   close, in fragments/second.
//!
//! Every timed metric follows the [`crate::stats`] methodology: warmup,
//! ≥30 samples, median + MAD. The `ingest_perf` binary writes the result
//! as `BENCH_ingest.json`; [`crate::regression`] compares a fresh run
//! against the previous file under the same noise-aware tolerance as the
//! detection gate.

use crate::perf::{detected_threads, synthetic_stgs};
use crate::stats::{self, TrendPoint};
use serde::{Deserialize, Serialize};
use vapro_core::detect::window::Window;
use vapro_core::wire::FragmentBatch;
use vapro_core::{Stg, VaproConfig, WindowedIngestor};
use vapro_sim::VirtualTime;

/// One harness run, serialised to `BENCH_ingest.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IngestPerf {
    /// Harness identifier (always `"ingest"`).
    pub bench: String,
    /// Detected hardware threads on the runner.
    pub threads: usize,
    /// Ranks (clients) in the synthetic run.
    pub ranks: usize,
    /// Total fragments shipped.
    pub fragments: usize,
    /// Batches (rank × reporting period) shipped.
    pub batches: usize,
    /// Analysis windows the ingestor closed.
    pub windows: usize,
    /// Total bytes of all binary frames.
    pub binary_bytes: usize,
    /// Total bytes of the same batches as JSON.
    pub json_bytes: usize,
    /// Timed samples per metric (after warmup); at least
    /// [`stats::MIN_SAMPLES`]. Zero on reports predating the
    /// multi-sample methodology.
    pub samples: usize,
    /// Binary bytes per fragment.
    pub binary_bytes_per_fragment: f64,
    /// JSON bytes per fragment.
    pub json_bytes_per_fragment: f64,
    /// `json_bytes / binary_bytes` — how much smaller the wire format is.
    pub size_ratio: f64,
    /// Binary encode throughput, fragments/second (from the median).
    pub encode_fragments_per_sec: f64,
    /// Relative noise of the encode timing (MAD/median).
    pub encode_noise_frac: f64,
    /// Binary decode throughput, fragments/second (from the median).
    pub decode_fragments_per_sec: f64,
    /// Relative noise of the decode timing (MAD/median).
    pub decode_noise_frac: f64,
    /// JSON encode throughput, fragments/second.
    pub json_encode_fragments_per_sec: f64,
    /// JSON decode throughput, fragments/second.
    pub json_decode_fragments_per_sec: f64,
    /// Binary over JSON decode throughput.
    pub decode_speedup: f64,
    /// End-to-end ingest (decode + arena + windowed detection),
    /// fragments/second, from the median over the timed pairs. Frames
    /// are format v2: CRC-32 verified and sequence-deduplicated on
    /// admission.
    pub ingest_fragments_per_sec: f64,
    /// Relative noise of the v2 end-to-end timing (MAD/median).
    pub ingest_noise_frac: f64,
    /// The same end-to-end measurement over legacy v1 frames — no
    /// checksum, no sequence numbers, integrity checking skipped.
    pub ingest_v1_fragments_per_sec: f64,
    /// Fractional end-to-end cost of integrity checking: the best
    /// (smallest) `1 − v1_ns / v2_ns` over interleaved back-to-back
    /// v2/v1 pairs, reported **unclamped** — a negative value means even
    /// the friendliest pairing never saw v1 beat v2, i.e. the cost is
    /// below the noise floor. (An earlier revision clamped this at 0,
    /// which could report "free" while the headline v1/v2 rates showed a
    /// measurable gap.) The robustness acceptance gate requires `< 0.10`
    /// on release builds.
    pub integrity_overhead_frac: f64,
    /// Reporting periods in the long-stream steady-state measurement
    /// (the run re-sliced so the stream closes ≥200 half-overlapped
    /// windows).
    pub long_stream_periods: usize,
    /// Windows the long-stream run closed.
    pub long_stream_windows: usize,
    /// Steady-state flatness: the median per-period admission+analysis
    /// cost over the **last** quarter of the long stream divided by the
    /// median over the **second** quarter (the first quarter is warmup).
    /// ≈1.0 when per-window cost is O(window); it grows with the stream
    /// when any per-push cost scales with the total resident history
    /// (full-arena scans, unbounded buffering). The release gate allows
    /// `1 + variance_tolerance(long_stream_noise_frac)` at most.
    pub steady_state_flatness: f64,
    /// Relative noise (MAD/median) of the steady-state per-period
    /// timings (first quarter excluded).
    pub long_stream_noise_frac: f64,
    /// Peak arena resident bytes across the long stream: with watermark
    /// eviction this is O(watermark lag + open windows), not O(stream).
    pub arena_high_water_bytes: u64,
    /// The arena's high water at the end of the stream over its high
    /// water at the midpoint: ≈1.0 when eviction holds the arena at a
    /// plateau after warmup. The release gate requires ≤ 1.5.
    pub arena_plateau_ratio: f64,
    /// One headline point per harness run, carried forward from the
    /// previous BENCH file (bounded; see [`stats::MAX_TREND_POINTS`]).
    pub history: Vec<TrendPoint>,
}

/// Latest fragment end across the run, ns.
fn t_end_ns(stgs: &[Stg]) -> u64 {
    stgs.iter()
        .flat_map(|s| {
            s.vertices()
                .iter()
                .flat_map(|v| v.fragments.iter())
                .chain(s.edges().iter().flat_map(|e| e.fragments.iter()))
        })
        .map(|f| f.end.ns())
        .max()
        .unwrap_or(0)
}

/// Slice the run into per-rank, per-period start-partitioned batches —
/// what each client ships each reporting period, in period-major order.
/// Each rank's batches carry its monotonic sequence number (period
/// index + 1), so the v2 frames exercise the full integrity path:
/// checksum verification plus sequence tracking.
fn periodic_batches(stgs: &[Stg], period_ns: u64) -> Vec<FragmentBatch> {
    let t_end = t_end_ns(stgs);
    let mut out = Vec::new();
    let mut start = 0u64;
    let mut period_index = 0u64;
    while start < t_end {
        let period = Window {
            start: VirtualTime::from_ns(start),
            end: VirtualTime::from_ns(start + period_ns),
        };
        for (rank, stg) in stgs.iter().enumerate() {
            out.push(
                FragmentBatch::from_stg_starting_in(stg, rank, period)
                    .with_seq(period_index + 1),
            );
        }
        start += period_ns;
        period_index += 1;
    }
    out
}

/// Run the full measurement: `nranks × frags_per_rank` fragments over
/// `sites` call sites, shipped in `periods` reporting periods; `reps`
/// requests the timed samples per metric (floored at
/// [`stats::MIN_SAMPLES`], preceded by a warmup phase).
pub fn measure(
    nranks: usize,
    frags_per_rank: usize,
    sites: usize,
    periods: usize,
    reps: usize,
) -> IngestPerf {
    let stgs = synthetic_stgs(nranks, frags_per_rank, sites, 0xBE7C);
    let fragments: usize = stgs.iter().map(Stg::total_fragments).sum();
    let period_ns = (t_end_ns(&stgs) / periods.max(1) as u64).max(1);
    let batches = periodic_batches(&stgs, period_ns);
    let cfg = VaproConfig {
        report_period: VirtualTime::from_ns(period_ns),
        ..VaproConfig::default()
    };

    // Size accounting, once.
    let frames: Vec<Vec<u8>> = batches.iter().map(FragmentBatch::encode).collect();
    let jsons: Vec<Vec<u8>> = batches.iter().map(FragmentBatch::to_json_bytes).collect();
    let binary_bytes: usize = frames.iter().map(Vec::len).sum();
    let json_bytes: usize = jsons.iter().map(Vec::len).sum();

    // Decode sanity before timing means anything.
    for (frame, batch) in frames.iter().zip(&batches) {
        assert_eq!(&FragmentBatch::decode(frame).expect("own frame"), batch);
    }

    // Codec throughput: whole shipment per sample, reusing one buffer on
    // the encode side the way a client's sender loop would.
    let encode = stats::sample_ns(reps, || {
        let mut buf = Vec::with_capacity(binary_bytes);
        for b in &batches {
            buf.clear();
            b.encode_into(&mut buf);
        }
        buf.len()
    });
    let decode = stats::sample_ns(reps, || {
        frames
            .iter()
            .map(|f| FragmentBatch::decode(f).expect("own frame").len())
            .sum::<usize>()
    });
    let json_encode = stats::sample_ns(reps, || {
        batches.iter().map(|b| b.to_json_bytes().len()).sum::<usize>()
    });
    let json_decode = stats::sample_ns(reps, || {
        jsons
            .iter()
            .map(|j| FragmentBatch::from_json_bytes(j).expect("own json").len())
            .sum::<usize>()
    });

    // End-to-end: every frame decoded into the arena, windows analysed as
    // the shipping low-watermark closes them. Measured over v2 frames
    // (checksum verified, sequences tracked) and over legacy v1 frames
    // (no integrity work) — to price the integrity checking. The two
    // variants run in interleaved back-to-back pairs: each pair sees the
    // same machine state, so a noisy-neighbour burst during one phase
    // cannot masquerade as integrity cost (back-to-back the two runs
    // differ by microseconds; phase-separated best-ofs were seen 25
    // points apart on a busy host). The headline rates are medians over
    // the pairs; the overhead is the best pairwise ratio, unclamped.
    let frames_v1: Vec<Vec<u8>> = batches.iter().map(FragmentBatch::encode_v1).collect();
    let mut windows = 0usize;
    let run_v2 = |windows: &mut usize| {
        let mut ingestor = WindowedIngestor::new(nranks, 16, cfg.clone());
        let mut reports = Vec::new();
        for frame in &frames {
            reports.extend(ingestor.push_encoded(frame).expect("own frame"));
        }
        reports.extend(ingestor.finish());
        *windows = reports.len();
        reports.len()
    };
    let run_v1 = |windows: usize| {
        let mut ingestor = WindowedIngestor::new(nranks, 16, cfg.clone());
        let mut reports = Vec::new();
        for frame in &frames_v1 {
            reports.extend(ingestor.push_encoded(frame).expect("own v1 frame"));
        }
        reports.extend(ingestor.finish());
        assert_eq!(reports.len(), windows, "v1 ingest closed different windows");
        reports.len()
    };
    let pairs = reps.max(stats::MIN_SAMPLES);
    for _ in 0..stats::WARMUP_SAMPLES {
        std::hint::black_box(run_v2(&mut windows));
        std::hint::black_box(run_v1(windows));
    }
    let mut v2_times = Vec::with_capacity(pairs);
    let mut v1_times = Vec::with_capacity(pairs);
    let mut overhead_frac = f64::INFINITY;
    for _ in 0..pairs {
        let v2_ns = stats::time_ns(|| run_v2(&mut windows));
        let v1_ns = stats::time_ns(|| run_v1(windows));
        v2_times.push(v2_ns);
        v1_times.push(v1_ns);
        overhead_frac = overhead_frac.min(1.0 - v1_ns / v2_ns);
    }
    let ingest = stats::summarize(&mut v2_times);
    let ingest_v1 = stats::summarize(&mut v1_times);

    // Long-stream steady state: the same run re-sliced into enough
    // reporting periods for ≥200 half-overlapped windows, streamed once
    // with per-period timing. Flat per-period cost and an arena-byte
    // plateau are what bounded-memory streaming must show: watermark
    // eviction keeps the resident set O(open windows) and the ranged
    // window views keep per-close cost O(window), so neither admission
    // nor analysis may slow down as history accumulates.
    let long_periods = periods.max(101);
    let long_period_ns = (t_end_ns(&stgs) / long_periods as u64).max(1);
    let long_frames: Vec<Vec<u8>> =
        periodic_batches(&stgs, long_period_ns).iter().map(FragmentBatch::encode).collect();
    let long_cfg = VaproConfig {
        report_period: VirtualTime::from_ns(long_period_ns),
        ..VaproConfig::default()
    };
    let mut long_ingestor = WindowedIngestor::new(nranks, 16, long_cfg);
    let nperiods = long_frames.len() / nranks;
    let mut per_period = Vec::with_capacity(nperiods);
    let mut long_windows = 0usize;
    let mut hw_mid = 0u64;
    for (k, chunk) in long_frames.chunks(nranks).enumerate() {
        let mut closed = 0usize;
        per_period.push(stats::time_ns(|| {
            for frame in chunk {
                closed += long_ingestor.push_encoded(frame).expect("own frame").len();
            }
        }));
        long_windows += closed;
        if k + 1 == nperiods / 2 {
            hw_mid = long_ingestor.arena().high_water_bytes();
        }
    }
    let arena_high_water_bytes = long_ingestor.arena().high_water_bytes();
    let arena_plateau_ratio = if hw_mid > 0 {
        arena_high_water_bytes as f64 / hw_mid as f64
    } else {
        1.0
    };
    long_windows += long_ingestor.finish().len();
    let (steady_state_flatness, long_stream_noise_frac) =
        stats::steady_state_flatness(&per_period);

    let per_sec = |count: usize, ns: f64| count as f64 / (ns / 1e9);
    IngestPerf {
        bench: "ingest".to_string(),
        threads: detected_threads(),
        ranks: nranks,
        fragments,
        batches: batches.len(),
        windows,
        binary_bytes,
        json_bytes,
        samples: encode.samples,
        binary_bytes_per_fragment: binary_bytes as f64 / fragments as f64,
        json_bytes_per_fragment: json_bytes as f64 / fragments as f64,
        size_ratio: json_bytes as f64 / binary_bytes as f64,
        encode_fragments_per_sec: per_sec(fragments, encode.median_ns),
        encode_noise_frac: encode.noise_frac(),
        decode_fragments_per_sec: per_sec(fragments, decode.median_ns),
        decode_noise_frac: decode.noise_frac(),
        json_encode_fragments_per_sec: per_sec(fragments, json_encode.median_ns),
        json_decode_fragments_per_sec: per_sec(fragments, json_decode.median_ns),
        decode_speedup: json_decode.median_ns / decode.median_ns,
        ingest_fragments_per_sec: per_sec(fragments, ingest.median_ns),
        ingest_noise_frac: ingest.noise_frac(),
        ingest_v1_fragments_per_sec: per_sec(fragments, ingest_v1.median_ns),
        integrity_overhead_frac: overhead_frac,
        long_stream_periods: per_period.len(),
        long_stream_windows: long_windows,
        steady_state_flatness,
        long_stream_noise_frac,
        arena_high_water_bytes,
        arena_plateau_ratio,
        history: Vec::new(),
    }
}

/// The defaults the acceptance measurement uses: 4 ranks × 2000
/// fragments/rank over 32 sites, 12 reporting periods, 30 samples per
/// metric.
pub fn measure_default() -> IngestPerf {
    measure(4, 2000, 32, 12, stats::MIN_SAMPLES)
}

/// Human summary of one report.
pub fn summary(p: &IngestPerf) -> String {
    format!(
        "ingest: {} fragments / {} ranks / {} batches / {} windows / {} threads / median of {} samples\n\
         size:   {:.1} B/fragment binary vs {:.1} B/fragment JSON ({:.1}x smaller)\n\
         encode: {:>10.0} fragments/s binary (±{:.1}% MAD), {:>10.0} fragments/s JSON\n\
         decode: {:>10.0} fragments/s binary (±{:.1}% MAD), {:>10.0} fragments/s JSON ({:.1}x faster)\n\
         ingest: {:>10.0} fragments/s end-to-end (±{:.1}% MAD, decode + windowed detection)\n\
         integrity: {:>7.0} fragments/s without checks (v1), overhead {:.1}% (best pair, unclamped)\n\
         steady state: {} windows over {} periods, flatness {:.3} (±{:.1}% MAD),\n\
                       arena high water {} B, plateau ratio {:.3}\n",
        p.fragments,
        p.ranks,
        p.batches,
        p.windows,
        p.threads,
        p.samples,
        p.binary_bytes_per_fragment,
        p.json_bytes_per_fragment,
        p.size_ratio,
        p.encode_fragments_per_sec,
        p.encode_noise_frac * 100.0,
        p.json_encode_fragments_per_sec,
        p.decode_fragments_per_sec,
        p.decode_noise_frac * 100.0,
        p.json_decode_fragments_per_sec,
        p.decode_speedup,
        p.ingest_fragments_per_sec,
        p.ingest_noise_frac * 100.0,
        p.ingest_v1_fragments_per_sec,
        p.integrity_overhead_frac * 100.0,
        p.long_stream_windows,
        p.long_stream_periods,
        p.steady_state_flatness,
        p.long_stream_noise_frac * 100.0,
        p.arena_high_water_bytes,
        p.arena_plateau_ratio,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periodic_batches_partition_the_run() {
        let stgs = synthetic_stgs(3, 200, 8, 7);
        let total: usize = stgs.iter().map(Stg::total_fragments).sum();
        let period = (t_end_ns(&stgs) / 10).max(1);
        let batches = periodic_batches(&stgs, period);
        let shipped: usize = batches.iter().map(FragmentBatch::len).sum();
        assert_eq!(shipped, total, "start-partitioned shipping must cover exactly once");
    }

    #[test]
    fn measure_meets_the_wire_format_targets() {
        let p = measure(2, 300, 8, 6, 1);
        assert_eq!(p.bench, "ingest");
        assert!(p.fragments >= 600);
        assert!(p.windows > 2, "windows: {}", p.windows);
        // The headline acceptance target: ≥4× smaller than JSON. (The
        // ≥5× decode-speed target is asserted on the release-mode run of
        // the `ingest_perf` binary; debug-build ratios still must favour
        // binary.)
        assert!(p.size_ratio >= 4.0, "binary only {:.2}x smaller", p.size_ratio);
        assert!(p.decode_speedup > 1.0, "decode speedup {:.2}", p.decode_speedup);
        assert!(p.encode_fragments_per_sec > 0.0);
        assert!(p.ingest_fragments_per_sec > 0.0);
        assert!(p.ingest_v1_fragments_per_sec > 0.0);
        // Debug builds can't gate the 10 % target, but the fraction must
        // at least be a sane ratio of the two measured rates — and it is
        // deliberately NOT clamped at zero: a best pair where v1 came
        // out slower reports as negative, not as "free".
        assert!(p.integrity_overhead_frac < 1.0, "{}", p.integrity_overhead_frac);
        assert!(p.integrity_overhead_frac.is_finite());
        assert!(p.samples >= crate::stats::MIN_SAMPLES);
        assert!(p.ingest_noise_frac.is_finite() && p.ingest_noise_frac >= 0.0);
        // The long stream must actually be long: ≥200 half-overlapped
        // windows, a registered arena peak, and sane steady-state ratios
        // (debug builds can't gate the release thresholds, but the
        // values must be finite and positive).
        assert!(p.long_stream_periods >= 100, "periods {}", p.long_stream_periods);
        assert!(p.long_stream_windows >= 200, "windows {}", p.long_stream_windows);
        assert!(p.arena_high_water_bytes > 0);
        assert!(p.steady_state_flatness.is_finite() && p.steady_state_flatness > 0.0);
        assert!(p.arena_plateau_ratio.is_finite() && p.arena_plateau_ratio > 0.0);
        assert!(p.long_stream_noise_frac.is_finite() && p.long_stream_noise_frac >= 0.0);
    }

    #[test]
    fn report_roundtrips_through_json() {
        let p = measure(2, 120, 4, 4, 1);
        let json = serde_json::to_string(&p).expect("serialisable");
        let back: IngestPerf = serde_json::from_str(&json).expect("parses");
        assert_eq!(p.bench, back.bench);
        assert_eq!(p.fragments, back.fragments);
        assert_eq!(p.binary_bytes, back.binary_bytes);
    }
}
