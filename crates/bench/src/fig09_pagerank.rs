//! Fig. 9: 8-thread PageRank under a memory noise — the heat map shows a
//! light-coloured (slow) band across the affected threads while the noise
//! window is active.

use crate::common::{header, memory_noise, vapro_cf, ExpOpts};
use vapro::harness::run_under_vapro_binned;
use vapro_apps::AppParams;
use vapro_core::detect::pipeline::DetectionResult;
use vapro_sim::{NoiseSchedule, SimConfig, TargetSet, Topology, VirtualTime};

/// Run the Fig. 9 scenario; the noise hits every thread (STREAM on the
/// same node's idle cores) during the middle third of the run.
pub fn detect_run(opts: &ExpOpts) -> (DetectionResult, VirtualTime) {
    let threads = opts.resolve_ranks(8, 8);
    let iters = opts.resolve_iters(40);
    let params = AppParams::default().with_iterations(iters);
    // Estimate the quiet makespan first to place the noise window.
    let base_cfg = SimConfig::new(threads)
        .with_topology(Topology::single_node(threads))
        .with_seed(opts.seed);
    let quiet = vapro::harness::run_bare(&base_cfg, |ctx| {
        vapro_apps::pagerank::run(ctx, &params)
    });
    let start = VirtualTime::from_ns(quiet.ns() / 3);
    let end = VirtualTime::from_ns(2 * quiet.ns() / 3);
    let cfg = base_cfg.with_noise(
        NoiseSchedule::quiet().with(memory_noise(TargetSet::All, start, end)),
    );
    let run = run_under_vapro_binned(&cfg, &vapro_cf(), 48, |ctx| {
        vapro_apps::pagerank::run(ctx, &params)
    });
    (run.detection, run.makespan)
}

/// Run the experiment and format the report.
pub fn run(opts: &ExpOpts) -> String {
    let (det, makespan) = detect_run(opts);
    let mut out = header(
        "Figure 9",
        "8-thread PageRank under memory noise: computation-performance heat map",
    );
    out.push_str(&vapro_core::viz::render_heatmap(&det.comp_map, 16));
    out.push_str(&format!("\nmakespan: {makespan}\n"));
    match det.comp_regions.first() {
        Some(r) => out.push_str(&format!(
            "top variance region: {}\n",
            vapro_core::viz::describe_region(r)
        )),
        None => out.push_str("no variance region detected\n"),
    }
    out.push_str(&crate::common::maybe_json(
        opts,
        "fig9_heatmap",
        vapro_core::viz::heatmap_json(&det.comp_map),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_noise_window_is_localised() {
        let opts = ExpOpts { iterations: Some(30), ..ExpOpts::default() };
        let (det, _) = detect_run(&opts);
        assert!(!det.comp_regions.is_empty(), "noise not detected");
        let r = &det.comp_regions[0];
        // The slow band sits in the middle of the run, away from the edges.
        let map = &det.comp_map;
        assert!(r.bin_range.0 > map.bins / 8, "region {:?}", r.bin_range);
        assert!(r.bin_range.1 < map.bins - 1, "region {:?}", r.bin_range);
        // It spans (nearly) all threads — the noise is node-wide.
        assert!(r.rank_range.1 - r.rank_range.0 >= map.ranks / 2);
    }
}
