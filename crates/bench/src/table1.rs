//! Table 1: performance overhead and detection coverage of vSensor,
//! Vapro with context-aware STG (CA) and context-free STG (CF), over the
//! nine multi-process and nine multi-threaded applications.
//!
//! Expected shape (the paper's means: vSensor 0.98 % / 45.5 %, CA
//! 3.81 % / 64.7 %, CF 1.80 % / 75.5 %; multi-threaded CF 0.95 % /
//! 74.1 %):
//!
//! * overheads are all small, CA > CF (backtracing cost);
//! * coverage CF ≥ CA ≥ vSensor;
//! * vSensor scores 0 on the runtime-fixed apps (AMG, EP) and N/A on
//!   CESM; it cannot run multi-threaded apps at all.

use crate::common::{header, ExpOpts};
use vapro::harness::{overhead, run_bare, run_under_vapro};
use vapro_apps::{all_apps, AppKind, AppParams, AppSpec};
use vapro_baselines::vsensor::VSensor;
use vapro_core::VaproConfig;
use vapro_sim::{run_simulation, Interceptor, SimConfig, Topology};

/// One application's Table 1 row.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Application name.
    pub name: &'static str,
    /// Threading model.
    pub kind: AppKind,
    /// vSensor overhead % (None = N/A).
    pub vsensor_overhead: Option<f64>,
    /// Vapro context-aware overhead %.
    pub ca_overhead: f64,
    /// Vapro context-free overhead %.
    pub cf_overhead: f64,
    /// vSensor coverage % (None = N/A).
    pub vsensor_coverage: Option<f64>,
    /// Context-aware coverage %.
    pub ca_coverage: f64,
    /// Context-free coverage %.
    pub cf_coverage: f64,
}

fn sim_cfg_for(app: &AppSpec, ranks: usize, seed: u64) -> SimConfig {
    let topo = match app.kind {
        AppKind::MultiProcess => Topology::tianhe_like(ranks),
        AppKind::MultiThreaded => Topology::single_node(ranks),
    };
    SimConfig::new(ranks).with_topology(topo).with_seed(seed)
}

/// Measure one app's row.
pub fn measure_app(app: &AppSpec, opts: &ExpOpts) -> Table1Row {
    let full_ranks = match app.kind {
        AppKind::MultiProcess => app.table1_ranks,
        AppKind::MultiThreaded => 16,
    };
    let scaled = match app.kind {
        AppKind::MultiProcess => 32,
        AppKind::MultiThreaded => 8,
    };
    let ranks = opts.resolve_ranks(scaled, full_ranks);
    let iters = opts.resolve_iters(10);
    // The paper's applications invoke MPI at production rates (fragments
    // of tens of µs); scale the per-fragment work down accordingly so the
    // hook-cost share — i.e. the overhead — is in the realistic regime.
    let params = AppParams::default().with_iterations(iters).with_scale(0.12);
    let cfg = sim_cfg_for(app, ranks, opts.seed);
    let run_app = |ctx: &mut vapro_sim::RankCtx| (app.run)(ctx, &params);

    // Vapro CF and CA.
    let cf = run_under_vapro(&cfg, &VaproConfig::context_free(), run_app);
    let ca = run_under_vapro(&cfg, &VaproConfig::context_aware(), run_app);
    let cf_overhead = overhead(&cfg, &VaproConfig::context_free(), run_app) * 100.0;
    let ca_overhead = overhead(&cfg, &VaproConfig::context_aware(), run_app) * 100.0;

    // vSensor: only supported multi-process apps with source access.
    let vsensor_ok = app.kind == AppKind::MultiProcess && app.vsensor_supported;
    let (vsensor_overhead, vsensor_coverage) = if vsensor_ok {
        let bare = run_bare(&cfg, run_app).ns() as f64;
        let res = run_simulation(
            &cfg,
            |rank| {
                Box::new(VSensor::new(rank, app.static_fixed_sites)) as Box<dyn Interceptor>
            },
            run_app,
        );
        let monitored = res.makespan().ns() as f64;
        let sensors = res.into_tools::<VSensor>();
        let cov =
            sensors.iter().map(VSensor::coverage).sum::<f64>() / sensors.len() as f64;
        (Some((monitored - bare) / bare * 100.0), Some(cov * 100.0))
    } else {
        (None, None)
    };

    Table1Row {
        name: app.name,
        kind: app.kind,
        vsensor_overhead,
        ca_overhead,
        cf_overhead,
        vsensor_coverage,
        ca_coverage: ca.detection.coverage * 100.0,
        cf_coverage: cf.detection.coverage * 100.0,
    }
}

/// The Table 1 application set (excludes the §6.5 case-study apps).
pub fn table1_apps() -> Vec<AppSpec> {
    all_apps()
        .into_iter()
        .filter(|a| !matches!(a.name, "HPL" | "Nekbone" | "RAxML"))
        .collect()
}

/// Measure every row.
pub fn measure_all(opts: &ExpOpts) -> Vec<Table1Row> {
    table1_apps().iter().map(|a| measure_app(a, opts)).collect()
}

fn fmt_opt(v: Option<f64>) -> String {
    v.map_or_else(|| "  N/A".to_string(), |x| format!("{x:5.1}"))
}

/// Run the experiment and format the report.
pub fn run(opts: &ExpOpts) -> String {
    let rows = measure_all(opts);
    let mut out = header(
        "Table 1",
        "Overhead (%) and detection coverage (%): vSensor vs Vapro-CA vs Vapro-CF",
    );
    out.push_str(&format!(
        "{:<14} {:>8} {:>6} {:>6}   {:>8} {:>6} {:>6}\n",
        "app", "vS-ovh", "CA-ovh", "CF-ovh", "vS-cov", "CA-cov", "CF-cov"
    ));
    for kind in [AppKind::MultiProcess, AppKind::MultiThreaded] {
        let set: Vec<&Table1Row> = rows.iter().filter(|r| r.kind == kind).collect();
        out.push_str(match kind {
            AppKind::MultiProcess => "-- multi-process --\n",
            AppKind::MultiThreaded => "-- multi-threaded --\n",
        });
        for r in &set {
            out.push_str(&format!(
                "{:<14} {:>8} {:>6.2} {:>6.2}   {:>8} {:>6.1} {:>6.1}\n",
                r.name,
                fmt_opt(r.vsensor_overhead),
                r.ca_overhead,
                r.cf_overhead,
                fmt_opt(r.vsensor_coverage),
                r.ca_coverage,
                r.cf_coverage
            ));
        }
        let mean = |f: &dyn Fn(&Table1Row) -> Option<f64>| -> f64 {
            let vals: Vec<f64> = set.iter().filter_map(|r| f(r)).collect();
            if vals.is_empty() {
                0.0
            } else {
                vals.iter().sum::<f64>() / vals.len() as f64
            }
        };
        out.push_str(&format!(
            "{:<14} {:>8.2} {:>6.2} {:>6.2}   {:>8.1} {:>6.1} {:>6.1}\n\n",
            "mean",
            mean(&|r| r.vsensor_overhead),
            mean(&|r| Some(r.ca_overhead)),
            mean(&|r| Some(r.cf_overhead)),
            mean(&|r| r.vsensor_coverage),
            mean(&|r| Some(r.ca_coverage)),
            mean(&|r| Some(r.cf_coverage)),
        ));
    }
    out.push_str(
        "(paper means: multi-process vSensor 0.98/45.5, CA 3.81/64.7, CF 1.80/75.5; \
         multi-threaded CF 0.95/74.1)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts() -> ExpOpts {
        ExpOpts { ranks: Some(8), iterations: Some(6), ..ExpOpts::default() }
    }

    #[test]
    fn cg_row_shape_matches_the_paper() {
        let app = vapro_apps::find_app("CG").unwrap();
        let r = measure_app(&app, &quick_opts());
        // Overheads small; CA pricier than CF.
        assert!(r.cf_overhead < 5.0, "CF overhead {}", r.cf_overhead);
        assert!(r.ca_overhead > r.cf_overhead, "CA {} vs CF {}", r.ca_overhead, r.cf_overhead);
        // Coverage: Vapro far above vSensor on CG.
        let vs = r.vsensor_coverage.unwrap();
        assert!(r.cf_coverage > vs + 20.0, "CF {} vs vSensor {}", r.cf_coverage, vs);
        assert!(r.cf_coverage > 50.0);
    }

    #[test]
    fn amg_and_ep_zero_vsensor_nonzero_vapro() {
        for name in ["AMG", "EP"] {
            let app = vapro_apps::find_app(name).unwrap();
            let r = measure_app(&app, &quick_opts());
            assert_eq!(r.vsensor_coverage, Some(0.0), "{name}");
            assert!(r.cf_coverage > 40.0, "{name} CF coverage {}", r.cf_coverage);
        }
    }

    #[test]
    fn cesm_is_na_for_vsensor() {
        let app = vapro_apps::find_app("CESM").unwrap();
        let r = measure_app(&app, &quick_opts());
        assert!(r.vsensor_coverage.is_none());
        assert!(r.cf_coverage > 20.0);
    }

    #[test]
    fn multithreaded_apps_have_no_vsensor_column() {
        let app = vapro_apps::find_app("blackscholes").unwrap();
        let r = measure_app(&app, &quick_opts());
        assert!(r.vsensor_overhead.is_none());
        assert!(r.cf_coverage > 50.0, "coverage {}", r.cf_coverage);
    }
}
