//! Fig. 16: the HPL mitigation — huge pages reduce the frequency of the
//! problematic L2 evictions, shrinking the performance spread. The paper
//! reports a 51.3 % reduction in the standard deviation of execution
//! time after switching from 2 MB to 1 GB pages.
//!
//! The bug is *episodic*: most executions are clean, some are hit (the
//! paper: "randomly generates significant slowdowns", and §6.5.1's one
//! abnormal execution among stable runs). Each simulated submission draws
//! whether — and for how long — the bug is active; the page size sets the
//! per-run affliction probability.

use crate::common::{header, ExpOpts};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use vapro_apps::AppParams;
use vapro_sim::{
    run_simulation, Interceptor, NoiseEvent, NoiseKind, NoiseSchedule, NullInterceptor,
    SimConfig, TargetSet, Topology, VirtualTime,
};
use vapro_stats::{cdf_points, Summary};

/// Per-run probability that the bug afflicts the execution under 2 MB
/// pages (frequent page-walk conflicts on the L2-resident working set).
pub const RUN_PROB_2MB: f64 = 0.5;
/// Per-run affliction probability under 1 GB pages.
pub const RUN_PROB_1GB: f64 = 0.05;

/// Simulated per-run "performance" (GFLOPS-like: work / time) across
/// repeated runs with the given per-run affliction probability.
pub fn performance_runs(opts: &ExpOpts, run_prob: f64) -> Vec<f64> {
    let ranks = opts.resolve_ranks(12, 36);
    let iters = opts.resolve_iters(15);
    let runs = opts.resolve_runs(24);
    let params = AppParams::default().with_iterations(iters);
    let mut draw = ChaCha8Rng::seed_from_u64(opts.seed ^ 0xF16);
    (0..runs)
        .map(|run| {
            let afflicted = draw.gen::<f64>() < run_prob;
            // When afflicted, the bug fires over a random portion of the run.
            let noise = if afflicted {
                let frac = 0.4 + draw.gen::<f64>() * 0.6;
                NoiseSchedule::quiet().with(NoiseEvent::during(
                    NoiseKind::L2CacheBug { prob: 0.6, severity: 0.12 },
                    TargetSet::Sockets(vec![1]),
                    VirtualTime::ZERO,
                    VirtualTime::from_secs_f64(frac * 10.0),
                ))
            } else {
                NoiseSchedule::quiet()
            };
            let cfg = SimConfig::new(ranks)
                .with_topology(Topology::dual_socket(ranks.div_ceil(2)))
                .with_seed(opts.seed + 17 * run as u64)
                .with_noise(noise);
            let res = run_simulation(
                &cfg,
                |_| Box::new(NullInterceptor) as Box<dyn Interceptor>,
                |ctx| vapro_apps::hpl::run(ctx, &params),
            );
            // Constant work per run → performance ∝ 1 / time.
            1e12 / res.makespan().ns() as f64
        })
        .collect()
}

/// Run the experiment and format the report.
pub fn run(opts: &ExpOpts) -> String {
    let small_pages = performance_runs(opts, RUN_PROB_2MB);
    let huge_pages = performance_runs(opts, RUN_PROB_1GB);
    let s2 = Summary::of(&small_pages).expect("nonempty");
    let s1 = Summary::of(&huge_pages).expect("nonempty");
    let mut out = header(
        "Figure 16",
        "HPL performance distribution: 2 MB pages vs 1 GB pages (CDF)",
    );
    out.push_str("percentile,perf_2mb,perf_1gb\n");
    let c2 = cdf_points(&small_pages, 21);
    let c1 = cdf_points(&huge_pages, 21);
    for (a, b) in c2.iter().zip(&c1) {
        out.push_str(&format!("{:.0},{:.2},{:.2}\n", a.0, a.1, b.1));
    }
    let reduction = (1.0 - s1.std_dev / s2.std_dev) * 100.0;
    out.push_str(&format!(
        "\nσ(2MB) = {:.3}  σ(1GB) = {:.3}  →  σ reduced by {:.1}% (paper: 51.3%)\n",
        s2.std_dev, s1.std_dev, reduction
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts() -> ExpOpts {
        ExpOpts {
            ranks: Some(8),
            iterations: Some(10),
            runs: Some(20),
            ..ExpOpts::default()
        }
    }

    #[test]
    fn huge_pages_cut_the_spread() {
        let small = performance_runs(&quick_opts(), RUN_PROB_2MB);
        let huge = performance_runs(&quick_opts(), RUN_PROB_1GB);
        let s_small = Summary::of(&small).unwrap();
        let s_huge = Summary::of(&huge).unwrap();
        // The spread shrinks by a large factor (paper: σ −51.3%)…
        assert!(
            s_huge.std_dev < s_small.std_dev * 0.7,
            "σ {} vs {}",
            s_huge.std_dev,
            s_small.std_dev
        );
        // …and mean performance improves.
        assert!(s_huge.mean > s_small.mean);
    }

    #[test]
    fn degradation_sits_in_the_low_percentiles() {
        // The Fig. 16 shape: the 2 MB curve sags on the left (slow runs),
        // the two curves converge at the top percentiles (clean runs are
        // equally fast under either page size).
        let small = performance_runs(&quick_opts(), RUN_PROB_2MB);
        let huge = performance_runs(&quick_opts(), RUN_PROB_1GB);
        let p10_small = vapro_stats::percentile(&small, 10.0);
        let p10_huge = vapro_stats::percentile(&huge, 10.0);
        let p95_small = vapro_stats::percentile(&small, 95.0);
        let p95_huge = vapro_stats::percentile(&huge, 95.0);
        assert!(p10_huge > p10_small * 1.02, "p10 {p10_huge} vs {p10_small}");
        let top_gap = (p95_huge - p95_small).abs() / p95_huge;
        assert!(top_gap < 0.05, "top percentiles should converge: {top_gap}");
    }
}
