//! Ablation studies of Vapro's design choices (beyond the paper's own
//! tables, these probe the constants its implementation fixes):
//!
//! * **clustering threshold** — the 5 % relative distance bound: too
//!   tight splits jittered fixed workloads (losing coverage), too loose
//!   merges genuinely different workloads (homogeneity collapses; AMG's
//!   7 runtime classes are the probe);
//! * **sampling back-off** — the §3.5 overhead/coverage trade: storage
//!   rate drops while detection coverage should hold;
//! * **STG mode** — context-free vs context-aware states, edges, hook
//!   cost and coverage on the same run.

use crate::common::{header, vapro_cf, ExpOpts};
use vapro::harness::run_under_vapro;
use vapro_apps::AppParams;
use vapro_core::clustering::cluster_fragments;
use vapro_core::detect::pipeline::merge_stgs;
use vapro_core::fragment::{FragmentKind, DEFAULT_PROXY};
use vapro_core::VaproConfig;
use vapro_sim::SimConfig;
use vapro_stats::v_measure;

/// One row of the threshold sweep.
#[derive(Debug, Clone)]
pub struct ThresholdRow {
    /// The relative distance bound.
    pub threshold: f64,
    /// Usable clusters found on AMG's class-rich edge.
    pub clusters: usize,
    /// Homogeneity against the 7 ground-truth classes.
    pub homogeneity: f64,
    /// Completeness against the ground truth.
    pub completeness: f64,
}

/// Sweep the clustering threshold over AMG's hottest edge (7 runtime
/// workload classes, adjacent classes ~2:1 apart).
pub fn threshold_sweep(opts: &ExpOpts) -> Vec<ThresholdRow> {
    let ranks = opts.resolve_ranks(8, 16);
    let iters = opts.resolve_iters(40);
    let params = AppParams::default().with_iterations(iters);
    let run = run_under_vapro(&SimConfig::new(ranks).with_seed(opts.seed), &vapro_cf(), |ctx| {
        vapro_apps::amg::run(ctx, &params)
    });
    let merged = merge_stgs(&run.stgs);
    let pool: Vec<_> = merged
        .edges
        .iter()
        .map(|(_, v)| v)
        .max_by_key(|v| v.iter().map(|f| f.duration().ns()).sum::<u64>())
        .expect("AMG has edges")
        .iter()
        .filter(|f| f.kind == FragmentKind::Computation)
        .map(|f| (*f).clone())
        .collect();
    // Ground truth: the true class is recoverable from the (clean) class
    // structure — classes are (1+k)·base instructions, ≥ 14 % apart, so
    // rounding TOT_INS to the nearest class index is exact despite the
    // 0.3 % jitter.
    let base = pool
        .iter()
        .map(|f| f.counters.get_or_zero(vapro_pmu::CounterId::TotIns))
        .fold(f64::INFINITY, f64::min);
    let truth: Vec<usize> = pool
        .iter()
        .map(|f| {
            let ins = f.counters.get_or_zero(vapro_pmu::CounterId::TotIns);
            (ins / base).round() as usize
        })
        .collect();

    [0.005, 0.02, 0.05, 0.15, 0.40]
        .into_iter()
        .map(|threshold| {
            let outcome = cluster_fragments(&pool, &DEFAULT_PROXY, threshold, 2);
            let labels = outcome.all_labels(pool.len());
            let scores = v_measure(&truth, &labels);
            ThresholdRow {
                threshold,
                clusters: outcome.usable.len() + outcome.rare.len(),
                homogeneity: scores.homogeneity,
                completeness: scores.completeness,
            }
        })
        .collect()
}

/// One row of the sampling trade-off.
#[derive(Debug, Clone)]
pub struct SamplingRow {
    /// Back-off enabled?
    pub sampling: bool,
    /// Detection coverage.
    pub coverage: f64,
    /// Bytes recorded per rank per virtual second.
    pub bytes_per_sec: f64,
    /// Fragments dropped by the sampler.
    pub sampled_out: u64,
}

/// Measure the sampling trade-off on LU (the chattiest NPB program —
/// many short fragments, the sampler's target population).
pub fn sampling_tradeoff(opts: &ExpOpts) -> (SamplingRow, SamplingRow) {
    let ranks = opts.resolve_ranks(8, 32);
    let iters = opts.resolve_iters(20);
    let params = AppParams::default().with_iterations(iters);
    // The skip-short heuristic: LU's relaxation blocks run ~100 µs, but
    // the slivers between its back-to-back sends/receives are well under
    // the 40 µs floor — those are sampled away, the blocks are kept.
    let measure = |sampling: bool| -> SamplingRow {
        let mut cfg = vapro_cf();
        cfg.sampling_enabled = sampling;
        cfg.sampling_min_ns = 40_000.0;
        let run = run_under_vapro(
            &SimConfig::new(ranks).with_seed(opts.seed),
            &cfg,
            |ctx| vapro_apps::npb::lu::run(ctx, &params),
        );
        let secs = run.makespan.as_secs_f64().max(1e-9);
        let bytes = run.bytes_recorded.iter().map(|&b| b as f64).sum::<f64>()
            / run.bytes_recorded.len() as f64;
        // Count sampled-out fragments across ranks by re-deriving from
        // invocations minus recorded fragments.
        let recorded: usize = run.stgs.iter().map(|s| s.total_fragments()).sum();
        let expected = run.invocations as usize * 2; // vertex + edge per invocation
        SamplingRow {
            sampling,
            coverage: run.detection.coverage,
            bytes_per_sec: bytes / secs,
            sampled_out: expected.saturating_sub(recorded) as u64,
        }
    };
    (measure(false), measure(true))
}

/// One row of the workload-proxy comparison.
#[derive(Debug, Clone)]
pub struct ProxyRow {
    /// Proxy description.
    pub proxy: &'static str,
    /// Hardware PMU slots the proxy occupies.
    pub hw_slots: usize,
    /// Usable clusters found on the probe pool.
    pub clusters: usize,
}

/// Compare the default TOT_INS proxy against the extended proxy on a pool
/// of workloads with *identical instruction counts but different memory
/// behaviour* — the case the paper's "users are able to specify other PMU
/// metrics" hook exists for.
pub fn proxy_comparison() -> Vec<ProxyRow> {
    use vapro_core::clustering::cluster_fragments;
    use vapro_core::fragment::{Fragment, FragmentKind, DEFAULT_PROXY, EXTENDED_PROXY};
    use vapro_pmu::{CounterDelta, CounterId, CounterSet};
    use vapro_sim::VirtualTime;

    let mk = |ins: f64, loads: f64, stores: f64, i: u64| {
        let mut c = CounterDelta::default();
        c.put(CounterId::TotIns, ins);
        c.put(CounterId::LoadsL1Hit, loads);
        c.put(CounterId::Stores, stores);
        Fragment {
            rank: 0,
            kind: FragmentKind::Computation,
            start: VirtualTime::from_ns(i * 100),
            end: VirtualTime::from_ns(i * 100 + 60),
            counters: c,
            args: vec![],
        }
    };
    // Two behaviours, same TOT_INS.
    let mut pool = vec![];
    for i in 0..10 {
        pool.push(mk(50_000.0, 18_000.0, 6_000.0, i));
    }
    for i in 10..20 {
        pool.push(mk(50_000.0, 2_000.0, 500.0, i));
    }

    [("TOT_INS", &DEFAULT_PROXY[..]), ("TOT_INS+loads+stores", &EXTENDED_PROXY[..])]
        .into_iter()
        .map(|(name, proxies)| {
            let outcome = cluster_fragments(&pool, proxies, 0.05, 5);
            ProxyRow {
                proxy: name,
                hw_slots: CounterSet::from_ids(proxies).hardware_slots(),
                clusters: outcome.usable.len(),
            }
        })
        .collect()
}

/// One row of the STG-mode comparison.
#[derive(Debug, Clone)]
pub struct ModeRow {
    /// Mode name.
    pub mode: &'static str,
    /// States in rank 0's STG.
    pub states: usize,
    /// Edges in rank 0's STG.
    pub edges: usize,
    /// Detection coverage.
    pub coverage: f64,
    /// Tool overhead (%).
    pub overhead_pct: f64,
}

/// Compare context-free and context-aware STGs on CG (which has warm-up
/// and timed phases reaching the same call-sites through different
/// paths).
pub fn mode_comparison(opts: &ExpOpts) -> Vec<ModeRow> {
    let ranks = opts.resolve_ranks(8, 32);
    let iters = opts.resolve_iters(10);
    let params = AppParams::default().with_iterations(iters).with_scale(0.12);
    let cfg = SimConfig::new(ranks).with_seed(opts.seed);
    let app = |ctx: &mut vapro_sim::RankCtx| vapro_apps::npb::cg::run(ctx, &params);
    [("context-free", VaproConfig::context_free()), ("context-aware", VaproConfig::context_aware())]
        .into_iter()
        .map(|(mode, vcfg)| {
            let run = run_under_vapro(&cfg, &vcfg, app);
            let overhead = vapro::harness::overhead(&cfg, &vcfg, app) * 100.0;
            ModeRow {
                mode,
                states: run.stgs[0].num_states(),
                edges: run.stgs[0].num_edges(),
                coverage: run.detection.coverage,
                overhead_pct: overhead,
            }
        })
        .collect()
}

/// Run all ablations and format the report.
pub fn run(opts: &ExpOpts) -> String {
    let mut out = header("Ablations", "Design-choice sensitivity studies");

    out.push_str("-- clustering threshold (AMG, 7 runtime workload classes) --\n");
    out.push_str("threshold,clusters,homogeneity,completeness\n");
    for r in threshold_sweep(opts) {
        out.push_str(&format!(
            "{:.3},{},{:.3},{:.3}\n",
            r.threshold, r.clusters, r.homogeneity, r.completeness
        ));
    }
    out.push_str("(5% sits on the plateau: tight enough for 7 classes, loose enough for jitter)\n\n");

    let (off, on) = sampling_tradeoff(opts);
    out.push_str("-- sampling back-off (LU at high invocation rate) --\n");
    out.push_str(&format!(
        "off: coverage {:.1}%  storage {:.1} KB/s\non:  coverage {:.1}%  storage {:.1} KB/s  ({} fragments skipped)\n\n",
        off.coverage * 100.0,
        off.bytes_per_sec / 1e3,
        on.coverage * 100.0,
        on.bytes_per_sec / 1e3,
        on.sampled_out
    ));

    out.push_str("-- STG mode (CG with warm-up + timed phases) --\n");
    out.push_str("mode,states,edges,coverage%,overhead%\n");
    for r in mode_comparison(opts) {
        out.push_str(&format!(
            "{},{},{},{:.1},{:.2}\n",
            r.mode,
            r.states,
            r.edges,
            r.coverage * 100.0,
            r.overhead_pct
        ));
    }

    out.push_str("\n-- workload proxy width (equal TOT_INS, different memory mix) --\n");
    out.push_str("proxy,hw_slots,clusters_found\n");
    for r in proxy_comparison() {
        out.push_str(&format!("{},{},{}\n", r.proxy, r.hw_slots, r.clusters));
    }
    out.push_str(
        "(the wider proxy separates workloads TOT_INS alone merges, at the cost of\n\
         extra PMU slots — the paper's precision/overhead trade of §3.3)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExpOpts {
        ExpOpts { ranks: Some(4), iterations: Some(30), ..ExpOpts::default() }
    }

    #[test]
    fn threshold_sweep_shows_the_tradeoff() {
        let rows = threshold_sweep(&quick());
        // Tight threshold: homogeneity perfect (no false merges).
        let tight = &rows[0];
        assert!(tight.homogeneity > 0.99, "tight H {}", tight.homogeneity);
        // Loose threshold: classes merge, homogeneity collapses.
        let loose = rows.last().unwrap();
        assert!(loose.homogeneity < 0.9, "loose H {}", loose.homogeneity);
        assert!(loose.clusters < tight.clusters);
        // The paper's 5% keeps both scores high for AMG's classes.
        let mid = rows.iter().find(|r| (r.threshold - 0.05).abs() < 1e-9).unwrap();
        assert!(mid.homogeneity > 0.99 && mid.completeness > 0.99, "{mid:?}");
    }

    #[test]
    fn sampling_cuts_storage_not_coverage() {
        let opts = ExpOpts { ranks: Some(4), iterations: Some(30), ..ExpOpts::default() };
        let (off, on) = sampling_tradeoff(&opts);
        assert!(on.bytes_per_sec < off.bytes_per_sec, "{on:?} vs {off:?}");
        assert!(on.sampled_out > 0);
        // Coverage holds within a few points (skip-short heuristic).
        assert!(
            on.coverage > off.coverage - 0.15,
            "coverage dropped too far: {} vs {}",
            on.coverage,
            off.coverage
        );
    }

    #[test]
    fn wider_proxy_separates_equal_instruction_workloads() {
        let rows = proxy_comparison();
        assert_eq!(rows[0].clusters, 1, "{:?}", rows[0]);
        assert_eq!(rows[1].clusters, 2, "{:?}", rows[1]);
        assert!(rows[1].hw_slots > rows[0].hw_slots);
    }

    #[test]
    fn context_aware_has_more_states_and_costs_more() {
        let rows = mode_comparison(&quick());
        let cf = &rows[0];
        let ca = &rows[1];
        assert!(ca.states > cf.states);
        assert!(ca.edges > cf.edges);
        assert!(ca.overhead_pct > cf.overhead_pct);
    }
}
