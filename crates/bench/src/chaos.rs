//! Chaos harness: seeded fault injection against the streaming
//! ingestion pipeline.
//!
//! A [`FaultPlan`] describes — deterministically, from a seed — what the
//! transport does to each shipped frame: drop it, duplicate it, reorder
//! it within its reporting period, corrupt a byte, or delay it by whole
//! periods; and which ranks die mid-run (stop shipping after a given
//! period). [`run_plan`] builds a synthetic multi-rank run, slices it
//! into sequenced per-period wire frames, applies the plan, pushes every
//! surviving delivery through a [`WindowedIngestor`] under a production
//! straggler policy, and returns what came out.
//!
//! Two checks ride on top:
//!
//! * [`check_invariants`] — under *any* plan, ingestion must not panic,
//!   the emitted windows must exactly tile `[0, max admitted fragment
//!   end)` (windows always eventually close, none invented), and the
//!   coverage accounting must be internally consistent;
//! * [`fault_free_equivalence`] — a plan with every intensity at zero
//!   and no deaths must reproduce the one-shot windowed analysis
//!   ([`ServerPool::analyze_windows`]) bit for bit, even with the
//!   straggler policy armed.

use crate::perf::synthetic_stgs;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use vapro_core::detect::window::{windows_covering, Window};
use vapro_core::wire::FragmentBatch;
use vapro_core::{
    FaultTolerance, LateDataPolicy, ServerPool, Stg, VaproConfig, WindowReport,
    WindowedIngestor, WireError,
};
use vapro_sim::VirtualTime;

/// A deterministic fault-injection schedule. Intensities are per-frame
/// probabilities in `[0, 1]`, drawn from `seed` alone — the same plan
/// always produces the same byte-level delivery sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for every random decision the plan makes.
    pub seed: u64,
    /// Ranks in the synthetic run.
    pub nranks: usize,
    /// Computation fragments per rank.
    pub frags_per_rank: usize,
    /// Reporting periods the run is sliced into.
    pub periods: usize,
    /// Probability a frame is silently dropped in transit.
    pub drop: f64,
    /// Probability a frame is delivered twice (retransmission).
    pub duplicate: f64,
    /// Probability a frame is reordered within its reporting period.
    pub reorder: f64,
    /// Probability a random payload byte of a frame is flipped.
    pub corrupt: f64,
    /// Probability a frame is delayed by 1–2 whole periods.
    pub delay: f64,
    /// `(rank, last_period)`: the rank ships periods `0..=last_period`
    /// and then dies — nothing further is even generated.
    pub deaths: Vec<(usize, usize)>,
}

impl FaultPlan {
    /// The clean transport: everything delivered exactly once, in order.
    pub fn fault_free(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            nranks: 3,
            frags_per_rank: 400,
            periods: 8,
            drop: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            corrupt: 0.0,
            delay: 0.0,
            deaths: Vec::new(),
        }
    }

    /// A randomly hostile transport: moderate intensities on every fault
    /// axis and, half the time, one rank dying mid-run — all derived
    /// from `seed`.
    pub fn random(seed: u64) -> FaultPlan {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xC4A0_5F00D);
        let nranks = rng.gen_range(2usize..5);
        let periods = rng.gen_range(4usize..10);
        let deaths = if rng.gen_bool(0.5) {
            vec![(rng.gen_range(0..nranks), rng.gen_range(1..periods.max(2) - 1))]
        } else {
            Vec::new()
        };
        FaultPlan {
            seed,
            nranks,
            frags_per_rank: rng.gen_range(150usize..500),
            periods,
            drop: rng.gen_range(0.0..0.15),
            duplicate: rng.gen_range(0.0..0.2),
            reorder: rng.gen_range(0.0..0.5),
            corrupt: rng.gen_range(0.0..0.1),
            delay: rng.gen_range(0.0..0.2),
            deaths,
        }
    }

    /// Does the plan inject any fault at all?
    pub fn is_fault_free(&self) -> bool {
        self.drop == 0.0
            && self.duplicate == 0.0
            && self.reorder == 0.0
            && self.corrupt == 0.0
            && self.delay == 0.0
            && self.deaths.is_empty()
    }

    /// The period a rank last ships, if it dies.
    fn last_period_of(&self, rank: usize) -> Option<usize> {
        self.deaths.iter().find(|(r, _)| *r == rank).map(|&(_, last)| last)
    }
}

/// What one chaos run produced.
#[derive(Debug)]
pub struct ChaosOutcome {
    /// Window reports, in window order (mid-stream closes then finish).
    pub reports: Vec<WindowReport>,
    /// The synthetic run's reporting period, ns.
    pub period_ns: u64,
    /// Frame deliveries attempted (faults applied).
    pub delivered: usize,
    /// Deliveries the ingestor admitted into the arena.
    pub admitted: u64,
    /// Deliveries rejected with `BadChecksum`.
    pub rejected_corrupt: usize,
    /// Deliveries rejected as sequence duplicates.
    pub rejected_duplicate: usize,
    /// Deliveries rejected for any other wire error.
    pub rejected_other: usize,
    /// Latest fragment end the arena admitted, ns (what the emitted
    /// window cover must reach).
    pub max_seen_ns: u64,
    /// Deliveries discarded under the late-data policy or the
    /// backpressure cap (accepted calls that admitted nothing).
    pub discarded: u64,
}

/// Latest fragment end across the run, ns.
fn t_end_ns(stgs: &[Stg]) -> u64 {
    stgs.iter()
        .flat_map(|s| {
            s.vertices()
                .iter()
                .flat_map(|v| v.fragments.iter())
                .chain(s.edges().iter().flat_map(|e| e.fragments.iter()))
        })
        .map(|f| f.end.ns())
        .max()
        .unwrap_or(0)
}

/// The synthetic STGs a plan runs over.
fn plan_stgs(plan: &FaultPlan) -> Vec<Stg> {
    synthetic_stgs(plan.nranks, plan.frags_per_rank, 8, plan.seed ^ 0xBAD_F00D)
}

/// The ingestion config a plan runs under: production straggler policy
/// scaled to the plan's period (degrade after 2 periods, dead after 4,
/// drop late data), unbounded buffering.
fn plan_config(period_ns: u64) -> VaproConfig {
    VaproConfig {
        report_period: VirtualTime::from_ns(period_ns),
        fault: FaultTolerance {
            straggler_horizon: Some(VirtualTime::from_ns(period_ns.saturating_mul(2))),
            dead_horizon: Some(VirtualTime::from_ns(period_ns.saturating_mul(4))),
            late_data: LateDataPolicy::Drop,
            max_buffered_bytes: None,
        },
        ..VaproConfig::default()
    }
}

/// Run one plan end to end.
pub fn run_plan(plan: &FaultPlan) -> ChaosOutcome {
    let stgs = plan_stgs(plan);
    let t_end = t_end_ns(&stgs);
    let period_ns = (t_end / plan.periods.max(1) as u64).max(1);
    let cfg = plan_config(period_ns);
    let mut rng = ChaCha8Rng::seed_from_u64(plan.seed);

    // Generate the per-period sequenced frames and apply the transport
    // faults. Each delivery carries a sort key (period-with-delay, slot)
    // so reordering and delaying are pure key perturbations. Shipping
    // runs to the ceiling of the data end so the tail period ships too.
    let mut deliveries: Vec<((u64, u64), Vec<u8>)> = Vec::new();
    let mut slot = 0u64;
    for k in 0..t_end.div_ceil(period_ns) as usize {
        let period = Window {
            start: VirtualTime::from_ns(k as u64 * period_ns),
            end: VirtualTime::from_ns((k as u64 + 1) * period_ns),
        };
        for (rank, stg) in stgs.iter().enumerate() {
            if plan.last_period_of(rank).is_some_and(|last| k > last) {
                continue; // the rank is dead: nothing is even generated
            }
            slot += 1;
            if rng.gen_bool(plan.drop) {
                continue;
            }
            let mut bytes = FragmentBatch::from_stg_starting_in(stg, rank, period)
                .with_seq(k as u64 + 1)
                .encode();
            if rng.gen_bool(plan.corrupt) {
                let pos = rng.gen_range(4..bytes.len());
                bytes[pos] ^= 1 << rng.gen_range(0..8u32);
            }
            let delayed = if rng.gen_bool(plan.delay) { rng.gen_range(1u64..3) } else { 0 };
            let jitter = if rng.gen_bool(plan.reorder) {
                rng.gen_range(0..1_000_000u64)
            } else {
                slot
            };
            if rng.gen_bool(plan.duplicate) {
                deliveries.push(((k as u64 + delayed, jitter + 1), bytes.clone()));
            }
            deliveries.push(((k as u64 + delayed, jitter), bytes));
        }
    }
    deliveries.sort_by_key(|(key, _)| *key);

    let mut ingestor =
        WindowedIngestor::new(plan.nranks, 8, cfg);
    let mut reports = Vec::new();
    let (mut corrupt, mut duplicate, mut other) = (0usize, 0usize, 0usize);
    let delivered = deliveries.len();
    for (_, bytes) in &deliveries {
        match ingestor.push_encoded(bytes) {
            Ok(closed) => reports.extend(closed),
            Err(WireError::BadChecksum { .. }) => corrupt += 1,
            Err(WireError::DuplicateSequence { .. }) => duplicate += 1,
            Err(_) => other += 1,
        }
    }
    let stats = ingestor.stats().clone();
    let max_seen_ns = ingestor.arena().max_end_ns();
    reports.extend(ingestor.finish());

    ChaosOutcome {
        reports,
        period_ns,
        delivered,
        admitted: stats.frames_admitted,
        rejected_corrupt: corrupt,
        rejected_duplicate: duplicate,
        rejected_other: other,
        max_seen_ns,
        discarded: stats.dropped_late_frames + stats.dropped_backpressure_frames,
    }
}

/// The robustness invariants every plan must satisfy. Returns the first
/// violation as a message, `Ok(())` when the outcome is sound.
pub fn check_invariants(plan: &FaultPlan, outcome: &ChaosOutcome) -> Result<(), String> {
    let period = VirtualTime::from_ns(outcome.period_ns);
    // The emitted windows are exactly the canonical cover of the
    // admitted data: every window closed eventually, none was invented.
    let expected = windows_covering(
        VirtualTime::ZERO,
        VirtualTime::from_ns(outcome.max_seen_ns),
        period,
    );
    if outcome.reports.len() != expected.len() {
        return Err(format!(
            "window cover mismatch: {} reports vs {} expected for data up to {} ns (plan {:?})",
            outcome.reports.len(),
            expected.len(),
            outcome.max_seen_ns,
            plan
        ));
    }
    for (r, w) in outcome.reports.iter().zip(&expected) {
        if r.window != *w {
            return Err(format!("window {:?} emitted where {:?} expected", r.window, w));
        }
    }
    // Accounting: every delivery is admitted, rejected or discarded.
    let handled = outcome.admitted
        + outcome.discarded
        + (outcome.rejected_corrupt + outcome.rejected_duplicate + outcome.rejected_other)
            as u64;
    if handled != outcome.delivered as u64 {
        return Err(format!(
            "{} deliveries but {} accounted (admitted {} + discarded {} + rejected {})",
            outcome.delivered,
            handled,
            outcome.admitted,
            outcome.discarded,
            outcome.rejected_corrupt + outcome.rejected_duplicate + outcome.rejected_other,
        ));
    }
    // Coverage sanity, window by window.
    let mut prev_counters = (0u64, 0u64, 0u64, 0u64);
    for r in &outcome.reports {
        let c = &r.coverage;
        if c.nranks != plan.nranks {
            return Err(format!("coverage nranks {} != plan {}", c.nranks, plan.nranks));
        }
        if c.ranks_complete > c.nranks {
            return Err(format!("{} of {} ranks complete", c.ranks_complete, c.nranks));
        }
        if !(0.0..=1.0).contains(&c.completeness) {
            return Err(format!("completeness {} out of range", c.completeness));
        }
        if c.ranks_absent.iter().chain(&c.ranks_dead).any(|&r| r >= plan.nranks) {
            return Err(format!("out-of-range rank in coverage {c:?}"));
        }
        // Counters are cumulative at close time: nondecreasing in close
        // order (reports are emitted in window order, closes are
        // chronological).
        let counters =
            (c.corrupt_frames, c.duplicate_frames, c.dropped_late_frames, c.seq_gaps);
        if counters.0 < prev_counters.0
            || counters.1 < prev_counters.1
            || counters.2 < prev_counters.2
        {
            return Err(format!(
                "cumulative coverage counters went backwards: {counters:?} after {prev_counters:?}"
            ));
        }
        prev_counters = counters;
    }
    // A clean transport admits everything and rejects nothing.
    if plan.is_fault_free()
        && (outcome.admitted != outcome.delivered as u64
            || outcome.rejected_corrupt + outcome.rejected_duplicate + outcome.rejected_other
                > 0)
    {
        return Err(format!(
            "fault-free plan lost frames: {} delivered, {} admitted",
            outcome.delivered, outcome.admitted
        ));
    }
    Ok(())
}

/// Field-wise equality of two report sequences (streamed vs one-shot),
/// as a `Result` so harness callers can surface the first divergence.
pub fn reports_identical(got: &[WindowReport], want: &[WindowReport]) -> Result<(), String> {
    if got.len() != want.len() {
        return Err(format!("{} reports vs {} expected", got.len(), want.len()));
    }
    for (g, w) in got.iter().zip(want) {
        if g.window != w.window {
            return Err(format!("window {:?} vs {:?}", g.window, w.window));
        }
        let same = g.result.series == w.result.series
            && g.result.rare_paths == w.result.rare_paths
            && g.result.comp_map == w.result.comp_map
            && g.result.comm_map == w.result.comm_map
            && g.result.io_map == w.result.io_map
            && g.result.comp_regions == w.result.comp_regions
            && g.result.comm_regions == w.result.comm_regions
            && g.result.io_regions == w.result.io_regions
            && g.result.coverage.to_bits() == w.result.coverage.to_bits()
            && g.result.edge_clusters == w.result.edge_clusters;
        if !same {
            return Err(format!("detection diverged in window {:?}", g.window));
        }
        if g.diagnoses != w.diagnoses {
            return Err(format!("diagnoses diverged in window {:?}", g.window));
        }
        if g.coverage != w.coverage {
            return Err(format!(
                "coverage diverged in window {:?}: {:?} vs {:?}",
                g.window, g.coverage, w.coverage
            ));
        }
    }
    Ok(())
}

/// The fault-free equivalence check: a clean plan streamed through the
/// chaos harness (straggler policy armed but never tripped) must equal
/// the one-shot windowed analysis bit for bit, including coverage.
pub fn fault_free_equivalence(plan: &FaultPlan) -> Result<(), String> {
    assert!(plan.is_fault_free(), "equivalence only holds for clean transports");
    let outcome = run_plan(plan);
    check_invariants(plan, &outcome)?;
    let stgs = plan_stgs(plan);
    let cfg = plan_config(outcome.period_ns);
    let reference =
        ServerPool::new(1, plan.nranks).analyze_windows(&stgs, plan.nranks, 8, &cfg);
    reports_identical(&outcome.reports, &reference)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_plans_are_bit_identical_to_one_shot() {
        fault_free_equivalence(&FaultPlan::fault_free(7)).expect("clean plan diverged");
    }

    #[test]
    fn a_hostile_plan_still_satisfies_the_invariants() {
        let plan = FaultPlan {
            drop: 0.1,
            duplicate: 0.2,
            reorder: 0.4,
            corrupt: 0.1,
            delay: 0.15,
            deaths: vec![(1, 2)],
            ..FaultPlan::fault_free(21)
        };
        let outcome = run_plan(&plan);
        check_invariants(&plan, &outcome).expect("invariants violated");
        assert!(outcome.delivered > 0);
    }

    #[test]
    fn a_killed_rank_leaves_degraded_but_complete_window_cover() {
        // One rank dies after period 1 of 8; every window past its data
        // still closes, with the rank dead/absent in coverage and
        // completeness < 1.
        let plan = FaultPlan { deaths: vec![(2, 1)], ..FaultPlan::fault_free(3) };
        let outcome = run_plan(&plan);
        check_invariants(&plan, &outcome).expect("invariants violated");
        let tail = outcome.reports.last().expect("windows closed");
        assert!(tail.coverage.ranks_dead.contains(&2), "{:?}", tail.coverage);
        assert!(tail.coverage.ranks_absent.contains(&2), "{:?}", tail.coverage);
        assert!(tail.coverage.completeness < 1.0);
        assert!(tail.coverage.is_degraded());
        // The cover still reaches the surviving ranks' full data.
        let last_end = outcome.reports.last().unwrap().window.end.ns();
        assert!(last_end >= outcome.max_seen_ns, "cover stopped early");
    }

    #[test]
    fn plans_are_deterministic_in_their_seed() {
        let plan = FaultPlan::random(99);
        assert_eq!(plan, FaultPlan::random(99));
        let a = run_plan(&plan);
        let b = run_plan(&plan);
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.admitted, b.admitted);
        assert_eq!(a.reports.len(), b.reports.len());
        reports_identical(&a.reports, &b.reports).expect("same plan diverged");
    }
}
