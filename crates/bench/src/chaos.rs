//! Chaos harness: seeded fault injection against the streaming
//! ingestion pipeline.
//!
//! A [`FaultPlan`] describes — deterministically, from a seed — what the
//! transport does to each shipped frame: drop it, duplicate it, reorder
//! it within its reporting period, corrupt a byte, or delay it by whole
//! periods; which ranks die mid-run (stop shipping after a given
//! period); which ranks are *born* mid-run (join the deployment at a
//! given period); and whether a backpressure byte cap is armed.
//! [`plan_events`] materialises the plan as an explicit, inspectable
//! [`TransportEvent`] schedule — every frame delivery annotated with
//! what the transport did to it ([`FrameMeta`]), plus rank births —
//! which is what the VOPR driver (`crates/vopr`) replays against its
//! admission oracle. [`run_plan`] pushes that schedule through a
//! [`WindowedIngestor`] under a production straggler policy and returns
//! what came out; [`run_plan_verbose`] additionally yields a per-event
//! log for seed-repro debugging.
//!
//! Two checks ride on top:
//!
//! * [`check_invariants`] — under *any* plan, ingestion must not panic,
//!   the emitted windows must exactly tile `[0, max admitted fragment
//!   end)` (windows always eventually close, none invented), and the
//!   coverage accounting must be internally consistent;
//! * [`fault_free_equivalence`] — a plan with every intensity at zero
//!   and no deaths must reproduce the one-shot windowed analysis
//!   ([`ServerPool::analyze_windows`]) bit for bit, even with the
//!   straggler policy armed;
//! * [`pipeline_equivalence`] — *any* plan, hostile or clean, must
//!   produce the same report sequence whether windows are analysed
//!   inline (`pipeline_depth: 0`) or through the bounded pipelined
//!   stage (the default depth), with identical delivery accounting.
//!
//! Every run also executes with watermark arena eviction armed (it is
//! unconditional), so the invariants double as a reclamation soak: the
//! outcome carries the arena's resident/high-water byte counters and
//! [`check_invariants`] insists they stay internally consistent.

use crate::perf::synthetic_stgs;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use vapro_core::detect::window::{windows_covering, Window};
use vapro_core::wire::FragmentBatch;
use vapro_core::{
    FaultTolerance, LateDataPolicy, ServerPool, Stg, VaproConfig, WindowReport,
    WindowedIngestor, WireError,
};
use vapro_sim::VirtualTime;

/// A deterministic fault-injection schedule. Intensities are per-frame
/// probabilities in `[0, 1]`, drawn from `seed` alone — the same plan
/// always produces the same byte-level delivery sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for every random decision the plan makes.
    pub seed: u64,
    /// Ranks in the synthetic run.
    pub nranks: usize,
    /// Computation fragments per rank.
    pub frags_per_rank: usize,
    /// Reporting periods the run is sliced into.
    pub periods: usize,
    /// Probability a frame is silently dropped in transit.
    pub drop: f64,
    /// Probability a frame is delivered twice (retransmission).
    pub duplicate: f64,
    /// Probability a frame is reordered within its reporting period.
    pub reorder: f64,
    /// Probability a random payload byte of a frame is flipped.
    pub corrupt: f64,
    /// Probability a frame is delayed by 1–2 whole periods.
    pub delay: f64,
    /// `(rank, last_period)`: the rank ships periods `0..=last_period`
    /// and then dies — nothing further is even generated.
    pub deaths: Vec<(usize, usize)>,
    /// Ranks joining mid-stream: each entry is the first period the
    /// newborn ships. Born rank ids follow the initial ranks, assigned
    /// in ascending birth order, and each newborn's sequence numbering
    /// starts fresh at 1.
    pub births: Vec<usize>,
    /// Backpressure cap forwarded to the ingestor's
    /// `fault.max_buffered_bytes`: ahead-of-watermark frames past this
    /// many buffered bytes are accounted drops.
    pub max_buffered_bytes: Option<u64>,
}

impl FaultPlan {
    /// The clean transport: everything delivered exactly once, in order.
    pub fn fault_free(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            nranks: 3,
            frags_per_rank: 400,
            periods: 8,
            drop: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            corrupt: 0.0,
            delay: 0.0,
            deaths: Vec::new(),
            births: Vec::new(),
            max_buffered_bytes: None,
        }
    }

    /// A randomly hostile transport: moderate intensities on every fault
    /// axis and, half the time, one rank dying mid-run — all derived
    /// from `seed`.
    pub fn random(seed: u64) -> FaultPlan {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xC4A0_5F00D);
        let nranks = rng.gen_range(2usize..5);
        let periods = rng.gen_range(4usize..10);
        let deaths = if rng.gen_bool(0.5) {
            vec![(rng.gen_range(0..nranks), rng.gen_range(1..periods.max(2) - 1))]
        } else {
            Vec::new()
        };
        let mut plan = FaultPlan {
            seed,
            nranks,
            frags_per_rank: rng.gen_range(150usize..500),
            periods,
            drop: rng.gen_range(0.0..0.15),
            duplicate: rng.gen_range(0.0..0.2),
            reorder: rng.gen_range(0.0..0.5),
            corrupt: rng.gen_range(0.0..0.1),
            delay: rng.gen_range(0.0..0.2),
            deaths,
            births: Vec::new(),
            max_buffered_bytes: None,
        };
        // Drawn after every pre-existing axis so older seeds keep their
        // exact historical plans on those axes.
        if plan.periods >= 4 && rng.gen_bool(0.25) {
            plan.births = vec![rng.gen_range(1..=3usize.min(plan.periods - 2))];
        }
        if rng.gen_bool(0.2) {
            plan.max_buffered_bytes = Some(rng.gen_range(4_096u64..65_536));
        }
        plan
    }

    /// Does the plan inject any fault at all?
    pub fn is_fault_free(&self) -> bool {
        self.drop == 0.0
            && self.duplicate == 0.0
            && self.reorder == 0.0
            && self.corrupt == 0.0
            && self.delay == 0.0
            && self.deaths.is_empty()
            && self.births.is_empty()
            && self.max_buffered_bytes.is_none()
    }

    /// Ranks present by the end of the run: initial plus born.
    pub fn total_ranks(&self) -> usize {
        self.nranks + self.births.len()
    }

    /// Born ranks as `(rank_id, first_period)`, in birth order: born
    /// rank ids follow the initial ranks, earliest birth first.
    pub fn birth_schedule(&self) -> Vec<(usize, usize)> {
        let mut firsts = self.births.clone();
        firsts.sort_unstable();
        firsts.iter().enumerate().map(|(i, &p)| (self.nranks + i, p)).collect()
    }
}

/// One-line human summary of a plan, printed with the seed on any
/// invariant violation so a failure is understandable before it is
/// reproduced.
pub fn plan_summary(plan: &FaultPlan) -> String {
    format!(
        "seed={} ranks={}(+{} born) frags={} periods={} drop={:.2} dup={:.2} \
         reorder={:.2} corrupt={:.2} delay={:.2} deaths={:?} births={:?} cap={:?}",
        plan.seed,
        plan.nranks,
        plan.births.len(),
        plan.frags_per_rank,
        plan.periods,
        plan.drop,
        plan.duplicate,
        plan.reorder,
        plan.corrupt,
        plan.delay,
        plan.deaths,
        plan.births,
        plan.max_buffered_bytes,
    )
}

/// What one chaos run produced.
#[derive(Debug)]
pub struct ChaosOutcome {
    /// Window reports, in window order (mid-stream closes then finish).
    pub reports: Vec<WindowReport>,
    /// The synthetic run's reporting period, ns.
    pub period_ns: u64,
    /// Frame deliveries attempted (faults applied).
    pub delivered: usize,
    /// Deliveries the ingestor admitted into the arena.
    pub admitted: u64,
    /// Deliveries rejected with `BadChecksum`.
    pub rejected_corrupt: usize,
    /// Deliveries rejected as sequence duplicates.
    pub rejected_duplicate: usize,
    /// Deliveries rejected for any other wire error.
    pub rejected_other: usize,
    /// Latest fragment end the arena admitted, ns (what the emitted
    /// window cover must reach).
    pub max_seen_ns: u64,
    /// Deliveries discarded under the late-data policy or the
    /// backpressure cap (accepted calls that admitted nothing).
    pub discarded: u64,
    /// Arena bytes still resident when the stream ended (before the
    /// final `finish`): the watermark-eviction steady state.
    pub arena_resident_bytes: u64,
    /// Peak arena bytes across the run.
    pub arena_high_water_bytes: u64,
}

/// Latest fragment end across the run, ns.
fn t_end_ns(stgs: &[Stg]) -> u64 {
    stgs.iter()
        .flat_map(|s| {
            s.vertices()
                .iter()
                .flat_map(|v| v.fragments.iter())
                .chain(s.edges().iter().flat_map(|e| e.fragments.iter()))
        })
        .map(|f| f.end.ns())
        .max()
        .unwrap_or(0)
}

/// The synthetic STGs a plan runs over: one per rank, born ranks
/// included (their data exists from t=0; they just don't *ship* it
/// until their birth period).
fn plan_stgs(plan: &FaultPlan) -> Vec<Stg> {
    synthetic_stgs(plan.total_ranks(), plan.frags_per_rank, 8, plan.seed ^ 0xBAD_F00D)
}

/// The ingestion config a plan runs under: production straggler policy
/// scaled to `period_ns` (degrade after 2 periods, dead after 4, drop
/// late data), unbounded buffering unless the caller arms a cap.
/// Public so the VOPR driver replays scenarios under the exact same
/// policy the chaos harness uses.
pub fn plan_config(period_ns: u64) -> VaproConfig {
    VaproConfig {
        report_period: VirtualTime::from_ns(period_ns),
        fault: FaultTolerance {
            straggler_horizon: Some(VirtualTime::from_ns(period_ns.saturating_mul(2))),
            dead_horizon: Some(VirtualTime::from_ns(period_ns.saturating_mul(4))),
            late_data: LateDataPolicy::Drop,
            max_buffered_bytes: None,
        },
        ..VaproConfig::default()
    }
}

/// The plan's reporting period: the synthetic data end split into the
/// requested period count.
pub fn plan_period_ns(plan: &FaultPlan) -> u64 {
    (t_end_ns(&plan_stgs(plan)) / plan.periods.max(1) as u64).max(1)
}

// ---------------------------------------------------------------------
// The transport event model. A plan materialises into an explicit
// schedule of events — frames with injection metadata, plus rank
// births — that both the chaos runner and the VOPR driver replay. The
// metadata is what makes per-delivery *prediction* possible: an
// independent admission oracle can say what the server must do with
// each delivery before pushing it.

/// What the transport did to one delivered frame, alongside its bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameMeta {
    /// The encoded frame as delivered (corruption applied).
    pub bytes: Vec<u8>,
    /// Shipping rank (as stamped in the frame before corruption).
    pub rank: usize,
    /// Reporting period the frame belongs to.
    pub period: usize,
    /// Stamped sequence number.
    pub seq: u64,
    /// The shipped span's window start, ns.
    pub window_start_ns: u64,
    /// The shipped span's window end, ns.
    pub window_end_ns: u64,
    /// A CRC-covered byte was flipped in transit.
    pub corrupted: bool,
    /// This delivery is a retransmission of an already-sent frame.
    pub retransmit: bool,
    /// Whole periods of transit delay.
    pub delayed: u64,
    /// The frame was reordered within its arrival period.
    pub reordered: bool,
    /// The frame is structurally malformed (truncated or garbage) —
    /// never produced by plans, injected directly by the VOPR driver.
    pub malformed: bool,
}

/// One event of a materialised transport schedule, in arrival order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportEvent {
    /// A frame arrives at the ingestor.
    Frame(FrameMeta),
    /// A rank joins the deployment (`WindowedIngestor::add_rank`).
    Birth {
        /// The rank id the newborn will ship under.
        rank: usize,
    },
}

/// Transport-side injection tallies of one generated schedule, for
/// fault-point coverage accounting (a dropped frame leaves no event, so
/// the schedule alone can't show the drop axis fired).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct InjectionCounts {
    /// Frames silently dropped (never delivered).
    pub dropped: u64,
    /// Extra retransmitted deliveries.
    pub duplicated: u64,
    /// Frames reordered within their arrival period.
    pub reordered: u64,
    /// Frames with a CRC-covered byte flipped.
    pub corrupted: u64,
    /// Frames delayed by whole periods.
    pub delayed: u64,
    /// Ranks that die mid-run.
    pub deaths: u64,
    /// Ranks born mid-run.
    pub births: u64,
}

/// One transport's fault axes, shared by the solo and fleet generators.
struct TransportAxes<'a> {
    drop: f64,
    duplicate: f64,
    reorder: f64,
    corrupt: f64,
    delay: f64,
    deaths: &'a [(usize, usize)],
    /// `(rank_id, first_period)` in birth order; empty for fleet jobs.
    birth_schedule: Vec<(usize, usize)>,
}

/// Generate one transport's event schedule: sequenced per-period frames
/// with faults applied, plus birth events, sorted into arrival order.
/// Each delivery carries a sort key (period-with-delay, slot) so
/// reordering and delaying are pure key perturbations; births sort at
/// slot 0 of their period, ahead of that period's frames. Shipping runs
/// to the ceiling of the data end so the tail period ships too.
/// Corruption only ever flips bytes the CRC covers (crc field onward —
/// never the magic or version byte, where a flip can masquerade as a
/// different frame layout instead of failing the checksum), so every
/// corrupted frame is predictably rejected at decode.
fn generate_events(
    stgs: &[Stg],
    period_ns: u64,
    rng_seed: u64,
    axes: &TransportAxes<'_>,
    encode: &dyn Fn(FragmentBatch) -> Vec<u8>,
) -> (Vec<TransportEvent>, InjectionCounts) {
    let t_end = t_end_ns(stgs);
    let mut rng = ChaCha8Rng::seed_from_u64(rng_seed);
    let mut counts = InjectionCounts {
        deaths: axes.deaths.len() as u64,
        births: axes.birth_schedule.len() as u64,
        ..InjectionCounts::default()
    };
    let mut keyed: Vec<((u64, u64), TransportEvent)> = Vec::new();
    for &(rank, first) in &axes.birth_schedule {
        keyed.push(((first as u64, 0), TransportEvent::Birth { rank }));
    }
    let mut slot = 0u64;
    for k in 0..t_end.div_ceil(period_ns) as usize {
        let period = Window {
            start: VirtualTime::from_ns(k as u64 * period_ns),
            end: VirtualTime::from_ns((k as u64 + 1) * period_ns),
        };
        for (rank, stg) in stgs.iter().enumerate() {
            if axes.deaths.iter().any(|&(r, last)| r == rank && k > last) {
                continue; // the rank is dead: nothing is even generated
            }
            let first = axes
                .birth_schedule
                .iter()
                .find(|&&(r, _)| r == rank)
                .map_or(0, |&(_, f)| f);
            if k < first {
                continue; // not born yet: nothing shipped
            }
            slot += 1;
            if rng.gen_bool(axes.drop) {
                counts.dropped += 1;
                continue;
            }
            // A newborn's sequence numbering starts fresh at 1.
            let seq = (k - first) as u64 + 1;
            let mut bytes =
                encode(FragmentBatch::from_stg_starting_in(stg, rank, period).with_seq(seq));
            let corrupted = rng.gen_bool(axes.corrupt);
            if corrupted {
                counts.corrupted += 1;
                let pos = rng.gen_range(9..bytes.len());
                bytes[pos] ^= 1 << rng.gen_range(0..8u32);
            }
            let delayed = if rng.gen_bool(axes.delay) {
                counts.delayed += 1;
                rng.gen_range(1u64..3)
            } else {
                0
            };
            let reordered = rng.gen_bool(axes.reorder);
            let jitter = if reordered {
                counts.reordered += 1;
                rng.gen_range(0..1_000_000u64)
            } else {
                slot
            };
            let meta = FrameMeta {
                bytes,
                rank,
                period: k,
                seq,
                window_start_ns: period.start.ns(),
                window_end_ns: period.end.ns(),
                corrupted,
                retransmit: false,
                delayed,
                reordered,
                malformed: false,
            };
            if rng.gen_bool(axes.duplicate) {
                counts.duplicated += 1;
                let dup = FrameMeta { retransmit: true, ..meta.clone() };
                keyed.push(((k as u64 + delayed, jitter + 1), TransportEvent::Frame(dup)));
            }
            keyed.push(((k as u64 + delayed, jitter), TransportEvent::Frame(meta)));
        }
    }
    // Stable by key: equal keys keep push order, so the whole schedule
    // is a pure function of (stgs, axes, seed).
    keyed.sort_by_key(|a| a.0);
    (keyed.into_iter().map(|(_, e)| e).collect(), counts)
}

/// Materialise a plan's transport schedule and injection tallies.
/// Deterministic in the plan alone.
pub fn plan_events(plan: &FaultPlan) -> (Vec<TransportEvent>, InjectionCounts) {
    let stgs = plan_stgs(plan);
    let period_ns = (t_end_ns(&stgs) / plan.periods.max(1) as u64).max(1);
    let axes = TransportAxes {
        drop: plan.drop,
        duplicate: plan.duplicate,
        reorder: plan.reorder,
        corrupt: plan.corrupt,
        delay: plan.delay,
        deaths: &plan.deaths,
        birth_schedule: plan.birth_schedule(),
    };
    generate_events(&stgs, period_ns, plan.seed, &axes, &|b| b.encode())
}

/// Whether the reference ingestor registers born ranks at their birth
/// event or as (silent) members from the start — the two sides of the
/// birth-equivalence invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Membership {
    AtBirth,
    FromStart,
}

/// Run one plan end to end under the default (pipelined) configuration.
pub fn run_plan(plan: &FaultPlan) -> ChaosOutcome {
    run_plan_with_depth(plan, VaproConfig::default().pipeline_depth)
}

/// Run one plan end to end with an explicit analysis-pipeline depth
/// (`0` = inline analysis on the admission thread).
pub fn run_plan_with_depth(plan: &FaultPlan, pipeline_depth: usize) -> ChaosOutcome {
    run_plan_with_options(plan, pipeline_depth, Membership::AtBirth, None)
}

/// Run one plan under the default depth, also producing a per-event log
/// (one line per delivery with its injection annotations and admission
/// outcome, plus window-close lines) — the `-v` seed-repro workflow.
pub fn run_plan_verbose(plan: &FaultPlan) -> (ChaosOutcome, Vec<String>) {
    let mut log = Vec::new();
    let outcome = run_plan_with_options(
        plan,
        VaproConfig::default().pipeline_depth,
        Membership::AtBirth,
        Some(&mut log),
    );
    (outcome, log)
}

fn run_plan_with_options(
    plan: &FaultPlan,
    pipeline_depth: usize,
    membership: Membership,
    mut log: Option<&mut Vec<String>>,
) -> ChaosOutcome {
    let period_ns = plan_period_ns(plan);
    let mut cfg = VaproConfig { pipeline_depth, ..plan_config(period_ns) };
    cfg.fault.max_buffered_bytes = plan.max_buffered_bytes;
    let (events, _) = plan_events(plan);

    let initial = match membership {
        Membership::AtBirth => plan.nranks,
        Membership::FromStart => plan.total_ranks(),
    };
    let mut ingestor = WindowedIngestor::new(initial, 8, cfg);
    let mut reports = Vec::new();
    let (mut corrupt, mut duplicate, mut other) = (0usize, 0usize, 0usize);
    let mut delivered = 0usize;
    for event in &events {
        match event {
            TransportEvent::Birth { rank } => {
                if membership == Membership::AtBirth {
                    let got = ingestor.add_rank();
                    if let Some(log) = log.as_deref_mut() {
                        log.push(format!("birth rank={got}"));
                    }
                } else if let Some(log) = log.as_deref_mut() {
                    log.push(format!("birth rank={rank} (member from start)"));
                }
            }
            TransportEvent::Frame(f) => {
                delivered += 1;
                let (label, closed) = match ingestor.push_encoded(&f.bytes) {
                    Ok(closed) => ("admitted", closed),
                    Err(WireError::BadChecksum { .. }) => {
                        corrupt += 1;
                        ("rejected: corrupt", Vec::new())
                    }
                    Err(WireError::DuplicateSequence { .. }) => {
                        duplicate += 1;
                        ("rejected: duplicate", Vec::new())
                    }
                    Err(_) => {
                        other += 1;
                        ("rejected: other", Vec::new())
                    }
                };
                if let Some(log) = log.as_deref_mut() {
                    log.push(frame_log_line(f, label));
                    for r in &closed {
                        log.push(format!(
                            "close window [{}..{}) completeness={:.3}",
                            r.window.start.ns(),
                            r.window.end.ns(),
                            r.coverage.completeness
                        ));
                    }
                }
                reports.extend(closed);
            }
        }
    }
    let stats = ingestor.stats().clone();
    let max_seen_ns = ingestor.arena().max_end_ns();
    let arena_resident_bytes = ingestor.arena().resident_bytes();
    let arena_high_water_bytes = ingestor.arena().high_water_bytes();
    reports.extend(ingestor.finish());

    ChaosOutcome {
        reports,
        period_ns,
        delivered,
        admitted: stats.frames_admitted,
        rejected_corrupt: corrupt,
        rejected_duplicate: duplicate,
        rejected_other: other,
        max_seen_ns,
        discarded: stats.dropped_late_frames + stats.dropped_backpressure_frames,
        arena_resident_bytes,
        arena_high_water_bytes,
    }
}

/// One verbose-log line for a delivered frame.
fn frame_log_line(f: &FrameMeta, outcome: &str) -> String {
    let mut tags = String::new();
    if f.corrupted {
        tags.push_str(" [corrupt]");
    }
    if f.retransmit {
        tags.push_str(" [dup]");
    }
    if f.delayed > 0 {
        tags.push_str(&format!(" [delay={}]", f.delayed));
    }
    if f.reordered {
        tags.push_str(" [reorder]");
    }
    if f.malformed {
        tags.push_str(" [malformed]");
    }
    format!(
        "frame rank={} period={} seq={} span=[{}..{}){} -> {}",
        f.rank, f.period, f.seq, f.window_start_ns, f.window_end_ns, tags, outcome
    )
}

/// The robustness invariants every plan must satisfy. Returns the first
/// violation as a message, `Ok(())` when the outcome is sound.
pub fn check_invariants(plan: &FaultPlan, outcome: &ChaosOutcome) -> Result<(), String> {
    let period = VirtualTime::from_ns(outcome.period_ns);
    // The emitted windows are exactly the canonical cover of the
    // admitted data: every window closed eventually, none was invented.
    let expected = windows_covering(
        VirtualTime::ZERO,
        VirtualTime::from_ns(outcome.max_seen_ns),
        period,
    );
    if outcome.reports.len() != expected.len() {
        return Err(format!(
            "window cover mismatch: {} reports vs {} expected for data up to {} ns (plan {:?})",
            outcome.reports.len(),
            expected.len(),
            outcome.max_seen_ns,
            plan
        ));
    }
    for (r, w) in outcome.reports.iter().zip(&expected) {
        if r.window != *w {
            return Err(format!("window {:?} emitted where {:?} expected", r.window, w));
        }
    }
    // Accounting: every delivery is admitted, rejected or discarded.
    let handled = outcome.admitted
        + outcome.discarded
        + (outcome.rejected_corrupt + outcome.rejected_duplicate + outcome.rejected_other)
            as u64;
    if handled != outcome.delivered as u64 {
        return Err(format!(
            "{} deliveries but {} accounted (admitted {} + discarded {} + rejected {})",
            outcome.delivered,
            handled,
            outcome.admitted,
            outcome.discarded,
            outcome.rejected_corrupt + outcome.rejected_duplicate + outcome.rejected_other,
        ));
    }
    // Coverage sanity, window by window. With births the deployment
    // width is monotone: it starts at the plan's initial rank count,
    // never exceeds initial+born, and never shrinks across close order.
    let mut prev_counters = (0u64, 0u64, 0u64, 0u64);
    let mut prev_nranks = plan.nranks;
    for r in &outcome.reports {
        let c = &r.coverage;
        if c.nranks < plan.nranks || c.nranks > plan.total_ranks() {
            return Err(format!(
                "coverage nranks {} outside [{}, {}]",
                c.nranks,
                plan.nranks,
                plan.total_ranks()
            ));
        }
        if c.nranks < prev_nranks {
            return Err(format!(
                "deployment width went backwards: {} after {}",
                c.nranks, prev_nranks
            ));
        }
        prev_nranks = c.nranks;
        if c.ranks_complete > c.nranks {
            return Err(format!("{} of {} ranks complete", c.ranks_complete, c.nranks));
        }
        if !(0.0..=1.0).contains(&c.completeness) {
            return Err(format!("completeness {} out of range", c.completeness));
        }
        if c.ranks_absent.iter().chain(&c.ranks_dead).any(|&r| r >= c.nranks) {
            return Err(format!("out-of-range rank in coverage {c:?}"));
        }
        // Counters are cumulative at close time: nondecreasing in close
        // order (reports are emitted in window order, closes are
        // chronological).
        let counters =
            (c.corrupt_frames, c.duplicate_frames, c.dropped_late_frames, c.seq_gaps);
        if counters.0 < prev_counters.0
            || counters.1 < prev_counters.1
            || counters.2 < prev_counters.2
        {
            return Err(format!(
                "cumulative coverage counters went backwards: {counters:?} after {prev_counters:?}"
            ));
        }
        prev_counters = counters;
    }
    // Arena accounting: the eviction bookkeeping can never leave more
    // bytes resident than the recorded peak, and a run that admitted
    // anything must have registered a peak.
    if outcome.arena_resident_bytes > outcome.arena_high_water_bytes {
        return Err(format!(
            "arena resident {} bytes above its own high water {}",
            outcome.arena_resident_bytes, outcome.arena_high_water_bytes
        ));
    }
    if outcome.admitted > 0 && outcome.arena_high_water_bytes == 0 {
        return Err("frames admitted but arena high water never moved".to_string());
    }
    // A clean transport admits everything and rejects nothing.
    if plan.is_fault_free()
        && (outcome.admitted != outcome.delivered as u64
            || outcome.rejected_corrupt + outcome.rejected_duplicate + outcome.rejected_other
                > 0)
    {
        return Err(format!(
            "fault-free plan lost frames: {} delivered, {} admitted",
            outcome.delivered, outcome.admitted
        ));
    }
    Ok(())
}

/// Field-wise equality of one report pair, as a `Result` naming the
/// first diverging field group.
pub fn report_pair_identical(g: &WindowReport, w: &WindowReport) -> Result<(), String> {
    if g.window != w.window {
        return Err(format!("window {:?} vs {:?}", g.window, w.window));
    }
    let same = g.result.series == w.result.series
        && g.result.rare_paths == w.result.rare_paths
        && g.result.comp_map == w.result.comp_map
        && g.result.comm_map == w.result.comm_map
        && g.result.io_map == w.result.io_map
        && g.result.comp_regions == w.result.comp_regions
        && g.result.comm_regions == w.result.comm_regions
        && g.result.io_regions == w.result.io_regions
        && g.result.coverage.to_bits() == w.result.coverage.to_bits()
        && g.result.edge_clusters == w.result.edge_clusters;
    if !same {
        return Err(format!("detection diverged in window {:?}", g.window));
    }
    if g.diagnoses != w.diagnoses {
        return Err(format!("diagnoses diverged in window {:?}", g.window));
    }
    if g.coverage != w.coverage {
        return Err(format!(
            "coverage diverged in window {:?}: {:?} vs {:?}",
            g.window, g.coverage, w.coverage
        ));
    }
    Ok(())
}

/// Field-wise equality of two report sequences (streamed vs one-shot),
/// as a `Result` so harness callers can surface the first divergence.
pub fn reports_identical(got: &[WindowReport], want: &[WindowReport]) -> Result<(), String> {
    if got.len() != want.len() {
        return Err(format!("{} reports vs {} expected", got.len(), want.len()));
    }
    for (g, w) in got.iter().zip(want) {
        report_pair_identical(g, w)?;
    }
    Ok(())
}

/// The pipeline equivalence check: under *any* plan — faults, deaths,
/// rejections and all — the bounded pipelined stage must produce the
/// same report sequence and the same delivery accounting as inline
/// analysis. Deferred emission may shift *when* reports surface during
/// the stream, but the ordered union is bit-identical.
pub fn pipeline_equivalence(plan: &FaultPlan) -> Result<(), String> {
    let pipelined = run_plan(plan);
    let inline = run_plan_with_depth(plan, 0);
    check_invariants(plan, &pipelined)?;
    check_invariants(plan, &inline)?;
    reports_identical(&pipelined.reports, &inline.reports)
        .map_err(|e| format!("pipelined reports diverged from inline: {e}"))?;
    let acct = |o: &ChaosOutcome| {
        (o.admitted, o.discarded, o.rejected_corrupt, o.rejected_duplicate, o.rejected_other)
    };
    if acct(&pipelined) != acct(&inline) {
        return Err(format!(
            "pipelined accounting {:?} diverged from inline {:?}",
            acct(&pipelined),
            acct(&inline)
        ));
    }
    // Sealing snapshots windows out of the arena, so reclamation — and
    // therefore the resident/high-water trajectory — is independent of
    // where analysis runs.
    if pipelined.arena_high_water_bytes != inline.arena_high_water_bytes
        || pipelined.arena_resident_bytes != inline.arena_resident_bytes
    {
        return Err(format!(
            "arena bytes diverged across pipeline depths: pipelined {}/{} vs inline {}/{}",
            pipelined.arena_resident_bytes,
            pipelined.arena_high_water_bytes,
            inline.arena_resident_bytes,
            inline.arena_high_water_bytes
        ));
    }
    Ok(())
}

/// The one-shot windowed analysis of a plan's full synthetic data —
/// the bit-identity reference for clean streamed runs. Public so the
/// VOPR driver can compare its own replays against it window by window.
pub fn one_shot_reference(plan: &FaultPlan) -> Vec<WindowReport> {
    let stgs = plan_stgs(plan);
    let cfg = plan_config(plan_period_ns(plan));
    ServerPool::new(1, plan.total_ranks()).analyze_windows(&stgs, plan.total_ranks(), 8, &cfg)
}

/// The fault-free equivalence check: a clean plan streamed through the
/// chaos harness (straggler policy armed but never tripped) must equal
/// the one-shot windowed analysis bit for bit, including coverage.
pub fn fault_free_equivalence(plan: &FaultPlan) -> Result<(), String> {
    assert!(plan.is_fault_free(), "equivalence only holds for clean transports");
    let outcome = run_plan(plan);
    check_invariants(plan, &outcome)?;
    reports_identical(&outcome.reports, &one_shot_reference(plan))
}

/// The rank-birth invariant. On an otherwise clean transport, ranks
/// joining mid-stream must not perturb anything from their join point
/// on: every window starting at or after the last birth must be
/// bit-identical — detection, diagnoses and coverage — to a reference
/// run where the same ranks were registered members from the start
/// (shipping the exact same frames). Windows closing entirely before a
/// birth may legitimately differ in deployment width (that is the
/// elastic-membership contract), which is why the comparison is anchored
/// at the birth boundary rather than window zero.
pub fn birth_equivalence(plan: &FaultPlan) -> Result<(), String> {
    assert!(!plan.births.is_empty(), "birth equivalence needs at least one birth");
    assert!(
        plan.drop == 0.0
            && plan.duplicate == 0.0
            && plan.reorder == 0.0
            && plan.corrupt == 0.0
            && plan.delay == 0.0
            && plan.deaths.is_empty()
            && plan.max_buffered_bytes.is_none(),
        "birth equivalence needs an otherwise clean transport"
    );
    assert!(
        plan.births.iter().all(|&p| (1..=3).contains(&p)) && plan.periods >= 6,
        "births must land within the dead horizon (4 periods) with room to compare after"
    );
    let born = run_plan(plan);
    check_invariants(plan, &born)?;
    let reference = run_plan_with_options(
        plan,
        VaproConfig::default().pipeline_depth,
        Membership::FromStart,
        None,
    );
    if born.reports.len() != reference.reports.len() {
        return Err(format!(
            "born run closed {} windows, always-present reference closed {}",
            born.reports.len(),
            reference.reports.len()
        ));
    }
    // The transport is clean, so the born run loses nothing.
    if born.admitted != born.delivered as u64 {
        return Err(format!(
            "clean birth plan lost frames: {} delivered, {} admitted",
            born.delivered, born.admitted
        ));
    }
    let birth_ns =
        plan.births.iter().max().map_or(0, |&p| p as u64) * born.period_ns;
    let mut compared = 0usize;
    for (g, w) in born.reports.iter().zip(&reference.reports) {
        if g.window.start.ns() < birth_ns {
            continue;
        }
        compared += 1;
        if g.coverage.nranks != plan.total_ranks() {
            return Err(format!(
                "post-birth window {:?} closed with width {} (expected {})",
                g.window,
                g.coverage.nranks,
                plan.total_ranks()
            ));
        }
        report_pair_identical(g, w)
            .map_err(|e| format!("born run diverged from always-present reference: {e}"))?;
    }
    if compared == 0 {
        return Err("no post-birth windows to compare; grow the plan's periods".to_string());
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Fleet chaos: the same seeded fault injection aimed at the sharded
// multi-tenant plane. A [`FleetPlan`] interleaves several jobs' frame
// streams — each job with its *own* fault axes — through one
// [`FleetIngestor`]. The check is isolation by construction: every
// job's fleet output must be bit-identical to a solo [`WindowedIngestor`]
// fed exactly that job's delivery sequence, so a chaotic tenant can
// neither corrupt nor stall a clean one; and every job's solo reference
// must itself tile its admitted data exactly.

use std::collections::BTreeMap;
use vapro_core::{FleetConfig, FleetIngestor, FleetReport, FleetWindow, JobKey};

/// One job inside a fleet plan: its routing identity, its synthetic-run
/// shape, and its private transport fault axes.
#[derive(Debug, Clone, PartialEq)]
pub struct JobPlan {
    /// Owning tenant (registered with an unlimited budget by the runner).
    pub tenant: u32,
    /// Job id within the tenant.
    pub job: u32,
    /// Ranks in this job's synthetic run.
    pub nranks: usize,
    /// Computation fragments per rank.
    pub frags_per_rank: usize,
    /// Probability a frame is silently dropped in transit.
    pub drop: f64,
    /// Probability a frame is delivered twice.
    pub duplicate: f64,
    /// Probability a frame is reordered within its reporting period.
    pub reorder: f64,
    /// Probability a frame has a CRC-covered payload byte flipped.
    pub corrupt: f64,
    /// Probability a frame is delayed by 1–2 whole periods.
    pub delay: f64,
    /// `(rank, last_period)` deaths, as in [`FaultPlan::deaths`].
    pub deaths: Vec<(usize, usize)>,
}

impl JobPlan {
    /// A clean job: everything delivered exactly once, in order.
    pub fn clean(tenant: u32, job: u32) -> JobPlan {
        JobPlan {
            tenant,
            job,
            nranks: 2,
            frags_per_rank: 200,
            drop: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            corrupt: 0.0,
            delay: 0.0,
            deaths: Vec::new(),
        }
    }

    /// Does this job's transport inject any fault at all?
    pub fn is_fault_free(&self) -> bool {
        self.drop == 0.0
            && self.duplicate == 0.0
            && self.reorder == 0.0
            && self.corrupt == 0.0
            && self.delay == 0.0
            && self.deaths.is_empty()
    }

    /// The fleet routing key.
    pub fn key(&self) -> JobKey {
        JobKey { tenant: self.tenant, job: self.job }
    }
}

/// A deterministic multi-job fault schedule over the fleet plane.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetPlan {
    /// Seed for every random decision the plan makes.
    pub seed: u64,
    /// Ingest shards of the fleet under test.
    pub shards: usize,
    /// Per-shard queue capacity (small values force frequent drains).
    pub queue_capacity_frames: usize,
    /// Reporting periods every job is sliced into (shared cadence).
    pub periods: usize,
    /// The jobs and their private fault axes.
    pub jobs: Vec<JobPlan>,
}

impl FleetPlan {
    /// A clean fleet: `jobs` fault-free jobs across distinct tenants.
    pub fn fault_free(seed: u64, jobs: usize) -> FleetPlan {
        FleetPlan {
            seed,
            shards: 2,
            queue_capacity_frames: 8,
            periods: 6,
            jobs: (0..jobs).map(|j| JobPlan::clean(1 + j as u32 % 3, j as u32)).collect(),
        }
    }

    /// A randomly hostile fleet: 2–4 jobs, each with its own random
    /// fault mix — except job 0, which is always clean so every random
    /// plan also probes the isolation claim — all derived from `seed`.
    pub fn random(seed: u64) -> FleetPlan {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x000F_1EE7_C4A0);
        let njobs = rng.gen_range(2usize..5);
        let periods = rng.gen_range(4usize..8);
        let jobs = (0..njobs)
            .map(|j| {
                let mut jp = JobPlan {
                    tenant: 1 + rng.gen_range(0u32..3),
                    job: j as u32,
                    nranks: rng.gen_range(2usize..4),
                    frags_per_rank: rng.gen_range(120usize..300),
                    drop: rng.gen_range(0.0..0.15),
                    duplicate: rng.gen_range(0.0..0.2),
                    reorder: rng.gen_range(0.0..0.5),
                    corrupt: rng.gen_range(0.0..0.1),
                    delay: rng.gen_range(0.0..0.2),
                    deaths: if rng.gen_bool(0.4) {
                        vec![(0, rng.gen_range(1..periods.max(3) - 1))]
                    } else {
                        Vec::new()
                    },
                };
                jp.deaths = jp
                    .deaths
                    .iter()
                    .map(|&(_, p)| (rng.gen_range(0..jp.nranks), p))
                    .collect();
                if j == 0 {
                    jp = JobPlan { nranks: jp.nranks, frags_per_rank: jp.frags_per_rank, ..JobPlan::clean(jp.tenant, 0) };
                }
                jp
            })
            .collect();
        FleetPlan {
            seed,
            shards: rng.gen_range(1usize..5),
            queue_capacity_frames: rng.gen_range(1usize..17),
            periods,
            jobs,
        }
    }
}

/// What one job saw in a fleet chaos run.
#[derive(Debug)]
pub struct FleetJobOutcome {
    /// The job's routing key.
    pub key: JobKey,
    /// The job's window reports, in window order.
    pub reports: Vec<WindowReport>,
    /// Frame deliveries attempted for this job.
    pub delivered: usize,
    /// Deliveries the fleet rejected at decode (corruption).
    pub rejected_decode: usize,
}

/// What one fleet chaos run produced.
#[derive(Debug)]
pub struct FleetChaosOutcome {
    /// The shared reporting period, ns.
    pub period_ns: u64,
    /// Total frame deliveries attempted, all jobs.
    pub delivered: usize,
    /// Per-job outcomes, in plan order.
    pub per_job: Vec<FleetJobOutcome>,
    /// The fleet's final aggregate report.
    pub report: FleetReport,
}

/// This job's synthetic STGs (seeded off the plan and the job identity).
fn fleet_job_stgs(plan: &FleetPlan, jp: &JobPlan) -> Vec<Stg> {
    let salt = ((jp.tenant as u64) << 32) | jp.job as u64;
    synthetic_stgs(jp.nranks, jp.frags_per_rank, 8, plan.seed ^ salt ^ 0xBAD_F00D)
}

/// The shared reporting period: the longest job's data split into the
/// plan's period count (every job analyses on the same cadence, as the
/// fleet's single `VaproConfig` requires). Public for the VOPR driver's
/// per-job oracle replays.
pub fn fleet_period_ns(plan: &FleetPlan) -> u64 {
    let t_end = plan
        .jobs
        .iter()
        .map(|jp| t_end_ns(&fleet_job_stgs(plan, jp)))
        .max()
        .unwrap_or(0);
    (t_end / plan.periods.max(1) as u64).max(1)
}

/// Materialise one job's faulted event schedule: sequenced per-period
/// v3 frames with the job's routing stamp, faults applied, sorted into
/// arrival order (see [`generate_events`] for the corruption-range
/// contract). Deterministic in the plan seed and the job identity.
/// Public for the VOPR driver's per-job oracle replays.
pub fn fleet_job_events(
    plan: &FleetPlan,
    jp: &JobPlan,
    period_ns: u64,
) -> (Vec<TransportEvent>, InjectionCounts) {
    let stgs = fleet_job_stgs(plan, jp);
    let salt = ((jp.tenant as u64) << 32) | jp.job as u64;
    let axes = TransportAxes {
        drop: jp.drop,
        duplicate: jp.duplicate,
        reorder: jp.reorder,
        corrupt: jp.corrupt,
        delay: jp.delay,
        deaths: &jp.deaths,
        birth_schedule: Vec::new(),
    };
    generate_events(&stgs, period_ns, plan.seed ^ salt, &axes, &|b| {
        b.with_job(jp.tenant, jp.job).encode_v3()
    })
}

/// One job's delivery bytes, in arrival order.
fn fleet_job_deliveries(plan: &FleetPlan, jp: &JobPlan, period_ns: u64) -> Vec<Vec<u8>> {
    fleet_job_events(plan, jp, period_ns)
        .0
        .into_iter()
        .filter_map(|e| match e {
            TransportEvent::Frame(f) => Some(f.bytes),
            TransportEvent::Birth { .. } => None,
        })
        .collect()
}

/// Run one fleet plan end to end: every job's faulted stream generated,
/// the streams interleaved round-robin, pushed through a sharded
/// [`FleetIngestor`], all windows flushed and attributed back per job.
pub fn run_fleet_plan(plan: &FleetPlan) -> FleetChaosOutcome {
    let period_ns = fleet_period_ns(plan);
    let cfg = plan_config(period_ns);
    let streams: Vec<Vec<Vec<u8>>> =
        plan.jobs.iter().map(|jp| fleet_job_deliveries(plan, jp, period_ns)).collect();

    let mut fleet = FleetIngestor::new(FleetConfig {
        shards: plan.shards,
        default_nranks: 1,
        bins_per_window: 8,
        vapro: cfg,
        queue_capacity_frames: plan.queue_capacity_frames,
        default_tenant_budget_bytes: u64::MAX,
    });
    for jp in &plan.jobs {
        fleet.register_tenant(jp.tenant, u64::MAX);
        fleet.register_job(jp.key(), jp.nranks, jp.tenant);
    }

    let mut rejected_decode = vec![0usize; plan.jobs.len()];
    let mut windows: Vec<FleetWindow> = Vec::new();
    let mut delivered = 0usize;
    let longest = streams.iter().map(Vec::len).max().unwrap_or(0);
    for i in 0..longest {
        for (j, stream) in streams.iter().enumerate() {
            let Some(bytes) = stream.get(i) else { continue };
            delivered += 1;
            match fleet.push_encoded(bytes) {
                Ok(closed) => windows.extend(closed),
                Err(_) => rejected_decode[j] += 1,
            }
        }
    }
    let (report, flushed) = fleet.into_report();
    windows.extend(flushed);

    let mut by_key: BTreeMap<JobKey, Vec<WindowReport>> = BTreeMap::new();
    for w in windows {
        by_key.entry(w.key).or_default().push(w.report);
    }
    let per_job = plan
        .jobs
        .iter()
        .enumerate()
        .map(|(j, jp)| {
            let key = jp.key();
            FleetJobOutcome {
                key,
                reports: by_key.remove(&key).unwrap_or_default(),
                delivered: streams[j].len(),
                rejected_decode: rejected_decode[j],
            }
        })
        .collect();

    FleetChaosOutcome { period_ns, delivered, per_job, report }
}

/// The fleet isolation invariants. For every job, a solo
/// [`WindowedIngestor`] fed exactly that job's delivery sequence (same
/// decode-then-push admission as the fleet's shard path) must produce a
/// bit-identical report stream — so no amount of chaos on *other*
/// tenants can corrupt or stall this one — and the solo reference must
/// tile its admitted data exactly. Clean jobs must additionally admit
/// every delivery. Returns the first violation, `Ok(())` when sound.
pub fn check_fleet_invariants(plan: &FleetPlan, outcome: &FleetChaosOutcome) -> Result<(), String> {
    let cfg = plan_config(outcome.period_ns);
    let period = VirtualTime::from_ns(outcome.period_ns);
    for (jp, job_outcome) in plan.jobs.iter().zip(&outcome.per_job) {
        let deliveries = fleet_job_deliveries(plan, jp, outcome.period_ns);
        if deliveries.len() != job_outcome.delivered {
            return Err(format!(
                "job {:?}: {} deliveries regenerated vs {} recorded",
                job_outcome.key,
                deliveries.len(),
                job_outcome.delivered
            ));
        }
        let mut solo = WindowedIngestor::new(jp.nranks, 8, cfg.clone());
        let mut solo_reports = Vec::new();
        let mut solo_rejected = 0usize;
        for bytes in &deliveries {
            match FragmentBatch::decode(bytes) {
                Ok(batch) => solo_reports.extend(solo.push(batch)),
                Err(_) => solo_rejected += 1,
            }
        }
        let admitted = solo.stats().frames_admitted;
        let max_seen_ns = solo.arena().max_end_ns();
        solo_reports.extend(solo.finish());

        if solo_rejected != job_outcome.rejected_decode {
            return Err(format!(
                "job {:?}: fleet rejected {} frames at decode, solo rejected {}",
                job_outcome.key, job_outcome.rejected_decode, solo_rejected
            ));
        }
        // Isolation: the fleet's per-job output equals the solo run.
        reports_identical(&job_outcome.reports, &solo_reports)
            .map_err(|e| format!("job {:?} diverged from its solo run: {e}", job_outcome.key))?;
        // The solo reference tiles its admitted data exactly.
        let expected =
            windows_covering(VirtualTime::ZERO, VirtualTime::from_ns(max_seen_ns), period);
        if solo_reports.len() != expected.len() {
            return Err(format!(
                "job {:?}: {} windows closed vs {} expected for data up to {} ns",
                job_outcome.key,
                solo_reports.len(),
                expected.len(),
                max_seen_ns
            ));
        }
        for (r, w) in solo_reports.iter().zip(&expected) {
            if r.window != *w {
                return Err(format!(
                    "job {:?}: window {:?} emitted where {:?} expected",
                    job_outcome.key, r.window, w
                ));
            }
        }
        // A clean job's transport loses nothing.
        if jp.is_fault_free()
            && (solo_rejected > 0 || admitted != deliveries.len() as u64)
        {
            return Err(format!(
                "clean job {:?} lost frames: {} delivered, {} admitted, {} rejected",
                job_outcome.key,
                deliveries.len(),
                admitted,
                solo_rejected
            ));
        }
        // The fleet report attributes the job with the right close count.
        let Some(summary) = outcome.report.jobs.iter().find(|s| s.key == job_outcome.key)
        else {
            return Err(format!("job {:?} missing from the fleet report", job_outcome.key));
        };
        if summary.windows_closed != job_outcome.reports.len() {
            return Err(format!(
                "job {:?}: report says {} windows closed, {} observed",
                job_outcome.key,
                summary.windows_closed,
                job_outcome.reports.len()
            ));
        }
    }
    // Every decode rejection is accounted to the unattributed bucket —
    // a corrupted frame names no trustworthy tenant.
    let total_rejected: usize = outcome.per_job.iter().map(|j| j.rejected_decode).sum();
    if outcome.report.unattributed.frames_rejected() != total_rejected as u64 {
        return Err(format!(
            "{} decode rejections but the unattributed bucket counted {}",
            total_rejected,
            outcome.report.unattributed.frames_rejected()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_plans_are_bit_identical_to_one_shot() {
        fault_free_equivalence(&FaultPlan::fault_free(7)).expect("clean plan diverged");
    }

    #[test]
    fn pipelined_and_inline_analysis_agree_under_chaos() {
        let plan = FaultPlan {
            drop: 0.1,
            duplicate: 0.2,
            reorder: 0.4,
            corrupt: 0.1,
            delay: 0.15,
            deaths: vec![(0, 2)],
            ..FaultPlan::fault_free(41)
        };
        pipeline_equivalence(&plan).expect("pipeline diverged from inline");
    }

    #[test]
    fn a_hostile_plan_still_satisfies_the_invariants() {
        let plan = FaultPlan {
            drop: 0.1,
            duplicate: 0.2,
            reorder: 0.4,
            corrupt: 0.1,
            delay: 0.15,
            deaths: vec![(1, 2)],
            ..FaultPlan::fault_free(21)
        };
        let outcome = run_plan(&plan);
        check_invariants(&plan, &outcome).expect("invariants violated");
        assert!(outcome.delivered > 0);
    }

    #[test]
    fn a_killed_rank_leaves_degraded_but_complete_window_cover() {
        // One rank dies after period 1 of 8; every window past its data
        // still closes, with the rank dead/absent in coverage and
        // completeness < 1.
        let plan = FaultPlan { deaths: vec![(2, 1)], ..FaultPlan::fault_free(3) };
        let outcome = run_plan(&plan);
        check_invariants(&plan, &outcome).expect("invariants violated");
        let tail = outcome.reports.last().expect("windows closed");
        assert!(tail.coverage.ranks_dead.contains(&2), "{:?}", tail.coverage);
        assert!(tail.coverage.ranks_absent.contains(&2), "{:?}", tail.coverage);
        assert!(tail.coverage.completeness < 1.0);
        assert!(tail.coverage.is_degraded());
        // The cover still reaches the surviving ranks' full data.
        let last_end = outcome.reports.last().unwrap().window.end.ns();
        assert!(last_end >= outcome.max_seen_ns, "cover stopped early");
    }

    #[test]
    fn a_clean_fleet_plan_is_isolated_and_complete() {
        let plan = FleetPlan::fault_free(11, 3);
        let outcome = run_fleet_plan(&plan);
        check_fleet_invariants(&plan, &outcome).expect("clean fleet violated invariants");
        assert_eq!(outcome.per_job.len(), 3);
        for j in &outcome.per_job {
            assert!(!j.reports.is_empty(), "job {:?} closed no windows", j.key);
            assert_eq!(j.rejected_decode, 0);
        }
    }

    #[test]
    fn a_chaotic_tenant_cannot_corrupt_or_stall_a_clean_one() {
        // Job 0 is clean; job 1 shares the fleet and suffers every fault
        // axis at once. The invariant check proves job 0's output equals
        // its solo run bit for bit — and that job 1, for all its losses,
        // still tiles whatever data survived its transport.
        let mut plan = FleetPlan::fault_free(29, 2);
        plan.shards = 3;
        plan.queue_capacity_frames = 4;
        plan.jobs[1] = JobPlan {
            drop: 0.15,
            duplicate: 0.25,
            reorder: 0.5,
            corrupt: 0.5,
            delay: 0.2,
            deaths: vec![(1, 1)],
            ..plan.jobs[1].clone()
        };
        let outcome = run_fleet_plan(&plan);
        check_fleet_invariants(&plan, &outcome).expect("isolation violated");
        let chaotic = &outcome.per_job[1];
        assert!(chaotic.rejected_decode > 0, "corruption axis never fired");
        assert!(
            outcome.report.unattributed.corrupt_frames >= chaotic.rejected_decode as u64 / 2,
            "decode rejections not surfaced in the fleet report"
        );
    }

    #[test]
    fn fleet_plans_are_deterministic_in_their_seed() {
        let plan = FleetPlan::random(77);
        assert_eq!(plan, FleetPlan::random(77));
        let a = run_fleet_plan(&plan);
        let b = run_fleet_plan(&plan);
        assert_eq!(a.delivered, b.delivered);
        for (ja, jb) in a.per_job.iter().zip(&b.per_job) {
            assert_eq!(ja.key, jb.key);
            assert_eq!(ja.rejected_decode, jb.rejected_decode);
            reports_identical(&ja.reports, &jb.reports).expect("same fleet plan diverged");
        }
    }

    #[test]
    fn a_rank_born_mid_stream_matches_an_always_present_reference() {
        // One rank joins at period 2: every post-birth window must be
        // bit-identical to a run where the rank existed from the start
        // (sending the same frames), and the coverage width must step up
        // exactly once.
        let plan = FaultPlan { births: vec![2], ..FaultPlan::fault_free(13) };
        birth_equivalence(&plan).expect("birth diverged from always-present reference");
    }

    #[test]
    fn a_birth_under_chaos_still_satisfies_the_invariants() {
        let plan = FaultPlan {
            drop: 0.1,
            duplicate: 0.2,
            reorder: 0.4,
            delay: 0.15,
            births: vec![2],
            ..FaultPlan::fault_free(57)
        };
        let outcome = run_plan(&plan);
        check_invariants(&plan, &outcome).expect("invariants violated");
        let tail = outcome.reports.last().expect("windows closed");
        assert_eq!(tail.coverage.nranks, plan.total_ranks(), "born rank never widened coverage");
    }

    #[test]
    fn a_buffer_cap_forces_drops_without_breaking_the_tiling() {
        // A tiny admission buffer plus heavy delay/reorder must shed
        // frames via backpressure, yet the surviving windows still tile.
        let plan = FaultPlan {
            reorder: 0.6,
            delay: 0.5,
            max_buffered_bytes: Some(4_096),
            ..FaultPlan::fault_free(31)
        };
        let outcome = run_plan(&plan);
        check_invariants(&plan, &outcome).expect("invariants violated");
        assert!(outcome.admitted < outcome.delivered as u64, "cap never shed a frame");
    }

    #[test]
    fn event_schedules_are_deterministic_and_expose_injections() {
        let plan = FaultPlan {
            drop: 0.2,
            duplicate: 0.2,
            corrupt: 0.2,
            reorder: 0.3,
            delay: 0.2,
            births: vec![1],
            ..FaultPlan::fault_free(101)
        };
        let (ev_a, counts_a) = plan_events(&plan);
        let (ev_b, counts_b) = plan_events(&plan);
        assert_eq!(counts_a, counts_b);
        assert_eq!(ev_a.len(), ev_b.len());
        for (a, b) in ev_a.iter().zip(&ev_b) {
            match (a, b) {
                (TransportEvent::Frame(fa), TransportEvent::Frame(fb)) => {
                    assert_eq!(fa.bytes, fb.bytes);
                    assert_eq!(fa.corrupted, fb.corrupted);
                }
                (TransportEvent::Birth { rank: ra }, TransportEvent::Birth { rank: rb }) => {
                    assert_eq!(ra, rb)
                }
                _ => panic!("event kinds diverged between identical plans"),
            }
        }
        assert_eq!(counts_a.births, 1);
        assert!(counts_a.dropped > 0 && counts_a.corrupted > 0, "{counts_a:?}");
    }

    #[test]
    fn plans_are_deterministic_in_their_seed() {
        let plan = FaultPlan::random(99);
        assert_eq!(plan, FaultPlan::random(99));
        let a = run_plan(&plan);
        let b = run_plan(&plan);
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.admitted, b.admitted);
        assert_eq!(a.reports.len(), b.reports.len());
        reports_identical(&a.reports, &b.reports).expect("same plan diverged");
    }
}
