//! Chaos harness: seeded fault injection against the streaming
//! ingestion pipeline.
//!
//! A [`FaultPlan`] describes — deterministically, from a seed — what the
//! transport does to each shipped frame: drop it, duplicate it, reorder
//! it within its reporting period, corrupt a byte, or delay it by whole
//! periods; and which ranks die mid-run (stop shipping after a given
//! period). [`run_plan`] builds a synthetic multi-rank run, slices it
//! into sequenced per-period wire frames, applies the plan, pushes every
//! surviving delivery through a [`WindowedIngestor`] under a production
//! straggler policy, and returns what came out.
//!
//! Two checks ride on top:
//!
//! * [`check_invariants`] — under *any* plan, ingestion must not panic,
//!   the emitted windows must exactly tile `[0, max admitted fragment
//!   end)` (windows always eventually close, none invented), and the
//!   coverage accounting must be internally consistent;
//! * [`fault_free_equivalence`] — a plan with every intensity at zero
//!   and no deaths must reproduce the one-shot windowed analysis
//!   ([`ServerPool::analyze_windows`]) bit for bit, even with the
//!   straggler policy armed;
//! * [`pipeline_equivalence`] — *any* plan, hostile or clean, must
//!   produce the same report sequence whether windows are analysed
//!   inline (`pipeline_depth: 0`) or through the bounded pipelined
//!   stage (the default depth), with identical delivery accounting.
//!
//! Every run also executes with watermark arena eviction armed (it is
//! unconditional), so the invariants double as a reclamation soak: the
//! outcome carries the arena's resident/high-water byte counters and
//! [`check_invariants`] insists they stay internally consistent.

use crate::perf::synthetic_stgs;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use vapro_core::detect::window::{windows_covering, Window};
use vapro_core::wire::FragmentBatch;
use vapro_core::{
    FaultTolerance, LateDataPolicy, ServerPool, Stg, VaproConfig, WindowReport,
    WindowedIngestor, WireError,
};
use vapro_sim::VirtualTime;

/// A deterministic fault-injection schedule. Intensities are per-frame
/// probabilities in `[0, 1]`, drawn from `seed` alone — the same plan
/// always produces the same byte-level delivery sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for every random decision the plan makes.
    pub seed: u64,
    /// Ranks in the synthetic run.
    pub nranks: usize,
    /// Computation fragments per rank.
    pub frags_per_rank: usize,
    /// Reporting periods the run is sliced into.
    pub periods: usize,
    /// Probability a frame is silently dropped in transit.
    pub drop: f64,
    /// Probability a frame is delivered twice (retransmission).
    pub duplicate: f64,
    /// Probability a frame is reordered within its reporting period.
    pub reorder: f64,
    /// Probability a random payload byte of a frame is flipped.
    pub corrupt: f64,
    /// Probability a frame is delayed by 1–2 whole periods.
    pub delay: f64,
    /// `(rank, last_period)`: the rank ships periods `0..=last_period`
    /// and then dies — nothing further is even generated.
    pub deaths: Vec<(usize, usize)>,
}

impl FaultPlan {
    /// The clean transport: everything delivered exactly once, in order.
    pub fn fault_free(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            nranks: 3,
            frags_per_rank: 400,
            periods: 8,
            drop: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            corrupt: 0.0,
            delay: 0.0,
            deaths: Vec::new(),
        }
    }

    /// A randomly hostile transport: moderate intensities on every fault
    /// axis and, half the time, one rank dying mid-run — all derived
    /// from `seed`.
    pub fn random(seed: u64) -> FaultPlan {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xC4A0_5F00D);
        let nranks = rng.gen_range(2usize..5);
        let periods = rng.gen_range(4usize..10);
        let deaths = if rng.gen_bool(0.5) {
            vec![(rng.gen_range(0..nranks), rng.gen_range(1..periods.max(2) - 1))]
        } else {
            Vec::new()
        };
        FaultPlan {
            seed,
            nranks,
            frags_per_rank: rng.gen_range(150usize..500),
            periods,
            drop: rng.gen_range(0.0..0.15),
            duplicate: rng.gen_range(0.0..0.2),
            reorder: rng.gen_range(0.0..0.5),
            corrupt: rng.gen_range(0.0..0.1),
            delay: rng.gen_range(0.0..0.2),
            deaths,
        }
    }

    /// Does the plan inject any fault at all?
    pub fn is_fault_free(&self) -> bool {
        self.drop == 0.0
            && self.duplicate == 0.0
            && self.reorder == 0.0
            && self.corrupt == 0.0
            && self.delay == 0.0
            && self.deaths.is_empty()
    }

    /// The period a rank last ships, if it dies.
    fn last_period_of(&self, rank: usize) -> Option<usize> {
        self.deaths.iter().find(|(r, _)| *r == rank).map(|&(_, last)| last)
    }
}

/// What one chaos run produced.
#[derive(Debug)]
pub struct ChaosOutcome {
    /// Window reports, in window order (mid-stream closes then finish).
    pub reports: Vec<WindowReport>,
    /// The synthetic run's reporting period, ns.
    pub period_ns: u64,
    /// Frame deliveries attempted (faults applied).
    pub delivered: usize,
    /// Deliveries the ingestor admitted into the arena.
    pub admitted: u64,
    /// Deliveries rejected with `BadChecksum`.
    pub rejected_corrupt: usize,
    /// Deliveries rejected as sequence duplicates.
    pub rejected_duplicate: usize,
    /// Deliveries rejected for any other wire error.
    pub rejected_other: usize,
    /// Latest fragment end the arena admitted, ns (what the emitted
    /// window cover must reach).
    pub max_seen_ns: u64,
    /// Deliveries discarded under the late-data policy or the
    /// backpressure cap (accepted calls that admitted nothing).
    pub discarded: u64,
    /// Arena bytes still resident when the stream ended (before the
    /// final `finish`): the watermark-eviction steady state.
    pub arena_resident_bytes: u64,
    /// Peak arena bytes across the run.
    pub arena_high_water_bytes: u64,
}

/// Latest fragment end across the run, ns.
fn t_end_ns(stgs: &[Stg]) -> u64 {
    stgs.iter()
        .flat_map(|s| {
            s.vertices()
                .iter()
                .flat_map(|v| v.fragments.iter())
                .chain(s.edges().iter().flat_map(|e| e.fragments.iter()))
        })
        .map(|f| f.end.ns())
        .max()
        .unwrap_or(0)
}

/// The synthetic STGs a plan runs over.
fn plan_stgs(plan: &FaultPlan) -> Vec<Stg> {
    synthetic_stgs(plan.nranks, plan.frags_per_rank, 8, plan.seed ^ 0xBAD_F00D)
}

/// The ingestion config a plan runs under: production straggler policy
/// scaled to the plan's period (degrade after 2 periods, dead after 4,
/// drop late data), unbounded buffering.
fn plan_config(period_ns: u64) -> VaproConfig {
    VaproConfig {
        report_period: VirtualTime::from_ns(period_ns),
        fault: FaultTolerance {
            straggler_horizon: Some(VirtualTime::from_ns(period_ns.saturating_mul(2))),
            dead_horizon: Some(VirtualTime::from_ns(period_ns.saturating_mul(4))),
            late_data: LateDataPolicy::Drop,
            max_buffered_bytes: None,
        },
        ..VaproConfig::default()
    }
}

/// Run one plan end to end under the default (pipelined) configuration.
pub fn run_plan(plan: &FaultPlan) -> ChaosOutcome {
    run_plan_with_depth(plan, VaproConfig::default().pipeline_depth)
}

/// Run one plan end to end with an explicit analysis-pipeline depth
/// (`0` = inline analysis on the admission thread).
pub fn run_plan_with_depth(plan: &FaultPlan, pipeline_depth: usize) -> ChaosOutcome {
    let stgs = plan_stgs(plan);
    let t_end = t_end_ns(&stgs);
    let period_ns = (t_end / plan.periods.max(1) as u64).max(1);
    let cfg = VaproConfig { pipeline_depth, ..plan_config(period_ns) };
    let mut rng = ChaCha8Rng::seed_from_u64(plan.seed);

    // Generate the per-period sequenced frames and apply the transport
    // faults. Each delivery carries a sort key (period-with-delay, slot)
    // so reordering and delaying are pure key perturbations. Shipping
    // runs to the ceiling of the data end so the tail period ships too.
    let mut deliveries: Vec<((u64, u64), Vec<u8>)> = Vec::new();
    let mut slot = 0u64;
    for k in 0..t_end.div_ceil(period_ns) as usize {
        let period = Window {
            start: VirtualTime::from_ns(k as u64 * period_ns),
            end: VirtualTime::from_ns((k as u64 + 1) * period_ns),
        };
        for (rank, stg) in stgs.iter().enumerate() {
            if plan.last_period_of(rank).is_some_and(|last| k > last) {
                continue; // the rank is dead: nothing is even generated
            }
            slot += 1;
            if rng.gen_bool(plan.drop) {
                continue;
            }
            let mut bytes = FragmentBatch::from_stg_starting_in(stg, rank, period)
                .with_seq(k as u64 + 1)
                .encode();
            if rng.gen_bool(plan.corrupt) {
                let pos = rng.gen_range(4..bytes.len());
                bytes[pos] ^= 1 << rng.gen_range(0..8u32);
            }
            let delayed = if rng.gen_bool(plan.delay) { rng.gen_range(1u64..3) } else { 0 };
            let jitter = if rng.gen_bool(plan.reorder) {
                rng.gen_range(0..1_000_000u64)
            } else {
                slot
            };
            if rng.gen_bool(plan.duplicate) {
                deliveries.push(((k as u64 + delayed, jitter + 1), bytes.clone()));
            }
            deliveries.push(((k as u64 + delayed, jitter), bytes));
        }
    }
    deliveries.sort_by_key(|(key, _)| *key);

    let mut ingestor =
        WindowedIngestor::new(plan.nranks, 8, cfg);
    let mut reports = Vec::new();
    let (mut corrupt, mut duplicate, mut other) = (0usize, 0usize, 0usize);
    let delivered = deliveries.len();
    for (_, bytes) in &deliveries {
        match ingestor.push_encoded(bytes) {
            Ok(closed) => reports.extend(closed),
            Err(WireError::BadChecksum { .. }) => corrupt += 1,
            Err(WireError::DuplicateSequence { .. }) => duplicate += 1,
            Err(_) => other += 1,
        }
    }
    let stats = ingestor.stats().clone();
    let max_seen_ns = ingestor.arena().max_end_ns();
    let arena_resident_bytes = ingestor.arena().resident_bytes();
    let arena_high_water_bytes = ingestor.arena().high_water_bytes();
    reports.extend(ingestor.finish());

    ChaosOutcome {
        reports,
        period_ns,
        delivered,
        admitted: stats.frames_admitted,
        rejected_corrupt: corrupt,
        rejected_duplicate: duplicate,
        rejected_other: other,
        max_seen_ns,
        discarded: stats.dropped_late_frames + stats.dropped_backpressure_frames,
        arena_resident_bytes,
        arena_high_water_bytes,
    }
}

/// The robustness invariants every plan must satisfy. Returns the first
/// violation as a message, `Ok(())` when the outcome is sound.
pub fn check_invariants(plan: &FaultPlan, outcome: &ChaosOutcome) -> Result<(), String> {
    let period = VirtualTime::from_ns(outcome.period_ns);
    // The emitted windows are exactly the canonical cover of the
    // admitted data: every window closed eventually, none was invented.
    let expected = windows_covering(
        VirtualTime::ZERO,
        VirtualTime::from_ns(outcome.max_seen_ns),
        period,
    );
    if outcome.reports.len() != expected.len() {
        return Err(format!(
            "window cover mismatch: {} reports vs {} expected for data up to {} ns (plan {:?})",
            outcome.reports.len(),
            expected.len(),
            outcome.max_seen_ns,
            plan
        ));
    }
    for (r, w) in outcome.reports.iter().zip(&expected) {
        if r.window != *w {
            return Err(format!("window {:?} emitted where {:?} expected", r.window, w));
        }
    }
    // Accounting: every delivery is admitted, rejected or discarded.
    let handled = outcome.admitted
        + outcome.discarded
        + (outcome.rejected_corrupt + outcome.rejected_duplicate + outcome.rejected_other)
            as u64;
    if handled != outcome.delivered as u64 {
        return Err(format!(
            "{} deliveries but {} accounted (admitted {} + discarded {} + rejected {})",
            outcome.delivered,
            handled,
            outcome.admitted,
            outcome.discarded,
            outcome.rejected_corrupt + outcome.rejected_duplicate + outcome.rejected_other,
        ));
    }
    // Coverage sanity, window by window.
    let mut prev_counters = (0u64, 0u64, 0u64, 0u64);
    for r in &outcome.reports {
        let c = &r.coverage;
        if c.nranks != plan.nranks {
            return Err(format!("coverage nranks {} != plan {}", c.nranks, plan.nranks));
        }
        if c.ranks_complete > c.nranks {
            return Err(format!("{} of {} ranks complete", c.ranks_complete, c.nranks));
        }
        if !(0.0..=1.0).contains(&c.completeness) {
            return Err(format!("completeness {} out of range", c.completeness));
        }
        if c.ranks_absent.iter().chain(&c.ranks_dead).any(|&r| r >= plan.nranks) {
            return Err(format!("out-of-range rank in coverage {c:?}"));
        }
        // Counters are cumulative at close time: nondecreasing in close
        // order (reports are emitted in window order, closes are
        // chronological).
        let counters =
            (c.corrupt_frames, c.duplicate_frames, c.dropped_late_frames, c.seq_gaps);
        if counters.0 < prev_counters.0
            || counters.1 < prev_counters.1
            || counters.2 < prev_counters.2
        {
            return Err(format!(
                "cumulative coverage counters went backwards: {counters:?} after {prev_counters:?}"
            ));
        }
        prev_counters = counters;
    }
    // Arena accounting: the eviction bookkeeping can never leave more
    // bytes resident than the recorded peak, and a run that admitted
    // anything must have registered a peak.
    if outcome.arena_resident_bytes > outcome.arena_high_water_bytes {
        return Err(format!(
            "arena resident {} bytes above its own high water {}",
            outcome.arena_resident_bytes, outcome.arena_high_water_bytes
        ));
    }
    if outcome.admitted > 0 && outcome.arena_high_water_bytes == 0 {
        return Err("frames admitted but arena high water never moved".to_string());
    }
    // A clean transport admits everything and rejects nothing.
    if plan.is_fault_free()
        && (outcome.admitted != outcome.delivered as u64
            || outcome.rejected_corrupt + outcome.rejected_duplicate + outcome.rejected_other
                > 0)
    {
        return Err(format!(
            "fault-free plan lost frames: {} delivered, {} admitted",
            outcome.delivered, outcome.admitted
        ));
    }
    Ok(())
}

/// Field-wise equality of two report sequences (streamed vs one-shot),
/// as a `Result` so harness callers can surface the first divergence.
pub fn reports_identical(got: &[WindowReport], want: &[WindowReport]) -> Result<(), String> {
    if got.len() != want.len() {
        return Err(format!("{} reports vs {} expected", got.len(), want.len()));
    }
    for (g, w) in got.iter().zip(want) {
        if g.window != w.window {
            return Err(format!("window {:?} vs {:?}", g.window, w.window));
        }
        let same = g.result.series == w.result.series
            && g.result.rare_paths == w.result.rare_paths
            && g.result.comp_map == w.result.comp_map
            && g.result.comm_map == w.result.comm_map
            && g.result.io_map == w.result.io_map
            && g.result.comp_regions == w.result.comp_regions
            && g.result.comm_regions == w.result.comm_regions
            && g.result.io_regions == w.result.io_regions
            && g.result.coverage.to_bits() == w.result.coverage.to_bits()
            && g.result.edge_clusters == w.result.edge_clusters;
        if !same {
            return Err(format!("detection diverged in window {:?}", g.window));
        }
        if g.diagnoses != w.diagnoses {
            return Err(format!("diagnoses diverged in window {:?}", g.window));
        }
        if g.coverage != w.coverage {
            return Err(format!(
                "coverage diverged in window {:?}: {:?} vs {:?}",
                g.window, g.coverage, w.coverage
            ));
        }
    }
    Ok(())
}

/// The pipeline equivalence check: under *any* plan — faults, deaths,
/// rejections and all — the bounded pipelined stage must produce the
/// same report sequence and the same delivery accounting as inline
/// analysis. Deferred emission may shift *when* reports surface during
/// the stream, but the ordered union is bit-identical.
pub fn pipeline_equivalence(plan: &FaultPlan) -> Result<(), String> {
    let pipelined = run_plan(plan);
    let inline = run_plan_with_depth(plan, 0);
    check_invariants(plan, &pipelined)?;
    check_invariants(plan, &inline)?;
    reports_identical(&pipelined.reports, &inline.reports)
        .map_err(|e| format!("pipelined reports diverged from inline: {e}"))?;
    let acct = |o: &ChaosOutcome| {
        (o.admitted, o.discarded, o.rejected_corrupt, o.rejected_duplicate, o.rejected_other)
    };
    if acct(&pipelined) != acct(&inline) {
        return Err(format!(
            "pipelined accounting {:?} diverged from inline {:?}",
            acct(&pipelined),
            acct(&inline)
        ));
    }
    // Sealing snapshots windows out of the arena, so reclamation — and
    // therefore the resident/high-water trajectory — is independent of
    // where analysis runs.
    if pipelined.arena_high_water_bytes != inline.arena_high_water_bytes
        || pipelined.arena_resident_bytes != inline.arena_resident_bytes
    {
        return Err(format!(
            "arena bytes diverged across pipeline depths: pipelined {}/{} vs inline {}/{}",
            pipelined.arena_resident_bytes,
            pipelined.arena_high_water_bytes,
            inline.arena_resident_bytes,
            inline.arena_high_water_bytes
        ));
    }
    Ok(())
}

/// The fault-free equivalence check: a clean plan streamed through the
/// chaos harness (straggler policy armed but never tripped) must equal
/// the one-shot windowed analysis bit for bit, including coverage.
pub fn fault_free_equivalence(plan: &FaultPlan) -> Result<(), String> {
    assert!(plan.is_fault_free(), "equivalence only holds for clean transports");
    let outcome = run_plan(plan);
    check_invariants(plan, &outcome)?;
    let stgs = plan_stgs(plan);
    let cfg = plan_config(outcome.period_ns);
    let reference =
        ServerPool::new(1, plan.nranks).analyze_windows(&stgs, plan.nranks, 8, &cfg);
    reports_identical(&outcome.reports, &reference)
}

// ---------------------------------------------------------------------
// Fleet chaos: the same seeded fault injection aimed at the sharded
// multi-tenant plane. A [`FleetPlan`] interleaves several jobs' frame
// streams — each job with its *own* fault axes — through one
// [`FleetIngestor`]. The check is isolation by construction: every
// job's fleet output must be bit-identical to a solo [`WindowedIngestor`]
// fed exactly that job's delivery sequence, so a chaotic tenant can
// neither corrupt nor stall a clean one; and every job's solo reference
// must itself tile its admitted data exactly.

use std::collections::BTreeMap;
use vapro_core::{FleetConfig, FleetIngestor, FleetReport, FleetWindow, JobKey};

/// One job inside a fleet plan: its routing identity, its synthetic-run
/// shape, and its private transport fault axes.
#[derive(Debug, Clone, PartialEq)]
pub struct JobPlan {
    /// Owning tenant (registered with an unlimited budget by the runner).
    pub tenant: u32,
    /// Job id within the tenant.
    pub job: u32,
    /// Ranks in this job's synthetic run.
    pub nranks: usize,
    /// Computation fragments per rank.
    pub frags_per_rank: usize,
    /// Probability a frame is silently dropped in transit.
    pub drop: f64,
    /// Probability a frame is delivered twice.
    pub duplicate: f64,
    /// Probability a frame is reordered within its reporting period.
    pub reorder: f64,
    /// Probability a frame has a CRC-covered payload byte flipped.
    pub corrupt: f64,
    /// Probability a frame is delayed by 1–2 whole periods.
    pub delay: f64,
    /// `(rank, last_period)` deaths, as in [`FaultPlan::deaths`].
    pub deaths: Vec<(usize, usize)>,
}

impl JobPlan {
    /// A clean job: everything delivered exactly once, in order.
    pub fn clean(tenant: u32, job: u32) -> JobPlan {
        JobPlan {
            tenant,
            job,
            nranks: 2,
            frags_per_rank: 200,
            drop: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            corrupt: 0.0,
            delay: 0.0,
            deaths: Vec::new(),
        }
    }

    /// Does this job's transport inject any fault at all?
    pub fn is_fault_free(&self) -> bool {
        self.drop == 0.0
            && self.duplicate == 0.0
            && self.reorder == 0.0
            && self.corrupt == 0.0
            && self.delay == 0.0
            && self.deaths.is_empty()
    }

    /// The fleet routing key.
    pub fn key(&self) -> JobKey {
        JobKey { tenant: self.tenant, job: self.job }
    }

    fn last_period_of(&self, rank: usize) -> Option<usize> {
        self.deaths.iter().find(|(r, _)| *r == rank).map(|&(_, last)| last)
    }
}

/// A deterministic multi-job fault schedule over the fleet plane.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetPlan {
    /// Seed for every random decision the plan makes.
    pub seed: u64,
    /// Ingest shards of the fleet under test.
    pub shards: usize,
    /// Per-shard queue capacity (small values force frequent drains).
    pub queue_capacity_frames: usize,
    /// Reporting periods every job is sliced into (shared cadence).
    pub periods: usize,
    /// The jobs and their private fault axes.
    pub jobs: Vec<JobPlan>,
}

impl FleetPlan {
    /// A clean fleet: `jobs` fault-free jobs across distinct tenants.
    pub fn fault_free(seed: u64, jobs: usize) -> FleetPlan {
        FleetPlan {
            seed,
            shards: 2,
            queue_capacity_frames: 8,
            periods: 6,
            jobs: (0..jobs).map(|j| JobPlan::clean(1 + j as u32 % 3, j as u32)).collect(),
        }
    }

    /// A randomly hostile fleet: 2–4 jobs, each with its own random
    /// fault mix — except job 0, which is always clean so every random
    /// plan also probes the isolation claim — all derived from `seed`.
    pub fn random(seed: u64) -> FleetPlan {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x000F_1EE7_C4A0);
        let njobs = rng.gen_range(2usize..5);
        let periods = rng.gen_range(4usize..8);
        let jobs = (0..njobs)
            .map(|j| {
                let mut jp = JobPlan {
                    tenant: 1 + rng.gen_range(0u32..3),
                    job: j as u32,
                    nranks: rng.gen_range(2usize..4),
                    frags_per_rank: rng.gen_range(120usize..300),
                    drop: rng.gen_range(0.0..0.15),
                    duplicate: rng.gen_range(0.0..0.2),
                    reorder: rng.gen_range(0.0..0.5),
                    corrupt: rng.gen_range(0.0..0.1),
                    delay: rng.gen_range(0.0..0.2),
                    deaths: if rng.gen_bool(0.4) {
                        vec![(0, rng.gen_range(1..periods.max(3) - 1))]
                    } else {
                        Vec::new()
                    },
                };
                jp.deaths = jp
                    .deaths
                    .iter()
                    .map(|&(_, p)| (rng.gen_range(0..jp.nranks), p))
                    .collect();
                if j == 0 {
                    jp = JobPlan { nranks: jp.nranks, frags_per_rank: jp.frags_per_rank, ..JobPlan::clean(jp.tenant, 0) };
                }
                jp
            })
            .collect();
        FleetPlan {
            seed,
            shards: rng.gen_range(1usize..5),
            queue_capacity_frames: rng.gen_range(1usize..17),
            periods,
            jobs,
        }
    }
}

/// What one job saw in a fleet chaos run.
#[derive(Debug)]
pub struct FleetJobOutcome {
    /// The job's routing key.
    pub key: JobKey,
    /// The job's window reports, in window order.
    pub reports: Vec<WindowReport>,
    /// Frame deliveries attempted for this job.
    pub delivered: usize,
    /// Deliveries the fleet rejected at decode (corruption).
    pub rejected_decode: usize,
}

/// What one fleet chaos run produced.
#[derive(Debug)]
pub struct FleetChaosOutcome {
    /// The shared reporting period, ns.
    pub period_ns: u64,
    /// Total frame deliveries attempted, all jobs.
    pub delivered: usize,
    /// Per-job outcomes, in plan order.
    pub per_job: Vec<FleetJobOutcome>,
    /// The fleet's final aggregate report.
    pub report: FleetReport,
}

/// This job's synthetic STGs (seeded off the plan and the job identity).
fn fleet_job_stgs(plan: &FleetPlan, jp: &JobPlan) -> Vec<Stg> {
    let salt = ((jp.tenant as u64) << 32) | jp.job as u64;
    synthetic_stgs(jp.nranks, jp.frags_per_rank, 8, plan.seed ^ salt ^ 0xBAD_F00D)
}

/// The shared reporting period: the longest job's data split into the
/// plan's period count (every job analyses on the same cadence, as the
/// fleet's single `VaproConfig` requires).
fn fleet_period_ns(plan: &FleetPlan) -> u64 {
    let t_end = plan
        .jobs
        .iter()
        .map(|jp| t_end_ns(&fleet_job_stgs(plan, jp)))
        .max()
        .unwrap_or(0);
    (t_end / plan.periods.max(1) as u64).max(1)
}

/// Generate one job's faulted delivery sequence: sequenced per-period v3
/// frames with the job's routing stamp, faults applied, sorted into
/// arrival order. Deterministic in the plan seed and the job identity.
/// Corruption only ever flips bytes the CRC covers (never the version
/// byte, where a flip can masquerade as a different frame layout instead
/// of failing), so every corrupted frame is rejected at decode — on the
/// fleet path and the solo reference alike.
fn fleet_job_deliveries(plan: &FleetPlan, jp: &JobPlan, period_ns: u64) -> Vec<Vec<u8>> {
    let stgs = fleet_job_stgs(plan, jp);
    let t_end = t_end_ns(&stgs);
    let salt = ((jp.tenant as u64) << 32) | jp.job as u64;
    let mut rng = ChaCha8Rng::seed_from_u64(plan.seed ^ salt);
    let mut deliveries: Vec<((u64, u64), Vec<u8>)> = Vec::new();
    let mut slot = 0u64;
    for k in 0..t_end.div_ceil(period_ns) as usize {
        let period = Window {
            start: VirtualTime::from_ns(k as u64 * period_ns),
            end: VirtualTime::from_ns((k as u64 + 1) * period_ns),
        };
        for (rank, stg) in stgs.iter().enumerate() {
            if jp.last_period_of(rank).is_some_and(|last| k > last) {
                continue;
            }
            slot += 1;
            if rng.gen_bool(jp.drop) {
                continue;
            }
            let mut bytes = FragmentBatch::from_stg_starting_in(stg, rank, period)
                .with_seq(k as u64 + 1)
                .with_job(jp.tenant, jp.job)
                .encode_v3();
            if rng.gen_bool(jp.corrupt) {
                let pos = rng.gen_range(9..bytes.len());
                bytes[pos] ^= 1 << rng.gen_range(0..8u32);
            }
            let delayed = if rng.gen_bool(jp.delay) { rng.gen_range(1u64..3) } else { 0 };
            let jitter = if rng.gen_bool(jp.reorder) {
                rng.gen_range(0..1_000_000u64)
            } else {
                slot
            };
            if rng.gen_bool(jp.duplicate) {
                deliveries.push(((k as u64 + delayed, jitter + 1), bytes.clone()));
            }
            deliveries.push(((k as u64 + delayed, jitter), bytes));
        }
    }
    deliveries.sort_by_key(|(key, _)| *key);
    deliveries.into_iter().map(|(_, bytes)| bytes).collect()
}

/// Run one fleet plan end to end: every job's faulted stream generated,
/// the streams interleaved round-robin, pushed through a sharded
/// [`FleetIngestor`], all windows flushed and attributed back per job.
pub fn run_fleet_plan(plan: &FleetPlan) -> FleetChaosOutcome {
    let period_ns = fleet_period_ns(plan);
    let cfg = plan_config(period_ns);
    let streams: Vec<Vec<Vec<u8>>> =
        plan.jobs.iter().map(|jp| fleet_job_deliveries(plan, jp, period_ns)).collect();

    let mut fleet = FleetIngestor::new(FleetConfig {
        shards: plan.shards,
        default_nranks: 1,
        bins_per_window: 8,
        vapro: cfg,
        queue_capacity_frames: plan.queue_capacity_frames,
        default_tenant_budget_bytes: u64::MAX,
    });
    for jp in &plan.jobs {
        fleet.register_tenant(jp.tenant, u64::MAX);
        fleet.register_job(jp.key(), jp.nranks, jp.tenant);
    }

    let mut rejected_decode = vec![0usize; plan.jobs.len()];
    let mut windows: Vec<FleetWindow> = Vec::new();
    let mut delivered = 0usize;
    let longest = streams.iter().map(Vec::len).max().unwrap_or(0);
    for i in 0..longest {
        for (j, stream) in streams.iter().enumerate() {
            let Some(bytes) = stream.get(i) else { continue };
            delivered += 1;
            match fleet.push_encoded(bytes) {
                Ok(closed) => windows.extend(closed),
                Err(_) => rejected_decode[j] += 1,
            }
        }
    }
    let (report, flushed) = fleet.into_report();
    windows.extend(flushed);

    let mut by_key: BTreeMap<JobKey, Vec<WindowReport>> = BTreeMap::new();
    for w in windows {
        by_key.entry(w.key).or_default().push(w.report);
    }
    let per_job = plan
        .jobs
        .iter()
        .enumerate()
        .map(|(j, jp)| {
            let key = jp.key();
            FleetJobOutcome {
                key,
                reports: by_key.remove(&key).unwrap_or_default(),
                delivered: streams[j].len(),
                rejected_decode: rejected_decode[j],
            }
        })
        .collect();

    FleetChaosOutcome { period_ns, delivered, per_job, report }
}

/// The fleet isolation invariants. For every job, a solo
/// [`WindowedIngestor`] fed exactly that job's delivery sequence (same
/// decode-then-push admission as the fleet's shard path) must produce a
/// bit-identical report stream — so no amount of chaos on *other*
/// tenants can corrupt or stall this one — and the solo reference must
/// tile its admitted data exactly. Clean jobs must additionally admit
/// every delivery. Returns the first violation, `Ok(())` when sound.
pub fn check_fleet_invariants(plan: &FleetPlan, outcome: &FleetChaosOutcome) -> Result<(), String> {
    let cfg = plan_config(outcome.period_ns);
    let period = VirtualTime::from_ns(outcome.period_ns);
    for (jp, job_outcome) in plan.jobs.iter().zip(&outcome.per_job) {
        let deliveries = fleet_job_deliveries(plan, jp, outcome.period_ns);
        if deliveries.len() != job_outcome.delivered {
            return Err(format!(
                "job {:?}: {} deliveries regenerated vs {} recorded",
                job_outcome.key,
                deliveries.len(),
                job_outcome.delivered
            ));
        }
        let mut solo = WindowedIngestor::new(jp.nranks, 8, cfg.clone());
        let mut solo_reports = Vec::new();
        let mut solo_rejected = 0usize;
        for bytes in &deliveries {
            match FragmentBatch::decode(bytes) {
                Ok(batch) => solo_reports.extend(solo.push(batch)),
                Err(_) => solo_rejected += 1,
            }
        }
        let admitted = solo.stats().frames_admitted;
        let max_seen_ns = solo.arena().max_end_ns();
        solo_reports.extend(solo.finish());

        if solo_rejected != job_outcome.rejected_decode {
            return Err(format!(
                "job {:?}: fleet rejected {} frames at decode, solo rejected {}",
                job_outcome.key, job_outcome.rejected_decode, solo_rejected
            ));
        }
        // Isolation: the fleet's per-job output equals the solo run.
        reports_identical(&job_outcome.reports, &solo_reports)
            .map_err(|e| format!("job {:?} diverged from its solo run: {e}", job_outcome.key))?;
        // The solo reference tiles its admitted data exactly.
        let expected =
            windows_covering(VirtualTime::ZERO, VirtualTime::from_ns(max_seen_ns), period);
        if solo_reports.len() != expected.len() {
            return Err(format!(
                "job {:?}: {} windows closed vs {} expected for data up to {} ns",
                job_outcome.key,
                solo_reports.len(),
                expected.len(),
                max_seen_ns
            ));
        }
        for (r, w) in solo_reports.iter().zip(&expected) {
            if r.window != *w {
                return Err(format!(
                    "job {:?}: window {:?} emitted where {:?} expected",
                    job_outcome.key, r.window, w
                ));
            }
        }
        // A clean job's transport loses nothing.
        if jp.is_fault_free()
            && (solo_rejected > 0 || admitted != deliveries.len() as u64)
        {
            return Err(format!(
                "clean job {:?} lost frames: {} delivered, {} admitted, {} rejected",
                job_outcome.key,
                deliveries.len(),
                admitted,
                solo_rejected
            ));
        }
        // The fleet report attributes the job with the right close count.
        let Some(summary) = outcome.report.jobs.iter().find(|s| s.key == job_outcome.key)
        else {
            return Err(format!("job {:?} missing from the fleet report", job_outcome.key));
        };
        if summary.windows_closed != job_outcome.reports.len() {
            return Err(format!(
                "job {:?}: report says {} windows closed, {} observed",
                job_outcome.key,
                summary.windows_closed,
                job_outcome.reports.len()
            ));
        }
    }
    // Every decode rejection is accounted to the unattributed bucket —
    // a corrupted frame names no trustworthy tenant.
    let total_rejected: usize = outcome.per_job.iter().map(|j| j.rejected_decode).sum();
    if outcome.report.unattributed.frames_rejected() != total_rejected as u64 {
        return Err(format!(
            "{} decode rejections but the unattributed bucket counted {}",
            total_rejected,
            outcome.report.unattributed.frames_rejected()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_plans_are_bit_identical_to_one_shot() {
        fault_free_equivalence(&FaultPlan::fault_free(7)).expect("clean plan diverged");
    }

    #[test]
    fn pipelined_and_inline_analysis_agree_under_chaos() {
        let plan = FaultPlan {
            drop: 0.1,
            duplicate: 0.2,
            reorder: 0.4,
            corrupt: 0.1,
            delay: 0.15,
            deaths: vec![(0, 2)],
            ..FaultPlan::fault_free(41)
        };
        pipeline_equivalence(&plan).expect("pipeline diverged from inline");
    }

    #[test]
    fn a_hostile_plan_still_satisfies_the_invariants() {
        let plan = FaultPlan {
            drop: 0.1,
            duplicate: 0.2,
            reorder: 0.4,
            corrupt: 0.1,
            delay: 0.15,
            deaths: vec![(1, 2)],
            ..FaultPlan::fault_free(21)
        };
        let outcome = run_plan(&plan);
        check_invariants(&plan, &outcome).expect("invariants violated");
        assert!(outcome.delivered > 0);
    }

    #[test]
    fn a_killed_rank_leaves_degraded_but_complete_window_cover() {
        // One rank dies after period 1 of 8; every window past its data
        // still closes, with the rank dead/absent in coverage and
        // completeness < 1.
        let plan = FaultPlan { deaths: vec![(2, 1)], ..FaultPlan::fault_free(3) };
        let outcome = run_plan(&plan);
        check_invariants(&plan, &outcome).expect("invariants violated");
        let tail = outcome.reports.last().expect("windows closed");
        assert!(tail.coverage.ranks_dead.contains(&2), "{:?}", tail.coverage);
        assert!(tail.coverage.ranks_absent.contains(&2), "{:?}", tail.coverage);
        assert!(tail.coverage.completeness < 1.0);
        assert!(tail.coverage.is_degraded());
        // The cover still reaches the surviving ranks' full data.
        let last_end = outcome.reports.last().unwrap().window.end.ns();
        assert!(last_end >= outcome.max_seen_ns, "cover stopped early");
    }

    #[test]
    fn a_clean_fleet_plan_is_isolated_and_complete() {
        let plan = FleetPlan::fault_free(11, 3);
        let outcome = run_fleet_plan(&plan);
        check_fleet_invariants(&plan, &outcome).expect("clean fleet violated invariants");
        assert_eq!(outcome.per_job.len(), 3);
        for j in &outcome.per_job {
            assert!(!j.reports.is_empty(), "job {:?} closed no windows", j.key);
            assert_eq!(j.rejected_decode, 0);
        }
    }

    #[test]
    fn a_chaotic_tenant_cannot_corrupt_or_stall_a_clean_one() {
        // Job 0 is clean; job 1 shares the fleet and suffers every fault
        // axis at once. The invariant check proves job 0's output equals
        // its solo run bit for bit — and that job 1, for all its losses,
        // still tiles whatever data survived its transport.
        let mut plan = FleetPlan::fault_free(29, 2);
        plan.shards = 3;
        plan.queue_capacity_frames = 4;
        plan.jobs[1] = JobPlan {
            drop: 0.15,
            duplicate: 0.25,
            reorder: 0.5,
            corrupt: 0.5,
            delay: 0.2,
            deaths: vec![(1, 1)],
            ..plan.jobs[1].clone()
        };
        let outcome = run_fleet_plan(&plan);
        check_fleet_invariants(&plan, &outcome).expect("isolation violated");
        let chaotic = &outcome.per_job[1];
        assert!(chaotic.rejected_decode > 0, "corruption axis never fired");
        assert!(
            outcome.report.unattributed.corrupt_frames >= chaotic.rejected_decode as u64 / 2,
            "decode rejections not surfaced in the fleet report"
        );
    }

    #[test]
    fn fleet_plans_are_deterministic_in_their_seed() {
        let plan = FleetPlan::random(77);
        assert_eq!(plan, FleetPlan::random(77));
        let a = run_fleet_plan(&plan);
        let b = run_fleet_plan(&plan);
        assert_eq!(a.delivered, b.delivered);
        for (ja, jb) in a.per_job.iter().zip(&b.per_job) {
            assert_eq!(ja.key, jb.key);
            assert_eq!(ja.rejected_decode, jb.rejected_decode);
            reports_identical(&ja.reports, &jb.reports).expect("same fleet plan diverged");
        }
    }

    #[test]
    fn plans_are_deterministic_in_their_seed() {
        let plan = FaultPlan::random(99);
        assert_eq!(plan, FaultPlan::random(99));
        let a = run_plan(&plan);
        let b = run_plan(&plan);
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.admitted, b.admitted);
        assert_eq!(a.reports.len(), b.reports.len());
        reports_identical(&a.reports, &b.reports).expect("same plan diverged");
    }
}
