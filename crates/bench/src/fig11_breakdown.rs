//! Fig. 11 (plus the §4.2 OLS-vs-formula check): variance breakdown of
//! fixed-workload CG fragments under concurrent computing noise and
//! memory contention. Each fragment becomes a point in
//! (backend-bound excess, suspension excess) space; its marker is the
//! major factor behind its slowdown.

use crate::common::{header, vapro_cf, ExpOpts};
use vapro::harness::run_under_vapro;
use vapro_apps::AppParams;
use vapro_core::diagnose::{
    analyze_contributions, factor_value, ols_impacts, Factor, FactorValues,
};
use vapro_core::fragment::Fragment;
use vapro_sim::{NoiseEvent, NoiseKind, NoiseSchedule, SimConfig, TargetSet, VirtualTime};

/// One scatter point of the breakdown plot.
#[derive(Debug, Clone, Copy)]
pub struct BreakdownPoint {
    /// Backend-bound excess over the normal reference (ns).
    pub backend_excess: f64,
    /// Suspension excess over the normal reference (ns).
    pub suspension_excess: f64,
    /// Classification: "BE", "SP", "BE+SP" or "Normal".
    pub label: &'static str,
}

/// Output of the Fig. 11 analysis.
pub struct BreakdownRun {
    /// Scatter points.
    pub points: Vec<BreakdownPoint>,
    /// Formula-based share of the slowdown: (backend, suspension).
    pub formula_shares: (f64, f64),
    /// OLS-based share of the slowdown: (backend, suspension).
    pub ols_shares: (f64, f64),
}

/// Collect the fixed-workload fragments of CG's hottest edge under both
/// noises active at once, with the S2-backend counter set live.
fn noisy_fragments(opts: &ExpOpts) -> Vec<Fragment> {
    let ranks = opts.resolve_ranks(8, 16);
    let iters = opts.resolve_iters(30);
    let params = AppParams::default().with_iterations(iters);
    // Noise alternates in windows so both noisy and clean fragments exist.
    let window = VirtualTime::from_ms(40);
    let mut schedule = NoiseSchedule::quiet();
    // The two noise sources fluctuate independently (as real co-tenants
    // do): windows cycle quiet → memory-only → CPU-only → both. The
    // paper's mix skews toward the memory side, so backend bound ends up
    // with most of the slowdown (~89 % in the paper) and suspension with
    // a small share (~5 %); the independent variation is also what lets
    // OLS separate the two factors.
    for w in 0..200u64 {
        let start = VirtualTime::from_ns(w * window.ns());
        let end = VirtualTime::from_ns((w + 1) * window.ns());
        if w % 4 == 1 || w % 4 == 3 {
            schedule = schedule.with(NoiseEvent::during(
                NoiseKind::MemContention { intensity: 2.5 },
                TargetSet::Ranks(vec![0]),
                start,
                end,
            ));
        }
        if w % 4 == 2 || w % 4 == 3 {
            schedule = schedule.with(NoiseEvent::during(
                NoiseKind::CpuContention { steal: 0.15 },
                TargetSet::Ranks(vec![0]),
                start,
                end,
            ));
        }
    }
    let cfg = SimConfig::new(ranks).with_noise(schedule).with_seed(opts.seed);
    let vapro_cfg = vapro_cf().with_counters(vapro_pmu::events::s2_backend_set());
    let run = run_under_vapro(&cfg, &vapro_cfg, |ctx| {
        vapro_apps::npb::cg::run(ctx, &params)
    });
    let stg = &run.stgs[0];
    let edge = stg.hottest_edge().expect("CG has edges");
    edge.fragments.clone()
}

/// Run the breakdown analysis.
pub fn analyze(opts: &ExpOpts) -> BreakdownRun {
    let fragments = noisy_fragments(opts);
    let refs: Vec<&Fragment> = fragments.iter().collect();
    let factors = [Factor::BackendBound, Factor::Suspension];
    let fv = FactorValues::compute(&refs, &factors).expect("counters present");
    let report =
        analyze_contributions(&fv, 1.2, 0.25).expect("both noisy and clean fragments");

    // Reference values (mean over normal fragments) for the scatter.
    let min_dur = fv.durations.iter().cloned().fold(f64::INFINITY, f64::min);
    let normal: Vec<usize> = (0..fv.len())
        .filter(|&i| fv.durations[i] <= 1.2 * min_dur)
        .collect();
    let ref_be: f64 =
        normal.iter().map(|&i| fv.values[i][0]).sum::<f64>() / normal.len() as f64;
    let ref_sp: f64 =
        normal.iter().map(|&i| fv.values[i][1]).sum::<f64>() / normal.len() as f64;

    let points = (0..fv.len())
        .map(|i| {
            let be = fv.values[i][0] - ref_be;
            let sp = fv.values[i][1] - ref_sp;
            let abnormal = fv.durations[i] > 1.2 * min_dur;
            let slow = (fv.durations[i] - min_dur).max(1.0);
            let label = if !abnormal {
                "Normal"
            } else {
                let be_major = be > 0.25 * slow;
                let sp_major = sp > 0.25 * slow;
                match (be_major, sp_major) {
                    (true, true) => "BE+SP",
                    (true, false) => "BE",
                    (false, true) => "SP",
                    (false, false) => "BE", // residual goes to the larger
                }
            };
            BreakdownPoint { backend_excess: be, suspension_excess: sp, label }
        })
        .collect();

    // Formula-based shares.
    let be_share = report.of(Factor::BackendBound).map_or(0.0, |c| c.impact_share);
    let sp_share = report.of(Factor::Suspension).map_or(0.0, |c| c.impact_share);

    // OLS-based shares: regress duration on the two factor times.
    let (impacts, _r2) = ols_impacts(&fv, 0.05).expect("enough fragments");
    let be_ols = impacts
        .iter()
        .find(|i| i.factor == Factor::BackendBound)
        .map_or(0.0, |i| i.impact_ns);
    let sp_ols = impacts
        .iter()
        .find(|i| i.factor == Factor::Suspension)
        .map_or(0.0, |i| i.impact_ns);
    let total_ols = (be_ols + sp_ols).max(1e-9);

    BreakdownRun {
        points,
        formula_shares: (be_share, sp_share),
        ols_shares: (be_ols / total_ols, sp_ols / total_ols),
    }
}

/// Run the experiment and format the report.
pub fn run(opts: &ExpOpts) -> String {
    let r = analyze(opts);
    let mut out = header(
        "Figure 11 (+ §4.2 verification)",
        "Breakdown of CG fragments under combined computing + memory noise",
    );
    out.push_str("backend_excess_ns,suspension_excess_ns,label\n");
    for p in &r.points {
        out.push_str(&format!(
            "{:.0},{:.0},{}\n",
            p.backend_excess, p.suspension_excess, p.label
        ));
    }
    out.push_str(&format!(
        "\nformula-based shares: backend {:.1}%  suspension {:.1}%\n",
        r.formula_shares.0 * 100.0,
        r.formula_shares.1 * 100.0
    ));
    out.push_str(&format!(
        "OLS-based shares:     backend {:.1}%  suspension {:.1}%\n",
        r.ols_shares.0 * 100.0,
        r.ols_shares.1 * 100.0
    ));
    out.push_str(
        "(paper §4.2: formula 89.4%/4.9% vs OLS 86.6%/3.1% — the two methods agree)\n",
    );
    out
}

/// Evaluate a single factor on a fragment — re-exported for the example
/// binaries.
pub fn factor_of(frag: &Fragment, f: Factor) -> Option<f64> {
    factor_value(frag, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_factor_classes_appear_and_methods_agree() {
        let opts = ExpOpts { ranks: Some(4), iterations: Some(25), ..ExpOpts::default() };
        let r = analyze(&opts);
        let normal = r.points.iter().filter(|p| p.label == "Normal").count();
        let abnormal = r.points.len() - normal;
        assert!(normal > 3, "normals {normal}");
        assert!(abnormal > 3, "abnormals {abnormal}");
        // Backend dominates (the memory noise is the heavier of the two
        // on this memory-leaning workload), suspension is present.
        let (be_f, sp_f) = r.formula_shares;
        assert!(be_f > sp_f, "backend {be_f} vs suspension {sp_f}");
        assert!(sp_f > 0.0);
        // The two estimation methods agree on the ranking.
        let (be_o, sp_o) = r.ols_shares;
        assert!(be_o > sp_o, "OLS backend {be_o} vs suspension {sp_o}");
        // And roughly on magnitude (the paper's consistency check).
        assert!((be_f - be_o).abs() < 0.3, "formula {be_f} vs OLS {be_o}");
    }
}
