//! Shared experiment plumbing: options, noise presets, and report
//! formatting helpers.

use vapro_core::VaproConfig;
use vapro_sim::{NoiseEvent, NoiseKind, NoiseSchedule, TargetSet, VirtualTime};

/// Options common to every experiment.
#[derive(Debug, Clone)]
pub struct ExpOpts {
    /// Override the rank/thread count (None = the experiment's scaled
    /// default; with `full` = the paper's scale).
    pub ranks: Option<usize>,
    /// Override the iteration count.
    pub iterations: Option<usize>,
    /// Override the repeated-run count (Fig. 1, Fig. 16).
    pub runs: Option<usize>,
    /// Use the paper's full scale (up to 2048 ranks — minutes, not
    /// seconds).
    pub full: bool,
    /// Master seed.
    pub seed: u64,
    /// Emit machine-readable JSON alongside the text report.
    pub json: bool,
}

impl Default for ExpOpts {
    fn default() -> Self {
        ExpOpts {
            ranks: None,
            iterations: None,
            runs: None,
            full: false,
            seed: 0xC0FFEE,
            json: false,
        }
    }
}

impl ExpOpts {
    /// Resolve the rank count: explicit override, else full-scale value
    /// when `--full`, else the scaled default.
    pub fn resolve_ranks(&self, scaled: usize, full_scale: usize) -> usize {
        self.ranks.unwrap_or(if self.full { full_scale } else { scaled })
    }

    /// Resolve the iteration count.
    pub fn resolve_iters(&self, default: usize) -> usize {
        self.iterations.unwrap_or(default)
    }

    /// Resolve the run count.
    pub fn resolve_runs(&self, default: usize) -> usize {
        self.runs.unwrap_or(default)
    }
}

/// The `stress`-style computing noise of the paper's §6: a CPU hog
/// sharing the victim core, stealing half the cycles.
pub fn computing_noise(targets: TargetSet, start: VirtualTime, end: VirtualTime) -> NoiseEvent {
    NoiseEvent::during(NoiseKind::CpuContention { steal: 0.5 }, targets, start, end)
}

/// The STREAM-style memory noise: bandwidth contention from idle cores.
pub fn memory_noise(targets: TargetSet, start: VirtualTime, end: VirtualTime) -> NoiseEvent {
    NoiseEvent::during(NoiseKind::MemContention { intensity: 1.5 }, targets, start, end)
}

/// A schedule holding a single always-on event.
pub fn always(kind: NoiseKind, targets: TargetSet) -> NoiseSchedule {
    NoiseSchedule::quiet().with(NoiseEvent::always(kind, targets))
}

/// The default Vapro configuration used by the experiments (context-free
/// STG, per §6.2's conclusion).
pub fn vapro_cf() -> VaproConfig {
    VaproConfig::context_free()
}

/// Format a report header.
pub fn header(title: &str, detail: &str) -> String {
    format!("== {title} ==\n{detail}\n\n")
}

/// Format a `(label, value)` table with aligned columns.
pub fn kv_table(rows: &[(String, String)]) -> String {
    let w = rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
    rows.iter()
        .map(|(k, v)| format!("  {k:<w$}  {v}\n"))
        .collect()
}

/// When `--json` is set, append a fenced machine-readable block to the
/// report (plot scripts grep for the `### json <name>` marker).
pub fn maybe_json(opts: &ExpOpts, name: &str, value: serde_json::Value) -> String {
    if !opts.json {
        return String::new();
    }
    format!(
        "\n### json {name}\n{}\n### end json\n",
        serde_json::to_string(&value).expect("serialisable")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_resolution_order() {
        let mut o = ExpOpts::default();
        assert_eq!(o.resolve_ranks(64, 2048), 64);
        o.full = true;
        assert_eq!(o.resolve_ranks(64, 2048), 2048);
        o.ranks = Some(128);
        assert_eq!(o.resolve_ranks(64, 2048), 128);
    }

    #[test]
    fn kv_table_aligns() {
        let t = kv_table(&[
            ("a".into(), "1".into()),
            ("long-key".into(), "2".into()),
        ]);
        assert!(t.contains("a         1"));
        assert!(t.contains("long-key  2"));
    }
}
