//! §6.2's deployment numbers: server resource overhead (one server per
//! 256 clients ⇒ 0.4 %) and storage rate (the paper measures 12.8 KB/s
//! per thread and 47.4 KB/s per process of recorded performance data).

use crate::common::{header, vapro_cf, ExpOpts};
use vapro::harness::run_under_vapro;
use vapro_apps::AppParams;
use vapro_core::ServerPool;
use vapro_sim::{SimConfig, Topology};

/// Measured deployment numbers.
pub struct StorageRun {
    /// Bytes/sec of recorded data per process (CG).
    pub process_rate: f64,
    /// Bytes/sec per thread (PageRank).
    pub thread_rate: f64,
    /// Server resource overhead for a 256-client pool.
    pub server_overhead: f64,
}

/// Measure recorded-data rates.
pub fn measure(opts: &ExpOpts) -> StorageRun {
    let iters = opts.resolve_iters(15);
    let params = AppParams::default().with_iterations(iters);

    let proc_cfg = SimConfig::new(opts.resolve_ranks(16, 1024)).with_seed(opts.seed);
    let proc_run = run_under_vapro(&proc_cfg, &vapro_cf(), |ctx| {
        vapro_apps::npb::cg::run(ctx, &params)
    });
    let secs = proc_run.makespan.as_secs_f64().max(1e-9);
    let process_rate = proc_run.bytes_recorded.iter().map(|&b| b as f64).sum::<f64>()
        / proc_run.bytes_recorded.len() as f64
        / secs;

    let threads = 8;
    let thr_cfg = SimConfig::new(threads)
        .with_topology(Topology::single_node(threads))
        .with_seed(opts.seed);
    let thr_run = run_under_vapro(&thr_cfg, &vapro_cf(), |ctx| {
        vapro_apps::pagerank::run(ctx, &params)
    });
    let secs_t = thr_run.makespan.as_secs_f64().max(1e-9);
    let thread_rate = thr_run.bytes_recorded.iter().map(|&b| b as f64).sum::<f64>()
        / thr_run.bytes_recorded.len() as f64
        / secs_t;

    let pool = ServerPool::new(1, 256);
    StorageRun { process_rate, thread_rate, server_overhead: pool.resource_overhead() }
}

/// Run the experiment and format the report.
pub fn run(opts: &ExpOpts) -> String {
    let r = measure(opts);
    let mut out = header("§6.2 deployment numbers", "Storage rate and server overhead");
    out.push_str(&format!(
        "per-process data rate: {:.1} KB/s (paper: 47.4 KB/s)\n",
        r.process_rate / 1e3
    ));
    out.push_str(&format!(
        "per-thread data rate:  {:.1} KB/s (paper: 12.8 KB/s)\n",
        r.thread_rate / 1e3
    ));
    out.push_str(&format!(
        "server overhead at 256 clients/server: {:.2}% (paper: 0.4%)\n",
        r.server_overhead * 100.0
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_are_modest_and_process_exceeds_thread() {
        let opts = ExpOpts { ranks: Some(8), iterations: Some(10), ..ExpOpts::default() };
        let r = measure(&opts);
        assert!(r.process_rate > 0.0);
        assert!(r.thread_rate > 0.0);
        // Processes (MPI-chatty CG) record more than threads (barrier-only
        // PageRank) — the paper's 47.4 vs 12.8 ordering.
        assert!(
            r.process_rate > r.thread_rate,
            "process {} vs thread {}",
            r.process_rate,
            r.thread_rate
        );
        // Server overhead is the paper's 1/256.
        assert!((r.server_overhead - 1.0 / 256.0).abs() < 1e-9);
    }
}
