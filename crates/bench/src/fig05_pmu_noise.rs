//! Fig. 5: per-execution TOT_INS and TSC of fixed-workload computation
//! fragments in 16-process B-scale CG, under injected computation noise
//! and under memory noise. The paper's point: TOT_INS stays flat (a good
//! workload proxy); TSC inflates (it *is* the variance).

use crate::common::{header, vapro_cf, ExpOpts};
use vapro::harness::run_under_vapro;
use vapro_apps::AppParams;
use vapro_pmu::CounterId;
use vapro_sim::{NoiseKind, SimConfig, TargetSet};

/// Series of (TOT_INS, TSC) per execution of the busiest fixed-workload
/// edge of rank 0, under the given noise kind. The noise is injected
/// *while CG is executing* (paper's wording): a window over the middle of
/// the run, so clean and noisy executions of the same snippet coexist.
pub fn series_under(opts: &ExpOpts, noise: NoiseKind) -> Vec<(f64, f64)> {
    let ranks = opts.resolve_ranks(8, 16);
    let iters = opts.resolve_iters(20);
    let params = AppParams::default().with_iterations(iters);
    let base = SimConfig::new(ranks).with_seed(opts.seed);
    let span = vapro::harness::run_bare(&base, |ctx| {
        vapro_apps::npb::cg::run(ctx, &params)
    });
    let window = vapro_sim::NoiseEvent::during(
        noise,
        TargetSet::Ranks(vec![0]),
        vapro_sim::VirtualTime::from_ns(span.ns() / 3),
        vapro_sim::VirtualTime::from_ns(2 * span.ns() / 3),
    );
    let cfg = base.with_noise(vapro_sim::NoiseSchedule::quiet().with(window));
    let run = run_under_vapro(&cfg, &vapro_cf(), |ctx| {
        vapro_apps::npb::cg::run(ctx, &params)
    });
    let stg = &run.stgs[0];
    // The hottest edge = the dominant repeated fixed-workload snippet.
    let edge = stg.hottest_edge().expect("CG has edges");
    edge.fragments
        .iter()
        .map(|f| {
            (
                f.counters.get_or_zero(CounterId::TotIns),
                f.counters.get_or_zero(CounterId::Tsc),
            )
        })
        .collect()
}

/// Relative spread (max−min)/mean of a series component.
pub fn rel_spread(xs: &[f64]) -> f64 {
    let mean = vapro_stats::mean(xs);
    if mean == 0.0 {
        return 0.0;
    }
    let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = xs.iter().cloned().fold(0.0f64, f64::max);
    (max - min) / mean
}

/// Run the experiment and format the report.
pub fn run(opts: &ExpOpts) -> String {
    let mut out = header(
        "Figure 5",
        "TOT_INS vs TSC of fixed-workload CG fragments under injected noise",
    );
    for (label, noise) in [
        ("computation noise", NoiseKind::CpuContention { steal: 0.5 }),
        ("memory noise", NoiseKind::MemContention { intensity: 1.5 }),
    ] {
        let series = series_under(opts, noise);
        out.push_str(&format!("-- {label} --\nexec,TOT_INS,TSC\n"));
        for (i, (ins, tsc)) in series.iter().enumerate() {
            out.push_str(&format!("{i},{ins:.0},{tsc:.0}\n"));
        }
        let ins: Vec<f64> = series.iter().map(|s| s.0).collect();
        let tsc: Vec<f64> = series.iter().map(|s| s.1).collect();
        out.push_str(&format!(
            "TOT_INS spread {:.2}%  TSC spread {:.2}%  (stable proxy vs noisy time)\n\n",
            rel_spread(&ins) * 100.0,
            rel_spread(&tsc) * 100.0
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tot_ins_flat_tsc_noisy_under_both_noises() {
        let opts = ExpOpts { ranks: Some(4), iterations: Some(12), ..ExpOpts::default() };
        for noise in [
            NoiseKind::CpuContention { steal: 0.5 },
            NoiseKind::MemContention { intensity: 1.5 },
        ] {
            let series = series_under(&opts, noise);
            assert!(series.len() >= 10, "too few fragments: {}", series.len());
            let ins: Vec<f64> = series.iter().map(|s| s.0).collect();
            let tsc: Vec<f64> = series.iter().map(|s| s.1).collect();
            let ins_spread = rel_spread(&ins);
            let tsc_spread = rel_spread(&tsc);
            // TOT_INS within PMU jitter (≪ 5%); TSC inflated by the noise.
            assert!(ins_spread < 0.03, "TOT_INS spread {ins_spread}");
            assert!(tsc_spread > 0.10, "TSC spread {tsc_spread}");
            assert!(tsc_spread > 5.0 * ins_spread);
        }
    }
}
