//! Detection-throughput harness: the numbers behind `BENCH_detect.json`.
//!
//! Measures the end-to-end `detect` pipeline — sequential reference vs
//! the rayon fan-out — on a synthetic multi-rank STG whose size and
//! location count are controlled, plus the clustering kernel's pruned vs
//! unpruned throughput. The clustering measurement runs over a prebuilt
//! contiguous lane matrix — the form [`vapro_core::ColumnarPool`]
//! actually holds in memory — so the number prices the kernel, not a
//! per-call AoS→SoA conversion the production path never performs.
//!
//! Every timed metric follows the [`crate::stats`] methodology: warmup,
//! ≥30 samples, median + MAD. The `perf` binary writes the result as
//! `BENCH_detect.json`; [`crate::regression`] compares a fresh run
//! against the previous file and warns on throughput drops beyond the
//! measured noise (20 % floor).
//!
//! The parallel numbers scale with `threads` (recorded in the report):
//! on a single-core runner the fan-out degenerates to a work queue
//! drained by two threads on one CPU, so the parallel-vs-sequential
//! `speedup` is recorded as `None` there (it would measure scheduler
//! overhead, not the code) and regression gating keys on the
//! *sequential* throughput.

use crate::stats::{self, TrendPoint};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use vapro_core::clustering::{cluster_lanes, cluster_vectors_unpruned};
use vapro_core::detect::pipeline::{detect, detect_seq};
use vapro_core::{Fragment, FragmentKind, StateKey, Stg, VaproConfig};
use vapro_pmu::{CounterDelta, CounterId};
use vapro_sim::{CallSite, VirtualTime};

/// One harness run, serialised to `BENCH_detect.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectPerf {
    /// Harness identifier (always `"detect"`).
    pub bench: String,
    /// Worker threads available to the fan-out.
    pub threads: usize,
    /// Ranks in the synthetic run.
    pub ranks: usize,
    /// Total fragments across all ranks' STGs.
    pub fragments: usize,
    /// Merged STG locations (vertices + edges) the fan-out distributes.
    pub locations: usize,
    /// Timed samples per metric (after warmup); at least
    /// [`stats::MIN_SAMPLES`]. Zero on reports predating the
    /// multi-sample methodology.
    pub samples: usize,
    /// Median-of-samples wall time of the sequential pipeline, ns.
    pub seq_ns: f64,
    /// Median-of-samples wall time of the parallel pipeline, ns.
    pub par_ns: f64,
    /// Sequential throughput, fragments/second (from the median).
    pub seq_fragments_per_sec: f64,
    /// Relative noise of the sequential timing (MAD/median); the
    /// regression gate widens its tolerance to cover it.
    pub seq_noise_frac: f64,
    /// Parallel throughput, fragments/second (from the median).
    pub par_fragments_per_sec: f64,
    /// Relative noise of the parallel timing (MAD/median).
    pub par_noise_frac: f64,
    /// `seq_ns / par_ns`, or `None` on single-core runners (1 detected
    /// thread), where the ratio says nothing about the code. A previous
    /// report with a plain number still deserialises (into `Some`).
    pub speedup: Option<f64>,
    /// Vectors in the clustering kernel measurement.
    pub cluster_vectors: usize,
    /// Norm-pruned clustering throughput over a prebuilt contiguous
    /// `n × dim` lane matrix (the columnar in-memory form),
    /// vectors/second (from the median).
    pub cluster_vectors_per_sec: f64,
    /// Relative noise of the clustering timing (MAD/median).
    pub cluster_noise_frac: f64,
    /// Exhaustive-reference clustering throughput, vectors/second.
    pub unpruned_cluster_vectors_per_sec: f64,
    /// Pruned over unpruned throughput.
    pub pruned_speedup: f64,
    /// One headline point per harness run, carried forward from the
    /// previous BENCH file (bounded; see [`stats::MAX_TREND_POINTS`]).
    pub history: Vec<TrendPoint>,
}

/// Build per-rank STGs for the throughput measurement: `sites` call
/// sites per rank, each a self-loop carrying computation fragments of a
/// site-specific workload class (±0.3 % PMU-style jitter), with an
/// invocation fragment every few iterations. One rank runs 2× slower in
/// the middle third so region growing has real work to do.
pub fn synthetic_stgs(nranks: usize, frags_per_rank: usize, sites: usize, seed: u64) -> Vec<Stg> {
    let sites = sites.max(1);
    let names: Vec<&'static str> = (0..sites)
        .map(|j| &*Box::leak(format!("perf:site{j:02}").into_boxed_str()))
        .collect();
    (0..nranks)
        .map(|rank| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (rank as u64).wrapping_mul(0x9E37));
            let mut stg = Stg::new();
            let start = stg.state(StateKey::Start);
            let states: Vec<_> = names
                .iter()
                .map(|&n| stg.state(StateKey::Site(CallSite(n))))
                .collect();
            let loops: Vec<_> = states.iter().map(|&s| stg.transition(s, s)).collect();
            stg.transition(start, states[0]);
            let mut t = 0u64;
            for i in 0..frags_per_rank {
                let j = i % sites;
                let base_ins = 1_000.0 * 1.3f64.powi(j as i32);
                let jitter = 1.0 + rng.gen_range(-0.003..0.003);
                let ins = base_ins * jitter;
                let mut base_dur = (base_ins / 10.0) * jitter;
                // The slow window: rank `nranks-1`, middle third of its
                // iterations, computing at half speed.
                if rank == nranks - 1 && (frags_per_rank / 3..2 * frags_per_rank / 3).contains(&i)
                {
                    base_dur *= 2.0;
                }
                let dur = base_dur.max(1.0) as u64;
                let mut c = CounterDelta::default();
                c.put(CounterId::TotIns, ins);
                stg.attach_edge_fragment(
                    loops[j],
                    Fragment {
                        rank,
                        kind: FragmentKind::Computation,
                        start: VirtualTime::from_ns(t),
                        end: VirtualTime::from_ns(t + dur),
                        counters: c,
                        args: vec![],
                    },
                );
                t += dur;
                if i % 8 == 0 {
                    stg.attach_vertex_fragment(
                        states[j],
                        Fragment {
                            rank,
                            kind: FragmentKind::Communication,
                            start: VirtualTime::from_ns(t),
                            end: VirtualTime::from_ns(t + 10),
                            counters: CounterDelta::default(),
                            args: vec![64.0, 1.0],
                        },
                    );
                    t += 10;
                }
            }
            stg
        })
        .collect()
}

/// Workload vectors with `classes` well-separated classes — the
/// clustering-kernel input (mirrors the criterion bench's generator).
pub fn synthetic_vectors(n: usize, classes: usize, dim: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let class = i % classes.max(1);
            let base = 1_000.0 * 1.5f64.powi(class as i32);
            (0..dim.max(1))
                .map(|_| base * (1.0 + rng.gen_range(-0.003..0.003)))
                .collect()
        })
        .collect()
}

/// Detected hardware parallelism, recorded in every BENCH json so the
/// regression gate can tell a code regression from a smaller runner.
/// Queried once per report via `std::thread::available_parallelism`.
pub fn detected_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Run the full measurement. `frags_per_rank × nranks` is the fragment
/// budget; `reps` is the requested timed samples per metric, floored at
/// [`stats::MIN_SAMPLES`] and preceded by a warmup phase.
pub fn measure(
    nranks: usize,
    frags_per_rank: usize,
    sites: usize,
    bins: usize,
    reps: usize,
    cluster_n: usize,
) -> DetectPerf {
    let cfg = VaproConfig::default();
    let stgs = synthetic_stgs(nranks, frags_per_rank, sites, 0xBE7C);
    let fragments: usize = stgs.iter().map(Stg::total_fragments).sum();
    let merged = vapro_core::merge_stgs(&stgs);
    let locations = merged.vertices.len() + merged.edges.len();
    drop(merged);

    // Determinism sanity: the fan-out must reproduce the sequential
    // output exactly before its timing means anything.
    let seq_out = detect_seq(&stgs, nranks, bins, &cfg);
    let par_out = detect(&stgs, nranks, bins, &cfg);
    assert_eq!(seq_out.series, par_out.series, "parallel detect diverged");
    assert_eq!(seq_out.rare_paths, par_out.rare_paths, "parallel detect diverged");

    let seq = stats::sample_ns(reps, || detect_seq(&stgs, nranks, bins, &cfg));
    let par = stats::sample_ns(reps, || detect(&stgs, nranks, bins, &cfg));

    // The clustering kernel is measured over the lane matrix it runs on
    // in production: the columnar pool already stores workload vectors
    // row-major and contiguous, so the flatten happens once at build
    // time, not per clustering pass.
    let dim = 3;
    let vectors = synthetic_vectors(cluster_n, 16, dim, 0x5EED);
    let mut lanes = Vec::with_capacity(cluster_n * dim);
    for v in &vectors {
        lanes.extend_from_slice(v);
    }
    let pruned = stats::sample_ns(reps, || cluster_lanes(&lanes, cluster_n, dim, 0.05, 5));
    let unpruned = stats::sample_ns(reps, || cluster_vectors_unpruned(&vectors, 0.05, 5));

    let threads = detected_threads();
    let per_sec = |count: usize, ns: f64| count as f64 / (ns / 1e9);
    DetectPerf {
        bench: "detect".to_string(),
        threads,
        ranks: nranks,
        fragments,
        locations,
        samples: seq.samples,
        seq_ns: seq.median_ns,
        par_ns: par.median_ns,
        seq_fragments_per_sec: per_sec(fragments, seq.median_ns),
        seq_noise_frac: seq.noise_frac(),
        par_fragments_per_sec: per_sec(fragments, par.median_ns),
        par_noise_frac: par.noise_frac(),
        speedup: (threads > 1).then_some(seq.median_ns / par.median_ns),
        cluster_vectors: cluster_n,
        cluster_vectors_per_sec: per_sec(cluster_n, pruned.median_ns),
        cluster_noise_frac: pruned.noise_frac(),
        unpruned_cluster_vectors_per_sec: per_sec(cluster_n, unpruned.median_ns),
        pruned_speedup: unpruned.median_ns / pruned.median_ns,
        history: Vec::new(),
    }
}

/// The defaults the acceptance measurement uses: 4 ranks × 2000
/// fragments/rank (8k total), 32 sites, 64 heat-map bins, 30 samples
/// per metric.
pub fn measure_default() -> DetectPerf {
    measure(4, 2000, 32, 64, stats::MIN_SAMPLES, 100_000)
}

/// Human summary of one report.
pub fn summary(p: &DetectPerf) -> String {
    let speedup = match p.speedup {
        Some(s) => format!("speedup {s:.2}x"),
        None => "speedup n/a (1 thread)".to_string(),
    };
    format!(
        "detect: {} fragments / {} ranks / {} locations / {} threads / median of {} samples\n\
         sequential: {:>10.0} fragments/s ({:.2} ms, ±{:.1}% MAD)\n\
         parallel:   {:>10.0} fragments/s ({:.2} ms, ±{:.1}% MAD)  {}\n\
         clustering: {:>10.0} vectors/s pruned lanes (±{:.1}% MAD), {:.0} vectors/s unpruned ({:.2}x)\n",
        p.fragments,
        p.ranks,
        p.locations,
        p.threads,
        p.samples,
        p.seq_fragments_per_sec,
        p.seq_ns / 1e6,
        p.seq_noise_frac * 100.0,
        p.par_fragments_per_sec,
        p.par_ns / 1e6,
        p.par_noise_frac * 100.0,
        speedup,
        p.cluster_vectors_per_sec,
        p.cluster_noise_frac * 100.0,
        p.unpruned_cluster_vectors_per_sec,
        p.pruned_speedup,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_stgs_hit_the_fragment_budget() {
        let stgs = synthetic_stgs(4, 160, 8, 1);
        assert_eq!(stgs.len(), 4);
        let total: usize = stgs.iter().map(Stg::total_fragments).sum();
        // 160 computation + 20 invocation fragments per rank.
        assert_eq!(total, 4 * 180);
        // All ranks share the same states, so merging pools across ranks.
        let merged = vapro_core::merge_stgs(&stgs);
        for (_, pool) in &merged.vertices {
            assert!(pool.iter().map(|f| f.rank).collect::<std::collections::HashSet<_>>().len() > 1);
        }
    }

    #[test]
    fn measure_produces_consistent_throughput() {
        let p = measure(2, 120, 4, 8, 1, 1_500);
        assert_eq!(p.ranks, 2);
        assert!(p.fragments >= 240);
        assert!(p.locations >= 4);
        assert!(p.seq_fragments_per_sec > 0.0);
        assert!(p.par_fragments_per_sec > 0.0);
        // Single-core runners omit the parallel-vs-sequential speedup —
        // it would measure the scheduler, not the code.
        match p.speedup {
            Some(s) => {
                assert!(p.threads > 1);
                assert!(s > 0.0);
            }
            None => assert_eq!(p.threads, 1),
        }
        assert!(p.cluster_vectors_per_sec > 0.0);
        assert!(p.threads >= 1);
        // The multi-sample methodology: at least the floor, with finite
        // recorded noise for the gate to price in.
        assert!(p.samples >= crate::stats::MIN_SAMPLES);
        assert!(p.seq_noise_frac.is_finite() && p.seq_noise_frac >= 0.0);
        assert!(p.par_noise_frac.is_finite() && p.par_noise_frac >= 0.0);
        assert!(p.cluster_noise_frac.is_finite() && p.cluster_noise_frac >= 0.0);
        assert!(p.history.is_empty(), "history is appended by the binary, not measure()");
    }

    #[test]
    fn report_roundtrips_through_json() {
        let p = measure(2, 60, 4, 8, 1, 500);
        let json = serde_json::to_string(&p).expect("serialisable");
        let back: DetectPerf = serde_json::from_str(&json).expect("parses");
        assert_eq!(p.bench, back.bench);
        assert_eq!(p.fragments, back.fragments);
        assert!((p.seq_fragments_per_sec - back.seq_fragments_per_sec).abs() < 1.0);
    }
}
