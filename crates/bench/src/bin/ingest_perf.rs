//! The `ingest_perf` binary: run the wire-format + windowed-ingestion
//! harness, compare it against the previous run, and write
//! `BENCH_ingest.json`.
//!
//! ```text
//! ingest_perf [--out PATH] [--fragments N] [--ranks N] [--periods N] [--reps N]
//! ```
//!
//! Defaults measure the acceptance configuration: a 4-rank synthetic run
//! with 8000 computation fragments shipped over 12 reporting periods. If
//! a previous `BENCH_ingest.json` exists at the output path, throughput
//! drops beyond 20 % are reported as warnings before the file is
//! overwritten. The release-mode wire-format targets (≥4× smaller than
//! JSON, ≥5× faster decode, integrity checking costing <10 % of the
//! fault-free end-to-end ingest rate) are checked and failed loudly, as
//! are the bounded-memory streaming targets: a ≥200-window long stream
//! with flat per-period cost (late-quarter median within the
//! noise-scaled tolerance of the early-quarter median) and an arena
//! high water that plateaus after warmup (≤1.5× the midpoint peak).

use vapro_bench::{ingest, regression, stats};

fn usage() -> ! {
    eprintln!(
        "usage: ingest_perf [--out PATH] [--fragments N] [--ranks N] [--periods N] [--reps N]"
    );
    std::process::exit(2);
}

fn num_arg(args: &mut impl Iterator<Item = String>, flag: &str) -> usize {
    match args.next().and_then(|v| v.parse().ok()) {
        Some(n) => n,
        None => {
            eprintln!("{flag} needs a numeric argument");
            usage()
        }
    }
}

fn main() {
    let mut out = String::from("BENCH_ingest.json");
    let mut fragments = 8000usize;
    let mut ranks = 4usize;
    let mut periods = 12usize;
    let mut reps = 3usize;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--out" => match args.next() {
                Some(p) => out = p,
                None => usage(),
            },
            "--fragments" => fragments = num_arg(&mut args, "--fragments"),
            "--ranks" => ranks = num_arg(&mut args, "--ranks").max(1),
            "--periods" => periods = num_arg(&mut args, "--periods").max(1),
            "--reps" => reps = num_arg(&mut args, "--reps").max(1),
            _ => usage(),
        }
    }

    let mut report = ingest::measure(ranks, fragments.max(ranks) / ranks, 32, periods, reps);
    print!("{}", ingest::summary(&report));

    // The wire-format acceptance targets, enforced on optimised builds
    // only — debug-mode codec ratios are not meaningful.
    if !cfg!(debug_assertions) {
        let mut failed = false;
        if report.size_ratio < 4.0 {
            eprintln!("FAIL: binary is only {:.2}x smaller than JSON (target >= 4x)", report.size_ratio);
            failed = true;
        }
        if report.decode_speedup < 5.0 {
            eprintln!("FAIL: binary decode only {:.2}x faster than JSON (target >= 5x)", report.decode_speedup);
            failed = true;
        }
        if report.integrity_overhead_frac >= 0.10 {
            eprintln!(
                "FAIL: integrity checking costs {:.1}% of fault-free ingest throughput (target < 10%)",
                report.integrity_overhead_frac * 100.0
            );
            failed = true;
        }
        // The bounded-memory streaming targets: the long stream must be
        // long (≥200 half-overlapped windows), per-period cost must stay
        // flat — late-quarter median within the host's noise-scaled
        // tolerance of the early-quarter median — and the arena's high
        // water must plateau after warmup instead of tracking the stream.
        if report.long_stream_windows < 200 {
            eprintln!(
                "FAIL: long stream closed only {} windows (target >= 200)",
                report.long_stream_windows
            );
            failed = true;
        }
        let flatness_limit = 1.0 + stats::variance_tolerance(&[report.long_stream_noise_frac]);
        if report.steady_state_flatness > flatness_limit {
            eprintln!(
                "FAIL: per-period cost grew {:.2}x from early to late stream (limit {:.2}x): \
                 per-window work is not O(window)",
                report.steady_state_flatness, flatness_limit
            );
            failed = true;
        }
        if report.arena_plateau_ratio > 1.5 {
            eprintln!(
                "FAIL: arena high water grew {:.2}x after the stream midpoint (limit 1.5x): \
                 watermark eviction is not holding a plateau",
                report.arena_plateau_ratio
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
    }

    let previous = regression::load_previous_ingest(&out);
    if let Some(previous) = &previous {
        let warnings = regression::ingest_regression_warnings(previous, &report);
        if warnings.is_empty() {
            println!("no throughput regression vs previous {out}");
        }
        for w in &warnings {
            eprintln!("WARNING: {w}");
        }
    }
    report.history = stats::extend_history(
        previous.as_ref().map(|p| p.history.as_slice()),
        stats::trend_point(
            report.threads,
            &[
                ("encode_fragments_per_sec", report.encode_fragments_per_sec),
                ("decode_fragments_per_sec", report.decode_fragments_per_sec),
                ("ingest_fragments_per_sec", report.ingest_fragments_per_sec),
                ("size_ratio", report.size_ratio),
                ("integrity_overhead_frac", report.integrity_overhead_frac),
                ("steady_state_flatness", report.steady_state_flatness),
                ("arena_high_water_bytes", report.arena_high_water_bytes as f64),
                ("arena_plateau_ratio", report.arena_plateau_ratio),
            ],
        ),
    );

    let json = serde_json::to_string(&report).expect("serialisable report");
    match std::fs::write(&out, &json) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => {
            eprintln!("cannot write {out}: {e}");
            std::process::exit(1);
        }
    }
}
