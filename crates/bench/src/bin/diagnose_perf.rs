//! The `diagnose_perf` binary: run the region-diagnosis harness, compare
//! it against the previous run, and write `BENCH_diagnose.json`.
//!
//! ```text
//! diagnose_perf [--out PATH] [--fragments N] [--ranks N] [--sites N] [--cols N] [--reps N]
//! ```
//!
//! Defaults measure the acceptance configuration: a 4-rank synthetic run
//! over 18 call sites (36 merged STG locations), diagnosing the detected
//! variance regions plus an 8-column × rank selection grid. On release
//! builds two targets are enforced loudly: the batched path must be ≥5×
//! faster than the naive per-region loop, and it must perform zero
//! `Fragment` clones (proved by the `clone-count` feature's counter).
//! If a previous `BENCH_diagnose.json` exists at the output path,
//! throughput drops beyond 20 % are reported as warnings before the file
//! is overwritten.

use vapro_bench::{diagnose, regression, stats};

fn usage() -> ! {
    eprintln!(
        "usage: diagnose_perf [--out PATH] [--fragments N] [--ranks N] [--sites N] [--cols N] [--reps N]"
    );
    std::process::exit(2);
}

fn num_arg(args: &mut impl Iterator<Item = String>, flag: &str) -> usize {
    match args.next().and_then(|v| v.parse().ok()) {
        Some(n) => n,
        None => {
            eprintln!("{flag} needs a numeric argument");
            usage()
        }
    }
}

fn main() {
    let mut out = String::from("BENCH_diagnose.json");
    let mut fragments = 1600usize;
    let mut ranks = 4usize;
    let mut sites = 18usize;
    let mut cols = 8usize;
    let mut reps = 3usize;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--out" => match args.next() {
                Some(p) => out = p,
                None => usage(),
            },
            "--fragments" => fragments = num_arg(&mut args, "--fragments"),
            "--ranks" => ranks = num_arg(&mut args, "--ranks").max(1),
            "--sites" => sites = num_arg(&mut args, "--sites").max(1),
            "--cols" => cols = num_arg(&mut args, "--cols").max(1),
            "--reps" => reps = num_arg(&mut args, "--reps").max(1),
            _ => usage(),
        }
    }

    let mut report = diagnose::measure(ranks, fragments.max(ranks) / ranks, sites, cols, reps);
    print!("{}", diagnose::summary(&report));

    // The batching acceptance targets, enforced on optimised builds only
    // — debug-mode ratios are not meaningful. The clone count is exact
    // at any optimisation level.
    if !cfg!(debug_assertions) {
        let mut failed = false;
        if report.batch_speedup < 5.0 {
            eprintln!(
                "FAIL: batched diagnosis only {:.2}x faster than the naive loop (target >= 5x)",
                report.batch_speedup
            );
            failed = true;
        }
        if report.batch_fragment_clones != 0 {
            eprintln!(
                "FAIL: batch path cloned {} Fragments (target 0)",
                report.batch_fragment_clones
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
    }

    let previous = regression::load_previous_diagnose(&out);
    if let Some(previous) = &previous {
        let warnings = regression::diagnose_regression_warnings(previous, &report);
        if warnings.is_empty() {
            println!("no throughput regression vs previous {out}");
        }
        for w in &warnings {
            eprintln!("WARNING: {w}");
        }
    }
    report.history = stats::extend_history(
        previous.as_ref().map(|p| p.history.as_slice()),
        stats::trend_point(
            report.threads,
            &[
                ("naive_regions_per_sec", report.naive_regions_per_sec),
                ("batch_seq_regions_per_sec", report.batch_seq_regions_per_sec),
                ("batch_regions_per_sec", report.batch_regions_per_sec),
                ("batch_speedup", report.batch_speedup),
            ],
        ),
    );

    let json = serde_json::to_string(&report).expect("serialisable report");
    match std::fs::write(&out, &json) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => {
            eprintln!("cannot write {out}: {e}");
            std::process::exit(1);
        }
    }
}
