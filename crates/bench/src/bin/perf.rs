//! The `perf` binary: run the detection-throughput harness, compare it
//! against the previous run, and write `BENCH_detect.json`.
//!
//! ```text
//! perf [--out PATH] [--fragments N] [--ranks N] [--reps N]
//! ```
//!
//! Defaults measure the acceptance configuration: a 4-rank synthetic run
//! with 8000 computation fragments fanned over 32 call sites, every
//! timed metric a median over ≥30 warmed-up samples. If a previous
//! `BENCH_detect.json` exists at the output path, throughput drops
//! beyond the measured noise (20 % floor) are reported as warnings and
//! its trend history is carried into the fresh file before it is
//! overwritten.

use vapro_bench::{perf, regression, stats};

fn usage() -> ! {
    eprintln!("usage: perf [--out PATH] [--fragments N] [--ranks N] [--reps N]");
    std::process::exit(2);
}

fn num_arg(args: &mut impl Iterator<Item = String>, flag: &str) -> usize {
    match args.next().and_then(|v| v.parse().ok()) {
        Some(n) => n,
        None => {
            eprintln!("{flag} needs a numeric argument");
            usage()
        }
    }
}

fn main() {
    let mut out = String::from("BENCH_detect.json");
    let mut fragments = 8000usize;
    let mut ranks = 4usize;
    let mut reps = 3usize;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--out" => match args.next() {
                Some(p) => out = p,
                None => usage(),
            },
            "--fragments" => fragments = num_arg(&mut args, "--fragments"),
            "--ranks" => ranks = num_arg(&mut args, "--ranks").max(1),
            "--reps" => reps = num_arg(&mut args, "--reps").max(1),
            _ => usage(),
        }
    }

    let mut report = perf::measure(ranks, fragments.max(ranks) / ranks, 32, 64, reps, 100_000);
    print!("{}", perf::summary(&report));

    let previous = regression::load_previous_perf(&out);
    if let Some(previous) = &previous {
        let warnings = regression::perf_regression_warnings(previous, &report);
        if warnings.is_empty() {
            println!("no throughput regression vs previous {out}");
        }
        for w in &warnings {
            eprintln!("WARNING: {w}");
        }
    }
    report.history = stats::extend_history(
        previous.as_ref().map(|p| p.history.as_slice()),
        stats::trend_point(
            report.threads,
            &[
                ("seq_fragments_per_sec", report.seq_fragments_per_sec),
                ("par_fragments_per_sec", report.par_fragments_per_sec),
                ("cluster_vectors_per_sec", report.cluster_vectors_per_sec),
                ("pruned_speedup", report.pruned_speedup),
            ],
        ),
    );

    let json = serde_json::to_string(&report).expect("serialisable report");
    match std::fs::write(&out, &json) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => {
            eprintln!("cannot write {out}: {e}");
            std::process::exit(1);
        }
    }
}
