//! The `fleet_perf` binary: run the sharded fleet ingest-plane harness,
//! compare it against the previous run, and write `BENCH_fleet.json`.
//!
//! ```text
//! fleet_perf [--out PATH] [--jobs N] [--ranks N] [--fragments N] [--shards N] [--reps N]
//! ```
//!
//! Defaults measure the acceptance configuration: 8 jobs × 2 ranks ×
//! 1200 fragments/rank shipped as v3 frames, 1 vs 4 shards. If a
//! previous `BENCH_fleet.json` exists at the output path, throughput
//! drops beyond the noise-aware tolerance are reported as warnings
//! before the file is overwritten. The release-mode acceptance targets
//! — ≥1.5× aggregate throughput at 4 shards (only on runners with at
//! least that many hardware threads) and single-job fleet overhead
//! < 10 % — are checked and failed loudly.

use vapro_bench::{fleet, regression, stats};

fn usage() -> ! {
    eprintln!(
        "usage: fleet_perf [--out PATH] [--jobs N] [--ranks N] [--fragments N] [--shards N] [--reps N]"
    );
    std::process::exit(2);
}

fn num_arg(args: &mut impl Iterator<Item = String>, flag: &str) -> usize {
    match args.next().and_then(|v| v.parse().ok()) {
        Some(n) => n,
        None => {
            eprintln!("{flag} needs a numeric argument");
            usage()
        }
    }
}

fn main() {
    let mut out = String::from("BENCH_fleet.json");
    let mut jobs = 8usize;
    let mut ranks = 2usize;
    let mut fragments = 1200usize;
    let mut shards = 4usize;
    let mut reps = stats::MIN_SAMPLES;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--out" => match args.next() {
                Some(p) => out = p,
                None => usage(),
            },
            "--jobs" => jobs = num_arg(&mut args, "--jobs").max(1),
            "--ranks" => ranks = num_arg(&mut args, "--ranks").max(1),
            "--fragments" => fragments = num_arg(&mut args, "--fragments").max(1),
            "--shards" => shards = num_arg(&mut args, "--shards").max(1),
            "--reps" => reps = num_arg(&mut args, "--reps").max(1),
            _ => usage(),
        }
    }

    let mut report = fleet::measure(jobs, ranks, fragments, 16, 10, shards, reps);
    print!("{}", fleet::summary(&report));

    // The fleet-plane acceptance targets, enforced on optimised builds
    // only — debug-mode ratios are not meaningful. The shard-scaling
    // gate additionally needs enough hardware threads: on a runner with
    // fewer threads than shards the speedup is `None` and the gate is
    // skipped rather than failed (the CI bench job runs on 8 cores).
    if !cfg!(debug_assertions) {
        let mut failed = false;
        match report.shard_speedup {
            Some(s) if s < 1.5 => {
                eprintln!(
                    "FAIL: {} shards only {:.2}x faster than 1 shard (target >= 1.5x)",
                    report.shards, s
                );
                failed = true;
            }
            Some(s) => println!("shard scaling ok: {:.2}x at {} shards", s, report.shards),
            None => println!(
                "shard scaling not demonstrable here ({} threads < {} shards), gate skipped",
                report.threads, report.shards
            ),
        }
        if report.fleet_overhead_frac >= 0.10 {
            eprintln!(
                "FAIL: fleet plane costs {:.1}% of bare single-job ingest throughput (target < 10%)",
                report.fleet_overhead_frac * 100.0
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
    }

    let previous = regression::load_previous_fleet(&out);
    if let Some(previous) = &previous {
        let warnings = regression::fleet_regression_warnings(previous, &report);
        if warnings.is_empty() {
            println!("no throughput regression vs previous {out}");
        }
        for w in &warnings {
            eprintln!("WARNING: {w}");
        }
    }
    report.history = stats::extend_history(
        previous.as_ref().map(|p| p.history.as_slice()),
        stats::trend_point(
            report.threads,
            &[
                ("fleet_1shard_fragments_per_sec", report.fleet_1shard_fragments_per_sec),
                ("fleet_nshard_fragments_per_sec", report.fleet_nshard_fragments_per_sec),
                ("single_job_fragments_per_sec", report.single_job_fragments_per_sec),
                ("fleet_overhead_frac", report.fleet_overhead_frac),
                ("steady_state_flatness", report.steady_state_flatness),
                ("arena_high_water_bytes", report.arena_high_water_bytes as f64),
            ],
        ),
    );

    let json = serde_json::to_string(&report).expect("serialisable report");
    match std::fs::write(&out, &json) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => {
            eprintln!("cannot write {out}: {e}");
            std::process::exit(1);
        }
    }
}
