//! The `chaos` binary: run the seeded fault-injection suite against the
//! streaming ingestion pipeline and exit non-zero on any violation.
//!
//! ```text
//! chaos [--plans N] [--seed S] [-v]
//! ```
//!
//! The suite is deterministic in the seed and layered:
//!
//! 1. fault-free equivalence — a clean transport must reproduce the
//!    one-shot windowed analysis bit for bit;
//! 2. a rank-death scenario — killing a rank mid-run must leave the full
//!    window cover intact with the loss visible in coverage;
//! 3. a rank-birth scenario — a rank joining mid-run must make every
//!    post-birth window bit-identical to a run where it was always
//!    present, with coverage widening exactly at the birth;
//! 4. `N` random hostile plans (drops, duplicates, reordering,
//!    corruption, delays, deaths, births, buffer caps) — each must
//!    satisfy the robustness invariants: no panic, exact window cover
//!    of admitted data, sound delivery accounting, consistent arena
//!    eviction byte counters — and must produce bit-identical reports
//!    whether windows are analysed inline or through the pipelined
//!    stage;
//! 5. the same suite aimed at the fleet plane — a clean multi-job fleet
//!    and `N` random fleet plans where each job carries its own fault
//!    mix (job 0 always clean). Every job's fleet output must be
//!    bit-identical to a solo ingestor fed the same deliveries: chaos on
//!    one tenant can neither corrupt nor stall another.
//!
//! Every failure prints the offending seed, a one-line plan summary,
//! and a copy-pasteable repro command. `-v` additionally dumps the full
//! per-event transport log (delivery order, fault tags, admission
//! outcome, window closes) for each solo plan — the first thing to
//! reach for when bisecting a failing seed.

use vapro_bench::chaos::{
    birth_equivalence, check_fleet_invariants, check_invariants, fault_free_equivalence,
    pipeline_equivalence, plan_summary, run_fleet_plan, run_plan, run_plan_verbose, FaultPlan,
    FleetPlan,
};

fn usage() -> ! {
    eprintln!("usage: chaos [--plans N] [--seed S] [-v]");
    std::process::exit(2);
}

/// The copy-pasteable command that replays exactly one failing seed
/// with the verbose event log on.
fn repro_line(seed: u64) -> String {
    format!("cargo run --release -p vapro-bench --bin chaos -- --seed {seed} --plans 1 -v")
}

/// Report one solo-plan failure with everything needed to reproduce it.
fn report_solo_failure(what: &str, plan: &FaultPlan, err: &str) {
    eprintln!("FAIL {what}: {err}");
    eprintln!("  plan: {}", plan_summary(plan));
    eprintln!("  repro: {}", repro_line(plan.seed));
}

fn main() {
    let mut plans = 12u64;
    let mut seed = 0xC4A05u64;
    let mut verbose = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--plans" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => plans = n,
                None => usage(),
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(s) => seed = s,
                None => usage(),
            },
            "-v" | "--verbose" => verbose = true,
            _ => usage(),
        }
    }

    let mut failures = 0usize;

    let clean = FaultPlan::fault_free(seed);
    match fault_free_equivalence(&clean) {
        Ok(()) => println!("fault-free equivalence: ok (bit-identical to one-shot)"),
        Err(e) => {
            report_solo_failure("fault-free equivalence", &clean, &e);
            failures += 1;
        }
    }

    let death = FaultPlan { deaths: vec![(1, 1)], ..FaultPlan::fault_free(seed) };
    let outcome = run_plan(&death);
    let mut death_err = check_invariants(&death, &outcome).err();
    if death_err.is_none() {
        let tail = outcome.reports.last();
        let degraded = tail.is_some_and(|t| {
            t.coverage.ranks_dead.contains(&1) && t.coverage.completeness < 1.0
        });
        if !degraded {
            death_err = Some("killed rank not reflected in tail coverage".to_string());
        }
    }
    match death_err {
        None => println!(
            "rank death: ok ({} windows closed, tail completeness {:.2})",
            outcome.reports.len(),
            outcome.reports.last().map(|t| t.coverage.completeness).unwrap_or(0.0),
        ),
        Some(e) => {
            report_solo_failure("rank death", &death, &e);
            failures += 1;
        }
    }

    let birth = FaultPlan { births: vec![2], ..FaultPlan::fault_free(seed) };
    match birth_equivalence(&birth) {
        Ok(()) => println!(
            "rank birth: ok (post-birth windows bit-identical to an always-present reference)"
        ),
        Err(e) => {
            report_solo_failure("rank birth", &birth, &e);
            failures += 1;
        }
    }

    for i in 0..plans {
        let plan = FaultPlan::random(seed.wrapping_add(i));
        let outcome = if verbose {
            let (outcome, log) = run_plan_verbose(&plan);
            println!("plan {i:>3} event log ({}):", plan_summary(&plan));
            for line in &log {
                println!("    {line}");
            }
            outcome
        } else {
            run_plan(&plan)
        };
        match check_invariants(&plan, &outcome).and_then(|()| pipeline_equivalence(&plan)) {
            Ok(()) => println!(
                "plan {i:>3}: ok — {} delivered, {} admitted, {} corrupt, {} duplicate, \
                 {} windows, arena {}/{} B (pipeline ≡ inline)",
                outcome.delivered,
                outcome.admitted,
                outcome.rejected_corrupt,
                outcome.rejected_duplicate,
                outcome.reports.len(),
                outcome.arena_resident_bytes,
                outcome.arena_high_water_bytes,
            ),
            Err(e) => {
                report_solo_failure(&format!("plan {i}"), &plan, &e);
                failures += 1;
            }
        }
    }

    let clean_fleet = FleetPlan::fault_free(seed, 3);
    match check_fleet_invariants(&clean_fleet, &run_fleet_plan(&clean_fleet)) {
        Ok(()) => println!("clean fleet: ok (3 jobs, each bit-identical to its solo run)"),
        Err(e) => {
            eprintln!("FAIL clean fleet (seed {seed}): {e}");
            eprintln!("  repro: {}", repro_line(seed));
            failures += 1;
        }
    }

    for i in 0..plans {
        let plan = FleetPlan::random(seed.wrapping_add(i));
        let outcome = run_fleet_plan(&plan);
        match check_fleet_invariants(&plan, &outcome) {
            Ok(()) => println!(
                "fleet plan {i:>3}: ok — {} jobs / {} shards, {} delivered, {} decode-rejected, \
                 {} windows",
                plan.jobs.len(),
                plan.shards,
                outcome.delivered,
                outcome.per_job.iter().map(|j| j.rejected_decode).sum::<usize>(),
                outcome.per_job.iter().map(|j| j.reports.len()).sum::<usize>(),
            ),
            Err(e) => {
                eprintln!("FAIL fleet plan {i} (seed {}): {e}", seed.wrapping_add(i));
                eprintln!("  repro: {}", repro_line(seed.wrapping_add(i)));
                failures += 1;
            }
        }
    }

    if failures > 0 {
        eprintln!("{failures} chaos check(s) failed");
        std::process::exit(1);
    }
    println!("all chaos checks passed");
}
