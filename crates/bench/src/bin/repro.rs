//! The `repro` binary: regenerate any table or figure of the paper's
//! evaluation.
//!
//! ```text
//! repro <experiment|all> [--ranks N] [--iters N] [--runs N] [--full] [--seed S]
//!
//! experiments: fig1 fig4 fig5 fig9 fig11 fig12 fig13 fig14 fig15 fig16
//!              fig17 fig18 fig19 table1 table2 storage
//! ```
//!
//! Defaults run each experiment at a scaled-down rank count that
//! preserves the phenomenon and finishes in seconds; `--full` restores
//! the paper's scale (up to 2048 ranks).

use vapro_bench::{run_experiment, ExpOpts, EXPERIMENTS};

fn usage() -> ! {
    eprintln!(
        "usage: repro <experiment|all> [--ranks N] [--iters N] [--runs N] [--full] [--seed S]\n\
         experiments: {}",
        EXPERIMENTS.join(" ")
    );
    std::process::exit(2);
}

fn parse_num(args: &mut std::iter::Peekable<std::env::Args>, flag: &str) -> u64 {
    match args.next().and_then(|v| v.parse().ok()) {
        Some(n) => n,
        None => {
            eprintln!("{flag} needs a numeric argument");
            usage()
        }
    }
}

fn main() {
    let mut args = std::env::args().peekable();
    let _bin = args.next();
    let Some(exp) = args.next() else { usage() };

    let mut opts = ExpOpts::default();
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--ranks" => opts.ranks = Some(parse_num(&mut args, "--ranks") as usize),
            "--iters" => opts.iterations = Some(parse_num(&mut args, "--iters") as usize),
            "--runs" => opts.runs = Some(parse_num(&mut args, "--runs") as usize),
            "--seed" => opts.seed = parse_num(&mut args, "--seed"),
            "--full" => opts.full = true,
            "--json" => opts.json = true,
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }

    let experiments: Vec<&str> = if exp == "all" {
        EXPERIMENTS.to_vec()
    } else if EXPERIMENTS.contains(&exp.as_str()) {
        vec![Box::leak(exp.into_boxed_str()) as &str]
    } else {
        eprintln!("unknown experiment {exp}");
        usage()
    };

    for name in experiments {
        let t0 = std::time::Instant::now();
        match run_experiment(name, &opts) {
            Some(report) => {
                println!("{report}");
                eprintln!("[{name} finished in {:.1}s]\n", t0.elapsed().as_secs_f64());
            }
            None => {
                eprintln!("experiment {name} failed to dispatch");
                std::process::exit(1);
            }
        }
    }
}
