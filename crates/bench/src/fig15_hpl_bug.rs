//! Fig. 15 (case study §6.5.1): HPL with 36 processes on a dual
//! 18-core-socket node hit by the Intel L2-eviction hardware bug.
//! Vapro's inter-process comparison of fixed-workload fragments shows
//! the second socket's ranks running slow; progressive diagnosis
//! attributes the slowdown to backend bound (paper: 96.6 %), refined to
//! L2 + DRAM bound (48.2 % + 38.0 %).

use crate::common::{header, vapro_cf, ExpOpts};
use vapro::harness::run_under_vapro_binned;
use vapro_apps::AppParams;
use vapro_core::diagnose::{diagnose_progressively, DiagnosisReport, Factor};
use vapro_core::fragment::Fragment;
use vapro_sim::{NoiseKind, SimConfig, TargetSet, Topology};

/// The Fig. 15 analysis output.
pub struct Fig15Run {
    /// The heat map (socket-1 ranks should be dark).
    pub map: vapro_core::HeatMap,
    /// Ranks on the bugged socket.
    pub bugged_ranks: Vec<usize>,
    /// Mean normalised performance of bugged vs healthy ranks.
    pub bugged_perf: f64,
    /// Healthy ranks' mean performance.
    pub healthy_perf: f64,
    /// The progressive diagnosis.
    pub diagnosis: Option<DiagnosisReport>,
}

/// Run the scenario.
pub fn analyze(opts: &ExpOpts) -> Fig15Run {
    let ranks = opts.resolve_ranks(36, 36);
    let iters = opts.resolve_iters(30);
    let params = AppParams::default().with_iterations(iters);
    let topo = Topology::dual_socket(ranks.div_ceil(2));
    let cfg = SimConfig::new(ranks)
        .with_topology(topo.clone())
        .with_seed(opts.seed)
        .with_noise(crate::common::always(
            // Frequent but moderate firing: evicting a few percent of the
            // L2-resident lines per fragment reproduces the paper's
            // observed ~20-30 % per-rank slowdowns.
            NoiseKind::L2CacheBug { prob: 0.5, severity: 0.12 },
            TargetSet::Sockets(vec![1]),
        ));
    // Collect with the S3 memory events live so the drill-down can reach
    // the L2/DRAM leaves.
    let vcfg = vapro_cf().with_counters(vapro_pmu::events::s3_memory_set());
    let run = run_under_vapro_binned(&cfg, &vcfg, 40, |ctx| {
        vapro_apps::hpl::run(ctx, &params)
    });

    let bugged_ranks = topo.ranks_on_socket(1, ranks);
    let map = run.detection.comp_map;
    let mean_perf = |rs: &[usize]| {
        let mut vals = vec![];
        for &r in rs {
            for b in 0..map.bins {
                if let Some(p) = map.perf(r, b) {
                    vals.push(p);
                }
            }
        }
        vapro_stats::mean(&vals)
    };
    let healthy: Vec<usize> = (0..ranks).filter(|r| !bugged_ranks.contains(r)).collect();
    let bugged_perf = mean_perf(&bugged_ranks);
    let healthy_perf = mean_perf(&healthy);

    // Progressive diagnosis over a bugged rank's DGEMM fragments, pooled
    // with healthy ranks' fragments of the same state (inter-process
    // comparison — the capability the paper stresses perf/vSensor lack).
    let merged = vapro_core::detect::pipeline::merge_stgs(&run.stgs);
    let dgemm_pool: Option<Vec<Fragment>> = merged
        .edges
        .iter()
        .map(|(_, v)| v)
        .max_by_key(|v| v.iter().map(|f| f.duration().ns()).sum::<u64>())
        .map(|v| v.iter().map(|f| (*f).clone()).collect());
    let diagnosis = dgemm_pool.and_then(|pool| {
        let mut provider = move |set: vapro_pmu::CounterSet| -> Vec<Fragment> {
            pool.iter()
                .map(|f| Fragment {
                    counters: f.counters.project(set),
                    ..f.clone()
                })
                .collect()
        };
        diagnose_progressively(&mut provider, 1.2, 0.25, 0.05)
    });

    Fig15Run { map, bugged_ranks, bugged_perf, healthy_perf, diagnosis }
}

/// Run the experiment and format the report.
pub fn run(opts: &ExpOpts) -> String {
    let r = analyze(opts);
    let mut out = header(
        "Figure 15 (§6.5.1 hardware-bug case study)",
        "HPL on a dual-socket node with the L2-eviction bug on socket 1",
    );
    out.push_str(&vapro_core::viz::render_heatmap(&r.map, 36));
    out.push_str(&format!(
        "\nsocket-1 ranks {:?}…: mean perf {:.3}; healthy ranks: {:.3}\n",
        &r.bugged_ranks[..r.bugged_ranks.len().min(4)],
        r.bugged_perf,
        r.healthy_perf
    ));
    if let Some(d) = &r.diagnosis {
        out.push_str(&format!("diagnosis culprits: {:?}\n", d.culprits));
        if let Some(be) = d.impact_share(Factor::BackendBound) {
            out.push_str(&format!(
                "backend-bound share of the slowdown: {:.1}% (paper: 96.6%)\n",
                be * 100.0
            ));
        }
        // Taxonomy note: lines the bug evicts from L2 are re-fetched from
        // L3 — the paper's event set books those stalls as "L2 bound"
        // (stalls with an L2 miss outstanding, resolved below L2), which
        // is this model's L3Bound level.
        if let Some(l3) = d.impact_share(Factor::L3Bound) {
            out.push_str(&format!(
                "L2-miss/L3-resolved share: {:.1}% (paper's 'L2 bound': 48.2%)\n",
                l3 * 100.0
            ));
        }
        if let Some(dram) = d.impact_share(Factor::DramBound) {
            out.push_str(&format!(
                "DRAM-bound share: {:.1}% (paper: 38.0%)\n",
                dram * 100.0
            ));
        }
    } else {
        out.push_str("diagnosis: no abnormal/normal split found\n");
    }
    out.push_str(&crate::common::maybe_json(
        opts,
        "fig15_heatmap",
        vapro_core::viz::heatmap_json(&r.map),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bugged_socket_is_slower_and_diagnosed_as_memory() {
        let opts = ExpOpts { ranks: Some(12), iterations: Some(25), ..ExpOpts::default() };
        let r = analyze(&opts);
        assert!(
            r.bugged_perf < r.healthy_perf - 0.05,
            "bugged {} vs healthy {}",
            r.bugged_perf,
            r.healthy_perf
        );
        let d = r.diagnosis.expect("diagnosis ran");
        // Backend is the S1 major…
        assert!(d.steps[0].report.of(Factor::BackendBound).unwrap().major);
        // …and the drill-down lands in the memory hierarchy (L2/L3/DRAM).
        assert!(
            d.culprits.iter().any(|c| matches!(
                c,
                Factor::L2Bound | Factor::L3Bound | Factor::DramBound | Factor::MemoryBound
            )),
            "culprits {:?}",
            d.culprits
        );
    }
}
