//! Fig. 4: the context-free STG of CG's nested communication loop —
//! irecv → send → wait sub-loops inside the outer iteration, collapsing
//! to one vertex per call-site with loop-back edges.

use crate::common::{header, vapro_cf, ExpOpts};
use vapro::harness::run_under_vapro;
use vapro_apps::AppParams;
use vapro_core::VaproConfig;
use vapro_sim::SimConfig;

/// Build CG's STG in both modes; returns (context-free, context-aware).
pub fn build_stgs(opts: &ExpOpts) -> (vapro_core::Stg, vapro_core::Stg) {
    let ranks = opts.resolve_ranks(4, 16);
    let params = AppParams::default().with_iterations(opts.resolve_iters(5));
    let cf = run_under_vapro(&SimConfig::new(ranks), &vapro_cf(), |ctx| {
        vapro_apps::npb::cg::run(ctx, &params)
    });
    let ca = run_under_vapro(&SimConfig::new(ranks), &VaproConfig::context_aware(), |ctx| {
        vapro_apps::npb::cg::run(ctx, &params)
    });
    (
        cf.stgs.into_iter().next().expect("rank 0"),
        ca.stgs.into_iter().next().expect("rank 0"),
    )
}

/// Run the experiment and format the report.
pub fn run(opts: &ExpOpts) -> String {
    let (cf, ca) = build_stgs(opts);
    let mut out = header("Figure 4", "Context-free STG of CG's nested loop (DOT format)");
    out.push_str(&cf.to_dot());
    out.push_str(&format!(
        "\ncontext-free:  {} states, {} edges\n",
        cf.num_states(),
        cf.num_edges()
    ));
    out.push_str(&format!(
        "context-aware: {} states, {} edges (warm-up and timed paths split, \
         as in the paper's §3.2 example)\n",
        ca.num_states(),
        ca.num_edges()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_aware_splits_warmup_states() {
        let opts = ExpOpts { ranks: Some(2), iterations: Some(3), ..ExpOpts::default() };
        let (cf, ca) = build_stgs(&opts);
        // CF: start + 4 call-sites.
        assert_eq!(cf.num_states(), 5);
        // CA: warm-up and timed paths double the invocation states.
        assert_eq!(ca.num_states(), 9);
        assert!(ca.num_edges() > cf.num_edges());
    }

    #[test]
    fn loop_edges_accumulate_fragments() {
        let opts = ExpOpts { ranks: Some(2), iterations: Some(5), ..ExpOpts::default() };
        let (cf, _) = build_stgs(&opts);
        // Some edge must carry at least `iterations` fragments (the
        // loop-back edge of the repeated sub-loop).
        let max_edge = cf.edges().iter().map(|e| e.fragments.len()).max().unwrap();
        assert!(max_edge >= 5, "max edge fragments {max_edge}");
    }
}
