//! Table 2: verification of the fixed-workload identification algorithm.
//! For CG, FT, EP and PageRank (16 processes/threads), the exact
//! execution paths (ground-truth workload classes) are recorded and
//! compared with Vapro's clustering through completeness (C),
//! homogeneity (H) and V-Measure (V).
//!
//! Expected shape: C = 1.0 everywhere (fragments with the same workload
//! land in the same cluster); H = 1.0 for CG/FT/EP; H < 1 for PageRank,
//! whose threads have *approximately equal* (but genuinely different)
//! partition workloads that the 5 % threshold merges — the paper's 0.74.

use crate::common::{header, vapro_cf, ExpOpts};
use vapro::harness::run_under_vapro;
use vapro_apps::{AppKind, AppParams};
use vapro_core::clustering::cluster_fragments;
use vapro_core::detect::pipeline::merge_stgs;
use vapro_core::fragment::{FragmentKind, DEFAULT_PROXY};
use vapro_sim::{SimConfig, Topology};
use vapro_stats::{v_measure, VMeasure};

/// One Table 2 row.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Application name.
    pub name: &'static str,
    /// Number of computation fragments evaluated.
    pub fragments: usize,
    /// The clustering-quality scores.
    pub scores: VMeasure,
}

/// How ground truth is labelled for one app's pooled computation
/// fragments.
enum Truth {
    /// Every fragment of one pooled state shares a class
    /// (plus a runtime-class id shared across ranks): CG, FT, EP.
    ByStateAndSharedClass,
    /// Each rank's partition is its own class: PageRank.
    ByStateAndRank,
}

fn evaluate(name: &'static str, truth: Truth, opts: &ExpOpts) -> Table2Row {
    let app = vapro_apps::find_app(name).expect("registered app");
    let ranks = opts.resolve_ranks(16, 16);
    let iters = opts.resolve_iters(12);
    let params = AppParams::default().with_iterations(iters);
    let topo = match app.kind {
        AppKind::MultiProcess => Topology::tianhe_like(ranks),
        AppKind::MultiThreaded => Topology::single_node(ranks),
    };
    let cfg = SimConfig::new(ranks).with_topology(topo).with_seed(opts.seed);
    let run = run_under_vapro(&cfg, &vapro_cf(), |ctx| (app.run)(ctx, &params));

    let merged = merge_stgs(&run.stgs);
    let mut class_labels: Vec<usize> = Vec::new();
    let mut cluster_labels: Vec<usize> = Vec::new();
    let mut label_base = 0usize;
    let mut cluster_base = 0usize;

    for (state_idx, (_, frags)) in merged.edges.iter().enumerate() {
        let comp: Vec<_> = frags
            .iter()
            .filter(|f| f.kind == FragmentKind::Computation)
            .map(|f| (*f).clone())
            .collect();
        if comp.len() < 2 {
            continue;
        }
        // Ground truth per fragment, from the recorded execution paths —
        // i.e. from *structural* knowledge of the app, not from measured
        // counters (which carry PMU jitter):
        for f in &comp {
            let class = match truth {
                // CG/FT/EP execute exactly one workload per STG edge (every
                // traversal of the same state transition runs the same
                // instrumented path), so the edge *is* the class.
                Truth::ByStateAndSharedClass => state_idx << 20,
                // PageRank: each thread's graph partition is its own
                // (slightly different) workload.
                Truth::ByStateAndRank => f.rank ^ (state_idx << 20),
            };
            class_labels.push(class.wrapping_add(label_base));
        }
        // Vapro's clusters over the same pool.
        let outcome = cluster_fragments(&comp, &DEFAULT_PROXY, 0.05, 2);
        let labels = outcome.all_labels(comp.len());
        cluster_labels.extend(labels.iter().map(|l| l + cluster_base));
        cluster_base += outcome.usable.len() + outcome.rare.len();
        label_base = label_base.wrapping_add(1 << 24);
    }

    Table2Row {
        name,
        fragments: class_labels.len(),
        scores: v_measure(&class_labels, &cluster_labels),
    }
}

/// Evaluate all four Table 2 applications.
pub fn measure_all(opts: &ExpOpts) -> Vec<Table2Row> {
    vec![
        evaluate("CG", Truth::ByStateAndSharedClass, opts),
        evaluate("FT", Truth::ByStateAndSharedClass, opts),
        evaluate("EP", Truth::ByStateAndSharedClass, opts),
        evaluate("PageRank", Truth::ByStateAndRank, opts),
    ]
}

/// Run the experiment and format the report.
pub fn run(opts: &ExpOpts) -> String {
    let rows = measure_all(opts);
    let mut out = header(
        "Table 2",
        "Fixed-workload identification verified against ground-truth execution paths",
    );
    out.push_str(&format!(
        "{:<10} {:>10} {:>6} {:>6} {:>6}\n",
        "app", "fragments", "C", "H", "V"
    ));
    for r in &rows {
        out.push_str(&format!(
            "{:<10} {:>10} {:>6.2} {:>6.2} {:>6.2}\n",
            r.name,
            r.fragments,
            r.scores.completeness,
            r.scores.homogeneity,
            r.scores.v_measure
        ));
    }
    out.push_str(
        "\n(paper: C=H=V=1.00 for CG/FT/EP; PageRank H=0.74 from near-equal \
         per-thread workloads merged into one cluster)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cg_ft_ep_cluster_perfectly() {
        let opts = ExpOpts { iterations: Some(8), ..ExpOpts::default() };
        for row in measure_all(&opts).iter().take(3) {
            assert!(
                row.scores.completeness > 0.99,
                "{} C = {}",
                row.name,
                row.scores.completeness
            );
            assert!(
                row.scores.homogeneity > 0.99,
                "{} H = {}",
                row.name,
                row.scores.homogeneity
            );
            assert!(row.fragments > 10, "{} too few fragments", row.name);
        }
    }

    #[test]
    fn pagerank_homogeneity_is_imperfect_but_complete() {
        let opts = ExpOpts { iterations: Some(8), ..ExpOpts::default() };
        let rows = measure_all(&opts);
        let pr = rows.iter().find(|r| r.name == "PageRank").unwrap();
        assert!(
            pr.scores.completeness > 0.95,
            "PageRank C = {}",
            pr.scores.completeness
        );
        assert!(
            pr.scores.homogeneity < 0.97,
            "PageRank H = {} (should be imperfect)",
            pr.scores.homogeneity
        );
        assert!(pr.scores.homogeneity > 0.3, "H = {}", pr.scores.homogeneity);
    }
}
