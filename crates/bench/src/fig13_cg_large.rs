//! Fig. 13 (and the §6.4 text): large-scale CG under software noises on
//! two computing nodes. Vapro locates the two victim node-bands on the
//! heat map, quantifies the computation performance loss (paper: 42.8 %),
//! and the regression flags involuntary context switches as highly
//! significant (p < 0.001).

use crate::common::{computing_noise, header, vapro_cf, ExpOpts};
use vapro::harness::{run_bare, run_under_vapro_binned};
use vapro_apps::AppParams;
use vapro_core::diagnose::{ols_impacts, Factor, FactorValues};
use vapro_core::fragment::Fragment;
use vapro_sim::{NoiseSchedule, SimConfig, TargetSet, VirtualTime};

/// The Fig. 13 analysis output.
pub struct Fig13Run {
    /// Vapro's computation heat map.
    pub map: vapro_core::HeatMap,
    /// The victim nodes' rank ranges.
    pub victim_ranks: Vec<usize>,
    /// Mean normalised performance inside the detected regions.
    pub region_perf: Option<f64>,
    /// p-value of involuntary context switches in the OLS regression.
    pub invol_cs_p: Option<f64>,
    /// Detected regions count.
    pub regions: usize,
}

/// Run the scenario.
pub fn analyze(opts: &ExpOpts) -> Fig13Run {
    let ranks = opts.resolve_ranks(96, 2048);
    let iters = opts.resolve_iters(20);
    let params = AppParams::default().with_iterations(iters);
    let base = SimConfig::new(ranks).with_seed(opts.seed);

    // Two victim nodes, noise over the middle of the run.
    let span = run_bare(&base, |ctx| vapro_apps::npb::cg::run(ctx, &params));
    let start = VirtualTime::from_ns(span.ns() / 4);
    let end = VirtualTime::from_ns(3 * span.ns() / 4);
    let nodes = base.topology.nodes;
    let mut victims_nodes = vec![nodes / 3, 2 * nodes / 3];
    victims_nodes.dedup();
    let victim_ranks: Vec<usize> = victims_nodes
        .iter()
        .flat_map(|&n| base.topology.ranks_on_node(n, ranks))
        .collect();
    let noise = NoiseSchedule::quiet().with(computing_noise(
        TargetSet::Nodes(victims_nodes),
        start,
        end,
    ));
    let cfg = base.with_noise(noise);

    // Collect with the suspension counter set live so the regression can
    // see the context-switch counts.
    let vcfg = vapro_cf().with_counters(vapro_pmu::events::s2_suspension_set());
    let run = run_under_vapro_binned(&cfg, &vcfg, 48, |ctx| {
        vapro_apps::npb::cg::run(ctx, &params)
    });

    let region_perf = run
        .detection
        .comp_regions
        .iter()
        .find(|r| victim_ranks.iter().any(|&v| r.covers_rank(v)))
        .map(|r| r.mean_perf);

    // Regression over a victim rank's hottest-edge fragments.
    let invol_cs_p = victim_ranks.first().and_then(|&victim| {
        let stg = &run.stgs[victim];
        let edge = stg.hottest_edge()?;
        let refs: Vec<&Fragment> = edge.fragments.iter().collect();
        let fv = FactorValues::compute(
            &refs,
            &[Factor::InvoluntaryCs, Factor::VoluntaryCs, Factor::SoftPageFault],
        )?;
        let (impacts, _) = ols_impacts(&fv, 0.05)?;
        impacts
            .iter()
            .find(|i| i.factor == Factor::InvoluntaryCs)
            .map(|i| i.p_value)
    });

    Fig13Run {
        regions: run.detection.comp_regions.len(),
        map: run.detection.comp_map,
        victim_ranks,
        region_perf,
        invol_cs_p,
    }
}

/// Run the experiment and format the report.
pub fn run(opts: &ExpOpts) -> String {
    let r = analyze(opts);
    let mut out = header(
        "Figure 13",
        "Large-scale CG with computing noise on two nodes: Vapro detection",
    );
    out.push_str(&vapro_core::viz::render_heatmap(&r.map, 24));
    out.push_str(&format!(
        "\nvictim ranks: {:?}\ndetected regions: {}\nregion performance: {:?} \
         (paper reports a 42.8% computation loss)\n",
        &r.victim_ranks[..r.victim_ranks.len().min(8)],
        r.regions,
        r.region_perf
    ));
    out.push_str(&format!(
        "involuntary context switches: p = {:?} (paper: significant at p < 0.001)\n",
        r.invol_cs_p
    ));
    out.push_str(&crate::common::maybe_json(
        opts,
        "fig13_heatmap",
        vapro_core::viz::heatmap_json(&r.map),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_node_noise_is_located_and_diagnosed() {
        // 96 ranks = 4 Tianhe-like nodes: victims on nodes 1 and 2,
        // bystanders elsewhere.
        let opts = ExpOpts { ranks: Some(96), iterations: Some(15), ..ExpOpts::default() };
        let r = analyze(&opts);
        let perf = r.region_perf.expect("variance detected on a victim node");
        // ~50% CPU steal → ~0.5 normalised performance (paper: 42.8% loss).
        assert!((perf - 0.5).abs() < 0.25, "region perf {perf}");
        let p = r.invol_cs_p.expect("regression ran");
        assert!(p < 0.001, "involuntary CS p-value {p}");
    }
}
