//! Region-diagnosis throughput harness: the numbers behind
//! `BENCH_diagnose.json`.
//!
//! Compares three ways of diagnosing the same regions of interest on one
//! synthetic multi-rank run:
//!
//! * **naive** — a frozen copy of the pre-batching `diagnose_region`:
//!   every region re-merges all the STGs, re-clusters the winning pool,
//!   clones the whole cluster population once up front and once more per
//!   drill-down step;
//! * **batch-seq** — `diagnose_regions_seq`: merge once, binary-search an
//!   interval index per pool, memoize cluster outcomes, and feed the
//!   drill-down from a borrowing scratch provider;
//! * **batch-par** — `diagnose_regions`: the same batch fanned out over
//!   rayon, bit-identical to the sequential path.
//!
//! The crate enables vapro-core's `clone-count` feature so the report can
//! prove, at optimised speeds, that the batch path performs zero
//! [`Fragment`] clones while the naive loop pays thousands. The
//! `diagnose_perf` binary writes the result as `BENCH_diagnose.json`;
//! [`crate::regression`] compares a fresh run against the previous file
//! under the same noise-aware tolerance as the other gates (every timed
//! metric is a median over ≥30 warmed-up samples; see [`crate::stats`]).

use crate::perf::detected_threads;
use crate::stats::{self, TrendPoint};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use vapro_core::clustering::cluster_fragment_refs;
use vapro_core::detect::pipeline::{detect_seq, merge_stgs};
use vapro_core::diagnose::{
    diagnose_progressively, diagnose_regions, diagnose_regions_seq, DiagnosisReport,
};
use vapro_core::fragment::clone_count;
use vapro_core::{Fragment, FragmentKind, RegionOfInterest, StateKey, Stg, VaproConfig};
use vapro_pmu::{events, CounterSet, CpuConfig, CpuModel, JitterModel, NoiseEnv, WorkloadSpec};
use vapro_sim::{CallSite, VirtualTime};

/// One harness run, serialised to `BENCH_diagnose.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiagnosePerf {
    /// Harness identifier (always `"diagnose"`).
    pub bench: String,
    /// Detected hardware threads on the runner.
    pub threads: usize,
    /// Ranks in the synthetic run.
    pub ranks: usize,
    /// Total fragments across all ranks' STGs.
    pub fragments: usize,
    /// Merged STG locations (vertices + edges).
    pub locations: usize,
    /// Regions of interest diagnosed per pass (detected variance regions
    /// plus a rank × time grid of user-style selections).
    pub regions: usize,
    /// Regions that produced a diagnosis report.
    pub diagnosed: usize,
    /// Timed samples per metric (after warmup); at least
    /// [`stats::MIN_SAMPLES`]. Zero on reports predating the
    /// multi-sample methodology.
    pub samples: usize,
    /// Median-of-samples wall time of the naive per-region loop, ns.
    pub naive_ns: f64,
    /// Median-of-samples wall time of the sequential batch (incl. the merge), ns.
    pub batch_seq_ns: f64,
    /// Median-of-samples wall time of the parallel batch (incl. the merge), ns.
    pub batch_ns: f64,
    /// Naive loop throughput, regions/second (from the median).
    pub naive_regions_per_sec: f64,
    /// Relative noise of the naive timing (MAD/median).
    pub naive_noise_frac: f64,
    /// Sequential batch throughput, regions/second (from the median).
    pub batch_seq_regions_per_sec: f64,
    /// Relative noise of the sequential batch timing (MAD/median).
    pub batch_seq_noise_frac: f64,
    /// Parallel batch throughput, regions/second (from the median).
    pub batch_regions_per_sec: f64,
    /// Relative noise of the parallel batch timing (MAD/median).
    pub batch_noise_frac: f64,
    /// `naive_ns / batch_seq_ns` — the algorithmic win of merge-once +
    /// interval index + cluster reuse, independent of thread count.
    pub batch_speedup: f64,
    /// `batch_seq_ns / batch_ns`, or `None` on single-core runners where
    /// the fan-out cannot speed anything up.
    pub parallel_speedup: Option<f64>,
    /// [`Fragment`] clones one full naive pass performs.
    pub naive_fragment_clones: u64,
    /// [`Fragment`] clones one full batch pass performs (must be 0).
    pub batch_fragment_clones: u64,
    /// One headline point per harness run, carried forward from the
    /// previous BENCH file (bounded; see [`stats::MAX_TREND_POINTS`]).
    pub history: Vec<TrendPoint>,
}

/// Build per-rank STGs with enough counter depth to diagnose: `sites`
/// call sites per rank, each a self-loop carrying computation fragments
/// of a site-specific memory-bound workload with full stage-3 memory
/// counters, plus an invocation fragment every few iterations (so both
/// the vertex and the edge of every site are fragment-bearing merged
/// locations). The last rank suffers 2× memory contention over the
/// middle third of its iterations — the variance the regions probe.
pub fn diagnostic_stgs(nranks: usize, frags_per_rank: usize, sites: usize, seed: u64) -> Vec<Stg> {
    let sites = sites.max(1);
    let names: Vec<&'static str> = (0..sites)
        .map(|j| &*Box::leak(format!("diag:site{j:02}").into_boxed_str()))
        .collect();
    let model = CpuModel::with_jitter(CpuConfig::default(), JitterModel::exact());
    let specs: Vec<WorkloadSpec> = (0..sites)
        .map(|j| WorkloadSpec::memory_bound(1e6 * (1.0 + j as f64 * 0.5)))
        .collect();
    (0..nranks)
        .map(|rank| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (rank as u64).wrapping_mul(0x9E37));
            let mut stg = Stg::new();
            let start = stg.state(StateKey::Start);
            let states: Vec<_> = names
                .iter()
                .map(|&n| stg.state(StateKey::Site(CallSite(n))))
                .collect();
            let loops: Vec<_> = states.iter().map(|&s| stg.transition(s, s)).collect();
            stg.transition(start, states[0]);
            let mut t = 0u64;
            for i in 0..frags_per_rank {
                let j = i % sites;
                let noisy = rank == nranks - 1
                    && (frags_per_rank / 3..2 * frags_per_rank / 3).contains(&i);
                let env = if noisy {
                    NoiseEnv { mem_contention: 2.0, ..NoiseEnv::default() }
                } else {
                    NoiseEnv::quiet()
                };
                let out = model.execute(&specs[j], &env, &mut rng);
                let f_start = VirtualTime::from_ns(t);
                let f_end = f_start + VirtualTime::from_ns_f64(out.wall_ns);
                t = f_end.ns() + 200;
                stg.attach_edge_fragment(
                    loops[j],
                    Fragment {
                        rank,
                        kind: FragmentKind::Computation,
                        start: f_start,
                        end: f_end,
                        counters: out.counters.project(events::s3_memory_set()),
                        args: vec![],
                    },
                );
                // Coprime with any reasonable site count, so round-robin
                // site visiting leaves every vertex fragment-bearing.
                if i % 7 == 0 {
                    stg.attach_vertex_fragment(
                        states[j],
                        Fragment {
                            rank,
                            kind: FragmentKind::Communication,
                            start: VirtualTime::from_ns(t),
                            end: VirtualTime::from_ns(t + 10),
                            counters: Default::default(),
                            args: vec![64.0, 1.0],
                        },
                    );
                    t += 10;
                }
            }
            stg
        })
        .collect()
}

/// Latest fragment end across the run, ns.
fn t_end_ns(stgs: &[Stg]) -> u64 {
    stgs.iter()
        .flat_map(|s| {
            s.vertices()
                .iter()
                .flat_map(|v| v.fragments.iter())
                .chain(s.edges().iter().flat_map(|e| e.fragments.iter()))
        })
        .map(|f| f.end.ns())
        .max()
        .unwrap_or(0)
}

/// The regions of interest one pass diagnoses: every variance region
/// detection finds, plus a `nranks × grid_cols` grid of single-rank time
/// windows — the paper's "users are able to select regions of interest
/// on the heat map" flow, where most selections hit quiet territory.
pub fn rois_for(stgs: &[Stg], nranks: usize, grid_cols: usize, cfg: &VaproConfig) -> Vec<RegionOfInterest> {
    let detection = detect_seq(stgs, nranks, 32, cfg);
    let mut rois: Vec<RegionOfInterest> =
        detection.comp_regions.iter().map(RegionOfInterest::from).collect();
    let col_ns = (t_end_ns(stgs) / grid_cols.max(1) as u64).max(1);
    for rank in 0..nranks {
        for col in 0..grid_cols {
            rois.push(RegionOfInterest {
                ranks: (rank, rank),
                t_start: VirtualTime::from_ns(col as u64 * col_ns),
                t_end: VirtualTime::from_ns((col as u64 + 1) * col_ns),
            });
        }
    }
    rois
}

/// The pre-batching `diagnose_region`, frozen as the bench baseline. It
/// re-merges the STGs for every region, re-clusters the winning pool
/// from scratch, clones the cluster population once, and clones it again
/// for every counter set the drill-down requests.
pub fn naive_diagnose_region(
    stgs: &[Stg],
    roi: &RegionOfInterest,
    cfg: &VaproConfig,
) -> Option<DiagnosisReport> {
    let merged = merge_stgs(stgs);
    let covers = |f: &Fragment| {
        f.rank >= roi.ranks.0
            && f.rank <= roi.ranks.1
            && f.start < roi.t_end
            && f.end > roi.t_start
    };

    let mut best: Option<(&[&Fragment], u64)> = None;
    for (_, pool) in &merged.edges {
        let in_region: u64 = pool
            .iter()
            .filter(|f| f.kind == FragmentKind::Computation && covers(f))
            .map(|f| f.duration().ns())
            .sum();
        if in_region > 0 && best.as_ref().is_none_or(|(_, t)| in_region > *t) {
            best = Some((pool.as_slice(), in_region));
        }
    }
    let (pool, _) = best?;

    let outcome = cluster_fragment_refs(
        pool,
        &cfg.proxy_counters,
        cfg.cluster_threshold,
        cfg.min_cluster_size,
    );
    let cluster = outcome.usable.iter().max_by_key(|c| c.members.len())?;
    let population: Vec<Fragment> =
        cluster.members.iter().map(|&m| pool[m].clone()).collect();

    let mut provider = move |set: CounterSet| -> Vec<Fragment> {
        population
            .iter()
            .map(|f| Fragment { counters: f.counters.project(set), ..f.clone() })
            .collect()
    };
    diagnose_progressively(&mut provider, cfg.ka_abnormal, cfg.major_factor_threshold, 0.05)
}

/// Run the full measurement: equivalence first, then clone accounting,
/// then multi-sample timings of all three paths (`reps` requested
/// samples, floored at [`stats::MIN_SAMPLES`], after a warmup phase).
/// The batch timings include their single merge — the naive loop pays
/// one merge *per region*, and that difference is the point.
pub fn measure(
    nranks: usize,
    frags_per_rank: usize,
    sites: usize,
    grid_cols: usize,
    reps: usize,
) -> DiagnosePerf {
    let cfg = VaproConfig::default();
    let stgs = diagnostic_stgs(nranks, frags_per_rank, sites, 0xD1A6);
    let fragments: usize = stgs.iter().map(Stg::total_fragments).sum();
    let merged = merge_stgs(&stgs);
    let locations = merged.vertices.len() + merged.edges.len();
    let rois = rois_for(&stgs, nranks, grid_cols, &cfg);

    // Determinism sanity: the batch must reproduce the naive loop
    // bit-for-bit — sequentially and under the fan-out — before its
    // timing means anything.
    let naive_out: Vec<Option<DiagnosisReport>> =
        rois.iter().map(|r| naive_diagnose_region(&stgs, r, &cfg)).collect();
    let batch_seq_out = diagnose_regions_seq(&merged, &rois, &cfg);
    let batch_out = diagnose_regions(&merged, &rois, &cfg);
    assert_eq!(naive_out, batch_seq_out, "batched diagnosis diverged from the naive loop");
    assert_eq!(batch_seq_out, batch_out, "parallel batch diverged from sequential");
    let diagnosed = batch_out.iter().filter(|r| r.is_some()).count();

    // Clone accounting per full pass — process-wide, so rayon worker
    // threads are included on the batch side.
    let before = clone_count::in_process();
    std::hint::black_box(rois.iter().filter_map(|r| naive_diagnose_region(&stgs, r, &cfg)).count());
    let naive_fragment_clones = clone_count::in_process() - before;
    let before = clone_count::in_process();
    std::hint::black_box(diagnose_regions(&merged, &rois, &cfg).len());
    let batch_fragment_clones = clone_count::in_process() - before;

    let naive = stats::sample_ns(reps, || {
        rois.iter().filter_map(|r| naive_diagnose_region(&stgs, r, &cfg)).count()
    });
    let batch_seq = stats::sample_ns(reps, || {
        let m = merge_stgs(&stgs);
        diagnose_regions_seq(&m, &rois, &cfg).len()
    });
    let batch = stats::sample_ns(reps, || {
        let m = merge_stgs(&stgs);
        diagnose_regions(&m, &rois, &cfg).len()
    });

    let threads = detected_threads();
    let per_sec = |count: usize, ns: f64| count as f64 / (ns / 1e9);
    DiagnosePerf {
        bench: "diagnose".to_string(),
        threads,
        ranks: nranks,
        fragments,
        locations,
        regions: rois.len(),
        diagnosed,
        samples: naive.samples,
        naive_ns: naive.median_ns,
        batch_seq_ns: batch_seq.median_ns,
        batch_ns: batch.median_ns,
        naive_regions_per_sec: per_sec(rois.len(), naive.median_ns),
        naive_noise_frac: naive.noise_frac(),
        batch_seq_regions_per_sec: per_sec(rois.len(), batch_seq.median_ns),
        batch_seq_noise_frac: batch_seq.noise_frac(),
        batch_regions_per_sec: per_sec(rois.len(), batch.median_ns),
        batch_noise_frac: batch.noise_frac(),
        batch_speedup: naive.median_ns / batch_seq.median_ns,
        parallel_speedup: (threads > 1).then_some(batch_seq.median_ns / batch.median_ns),
        naive_fragment_clones,
        batch_fragment_clones,
        history: Vec::new(),
    }
}

/// The defaults the acceptance measurement uses: 4 ranks × 400
/// fragments/rank over 18 sites (36 fragment-bearing merged locations),
/// an 8-column selection grid on top of the detected regions, 30
/// samples per metric.
pub fn measure_default() -> DiagnosePerf {
    measure(4, 400, 18, 8, stats::MIN_SAMPLES)
}

/// Human summary of one report.
pub fn summary(p: &DiagnosePerf) -> String {
    let par = match p.parallel_speedup {
        Some(s) => format!("{s:.2}x over batch-seq"),
        None => "n/a (1 thread)".to_string(),
    };
    format!(
        "diagnose: {} regions ({} diagnosed) / {} fragments / {} locations / {} ranks / {} threads / median of {} samples\n\
         naive:     {:>8.0} regions/s ({:.2} ms, ±{:.1}% MAD)  merge+recluster per region, {} Fragment clones\n\
         batch-seq: {:>8.0} regions/s ({:.2} ms, ±{:.1}% MAD)  {:.1}x over naive, {} Fragment clones\n\
         batch-par: {:>8.0} regions/s ({:.2} ms, ±{:.1}% MAD)  parallel speedup {}\n",
        p.regions,
        p.diagnosed,
        p.fragments,
        p.locations,
        p.ranks,
        p.threads,
        p.samples,
        p.naive_regions_per_sec,
        p.naive_ns / 1e6,
        p.naive_noise_frac * 100.0,
        p.naive_fragment_clones,
        p.batch_seq_regions_per_sec,
        p.batch_seq_ns / 1e6,
        p.batch_seq_noise_frac * 100.0,
        p.batch_speedup,
        p.batch_fragment_clones,
        p.batch_regions_per_sec,
        p.batch_ns / 1e6,
        p.batch_noise_frac * 100.0,
        par,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagnostic_stgs_yield_the_expected_locations() {
        let stgs = diagnostic_stgs(2, 60, 5, 1);
        assert_eq!(stgs.len(), 2);
        // Each site contributes one fragment-bearing vertex and one
        // fragment-bearing self-loop edge to the merged view.
        let merged = merge_stgs(&stgs);
        assert_eq!(merged.vertices.len() + merged.edges.len(), 10);
        // 60 computation + 9 invocation fragments per rank.
        let total: usize = stgs.iter().map(Stg::total_fragments).sum();
        assert_eq!(total, 2 * 69);
    }

    #[test]
    fn measure_agrees_and_proves_zero_batch_clones() {
        let p = measure(2, 120, 5, 4, 1);
        assert_eq!(p.bench, "diagnose");
        assert!(p.regions >= 8, "regions {}", p.regions);
        assert!(p.diagnosed >= 1, "no region produced a report");
        assert_eq!(p.batch_fragment_clones, 0, "batch path cloned Fragments");
        assert!(p.naive_fragment_clones > 0, "the frozen baseline must still clone");
        assert!(p.naive_regions_per_sec > 0.0);
        assert!(p.batch_seq_regions_per_sec > 0.0);
        assert!(p.batch_regions_per_sec > 0.0);
        assert!(p.batch_speedup > 0.0);
        match p.parallel_speedup {
            Some(s) => {
                assert!(p.threads > 1);
                assert!(s > 0.0);
            }
            None => assert_eq!(p.threads, 1),
        }
    }

    #[test]
    fn report_roundtrips_through_json() {
        let p = measure(2, 60, 4, 3, 1);
        let json = serde_json::to_string(&p).expect("serialisable");
        let back: DiagnosePerf = serde_json::from_str(&json).expect("parses");
        assert_eq!(p, back);
    }
}
