//! Fig. 18 (case study §6.5.3): 512-process RAxML on a shared distributed
//! filesystem. Computation and communication are stable, but rank 0 —
//! which merges many small files — shows large IO performance variance.
//! The report also reproduces the mitigation result: the client-side file
//! buffer cuts the run-time standard deviation (paper: −73.5 %) and
//! speeds the run up (paper: +17.5 %).

use crate::common::{header, vapro_cf, ExpOpts};
use vapro::harness::run_under_vapro_binned;
use vapro_apps::AppParams;
use vapro_sim::{run_simulation, Interceptor, NoiseKind, NullInterceptor, SimConfig, TargetSet};
use vapro_stats::Summary;

/// The Fig. 18 analysis output.
pub struct Fig18Run {
    /// IO-performance heat map.
    pub io_map: vapro_core::HeatMap,
    /// Did the top IO region cover rank 0?
    pub rank0_flagged: bool,
    /// Were computation and communication clean?
    pub comp_clean: bool,
    /// Unbuffered run times (s) across repeats.
    pub unbuffered_s: Vec<f64>,
    /// Buffered run times (s).
    pub buffered_s: Vec<f64>,
}

fn fs_noise() -> vapro_sim::NoiseSchedule {
    crate::common::always(
        NoiseKind::FsInterference { max_slowdown: 12.0 },
        TargetSet::All,
    )
}

/// Per-run congestion level of the shared filesystem: on a production
/// machine the FS load differs between submissions (other tenants), so
/// each repeat draws its own interference ceiling. This coarse,
/// run-level variation — not the per-operation tail alone — is what
/// makes RAxML's *total* run time vary from 41.1 to 68.0 s in the paper.
fn fs_noise_for_run(run: u64, seed: u64) -> vapro_sim::NoiseSchedule {
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed ^ (run * 0x9E37) ^ 0xF5);
    let level = 2.0 + rng.gen::<f64>() * 22.0;
    crate::common::always(
        NoiseKind::FsInterference { max_slowdown: level },
        TargetSet::All,
    )
}

/// Run the detection plus the buffered-vs-unbuffered repeat study.
pub fn analyze(opts: &ExpOpts) -> Fig18Run {
    let ranks = opts.resolve_ranks(16, 512);
    let iters = opts.resolve_iters(40);
    let runs = opts.resolve_runs(10);
    let params = AppParams::default().with_iterations(iters);

    let cfg = SimConfig::new(ranks).with_noise(fs_noise()).with_seed(opts.seed);
    let run = run_under_vapro_binned(&cfg, &vapro_cf(), 40, |ctx| {
        vapro_apps::raxml::run(ctx, &params)
    });
    let rank0_flagged = run
        .detection
        .io_regions
        .first()
        .is_some_and(|r| r.covers_rank(0));
    let comp_clean =
        run.detection.comp_regions.is_empty() && run.detection.comm_regions.is_empty();

    let times = |buffered: bool| -> Vec<f64> {
        (0..runs)
            .map(|r| {
                let mut c = SimConfig::new(ranks)
                    .with_noise(fs_noise_for_run(r as u64, opts.seed))
                    .with_seed(opts.seed + 31 * r as u64);
                c.fs_buffered = buffered;
                run_simulation(
                    &c,
                    |_| Box::new(NullInterceptor) as Box<dyn Interceptor>,
                    |ctx| vapro_apps::raxml::run(ctx, &params),
                )
                .makespan()
                .as_secs_f64()
            })
            .collect()
    };

    Fig18Run {
        io_map: run.detection.io_map,
        rank0_flagged,
        comp_clean,
        unbuffered_s: times(false),
        buffered_s: times(true),
    }
}

/// Run the experiment and format the report.
pub fn run(opts: &ExpOpts) -> String {
    let r = analyze(opts);
    let mut out = header(
        "Figure 18 (§6.5.3 IO case study)",
        "RAxML on a contended shared filesystem: IO-performance heat map",
    );
    out.push_str(&vapro_core::viz::render_heatmap(&r.io_map, 16));
    out.push_str(&format!(
        "\nrank 0 flagged as the IO-variance victim: {}\ncomputation/communication clean: {}\n",
        r.rank0_flagged, r.comp_clean
    ));
    let su = Summary::of(&r.unbuffered_s).expect("nonempty");
    let sb = Summary::of(&r.buffered_s).expect("nonempty");
    out.push_str(&format!(
        "\nfile-buffer fix over {} repeats:\n  σ: {:.4}s → {:.4}s ({:.1}% reduction; paper: 73.5%)\n  mean: {:.3}s → {:.3}s ({:.1}% speedup; paper: 17.5%)\n",
        r.unbuffered_s.len(),
        su.std_dev,
        sb.std_dev,
        (1.0 - sb.std_dev / su.std_dev) * 100.0,
        su.mean,
        sb.mean,
        (su.mean / sb.mean - 1.0) * 100.0
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank0_io_variance_is_flagged_and_buffer_fixes_it() {
        let opts = ExpOpts {
            ranks: Some(8),
            iterations: Some(30),
            runs: Some(8),
            ..ExpOpts::default()
        };
        let r = analyze(&opts);
        assert!(r.rank0_flagged, "rank 0 IO variance not flagged");
        let su = Summary::of(&r.unbuffered_s).unwrap();
        let sb = Summary::of(&r.buffered_s).unwrap();
        assert!(sb.std_dev < su.std_dev * 0.8, "σ {} vs {}", sb.std_dev, su.std_dev);
        assert!(sb.mean < su.mean, "mean {} vs {}", sb.mean, su.mean);
    }
}
