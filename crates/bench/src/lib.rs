//! # vapro-bench — the reproduction harness
//!
//! One module per table/figure of the paper's evaluation (§6). Each
//! module exposes `run(&ExpOpts) -> String`, returning the report that
//! the `repro` binary prints; the modules are libraries so integration
//! tests can assert on the *shape* of each result (who wins, by roughly
//! what factor) without string-scraping.
//!
//! Scale: the paper runs up to 2048 processes. Every experiment here
//! defaults to a scaled-down rank count that preserves the phenomenon and
//! finishes in seconds; `--full` (or `ExpOpts::full`) restores the
//! paper's scale.

pub mod ablation;
pub mod chaos;
pub mod common;
pub mod diagnose;
pub mod fig01_cg_repeat;
pub mod fig04_stg;
pub mod fig05_pmu_noise;
pub mod fig09_pagerank;
pub mod fig11_breakdown;
pub mod fig12_sp_vsensor;
pub mod fig13_cg_large;
pub mod fig14_mpip;
pub mod fig15_hpl_bug;
pub mod fig16_hpl_cdf;
pub mod fig17_nekbone;
pub mod fig18_raxml;
pub mod fig19_raxml_io;
pub mod fleet;
pub mod ingest;
pub mod perf;
pub mod regression;
pub mod stats;
pub mod storage;
pub mod table1;
pub mod table2;

pub use common::ExpOpts;

/// All experiment names the `repro` binary accepts.
pub const EXPERIMENTS: &[&str] = &[
    "fig1", "fig4", "fig5", "fig9", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
    "fig17", "fig18", "fig19", "table1", "table2", "storage", "ablation", "regression",
];

/// Dispatch one experiment by name.
pub fn run_experiment(name: &str, opts: &ExpOpts) -> Option<String> {
    Some(match name {
        "fig1" => fig01_cg_repeat::run(opts),
        "fig4" => fig04_stg::run(opts),
        "fig5" => fig05_pmu_noise::run(opts),
        "fig9" => fig09_pagerank::run(opts),
        "fig11" => fig11_breakdown::run(opts),
        "fig12" => fig12_sp_vsensor::run(opts),
        "fig13" => fig13_cg_large::run(opts),
        "fig14" => fig14_mpip::run(opts),
        "fig15" => fig15_hpl_bug::run(opts),
        "fig16" => fig16_hpl_cdf::run(opts),
        "fig17" => fig17_nekbone::run(opts),
        "fig18" => fig18_raxml::run(opts),
        "fig19" => fig19_raxml_io::run(opts),
        "table1" => table1::run(opts),
        "table2" => table2::run(opts),
        "storage" => storage::run(opts),
        "ablation" => ablation::run(opts),
        "regression" => regression::run(opts),
        _ => return None,
    })
}
