//! Robust timing statistics for the throughput harnesses
//! (`vapro-bench-stats`): warmup + many-sample measurement summarised by
//! median and MAD, noise-aware regression tolerances, and the BENCH
//! trend history.
//!
//! The harnesses used to report best-of-3 wall times. On a busy host
//! that is a lottery ticket: two identical builds were observed 40 %
//! apart because one run's "best of 3" landed in a noisy-neighbour
//! burst. Every gated metric now runs a warmup phase (page the code and
//! data in, settle the frequency governor) followed by at least
//! [`MIN_SAMPLES`] timed samples, and reports the **median** — a robust
//! location estimate a few outliers cannot move — together with the
//! **MAD** (median absolute deviation), a robust spread estimate that
//! prices the host's actual noise level into the regression gate:
//! a drop only warns when it exceeds what the measured noise can
//! explain (see [`variance_tolerance`]).
//!
//! Each BENCH_*.json additionally carries a bounded `history` of
//! [`TrendPoint`]s — one per harness run, carried forward from the
//! previous file — so a slow drift that never trips the per-run gate is
//! still visible across runs.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::Instant;

/// Samples the timed phase never goes below, whatever the caller asks
/// for. 30 is the classic small-sample floor: the median of 30 has a
/// well-behaved sampling distribution even on heavy-tailed timing data.
pub const MIN_SAMPLES: usize = 30;

/// Untimed executions before sampling starts: enough to fault the code
/// and data into cache and let the frequency governor settle.
pub const WARMUP_SAMPLES: usize = 3;

/// MAD multiple a regression must exceed before it is believed. The MAD
/// of a normal distribution is ≈ 0.6745 σ, so 4 × MAD ≈ 2.7 σ — a drop
/// inside that band is indistinguishable from the host's measured noise.
pub const NOISE_GATE_MULTIPLIER: f64 = 4.0;

/// Ceiling on the noise-derived tolerance: even on a hopelessly noisy
/// host, a collapse beyond this fraction always warns.
pub const MAX_TOLERANCE: f64 = 0.75;

/// Trend points a BENCH file retains; older points age out first.
pub const MAX_TREND_POINTS: usize = 50;

/// Robust summary of one timed metric's samples.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SampleStats {
    /// Timed samples taken (warmup excluded).
    pub samples: usize,
    /// Median wall time, ns.
    pub median_ns: f64,
    /// Median absolute deviation from the median, ns.
    pub mad_ns: f64,
    /// Fastest sample, ns.
    pub min_ns: f64,
    /// Slowest sample, ns.
    pub max_ns: f64,
}

impl SampleStats {
    /// Relative noise: `mad_ns / median_ns`, the spread the regression
    /// gate prices in. Zero on degenerate (empty / zero-time) inputs.
    pub fn noise_frac(&self) -> f64 {
        if self.median_ns > 0.0 {
            self.mad_ns / self.median_ns
        } else {
            0.0
        }
    }
}

/// Median of a sorted slice (mean of the middle pair on even lengths).
fn median_of_sorted(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Summarise raw timing samples: median, MAD, min, max. Sorts in place.
pub fn summarize(times: &mut [f64]) -> SampleStats {
    if times.is_empty() {
        return SampleStats::default();
    }
    times.sort_unstable_by(f64::total_cmp);
    let median_ns = median_of_sorted(times);
    let mut deviations: Vec<f64> = times.iter().map(|t| (t - median_ns).abs()).collect();
    deviations.sort_unstable_by(f64::total_cmp);
    SampleStats {
        samples: times.len(),
        median_ns,
        mad_ns: median_of_sorted(&deviations),
        min_ns: times[0],
        max_ns: times[times.len() - 1],
    }
}

/// One raw wall-time measurement, ns. The building block for callers
/// that need the individual samples (the ingest harness times v2/v1
/// back-to-back *pairs*, so the pairing — not this function — is the
/// unit the statistics summarise).
pub fn time_ns<R>(f: impl FnOnce() -> R) -> f64 {
    let t = Instant::now();
    std::hint::black_box(f());
    t.elapsed().as_nanos() as f64
}

/// Time `f` with the full methodology: [`WARMUP_SAMPLES`] untimed
/// executions, then `max(samples, MIN_SAMPLES)` timed ones, summarised
/// by median + MAD.
pub fn sample_ns<R>(samples: usize, mut f: impl FnMut() -> R) -> SampleStats {
    let samples = samples.max(MIN_SAMPLES);
    for _ in 0..WARMUP_SAMPLES {
        std::hint::black_box(f());
    }
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        times.push(time_ns(&mut f));
    }
    summarize(&mut times)
}

/// Steady-state flatness of a chronological per-step timing series:
/// `(median of the last quarter / median of the second quarter, relative
/// MAD of everything past the first quarter)`. The first quarter is
/// treated as warmup (cold caches, first allocations) and excluded from
/// both numbers. A flat series — per-step cost independent of how much
/// history the stream has accumulated — reports ≈1.0; any cost that
/// grows with the stream shows up as a ratio above 1. Series too short
/// to quarter (<8 samples) report `(1.0, 0.0)`.
pub fn steady_state_flatness(per_step_ns: &[f64]) -> (f64, f64) {
    let q = per_step_ns.len() / 4;
    if q < 2 {
        return (1.0, 0.0);
    }
    let early = summarize(&mut per_step_ns[q..2 * q].to_vec());
    let late = summarize(&mut per_step_ns[3 * q..].to_vec());
    let steady = summarize(&mut per_step_ns[q..].to_vec());
    let flatness = if early.median_ns > 0.0 { late.median_ns / early.median_ns } else { 1.0 };
    (flatness, steady.noise_frac())
}

/// The regression tolerance for a metric whose runs measured the given
/// relative noise levels (MAD/median, typically previous and current):
/// the fixed floor [`crate::regression::PERF_REGRESSION_TOLERANCE`]
/// widened to [`NOISE_GATE_MULTIPLIER`] × the worst measured noise,
/// capped at [`MAX_TOLERANCE`]. A report predating the noise fields
/// deserialises them as 0.0 and simply keeps the floor.
pub fn variance_tolerance(noise_fracs: &[f64]) -> f64 {
    let worst = noise_fracs.iter().copied().filter(|f| f.is_finite()).fold(0.0, f64::max);
    (worst * NOISE_GATE_MULTIPLIER).clamp(crate::regression::PERF_REGRESSION_TOLERANCE, MAX_TOLERANCE)
}

/// One harness run's headline numbers, appended to the BENCH file's
/// `history` so cross-run drift stays visible even when every individual
/// step passes the gate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrendPoint {
    /// Seconds since the Unix epoch at measurement time.
    pub at_unix: u64,
    /// Hardware threads on the runner (points from different machines
    /// are not comparable on parallel metrics).
    pub threads: usize,
    /// Headline metric name → value (throughputs in units/second,
    /// ratios dimensionless).
    pub metrics: BTreeMap<String, f64>,
}

/// Build a trend point stamped with the current wall clock.
pub fn trend_point(threads: usize, metrics: &[(&str, f64)]) -> TrendPoint {
    let at_unix = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    TrendPoint {
        at_unix,
        threads,
        metrics: metrics.iter().map(|&(k, v)| (k.to_string(), v)).collect(),
    }
}

/// The history a fresh report carries: the previous file's points plus
/// this run's, oldest aged out beyond [`MAX_TREND_POINTS`].
pub fn extend_history(previous: Option<&[TrendPoint]>, point: TrendPoint) -> Vec<TrendPoint> {
    let mut history: Vec<TrendPoint> = previous.unwrap_or(&[]).to_vec();
    history.push(point);
    if history.len() > MAX_TREND_POINTS {
        let excess = history.len() - MAX_TREND_POINTS;
        history.drain(..excess);
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarize_is_robust_to_outliers() {
        // 29 quiet samples around 100, one noisy-neighbour burst at 10x.
        let mut times: Vec<f64> = (0..29).map(|i| 100.0 + (i % 5) as f64).collect();
        times.push(1000.0);
        let s = summarize(&mut times);
        assert_eq!(s.samples, 30);
        assert!((s.median_ns - 102.0).abs() < 2.0, "median {}", s.median_ns);
        assert!(s.mad_ns <= 2.0, "mad {}", s.mad_ns);
        assert_eq!(s.min_ns, 100.0);
        assert_eq!(s.max_ns, 1000.0);
        assert!(s.noise_frac() < 0.03);
    }

    #[test]
    fn summarize_handles_degenerate_inputs() {
        assert_eq!(summarize(&mut []), SampleStats::default());
        let one = summarize(&mut [42.0]);
        assert_eq!(one.median_ns, 42.0);
        assert_eq!(one.mad_ns, 0.0);
        assert_eq!(SampleStats::default().noise_frac(), 0.0);
    }

    #[test]
    fn sample_ns_enforces_the_sample_floor() {
        let mut calls = 0usize;
        let s = sample_ns(1, || calls += 1);
        assert_eq!(s.samples, MIN_SAMPLES);
        assert_eq!(calls, MIN_SAMPLES + WARMUP_SAMPLES);
        assert!(s.min_ns <= s.median_ns && s.median_ns <= s.max_ns);
    }

    #[test]
    fn steady_state_flatness_separates_flat_from_growing_series() {
        // Flat series with a noisy warmup quarter: ≈1.0, warmup ignored.
        let mut flat: Vec<f64> = vec![500.0; 10];
        flat.extend(std::iter::repeat_n(100.0, 90));
        let (f, noise) = steady_state_flatness(&flat);
        assert!((f - 1.0).abs() < 1e-9, "flatness {f}");
        assert_eq!(noise, 0.0);
        // Linearly growing cost (an O(history) scan): well above 1.
        let growing: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let (f, _) = steady_state_flatness(&growing);
        assert!(f > 2.0, "growing series reported flat: {f}");
        // Too short to quarter: the neutral report.
        assert_eq!(steady_state_flatness(&[1.0, 2.0, 3.0]), (1.0, 0.0));
    }

    #[test]
    fn variance_tolerance_scales_with_noise_but_stays_bounded() {
        use crate::regression::PERF_REGRESSION_TOLERANCE;
        // Quiet host (or pre-upgrade report with zeroed noise): the floor.
        assert_eq!(variance_tolerance(&[0.0, 0.0]), PERF_REGRESSION_TOLERANCE);
        assert_eq!(variance_tolerance(&[0.01, 0.02]), PERF_REGRESSION_TOLERANCE);
        // Noisy host: the gate widens to 4x the worst measured MAD...
        let t = variance_tolerance(&[0.02, 0.10]);
        assert!((t - 0.40).abs() < 1e-12, "tolerance {t}");
        // ...but a collapse always warns, however noisy the host claims
        // to be, and non-finite noise (corrupt JSON) keeps the floor.
        assert_eq!(variance_tolerance(&[10.0]), MAX_TOLERANCE);
        assert_eq!(variance_tolerance(&[f64::NAN]), PERF_REGRESSION_TOLERANCE);
    }

    #[test]
    fn history_appends_and_ages_out() {
        let p = |at: u64| TrendPoint {
            at_unix: at,
            threads: 1,
            metrics: BTreeMap::new(),
        };
        let fresh = extend_history(None, p(7));
        assert_eq!(fresh.len(), 1);
        assert_eq!(fresh[0].at_unix, 7);

        let full: Vec<TrendPoint> = (0..MAX_TREND_POINTS as u64).map(p).collect();
        let extended = extend_history(Some(&full), p(999));
        assert_eq!(extended.len(), MAX_TREND_POINTS);
        assert_eq!(extended.first().unwrap().at_unix, 1, "oldest point ages out");
        assert_eq!(extended.last().unwrap().at_unix, 999);
    }

    #[test]
    fn trend_point_carries_the_metrics() {
        let t = trend_point(4, &[("a_per_sec", 1.5), ("b_per_sec", 2.5)]);
        assert_eq!(t.threads, 4);
        assert_eq!(t.metrics.len(), 2);
        assert_eq!(t.metrics["a_per_sec"], 1.5);
        let json = serde_json::to_string(&t).expect("serialises");
        let back: TrendPoint = serde_json::from_str(&json).expect("parses");
        assert_eq!(t, back);
    }
}
