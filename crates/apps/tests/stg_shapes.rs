//! Structural checks of every mini-app's STG under the Vapro collector:
//! the state/edge shape a tool user would see, and the SPMD symmetry
//! the inter-process analysis relies on.

use vapro_apps::{all_apps, AppKind, AppParams};
use vapro_core::stg::StateKey;
use vapro_core::{Collector, VaproConfig};
use vapro_sim::{run_simulation, Interceptor, SimConfig, Topology};

fn stgs_for(app: &vapro_apps::AppSpec, ranks: usize, iterations: usize) -> Vec<vapro_core::Stg> {
    let topo = match app.kind {
        AppKind::MultiProcess => Topology::tianhe_like(ranks),
        AppKind::MultiThreaded => Topology::single_node(ranks),
    };
    let params = AppParams::default().with_iterations(iterations);
    let res = run_simulation(
        &SimConfig::new(ranks).with_topology(topo),
        |rank| {
            Box::new(Collector::new(rank, VaproConfig::default())) as Box<dyn Interceptor>
        },
        move |ctx| (app.run)(ctx, &params),
    );
    res.into_tools::<Collector>()
        .into_iter()
        .map(Collector::into_stg)
        .collect()
}

#[test]
fn stg_size_is_bounded_and_stable_across_iteration_counts() {
    // The defining property of the STG: states grow with *code*, not with
    // execution length (otherwise online analysis could not be O(1) per
    // event). Doubling the iterations must not change the graph shape —
    // once every code path has been discovered (CESM's periodic history
    // write fires at iteration 5, and its return transition appears at
    // iteration 6, so the baseline is 6).
    for app in all_apps() {
        let a = stgs_for(&app, 4, 6);
        let b = stgs_for(&app, 4, 12);
        assert_eq!(
            a[0].num_states(),
            b[0].num_states(),
            "{}: states grew with iterations",
            app.name
        );
        assert_eq!(
            a[0].num_edges(),
            b[0].num_edges(),
            "{}: edges grew with iterations",
            app.name
        );
        assert!(
            a[0].num_states() <= 64,
            "{}: implausibly many states ({})",
            app.name,
            a[0].num_states()
        );
        // But fragments do grow.
        assert!(b[0].total_fragments() > a[0].total_fragments(), "{}", app.name);
    }
}

#[test]
fn spmd_apps_have_symmetric_interior_ranks() {
    // SPMD symmetry: interior ranks see the same states — the premise of
    // pooling fragments across ranks. (Boundary ranks of pipelined apps
    // like LU/ferret legitimately differ.)
    for name in ["CG", "FT", "MG", "SP", "BT", "AMG", "Nekbone", "BERT", "vips"] {
        let app = vapro_apps::find_app(name).unwrap();
        let stgs = stgs_for(&app, 6, 4);
        let keys = |stg: &vapro_core::Stg| -> Vec<String> {
            let mut k: Vec<String> =
                stg.vertices().iter().map(|v| v.key.label()).collect();
            k.sort();
            k
        };
        assert_eq!(keys(&stgs[2]), keys(&stgs[3]), "{name}: interior ranks differ");
    }
}

#[test]
fn every_app_reaches_every_declared_static_site() {
    // The vSensor annotations must point at call-sites the app actually
    // executes — otherwise the baseline comparison would be vacuous.
    for app in all_apps() {
        if app.static_fixed_sites.is_empty() {
            continue;
        }
        let stgs = stgs_for(&app, 4, 4);
        for site in app.static_fixed_sites {
            // Some rank must reach the site (boundary ranks of pipelined
            // apps — LU's rank 0 in the upper sweep — legitimately skip
            // their directional sends).
            let found = stgs.iter().any(|stg| {
                stg.vertices().iter().any(|v| match &v.key {
                    StateKey::Site(s) => s.label() == *site,
                    _ => false,
                })
            });
            assert!(found, "{}: static site {site} never executed", app.name);
        }
    }
}

#[test]
fn warmup_phases_only_exist_where_declared() {
    // CG is the only app with an explicit warm-up region; under a
    // context-aware STG it must (and only it may) split states.
    for app in all_apps() {
        let params = AppParams::default().with_iterations(3);
        let topo = match app.kind {
            AppKind::MultiProcess => Topology::tianhe_like(2),
            AppKind::MultiThreaded => Topology::single_node(2),
        };
        let run_modes = |cfg: VaproConfig| {
            let res = run_simulation(
                &SimConfig::new(2).with_topology(topo.clone()),
                move |rank| Box::new(Collector::new(rank, cfg.clone())) as Box<dyn Interceptor>,
                |ctx| (app.run)(ctx, &params),
            );
            res.into_tools::<Collector>()[0].stg().num_states()
        };
        let cf = run_modes(VaproConfig::context_free());
        let ca = run_modes(VaproConfig::context_aware());
        if app.name == "CG" {
            assert!(ca > cf, "CG should split warm-up states (cf {cf}, ca {ca})");
        } else if app.name == "CESM" {
            // CESM's components run in named regions: CA splits by region.
            assert!(ca >= cf);
        } else {
            assert_eq!(ca, cf, "{}: unexpected path-sensitivity", app.name);
        }
    }
}
