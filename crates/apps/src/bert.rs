//! Mini BERT: the inference-serving framework of Table 1 (multi-threaded,
//! 72.8 % coverage). Each request runs a fixed pipeline of transformer
//! layers — attention and feed-forward mat-muls with *identical shapes
//! every request* — making inference serving the canonical fixed-workload
//! application (the paper's intro example of "neural networks repeatedly
//! executing certain math kernels").

use crate::params::AppParams;
use vapro_pmu::{Locality, WorkloadSpec};
use vapro_sim::{CallSite, RankCtx};

const QUEUE_BARRIER: CallSite = CallSite("bert.cc:batch_queue:pthread_barrier_wait");
const LAYER_MARK: CallSite = CallSite("bert.cc:layer:user_marker");

/// Transformer layers per request.
pub const LAYERS: usize = 4;

fn attention_spec(scale: f64) -> WorkloadSpec {
    WorkloadSpec {
        instructions: 2.8e6 * scale,
        mem_refs: 8.0e5 * scale,
        locality: Locality { l1: 0.82, l2: 0.12, l3: 0.045, dram: 0.015 },
        branch_fraction: 0.02,
        branch_miss_rate: 0.001,
        ..WorkloadSpec::default()
    }
}

fn ffn_spec(scale: f64) -> WorkloadSpec {
    WorkloadSpec::compute_bound(3.6e6 * scale)
}

/// Run mini-BERT: each iteration serves one batch through all layers.
pub fn run(ctx: &mut RankCtx, params: &AppParams) {
    for _ in 0..params.iterations {
        ctx.thread_barrier(QUEUE_BARRIER); // batch pick-up
        for _layer in 0..LAYERS {
            ctx.user_marker("bert_layer", LAYER_MARK);
            ctx.compute(&attention_spec(params.scale));
            ctx.compute(&ffn_spec(params.scale));
        }
    }
    ctx.thread_barrier(QUEUE_BARRIER);
}

/// Layer shapes are fixed in the model config — statically provable.
pub const STATIC_FIXED_SITES: &[&str] = &["bert.cc:layer:user_marker"];

#[cfg(test)]
mod tests {
    use super::*;
    use vapro_sim::{run_simulation, Interceptor, NullInterceptor, SimConfig, Topology};

    fn null(_: usize) -> Box<dyn Interceptor> {
        Box::new(NullInterceptor)
    }

    #[test]
    fn per_request_invocations() {
        let cfg = SimConfig::new(4).with_topology(Topology::single_node(4));
        let res = run_simulation(&cfg, null, |ctx| {
            run(ctx, &AppParams::default().with_iterations(3))
        });
        // Per request: 1 barrier + LAYERS markers; plus the closing barrier.
        assert_eq!(res.ranks[0].invocations as usize, 3 * (1 + LAYERS) + 1);
    }

    #[test]
    fn request_times_are_iteration_invariant() {
        let cfg = SimConfig::new(2).with_topology(Topology::single_node(2));
        let t3 = run_simulation(&cfg, null, |ctx| {
            run(ctx, &AppParams::default().with_iterations(3))
        })
        .makespan()
        .ns() as f64;
        let t6 = run_simulation(&cfg, null, |ctx| {
            run(ctx, &AppParams::default().with_iterations(6))
        })
        .makespan()
        .ns() as f64;
        assert!((t6 / t3 - 2.0).abs() < 0.05, "ratio {}", t6 / t3);
    }
}
