//! The application registry: name → runner, threading kind, and the
//! static-analysis annotations the vSensor baseline consumes.

use crate::params::AppParams;
use vapro_sim::RankCtx;

/// Whether an app maps to MPI processes or pthreads in the paper's
/// Table 1 (the split matters: vSensor supports only multi-process apps).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppKind {
    /// MPI-style multi-process application.
    MultiProcess,
    /// Pthread-style multi-threaded application.
    MultiThreaded,
}

/// One registered application.
#[derive(Clone)]
pub struct AppSpec {
    /// Registry name (matches the paper's Table 1 rows).
    pub name: &'static str,
    /// Threading model.
    pub kind: AppKind,
    /// The runner.
    pub run: fn(&mut RankCtx, &AppParams),
    /// Call-sites whose preceding computation snippet a static analyser
    /// can prove fixed-workload (vSensor's instrumentation points).
    pub static_fixed_sites: &'static [&'static str],
    /// False when vSensor cannot process the app at all (closed source,
    /// or a codebase beyond its analysis: HPL, CESM).
    pub vsensor_supported: bool,
    /// Default rank/thread count used by the Table 1 driver at full scale.
    pub table1_ranks: usize,
}

impl std::fmt::Debug for AppSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AppSpec")
            .field("name", &self.name)
            .field("kind", &self.kind)
            .field("vsensor_supported", &self.vsensor_supported)
            .finish()
    }
}

/// All registered applications, in the paper's Table 1 order.
pub fn all_apps() -> Vec<AppSpec> {
    use AppKind::*;
    vec![
        AppSpec {
            name: "AMG",
            kind: MultiProcess,
            run: crate::amg::run,
            static_fixed_sites: crate::amg::STATIC_FIXED_SITES,
            vsensor_supported: true,
            table1_ranks: 1024,
        },
        AppSpec {
            name: "CESM",
            kind: MultiProcess,
            run: crate::cesm::run,
            static_fixed_sites: crate::cesm::STATIC_FIXED_SITES,
            vsensor_supported: crate::cesm::VSENSOR_SUPPORTED,
            table1_ranks: 2048,
        },
        AppSpec {
            name: "BT",
            kind: MultiProcess,
            run: crate::npb::bt::run,
            static_fixed_sites: crate::npb::bt::STATIC_FIXED_SITES,
            vsensor_supported: true,
            table1_ranks: 1024,
        },
        AppSpec {
            name: "CG",
            kind: MultiProcess,
            run: crate::npb::cg::run,
            static_fixed_sites: crate::npb::cg::STATIC_FIXED_SITES,
            vsensor_supported: true,
            table1_ranks: 1024,
        },
        AppSpec {
            name: "EP",
            kind: MultiProcess,
            run: crate::npb::ep::run,
            static_fixed_sites: crate::npb::ep::STATIC_FIXED_SITES,
            vsensor_supported: true,
            table1_ranks: 1024,
        },
        AppSpec {
            name: "FT",
            kind: MultiProcess,
            run: crate::npb::ft::run,
            static_fixed_sites: crate::npb::ft::STATIC_FIXED_SITES,
            vsensor_supported: true,
            table1_ranks: 1024,
        },
        AppSpec {
            name: "LU",
            kind: MultiProcess,
            run: crate::npb::lu::run,
            static_fixed_sites: crate::npb::lu::STATIC_FIXED_SITES,
            vsensor_supported: true,
            table1_ranks: 1024,
        },
        AppSpec {
            name: "MG",
            kind: MultiProcess,
            run: crate::npb::mg::run,
            static_fixed_sites: crate::npb::mg::STATIC_FIXED_SITES,
            vsensor_supported: true,
            table1_ranks: 1024,
        },
        AppSpec {
            name: "SP",
            kind: MultiProcess,
            run: crate::npb::sp::run,
            static_fixed_sites: crate::npb::sp::STATIC_FIXED_SITES,
            vsensor_supported: true,
            table1_ranks: 1024,
        },
        AppSpec {
            name: "BERT",
            kind: MultiThreaded,
            run: crate::bert::run,
            static_fixed_sites: crate::bert::STATIC_FIXED_SITES,
            vsensor_supported: false, // vSensor has no multi-thread support
            table1_ranks: 16,
        },
        AppSpec {
            name: "PageRank",
            kind: MultiThreaded,
            run: crate::pagerank::run,
            static_fixed_sites: crate::pagerank::STATIC_FIXED_SITES,
            vsensor_supported: false,
            table1_ranks: 16,
        },
        AppSpec {
            name: "WordCount",
            kind: MultiThreaded,
            run: crate::wordcount::run,
            static_fixed_sites: crate::wordcount::STATIC_FIXED_SITES,
            vsensor_supported: false,
            table1_ranks: 16,
        },
        AppSpec {
            name: "FFT",
            kind: MultiThreaded,
            run: crate::parsec::fft::run,
            static_fixed_sites: crate::parsec::fft::STATIC_FIXED_SITES,
            vsensor_supported: false,
            table1_ranks: 16,
        },
        AppSpec {
            name: "blackscholes",
            kind: MultiThreaded,
            run: crate::parsec::blackscholes::run,
            static_fixed_sites: crate::parsec::blackscholes::STATIC_FIXED_SITES,
            vsensor_supported: false,
            table1_ranks: 16,
        },
        AppSpec {
            name: "canneal",
            kind: MultiThreaded,
            run: crate::parsec::canneal::run,
            static_fixed_sites: crate::parsec::canneal::STATIC_FIXED_SITES,
            vsensor_supported: false,
            table1_ranks: 16,
        },
        AppSpec {
            name: "ferret",
            kind: MultiThreaded,
            run: crate::parsec::ferret::run,
            static_fixed_sites: crate::parsec::ferret::STATIC_FIXED_SITES,
            vsensor_supported: false,
            table1_ranks: 16,
        },
        AppSpec {
            name: "swaptions",
            kind: MultiThreaded,
            run: crate::parsec::swaptions::run,
            static_fixed_sites: crate::parsec::swaptions::STATIC_FIXED_SITES,
            vsensor_supported: false,
            table1_ranks: 16,
        },
        AppSpec {
            name: "vips",
            kind: MultiThreaded,
            run: crate::parsec::vips::run,
            static_fixed_sites: crate::parsec::vips::STATIC_FIXED_SITES,
            vsensor_supported: false,
            table1_ranks: 16,
        },
        // Case-study apps (not in Table 1 but used in §6.4-§6.5).
        AppSpec {
            name: "HPL",
            kind: MultiProcess,
            run: crate::hpl::run,
            static_fixed_sites: crate::hpl::STATIC_FIXED_SITES,
            vsensor_supported: crate::hpl::VSENSOR_SUPPORTED,
            table1_ranks: 36,
        },
        AppSpec {
            name: "Nekbone",
            kind: MultiProcess,
            run: crate::nekbone::run,
            static_fixed_sites: crate::nekbone::STATIC_FIXED_SITES,
            vsensor_supported: true,
            table1_ranks: 128,
        },
        AppSpec {
            name: "RAxML",
            kind: MultiProcess,
            run: crate::raxml::run,
            static_fixed_sites: crate::raxml::STATIC_FIXED_SITES,
            vsensor_supported: true,
            table1_ranks: 512,
        },
    ]
}

/// Look up an app by (case-insensitive) name.
pub fn find_app(name: &str) -> Option<AppSpec> {
    all_apps()
        .into_iter()
        .find(|a| a.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vapro_sim::{run_simulation, Interceptor, NullInterceptor, SimConfig, Topology};

    #[test]
    fn table1_apps_are_all_present() {
        let names: Vec<&str> = all_apps().iter().map(|a| a.name).collect();
        for expected in [
            "AMG", "CESM", "BT", "CG", "EP", "FT", "LU", "MG", "SP", "BERT", "PageRank",
            "WordCount", "FFT", "blackscholes", "canneal", "ferret", "swaptions", "vips",
        ] {
            assert!(names.contains(&expected), "{expected} missing");
        }
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert!(find_app("cg").is_some());
        assert!(find_app("BLACKSCHOLES").is_some());
        assert!(find_app("nope").is_none());
    }

    #[test]
    fn runtime_classed_apps_have_no_static_marks() {
        for name in ["AMG", "EP"] {
            let app = find_app(name).unwrap();
            assert!(
                app.static_fixed_sites.is_empty(),
                "{name} should be invisible to static analysis"
            );
        }
    }

    #[test]
    fn unsupported_apps_are_flagged() {
        assert!(!find_app("CESM").unwrap().vsensor_supported);
        assert!(!find_app("HPL").unwrap().vsensor_supported);
        assert!(find_app("CG").unwrap().vsensor_supported);
    }

    #[test]
    fn every_app_runs_at_small_scale() {
        // The crucial smoke test: every registered app completes on
        // 4 ranks with a couple of iterations.
        let params = AppParams::default().with_iterations(3);
        for app in all_apps() {
            let topo = match app.kind {
                AppKind::MultiProcess => Topology::tianhe_like(4),
                AppKind::MultiThreaded => Topology::single_node(4),
            };
            let cfg = SimConfig::new(4).with_topology(topo);
            let res = run_simulation(
                &cfg,
                |_| Box::new(NullInterceptor) as Box<dyn Interceptor>,
                |ctx| (app.run)(ctx, &params),
            );
            assert!(
                res.makespan().ns() > 0,
                "{} did not advance time",
                app.name
            );
        }
    }
}
