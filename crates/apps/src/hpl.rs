//! Mini HPL: the LINPACK kernel structure used in the paper's hardware-
//! bug case study (§6.5.1): 36 processes on a dual-socket node, compute-
//! dominated DGEMM updates with a panel broadcast per iteration. HPL is a
//! closed-source Intel binary in the paper's setting — vSensor cannot
//! touch it at all, while Vapro needs only the MPI boundary.
//!
//! The DGEMM working set is blocked to live mostly in L2 — which is why
//! the Intel L2-eviction bug hits it so hard, and why the huge-page
//! mitigation (which reduces the eviction probability) restores stability
//! (Fig. 16).

use crate::params::AppParams;
use vapro_pmu::{Locality, WorkloadSpec};
use vapro_sim::comm::ReduceOp;
use vapro_sim::{CallSite, RankCtx};

const BCAST: CallSite = CallSite("hpl:panel_bcast:MPI_Bcast");
const ALLRED: CallSite = CallSite("hpl:pivot:MPI_Allreduce");

/// The per-iteration DGEMM update: L2-blocked, compute-heavy.
pub fn dgemm_spec(scale: f64) -> WorkloadSpec {
    WorkloadSpec {
        instructions: 8.0e6 * scale,
        mem_refs: 2.4e6 * scale,
        // Blocked DGEMM: high L2 residency — the bug's favourite victim.
        locality: Locality { l1: 0.55, l2: 0.40, l3: 0.04, dram: 0.01 },
        branch_fraction: 0.03,
        branch_miss_rate: 0.001,
        ..WorkloadSpec::default()
    }
}

/// Run mini-HPL.
pub fn run(ctx: &mut RankCtx, params: &AppParams) {
    let root = 0;
    for it in 0..params.iterations {
        // Pivot selection.
        let local_max = [ctx.rank() as f64 + it as f64];
        ctx.allreduce(&local_max, ReduceOp::Max, ALLRED);
        // Panel broadcast from the pivot owner.
        let panel = [1.0; 16];
        let bytes = (panel.len() * 8) as u64;
        if ctx.rank() == root {
            ctx.bcast(root, Some(&panel), bytes, BCAST);
        } else {
            ctx.bcast(root, None, bytes, BCAST);
        }
        // Trailing-matrix update.
        ctx.compute(&dgemm_spec(params.scale));
    }
}

/// HPL ships as a closed-source binary: no source for vSensor.
pub const STATIC_FIXED_SITES: &[&str] = &[];

/// Whether a source-analysis tool can handle this app.
pub const VSENSOR_SUPPORTED: bool = false;

#[cfg(test)]
mod tests {
    use super::*;
    use vapro_sim::{run_simulation, Interceptor, NullInterceptor, SimConfig};
    use vapro_sim::{NoiseEvent, NoiseKind, NoiseSchedule, TargetSet, Topology};

    fn null(_: usize) -> Box<dyn Interceptor> {
        Box::new(NullInterceptor)
    }

    #[test]
    fn quiet_hpl_is_stable_across_ranks() {
        let cfg = SimConfig::new(8).with_topology(Topology::dual_socket(4));
        let res = run_simulation(&cfg, null, |ctx| {
            run(ctx, &AppParams::default().with_iterations(5))
        });
        let clocks: Vec<u64> = res.ranks.iter().map(|r| r.clock.ns()).collect();
        // Collectives synchronise; every rank ends together.
        assert!(clocks.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn l2_bug_slows_the_affected_socket_run() {
        let topo = Topology::dual_socket(4);
        let quiet = SimConfig::new(8).with_topology(topo.clone());
        let bugged = SimConfig::new(8).with_topology(topo).with_noise(
            NoiseSchedule::quiet().with(NoiseEvent::always(
                NoiseKind::L2CacheBug { prob: 0.8, severity: 0.6 },
                TargetSet::Sockets(vec![1]),
            )),
        );
        let app =
            |ctx: &mut RankCtx| run(ctx, &AppParams::default().with_iterations(5));
        let t_quiet = run_simulation(&quiet, null, app).makespan();
        let t_bug = run_simulation(&bugged, null, app).makespan();
        // The whole job slows because collectives wait on the hurt socket.
        assert!(
            t_bug.ns() as f64 > t_quiet.ns() as f64 * 1.1,
            "quiet {t_quiet} vs bugged {t_bug}"
        );
    }
}
