//! Mini vips: image-processing pipeline applying a fixed operation chain
//! (affine → convolution → sharpen) to equal-sized tiles. Per-tile work
//! is fixed by the tile geometry, and tiles stream through threads with a
//! barrier per image — giving the highest multi-threaded coverage in
//! Table 1 (96.7 %).

use crate::params::AppParams;
use vapro_pmu::WorkloadSpec;
use vapro_sim::{CallSite, RankCtx};

const BARRIER: CallSite = CallSite("vips:image_done:pthread_barrier_wait");

/// Tiles per thread per image.
pub const TILES: usize = 6;

fn tile_spec(op: usize, scale: f64) -> WorkloadSpec {
    match op {
        0 => WorkloadSpec::memory_bound(5.0e5 * scale), // affine resample
        1 => WorkloadSpec::mixed(8.0e5 * scale),        // convolution
        _ => WorkloadSpec::memory_bound(3.0e5 * scale), // sharpen
    }
}

/// Run mini-vips: each iteration processes one image.
pub fn run(ctx: &mut RankCtx, params: &AppParams) {
    for _ in 0..params.iterations {
        for _tile in 0..TILES {
            for op in 0..3 {
                ctx.compute(&tile_spec(op, params.scale));
            }
        }
        ctx.thread_barrier(BARRIER);
    }
}

/// Tile geometry is fixed at build configuration time.
pub const STATIC_FIXED_SITES: &[&str] = &["vips:image_done:pthread_barrier_wait"];

#[cfg(test)]
mod tests {
    use super::*;
    use vapro_sim::{run_simulation, Interceptor, NullInterceptor, SimConfig, Topology};

    fn null(_: usize) -> Box<dyn Interceptor> {
        Box::new(NullInterceptor)
    }

    #[test]
    fn one_barrier_per_image() {
        let cfg = SimConfig::new(4).with_topology(Topology::single_node(4));
        let res = run_simulation(&cfg, null, |ctx| {
            run(ctx, &AppParams::default().with_iterations(7))
        });
        assert_eq!(res.ranks[0].invocations, 7);
    }
}
