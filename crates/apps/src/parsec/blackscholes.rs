//! Mini blackscholes: data-parallel option pricing. Each thread prices a
//! fixed slice of options per timestep — the computation is real (the
//! closed-form Black–Scholes evaluation on deterministic inputs), and the
//! slice size never changes, so every timestep is a fixed workload
//! (84.9 % coverage in Table 1).

use crate::params::AppParams;
use rand::Rng;
use vapro_pmu::WorkloadSpec;
use vapro_sim::{CallSite, RankCtx};

const BARRIER: CallSite = CallSite("blackscholes.c:timestep:pthread_barrier_wait");

/// Options priced per thread per timestep.
pub const OPTIONS_PER_THREAD: usize = 256;

/// A cumulative-normal approximation (Abramowitz–Stegun style polynomial).
fn cnd(x: f64) -> f64 {
    let l = x.abs();
    let k = 1.0 / (1.0 + 0.2316419 * l);
    let poly = k
        * (0.319381530
            + k * (-0.356563782 + k * (1.781477937 + k * (-1.821255978 + k * 1.330274429))));
    let w = 1.0 - (-l * l / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt() * poly;
    if x < 0.0 {
        1.0 - w
    } else {
        w
    }
}

/// Price one call option.
fn price(spot: f64, strike: f64, rate: f64, vol: f64, t: f64) -> f64 {
    let d1 = ((spot / strike).ln() + (rate + vol * vol / 2.0) * t) / (vol * t.sqrt());
    let d2 = d1 - vol * t.sqrt();
    spot * cnd(d1) - strike * (-rate * t).exp() * cnd(d2)
}

fn pricing_spec(scale: f64) -> WorkloadSpec {
    WorkloadSpec::compute_bound(OPTIONS_PER_THREAD as f64 * 2_000.0 * scale)
}

/// Run mini-blackscholes.
pub fn run(ctx: &mut RankCtx, params: &AppParams) {
    let mut rng = crate::helpers::app_rng(ctx, params.seed);
    let options: Vec<(f64, f64, f64, f64, f64)> = (0..OPTIONS_PER_THREAD)
        .map(|_| {
            (
                50.0 + rng.gen::<f64>() * 100.0,
                50.0 + rng.gen::<f64>() * 100.0,
                0.01 + rng.gen::<f64>() * 0.04,
                0.1 + rng.gen::<f64>() * 0.4,
                0.25 + rng.gen::<f64>() * 2.0,
            )
        })
        .collect();
    let mut acc = 0.0;
    for _ in 0..params.iterations {
        for &(s, k, r, v, t) in &options {
            acc += price(s, k, r, v, t);
        }
        ctx.compute(&pricing_spec(params.scale));
        ctx.thread_barrier(BARRIER);
    }
    assert!(acc.is_finite() && acc > 0.0);
}

/// The option-slice loop bound is a compile-time partition constant.
pub const STATIC_FIXED_SITES: &[&str] = &["blackscholes.c:timestep:pthread_barrier_wait"];

#[cfg(test)]
mod tests {
    use super::*;
    use vapro_sim::{run_simulation, Interceptor, NullInterceptor, SimConfig, Topology};

    fn null(_: usize) -> Box<dyn Interceptor> {
        Box::new(NullInterceptor)
    }

    #[test]
    fn call_price_sanity() {
        // Deep in-the-money call ≈ spot − discounted strike.
        let p = price(200.0, 100.0, 0.02, 0.2, 1.0);
        assert!((p - (200.0 - 100.0 * (-0.02f64).exp())).abs() < 1.0, "price {p}");
        // Far out-of-the-money call ≈ 0.
        assert!(price(50.0, 200.0, 0.02, 0.2, 0.5) < 0.1);
    }

    #[test]
    fn cnd_is_a_cdf() {
        assert!((cnd(0.0) - 0.5).abs() < 1e-6);
        assert!(cnd(3.0) > 0.99);
        assert!(cnd(-3.0) < 0.01);
        assert!((cnd(1.0) + cnd(-1.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn timesteps_complete() {
        let cfg = SimConfig::new(4).with_topology(Topology::single_node(4));
        let res = run_simulation(&cfg, null, |ctx| {
            run(ctx, &AppParams::default().with_iterations(4))
        });
        assert_eq!(res.ranks[0].invocations, 4);
    }
}
