//! Miniature multi-threaded programs standing in for the six PARSEC
//! workloads of Table 1 (FFT, blackscholes, canneal, ferret, swaptions,
//! vips): each reproduces the original's threading structure and workload
//! character (data-parallel, pipeline, or annealing-style irregular).

pub mod blackscholes;
pub mod canneal;
pub mod ferret;
pub mod fft;
pub mod swaptions;
pub mod vips;
