//! Mini canneal: simulated-annealing netlist routing. Threads do
//! pointer-chasing swaps over a shared netlist with lock-protected
//! critical sections; the number of swap attempts per temperature step is
//! fixed, but the *accepted* swap work depends on the runtime temperature
//! schedule — a runtime-classed workload that static analysis cannot fix.

use crate::helpers::shared_draw;
use crate::params::AppParams;
use vapro_pmu::WorkloadSpec;
use vapro_sim::{CallSite, RankCtx};

const BARRIER: CallSite = CallSite("annealer_thread.cpp:temp_step:pthread_barrier_wait");

/// Temperature classes across the annealing schedule.
pub const TEMP_CLASSES: usize = 4;

fn swap_spec(class: usize, scale: f64) -> WorkloadSpec {
    // Hotter temperature → more accepted swaps → more pointer chasing.
    WorkloadSpec::irregular(8.0e4 * (1.0 + class as f64) * scale)
}

/// Run mini-canneal.
pub fn run(ctx: &mut RankCtx, params: &AppParams) {
    for it in 0..params.iterations {
        let class = shared_draw(params.seed ^ 0xCA44, it / 4, TEMP_CLASSES);
        ctx.compute(&swap_spec(class, params.scale));
        ctx.thread_barrier(BARRIER);
    }
}

/// Swap-acceptance work depends on the runtime temperature.
pub const STATIC_FIXED_SITES: &[&str] = &[];

#[cfg(test)]
mod tests {
    use super::*;
    use vapro_sim::{run_simulation, Interceptor, NullInterceptor, SimConfig, Topology};

    fn null(_: usize) -> Box<dyn Interceptor> {
        Box::new(NullInterceptor)
    }

    #[test]
    fn temperature_classes_are_bounded() {
        let classes: std::collections::BTreeSet<u64> = (0..100)
            .map(|it| swap_spec(shared_draw(7 ^ 0xCA44, it / 4, TEMP_CLASSES), 1.0))
            .map(|s| s.instructions as u64)
            .collect();
        assert!(classes.len() <= TEMP_CLASSES);
        assert!(classes.len() >= 2);
    }

    #[test]
    fn completes() {
        let cfg = SimConfig::new(4).with_topology(Topology::single_node(4));
        let res = run_simulation(&cfg, null, |ctx| {
            run(ctx, &AppParams::default().with_iterations(8))
        });
        assert_eq!(res.ranks[0].invocations, 8);
    }
}
