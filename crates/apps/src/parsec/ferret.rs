//! Mini ferret: content-based similarity search structured as a
//! four-stage pipeline (segment → extract → index → rank). Stages hand
//! work downstream through point-to-point queues; threads are pinned to
//! stages, so workloads differ per thread role but are fixed per stage —
//! the pipeline-parallel pattern among the PARSEC set.

use crate::params::AppParams;
use vapro_pmu::WorkloadSpec;
use vapro_sim::{CallSite, RankCtx};

const Q_PUSH: CallSite = CallSite("ferret:queue_push:MPI_Send");
const Q_POP: CallSite = CallSite("ferret:queue_pop:MPI_Recv");
const DONE: CallSite = CallSite("ferret:finish:pthread_barrier_wait");

/// Per-stage workload: extraction is the heavy stage.
fn stage_spec(stage: usize, scale: f64) -> WorkloadSpec {
    match stage {
        0 => WorkloadSpec::mixed(3.0e5 * scale),           // segment
        1 => WorkloadSpec::compute_bound(1.6e6 * scale),   // extract
        2 => WorkloadSpec::irregular(2.5e5 * scale),       // index probe
        _ => WorkloadSpec::mixed(4.0e5 * scale),           // rank
    }
}

/// Run mini-ferret: rank r acts as pipeline stage `r % 4`; queries flow
/// stage to stage. With fewer than 4 threads the pipeline degenerates to
/// a local loop.
pub fn run(ctx: &mut RankCtx, params: &AppParams) {
    let n = ctx.size();
    let me = ctx.rank();
    let stages = 4.min(n);
    let stage = me % stages;
    let queries = params.iterations;
    if n < 2 {
        for _ in 0..queries {
            for s in 0..4 {
                ctx.compute(&stage_spec(s, params.scale));
            }
        }
        return;
    }
    // Only the first `stages` ranks form the pipeline; the rest mirror
    // stage work locally (worker replicas).
    let in_pipeline = me < stages;
    for q in 0..queries as u64 {
        if in_pipeline {
            if stage > 0 {
                ctx.recv(Some(me - 1), Some(q), Q_POP);
            }
            ctx.compute(&stage_spec(stage, params.scale));
            if stage + 1 < stages {
                ctx.send(me + 1, q, 2048, None, Q_PUSH);
            }
        } else {
            ctx.compute(&stage_spec(stage, params.scale));
        }
    }
    ctx.thread_barrier(DONE);
}

/// Stage kernels have fixed feature dimensions (compile-time constants).
pub const STATIC_FIXED_SITES: &[&str] = &["ferret:queue_pop:MPI_Recv"];

#[cfg(test)]
mod tests {
    use super::*;
    use vapro_sim::{run_simulation, Interceptor, NullInterceptor, SimConfig, Topology};

    fn null(_: usize) -> Box<dyn Interceptor> {
        Box::new(NullInterceptor)
    }

    #[test]
    fn pipeline_flows_without_deadlock() {
        let cfg = SimConfig::new(4).with_topology(Topology::single_node(4));
        let res = run_simulation(&cfg, null, |ctx| {
            run(ctx, &AppParams::default().with_iterations(6))
        });
        // Stage 0: 6 sends + 1 barrier; stage 3: 6 recvs + 1 barrier.
        assert_eq!(res.ranks[0].invocations, 7);
        assert_eq!(res.ranks[3].invocations, 7);
        // Middle stages both receive and send.
        assert_eq!(res.ranks[1].invocations, 13);
    }

    #[test]
    fn single_thread_degenerates_gracefully() {
        let cfg = SimConfig::new(1).with_topology(Topology::single_node(1));
        let res = run_simulation(&cfg, null, |ctx| {
            run(ctx, &AppParams::default().with_iterations(2))
        });
        assert_eq!(res.ranks[0].invocations, 0);
        assert!(res.makespan().ns() > 0);
    }
}
