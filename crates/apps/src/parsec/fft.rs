//! Mini FFT (the SPLASH/PARSEC kernel): data-parallel 1-D FFT over a
//! shared array with all-thread transposes between butterfly phases.
//! Barrier-heavy with short compute bursts — the lowest-coverage PARSEC
//! entry in Table 1 (66.9 %) because fragments are brief.

use crate::params::AppParams;
use vapro_pmu::{Locality, WorkloadSpec};
use vapro_sim::{CallSite, RankCtx};

const BARRIER: CallSite = CallSite("fft.c:transpose:pthread_barrier_wait");

/// Butterfly phases per FFT pass.
pub const PHASES: usize = 3;

fn butterfly_spec(scale: f64) -> WorkloadSpec {
    WorkloadSpec {
        instructions: 4.0e5 * scale,
        mem_refs: 1.6e5 * scale,
        locality: Locality { l1: 0.75, l2: 0.15, l3: 0.07, dram: 0.03 },
        branch_fraction: 0.05,
        branch_miss_rate: 0.003,
        ..WorkloadSpec::default()
    }
}

/// Run mini-FFT.
pub fn run(ctx: &mut RankCtx, params: &AppParams) {
    for _ in 0..params.iterations {
        for _phase in 0..PHASES {
            ctx.compute(&butterfly_spec(params.scale));
            ctx.thread_barrier(BARRIER);
        }
    }
}

/// Butterfly loop bounds follow from the compile-time transform size.
pub const STATIC_FIXED_SITES: &[&str] = &["fft.c:transpose:pthread_barrier_wait"];

#[cfg(test)]
mod tests {
    use super::*;
    use vapro_sim::{run_simulation, Interceptor, NullInterceptor, SimConfig, Topology};

    fn null(_: usize) -> Box<dyn Interceptor> {
        Box::new(NullInterceptor)
    }

    #[test]
    fn phases_times_iterations_barriers() {
        let cfg = SimConfig::new(4).with_topology(Topology::single_node(4));
        let res = run_simulation(&cfg, null, |ctx| {
            run(ctx, &AppParams::default().with_iterations(5))
        });
        assert_eq!(res.ranks[0].invocations as usize, 5 * PHASES);
    }
}
