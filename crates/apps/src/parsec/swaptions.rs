//! Mini swaptions: Monte-Carlo swaption pricing. Each thread prices its
//! fixed block of swaptions with a fixed number of simulation trials —
//! pure compute, almost no synchronisation (92.4 % coverage in Table 1,
//! 0.00 % overhead: there is hardly anything to intercept).

use crate::params::AppParams;
use vapro_pmu::WorkloadSpec;
use vapro_sim::{CallSite, RankCtx};

const BARRIER: CallSite = CallSite("swaptions:HJM_finish:pthread_barrier_wait");

/// Simulation trials per swaption.
pub const TRIALS: usize = 1_000;

fn mc_spec(scale: f64) -> WorkloadSpec {
    WorkloadSpec::compute_bound(TRIALS as f64 * 5_000.0 * scale)
}

/// Run mini-swaptions: one long Monte-Carlo block per iteration, a single
/// barrier at the end of each.
pub fn run(ctx: &mut RankCtx, params: &AppParams) {
    for _ in 0..params.iterations {
        ctx.compute(&mc_spec(params.scale));
        ctx.thread_barrier(BARRIER);
    }
}

/// Trial counts are compile-time constants.
pub const STATIC_FIXED_SITES: &[&str] = &["swaptions:HJM_finish:pthread_barrier_wait"];

#[cfg(test)]
mod tests {
    use super::*;
    use vapro_sim::{run_simulation, Interceptor, NullInterceptor, SimConfig, Topology};

    fn null(_: usize) -> Box<dyn Interceptor> {
        Box::new(NullInterceptor)
    }

    #[test]
    fn long_fragments_few_invocations() {
        let cfg = SimConfig::new(4).with_topology(Topology::single_node(4));
        let res = run_simulation(&cfg, null, |ctx| {
            run(ctx, &AppParams::default().with_iterations(3))
        });
        assert_eq!(res.ranks[0].invocations, 3);
        // Each fragment is a long compute block (hundreds of µs).
        assert!(res.makespan().ns() > 1_500_000);
    }
}
