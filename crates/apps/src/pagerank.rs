//! Mini PageRank: the multi-threaded graph application of the paper's
//! Fig. 9 (8 threads under memory noise) and Table 2 (homogeneity 0.74).
//! Each thread owns a vertex partition, does *real* rank propagation on a
//! small deterministic power-law graph, and synchronises on a thread
//! barrier per super-step. Partition degrees are deliberately *slightly*
//! unequal, producing nearly-equal (but not identical) workloads — the
//! cause of the imperfect homogeneity score the paper discusses in §6.3.

use crate::params::AppParams;
use rand::Rng;
use vapro_pmu::WorkloadSpec;
use vapro_sim::{CallSite, RankCtx};

const BARRIER: CallSite = CallSite("pagerank.cpp:superstep:pthread_barrier_wait");
const JOIN_BARRIER: CallSite = CallSite("pagerank.cpp:finish:pthread_barrier_wait");

/// Vertices per thread in the mini graph.
pub const VERTICES_PER_THREAD: usize = 512;
/// Mean out-degree.
pub const MEAN_DEGREE: usize = 8;

/// Build this thread's partition: out-edges with a skewed degree
/// distribution, deterministic per (seed, rank). Graph partitioners
/// balance edges to within a few percent, so partition `r` carries
/// `(1 + 0.02·r)` times the base edge count — each thread's workload is
/// *nearly* equal to its neighbours' (within the 5 % clustering
/// threshold) yet genuinely distinct: the paper's §6.3 explanation for
/// PageRank's imperfect homogeneity score.
fn build_partition(ctx: &mut RankCtx, seed: u64) -> Vec<Vec<u32>> {
    let mut rng = crate::helpers::app_rng(ctx, seed);
    let total = (ctx.size() * VERTICES_PER_THREAD) as u32;
    let target_edges =
        (VERTICES_PER_THREAD * MEAN_DEGREE) as f64 * (1.0 + 0.02 * ctx.rank() as f64);
    let mut remaining = target_edges.round() as usize;
    (0..VERTICES_PER_THREAD)
        .map(|v| {
            let left = VERTICES_PER_THREAD - v;
            // Skewed degrees that still hit the partition's edge target.
            let mean_left = remaining as f64 / left as f64;
            let deg = if left == 1 {
                remaining
            } else if rng.gen::<f64>() < 0.1 {
                (mean_left * 3.0).round() as usize
            } else {
                rng.gen_range(0..=(mean_left * 2.0).round() as usize)
            }
            .min(remaining);
            remaining -= deg;
            (0..deg).map(|_| rng.gen_range(0..total)).collect()
        })
        .collect()
}

/// The propagation workload implied by this partition's edge count:
/// irregular access over the rank vector.
fn propagate_spec(edges: usize, scale: f64) -> WorkloadSpec {
    WorkloadSpec::irregular(edges as f64 * 40.0 * scale)
}

/// Run mini-PageRank: returns the final local rank mass (also checked in
/// tests, keeping the computation honest).
pub fn run(ctx: &mut RankCtx, params: &AppParams) {
    let partition = build_partition(ctx, params.seed);
    let edges: usize = partition.iter().map(Vec::len).sum();
    let n_local = partition.len();
    let mut ranks = vec![1.0f64; n_local];
    let mut next = vec![0.0f64; n_local];

    for _ in 0..params.iterations {
        // Real local propagation (costed by the declared workload).
        for (v, outs) in partition.iter().enumerate() {
            let share = ranks[v] / outs.len().max(1) as f64;
            for &dst in outs {
                let d = dst as usize % n_local;
                next[d] += share;
            }
        }
        for v in 0..n_local {
            ranks[v] = 0.15 + 0.85 * next[v];
            next[v] = 0.0;
        }
        ctx.compute(&propagate_spec(edges, params.scale));
        ctx.thread_barrier(BARRIER);
    }
    ctx.thread_barrier(JOIN_BARRIER);
    // Keep the result alive so the loop is not trivially removable.
    let total: f64 = ranks.iter().sum();
    assert!(total.is_finite() && total > 0.0);
}

/// The propagation loop bound is the runtime partition's edge count.
pub const STATIC_FIXED_SITES: &[&str] = &[];

#[cfg(test)]
mod tests {
    use super::*;
    use vapro_sim::{run_simulation, Interceptor, NullInterceptor, SimConfig, Topology};

    fn null(_: usize) -> Box<dyn Interceptor> {
        Box::new(NullInterceptor)
    }

    #[test]
    fn eight_threads_complete() {
        let cfg = SimConfig::new(8).with_topology(Topology::single_node(8));
        let res = run_simulation(&cfg, null, |ctx| {
            run(ctx, &AppParams::default().with_iterations(5))
        });
        assert_eq!(res.ranks[0].invocations, 6);
        let clocks: Vec<u64> = res.ranks.iter().map(|r| r.clock.ns()).collect();
        assert!(clocks.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn partitions_have_nearly_equal_but_distinct_workloads() {
        // The Table 2 story: thread workloads differ by a few percent —
        // close enough to cluster together (hurting homogeneity), far
        // enough to be genuinely different.
        let cfg = SimConfig::new(8).with_topology(Topology::single_node(8));
        let mut edge_counts = vec![];
        let res = run_simulation(&cfg, null, |ctx| {
            let p = build_partition(ctx, 7);
            let edges: usize = p.iter().map(Vec::len).sum();
            // Smuggle the count out through the clock.
            ctx.compute(&WorkloadSpec::compute_bound(edges as f64));
        });
        for r in &res.ranks {
            edge_counts.push(r.clock.ns());
        }
        let min = *edge_counts.iter().min().unwrap() as f64;
        let max = *edge_counts.iter().max().unwrap() as f64;
        assert!(max > min, "degenerate partitions");
        assert!(max / min < 1.25, "too unequal: {edge_counts:?}");
    }
}
