//! Mini CESM: a climate-simulator skeleton. The real CESM has more than
//! 500,000 lines across coupled components (atmosphere, ocean, land,
//! ice) — far beyond what a source-analysis tool can process, which is
//! why vSensor reports N/A on it in Table 1. The mini version captures
//! what matters for Vapro: *many* distinct call-sites across component
//! phases, mixed workloads (some per-site fixed, some runtime-classed),
//! component coupling via collectives, and periodic history-file IO.

use crate::helpers::shared_draw;
use crate::params::AppParams;
use vapro_pmu::WorkloadSpec;
use vapro_sim::comm::ReduceOp;
use vapro_sim::{CallSite, RankCtx};

/// The coupled components, each with its own communication sites.
const COMPONENTS: [(&str, CallSite, CallSite); 4] = [
    ("atm", CallSite("cam:dyn_run:MPI_Isend"), CallSite("cam:dyn_run:MPI_Waitall")),
    ("ocn", CallSite("pop:baroclinic:MPI_Isend"), CallSite("pop:baroclinic:MPI_Waitall")),
    ("lnd", CallSite("clm:drv_run:MPI_Isend"), CallSite("clm:drv_run:MPI_Waitall")),
    ("ice", CallSite("cice:evp:MPI_Isend"), CallSite("cice:evp:MPI_Waitall")),
];

const COUPLER: CallSite = CallSite("cpl:mct_avect:MPI_Allreduce");
const HIST_WRITE: CallSite = CallSite("pio:write_darray:write");
const IRECV: CallSite = CallSite("cesm:halo:MPI_Irecv");

/// Per-component physics workload; the ocean has runtime-classed costs
/// (depends on convection activity), the others are per-site fixed.
fn component_spec(comp: usize, it: usize, seed: u64, scale: f64) -> WorkloadSpec {
    match comp {
        1 => {
            let class = shared_draw(seed ^ 0x0CEA, it, 3);
            WorkloadSpec::memory_bound(6.0e5 * (1.0 + class as f64) * scale)
        }
        0 => WorkloadSpec::mixed(1.5e6 * scale),
        2 => WorkloadSpec::mixed(6.0e5 * scale),
        _ => WorkloadSpec::memory_bound(4.0e5 * scale),
    }
}

/// The atmosphere's sub-phases: dynamics, moist physics and radiation,
/// each a separate kernel with its own character (the real CAM runs
/// them as distinct routine trees — the state richness that defeats
/// source analysis at CESM scale).
fn atm_subphase_spec(phase: usize, scale: f64) -> WorkloadSpec {
    match phase {
        0 => WorkloadSpec::memory_bound(5.0e5 * scale), // dynamics: stencil
        1 => WorkloadSpec::mixed(4.0e5 * scale),        // moist physics
        _ => WorkloadSpec::compute_bound(7.0e5 * scale), // radiation
    }
}

const ATM_PHYS_BARRIER: CallSite = CallSite("cam:phys_run:MPI_Barrier");
const CPL_REBALANCE: CallSite = CallSite("cpl:rearrange:MPI_Alltoall");

/// Run mini-CESM: each iteration advances the four components (the
/// atmosphere through three sub-phases), couples them, rebalances the
/// coupler decomposition, and periodically writes history output.
pub fn run(ctx: &mut RankCtx, params: &AppParams) {
    for it in 0..params.iterations {
        for (comp, (name, isend, waitall)) in COMPONENTS.iter().enumerate() {
            ctx.region(name, |ctx| {
                if comp == 0 {
                    // Atmosphere: dynamics → physics → radiation, with a
                    // physics load-balancing barrier in the middle.
                    ctx.compute(&atm_subphase_spec(0, params.scale));
                    ctx.compute(&atm_subphase_spec(1, params.scale));
                    ctx.barrier(ATM_PHYS_BARRIER);
                    ctx.compute(&atm_subphase_spec(2, params.scale));
                } else {
                    ctx.compute(&component_spec(comp, it, params.seed, params.scale));
                }
                crate::helpers::halo_exchange(
                    ctx,
                    24 * 1024,
                    (it * 4 + comp) as u64 * 2,
                    IRECV,
                    *isend,
                    *waitall,
                );
            });
        }
        // Coupler: field rearrangement between component grids, then the
        // conservation sums.
        ctx.alltoall(4 * 1024, CPL_REBALANCE);
        let flux = [1.0, 2.0];
        ctx.allreduce(&flux, ReduceOp::Sum, COUPLER);
        // History output every 5 coupling steps, rank 0 writes.
        if it % 5 == 4 && ctx.rank() == 0 {
            ctx.fs_write(900, 256 * 1024, HIST_WRITE);
        }
    }
}

/// vSensor cannot process the CESM codebase at all (N/A in Table 1).
pub const STATIC_FIXED_SITES: &[&str] = &[];

/// Whether a source-analysis tool can handle this app.
pub const VSENSOR_SUPPORTED: bool = false;

#[cfg(test)]
mod tests {
    use super::*;
    use vapro_sim::{run_simulation, Interceptor, NullInterceptor, SimConfig};

    fn null(_: usize) -> Box<dyn Interceptor> {
        Box::new(NullInterceptor)
    }

    #[test]
    fn four_components_run_each_iteration() {
        let cfg = SimConfig::new(4);
        let res = run_simulation(&cfg, null, |ctx| {
            run(ctx, &AppParams::default().with_iterations(5))
        });
        // Per iteration: 4 components × 5 halo invocations + the
        // atmosphere's physics barrier + the coupler's alltoall +
        // allreduce = 23; rank 0 adds one write at iteration 4.
        assert_eq!(res.ranks[1].invocations, 5 * 23);
        assert_eq!(res.ranks[0].invocations, 5 * 23 + 1);
    }

    #[test]
    fn ocean_component_is_runtime_classed() {
        let classes: std::collections::BTreeSet<u64> = (0..60)
            .map(|it| component_spec(1, it, 7, 1.0).instructions as u64)
            .collect();
        assert_eq!(classes.len(), 3);
        // The atmosphere is fixed.
        let atm: std::collections::BTreeSet<u64> = (0..60)
            .map(|it| component_spec(0, it, 7, 1.0).instructions as u64)
            .collect();
        assert_eq!(atm.len(), 1);
    }
}
