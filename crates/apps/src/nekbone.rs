//! Mini Nekbone: the spectral-element CFD proxy of the paper's memory-
//! problem case study (§6.5.2, 128 processes). Its conjugate-gradient
//! solve is dominated by memory-bound local gather-scatter and mat-vec
//! work, so a node with degraded memory bandwidth (−15.5 % in the paper)
//! drags the whole job — diagnosed by Vapro as backend → memory bound.

use crate::params::AppParams;
use vapro_pmu::WorkloadSpec;
use vapro_sim::comm::ReduceOp;
use vapro_sim::{CallSite, RankCtx};

const IRECV: CallSite = CallSite("nekbone:gs_op:MPI_Irecv");
const ISEND: CallSite = CallSite("nekbone:gs_op:MPI_Isend");
const WAITALL: CallSite = CallSite("nekbone:gs_op:MPI_Waitall");
const ALLRED: CallSite = CallSite("nekbone:glsc3:MPI_Allreduce");

/// The local spectral-element operator: strongly memory bound — the
/// gather-scatter over element faces streams far more data than fits in
/// cache, so most references go to DRAM (what makes the degraded-node
/// slowdown visible).
fn ax_spec(scale: f64) -> WorkloadSpec {
    WorkloadSpec::memory_bound(3.2e6 * scale).with_locality(vapro_pmu::Locality {
        l1: 0.55,
        l2: 0.10,
        l3: 0.10,
        dram: 0.25,
    })
}

/// Run mini-Nekbone: CG iterations of ax → gather-scatter → dot products.
pub fn run(ctx: &mut RankCtx, params: &AppParams) {
    for it in 0..params.iterations {
        ctx.compute(&ax_spec(params.scale));
        crate::helpers::halo_exchange(ctx, 32 * 1024, it as u64 * 2, IRECV, ISEND, WAITALL);
        let dots = [1.0, 2.0];
        ctx.allreduce(&dots, ReduceOp::Sum, ALLRED);
    }
}

/// The element loops have compile-time polynomial orders.
pub const STATIC_FIXED_SITES: &[&str] = &["nekbone:gs_op:MPI_Irecv"];

#[cfg(test)]
mod tests {
    use super::*;
    use vapro_sim::{run_simulation, Interceptor, NullInterceptor, SimConfig};
    use vapro_sim::{NoiseEvent, NoiseKind, NoiseSchedule, TargetSet};

    fn null(_: usize) -> Box<dyn Interceptor> {
        Box::new(NullInterceptor)
    }

    #[test]
    fn slow_node_slows_the_job() {
        let quiet = SimConfig::new(8);
        let degraded = SimConfig::new(8).with_noise(NoiseSchedule::quiet().with(
            NoiseEvent::always(
                NoiseKind::SlowMemoryNode { bw_factor: 0.845 },
                TargetSet::Nodes(vec![0]),
            ),
        ));
        let app =
            |ctx: &mut RankCtx| run(ctx, &AppParams::default().with_iterations(10));
        let t_q = run_simulation(&quiet, null, app).makespan();
        let t_d = run_simulation(&degraded, null, app).makespan();
        assert!(t_d > t_q, "degraded {t_d} vs quiet {t_q}");
    }

    #[test]
    fn invocation_count() {
        let cfg = SimConfig::new(2);
        let res = run_simulation(&cfg, null, |ctx| {
            run(ctx, &AppParams::default().with_iterations(3))
        });
        assert_eq!(res.ranks[0].invocations, 3 * 6);
    }
}
