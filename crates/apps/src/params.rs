//! Application run parameters.

/// Parameters shared by every mini-app.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppParams {
    /// Main-loop iterations.
    pub iterations: usize,
    /// Workload scale multiplier (1.0 ≈ a quick functional run; larger
    /// values stretch fragments for long-horizon experiments).
    pub scale: f64,
    /// App-level seed for workload draws (distinct from the runtime seed).
    pub seed: u64,
}

impl Default for AppParams {
    fn default() -> Self {
        AppParams { iterations: 25, scale: 1.0, seed: 7 }
    }
}

impl AppParams {
    /// A run with the given number of iterations.
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations;
        self
    }

    /// A run with the given workload scale.
    pub fn with_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        self.scale = scale;
        self
    }

    /// A run with the given app-level seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let p = AppParams::default().with_iterations(50).with_scale(2.0).with_seed(3);
        assert_eq!(p.iterations, 50);
        assert_eq!(p.scale, 2.0);
        assert_eq!(p.seed, 3);
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn zero_scale_rejected() {
        let _ = AppParams::default().with_scale(0.0);
    }
}
