//! Mini WordCount: the MapReduce-style program of Table 1. Map tasks
//! read input splits from the filesystem and hash real tokens; a shuffle
//! redistributes counts; reduce tasks merge. Fixed split sizes make both
//! phases runtime-fixed workloads.

use crate::params::AppParams;
use vapro_pmu::WorkloadSpec;
use vapro_sim::comm::ReduceOp;
use vapro_sim::{CallSite, RankCtx};

const READ: CallSite = CallSite("mapreduce.c:map_input:read");
const SHUFFLE: CallSite = CallSite("mapreduce.c:shuffle:MPI_Alltoall");
const REDUCE_BARRIER: CallSite = CallSite("mapreduce.c:reduce:pthread_barrier_wait");
const MERGE: CallSite = CallSite("mapreduce.c:merge:MPI_Allreduce");
const COLLECT: CallSite = CallSite("mapreduce.c:collect:MPI_Gather");

/// Bytes per input split.
pub const SPLIT_BYTES: u64 = 256 * 1024;

fn map_spec(scale: f64) -> WorkloadSpec {
    // Tokenising + hashing: branchy, cache-friendly streaming.
    WorkloadSpec {
        instructions: 1.2e6 * scale,
        mem_refs: 4.0e5 * scale,
        branch_fraction: 0.22,
        branch_miss_rate: 0.03,
        ..WorkloadSpec::default()
    }
}

fn reduce_spec(scale: f64) -> WorkloadSpec {
    WorkloadSpec::irregular(2.0e5 * scale)
}

/// Run mini-WordCount: `iterations` map/shuffle/reduce rounds.
pub fn run(ctx: &mut RankCtx, params: &AppParams) {
    // A little real hashing to keep the kernel honest.
    let mut check: u64 = 0;
    for it in 0..params.iterations {
        ctx.fs_read(300 + ctx.rank() as u64, SPLIT_BYTES, READ);
        for token in 0..512u64 {
            check = check
                .wrapping_mul(0x100000001B3)
                .wrapping_add(token ^ it as u64);
        }
        ctx.compute(&map_spec(params.scale));
        ctx.alltoall(8 * 1024, SHUFFLE);
        ctx.compute(&reduce_spec(params.scale));
        ctx.thread_barrier(REDUCE_BARRIER);
    }
    // The master collects each worker's top counts, then all agree on
    // the global total.
    let local_top = [check as f64 % 1e3, (check >> 16) as f64 % 1e3];
    let gathered = ctx.gather(0, &local_top, COLLECT);
    if ctx.rank() == 0 {
        assert_eq!(gathered.len(), 2 * ctx.size());
    }
    let counts = [check as f64 % 1e6];
    ctx.allreduce(&counts, ReduceOp::Sum, MERGE);
}

/// The split size is a compile-time constant: the map loop is provably
/// fixed; the reduce side depends on runtime key skew.
pub const STATIC_FIXED_SITES: &[&str] = &["mapreduce.c:shuffle:MPI_Alltoall"];

#[cfg(test)]
mod tests {
    use super::*;
    use vapro_sim::{run_simulation, Interceptor, NullInterceptor, SimConfig, Topology};

    fn null(_: usize) -> Box<dyn Interceptor> {
        Box::new(NullInterceptor)
    }

    #[test]
    fn rounds_complete_with_io() {
        let cfg = SimConfig::new(4).with_topology(Topology::single_node(4));
        let res = run_simulation(&cfg, null, |ctx| {
            run(ctx, &AppParams::default().with_iterations(3))
        });
        // Per round: read + alltoall + barrier; plus the final gather
        // and allreduce.
        assert_eq!(res.ranks[0].invocations, 3 * 3 + 2);
        // IO time is visible in the makespan (≥ 3 × ~0.3ms).
        assert!(res.makespan().ns() > 500_000);
    }
}
