//! Miniature NPB benchmarks: the seven programs of the paper's Table 1
//! (BT, CG, EP, FT, LU, MG, SP), each reproducing the original's
//! communication skeleton and workload distribution.

pub mod bt;
pub mod cg;
pub mod ep;
pub mod ft;
pub mod lu;
pub mod mg;
pub mod sp;
