//! Mini NPB-BT: block tri-diagonal solver. Structurally SP's sibling —
//! three directional sweeps per iteration — but each sweep solves dense
//! 5×5 blocks, so computation is heavier relative to communication
//! (compute-bound sweeps), and the per-iteration workload is fully
//! determined by the problem class (vSensor's best case: 80.1 % in
//! Table 1).

use crate::params::AppParams;
use vapro_pmu::WorkloadSpec;
use vapro_sim::comm::ReduceOp;
use vapro_sim::{CallSite, RankCtx};

/// Per-direction call-sites: the original's x/y/z solve routines each
/// carry their own communication code.
const SITES: [(CallSite, CallSite, CallSite); 3] = [
    (
        CallSite("bt.f:x_solve:MPI_Irecv"),
        CallSite("bt.f:x_solve:MPI_Isend"),
        CallSite("bt.f:x_solve:MPI_Waitall"),
    ),
    (
        CallSite("bt.f:y_solve:MPI_Irecv"),
        CallSite("bt.f:y_solve:MPI_Isend"),
        CallSite("bt.f:y_solve:MPI_Waitall"),
    ),
    (
        CallSite("bt.f:z_solve:MPI_Irecv"),
        CallSite("bt.f:z_solve:MPI_Isend"),
        CallSite("bt.f:z_solve:MPI_Waitall"),
    ),
];
const ALLRED: CallSite = CallSite("bt.f:verify:MPI_Allreduce");

fn block_solve_spec(scale: f64) -> WorkloadSpec {
    WorkloadSpec::compute_bound(5.0e6 * scale)
}

/// Run mini-BT.
pub fn run(ctx: &mut RankCtx, params: &AppParams) {
    for it in 0..params.iterations {
        for (dir, (irecv, isend, waitall)) in SITES.iter().enumerate() {
            crate::helpers::halo_exchange(
                ctx,
                64 * 1024,
                it as u64 * 8 + dir as u64 * 2,
                *irecv,
                *isend,
                *waitall,
            );
            ctx.compute(&block_solve_spec(params.scale));
        }
        let res = [3.0];
        ctx.allreduce(&res, ReduceOp::Sum, ALLRED);
    }
}

/// All three sweeps have class-constant 5×5 block loops: the snippets
/// ending at each direction's first receive are statically provable.
pub const STATIC_FIXED_SITES: &[&str] = &[
    "bt.f:x_solve:MPI_Irecv",
    "bt.f:y_solve:MPI_Irecv",
    "bt.f:z_solve:MPI_Irecv",
];

#[cfg(test)]
mod tests {
    use super::*;
    use vapro_sim::{run_simulation, Interceptor, NullInterceptor, SimConfig};

    fn null(_: usize) -> Box<dyn Interceptor> {
        Box::new(NullInterceptor)
    }

    #[test]
    fn block_solves_dominate_the_runtime() {
        // BT's sweeps are compute-bound: communication is a small share
        // of the makespan compared to the three block solves.
        let params = AppParams::default().with_iterations(3);
        let cfg = SimConfig::new(4);
        let total = run_simulation(&cfg, null, |ctx| run(ctx, &params)).makespan();
        let comm_only = run_simulation(&cfg, null, |ctx| {
            // The same run with the solves removed.
            for it in 0..3u64 {
                for (dir, (irecv, isend, waitall)) in super::SITES.iter().enumerate() {
                    crate::helpers::halo_exchange(
                        ctx,
                        64 * 1024,
                        it * 8 + dir as u64 * 2,
                        *irecv,
                        *isend,
                        *waitall,
                    );
                }
                ctx.allreduce(&[3.0], ReduceOp::Sum, super::ALLRED);
            }
        })
        .makespan();
        assert!(total.ns() > 3 * comm_only.ns(), "total {total} comm {comm_only}");
    }

    #[test]
    fn invocation_count() {
        let cfg = SimConfig::new(2);
        let res = run_simulation(&cfg, null, |ctx| {
            run(ctx, &AppParams::default().with_iterations(2))
        });
        assert_eq!(res.ranks[0].invocations, 2 * 16);
    }
}
