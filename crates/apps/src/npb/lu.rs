//! Mini NPB-LU: SSOR solver with the pipelined wavefront exchange —
//! many *small* point-to-point messages per sweep (LU is the most
//! communication-chatty NPB program), giving Vapro lots of vertices and
//! short computation fragments between them (97.7 % coverage in Table 1).

use crate::params::AppParams;
use vapro_pmu::WorkloadSpec;
use vapro_sim::comm::ReduceOp;
use vapro_sim::{CallSite, RankCtx};

const RECV_LOW: CallSite = CallSite("lu.f:blts:MPI_Recv");
const SEND_HIGH: CallSite = CallSite("lu.f:blts:MPI_Send");
const RECV_HIGH: CallSite = CallSite("lu.f:buts:MPI_Recv");
const SEND_LOW: CallSite = CallSite("lu.f:buts:MPI_Send");
const ALLRED: CallSite = CallSite("lu.f:l2norm:MPI_Allreduce");

/// One wavefront block's relaxation work.
fn block_spec(scale: f64) -> WorkloadSpec {
    WorkloadSpec::mixed(4.0e5 * scale)
}

/// Blocks per sweep (k-planes in the original).
const PLANES: usize = 8;

/// Run mini-LU: lower and upper triangular sweeps pipelined along the
/// rank order, plus a residual allreduce per iteration.
pub fn run(ctx: &mut RankCtx, params: &AppParams) {
    let n = ctx.size();
    let me = ctx.rank();
    for it in 0..params.iterations {
        let tag = it as u64 * 2;
        // Lower sweep: ranks pipeline low → high.
        for _plane in 0..PLANES {
            if me > 0 {
                ctx.recv(Some(me - 1), Some(tag), RECV_LOW);
            }
            ctx.compute(&block_spec(params.scale));
            if me + 1 < n {
                ctx.send(me + 1, tag, 4096, None, SEND_HIGH);
            }
        }
        // Upper sweep: high → low.
        for _plane in 0..PLANES {
            if me + 1 < n {
                ctx.recv(Some(me + 1), Some(tag + 1), RECV_HIGH);
            }
            ctx.compute(&block_spec(params.scale));
            if me > 0 {
                ctx.send(me - 1, tag + 1, 4096, None, SEND_LOW);
            }
        }
        let norm = [1.0];
        ctx.allreduce(&norm, ReduceOp::Sum, ALLRED);
    }
}

/// The plane loops have class-constant bounds; the relaxation body's trip
/// count is also compile-time fixed. The provable snippet is the block
/// relaxation, which runs between a plane's receive and its send — so the
/// instrumentation anchors at the send sites.
pub const STATIC_FIXED_SITES: &[&str] = &["lu.f:blts:MPI_Send", "lu.f:buts:MPI_Send"];

#[cfg(test)]
mod tests {
    use super::*;
    use vapro_sim::{run_simulation, Interceptor, NullInterceptor, SimConfig};

    fn null(_: usize) -> Box<dyn Interceptor> {
        Box::new(NullInterceptor)
    }

    #[test]
    fn pipeline_completes_without_deadlock() {
        let cfg = SimConfig::new(4);
        let res = run_simulation(&cfg, null, |ctx| {
            run(ctx, &AppParams::default().with_iterations(2))
        });
        assert_eq!(res.ranks.len(), 4);
        // Interior ranks do the most communication.
        assert!(res.ranks[1].invocations > res.ranks[0].invocations);
    }

    #[test]
    fn later_pipeline_stages_finish_no_earlier() {
        let cfg = SimConfig::new(4);
        let res = run_simulation(&cfg, null, |ctx| {
            run(ctx, &AppParams::default().with_iterations(1))
        });
        // Everyone synchronises on the final allreduce.
        let clocks: Vec<u64> = res.ranks.iter().map(|r| r.clock.ns()).collect();
        assert!(clocks.windows(2).all(|w| w[0] == w[1]));
    }
}
