//! Mini NPB-FT: 3-D FFT. Each iteration evolves the spectrum (streaming
//! pass), performs the distributed transpose (`MPI_Alltoall` — FT's
//! signature operation), and runs the local FFT butterflies (compute
//! with regular strides). All trip counts derive from the compile-time
//! problem class, so vSensor handles FT well (93.2 % coverage in
//! Table 1) — a useful contrast case.

use crate::params::AppParams;
use vapro_pmu::{Locality, WorkloadSpec};
use vapro_sim::{CallSite, RankCtx};

const ALLTOALL: CallSite = CallSite("ft.f:transpose:MPI_Alltoall");
const BARRIER: CallSite = CallSite("ft.f:checksum:MPI_Barrier");

fn evolve_spec(scale: f64) -> WorkloadSpec {
    WorkloadSpec::memory_bound(1.6e6 * scale)
}

fn fft_spec(scale: f64) -> WorkloadSpec {
    WorkloadSpec {
        instructions: 3.2e6 * scale,
        mem_refs: 1.0e6 * scale,
        locality: Locality { l1: 0.8, l2: 0.12, l3: 0.06, dram: 0.02 },
        branch_fraction: 0.06,
        branch_miss_rate: 0.004,
        ..WorkloadSpec::default()
    }
}

/// Run mini-FT.
pub fn run(ctx: &mut RankCtx, params: &AppParams) {
    for _ in 0..params.iterations {
        ctx.compute(&evolve_spec(params.scale));
        ctx.alltoall(32 * 1024, ALLTOALL);
        ctx.compute(&fft_spec(params.scale));
        ctx.barrier(BARRIER);
    }
}

/// Both the evolve and FFT loops have class-constant bounds.
pub const STATIC_FIXED_SITES: &[&str] =
    &["ft.f:transpose:MPI_Alltoall", "ft.f:checksum:MPI_Barrier"];

#[cfg(test)]
mod tests {
    use super::*;
    use vapro_sim::{run_simulation, Interceptor, NullInterceptor, SimConfig};

    fn null(_: usize) -> Box<dyn Interceptor> {
        Box::new(NullInterceptor)
    }

    #[test]
    fn completes_with_synchronised_clocks() {
        let cfg = SimConfig::new(4);
        let res = run_simulation(&cfg, null, |ctx| {
            run(ctx, &AppParams::default().with_iterations(5))
        });
        assert_eq!(res.ranks[0].invocations, 10);
        let clocks: Vec<u64> = res.ranks.iter().map(|r| r.clock.ns()).collect();
        assert!(clocks.windows(2).all(|w| w[0] == w[1]));
    }
}
