//! Mini NPB-CG: conjugate gradient with the nested-loop communication
//! structure of the paper's running example (Fig. 4, the `cgitmax` loop of
//! `cg.f:1170-1360`): per CG iteration, three sub-loops each performing
//! irecv → send → wait ring exchanges with sparse mat-vec computation
//! between them, then an allreduce for the dot products. A warm-up pass
//! precedes the timed phase, giving context-aware STGs twice the states of
//! context-free ones (the paper's §3.2 example).

use crate::params::AppParams;
use vapro_pmu::{Locality, WorkloadSpec};
use vapro_sim::comm::ReduceOp;
use vapro_sim::{CallSite, RankCtx};

const IRECV: CallSite = CallSite("cg.f:1272:MPI_Irecv");
const SEND: CallSite = CallSite("cg.f:1280:MPI_Send");
const WAIT: CallSite = CallSite("cg.f:1288:MPI_Wait");
const ALLRED: CallSite = CallSite("cg.f:1332:MPI_Allreduce");

/// The sparse mat-vec workload of one sub-loop iteration: fixed
/// row/nonzero counts per rank, so TOT_INS is iteration-invariant — the
/// property that makes CG the paper's favourite subject.
fn matvec_spec(scale: f64) -> WorkloadSpec {
    WorkloadSpec {
        instructions: 1.8e6 * scale,
        mem_refs: 6.0e5 * scale,
        locality: Locality { l1: 0.72, l2: 0.14, l3: 0.09, dram: 0.05 },
        branch_fraction: 0.09,
        branch_miss_rate: 0.012,
        ..WorkloadSpec::default()
    }
}

/// The vector-update workload between sub-loops: the p/x/r axpy updates
/// over the full local vectors (streaming).
fn axpy_spec(scale: f64) -> WorkloadSpec {
    WorkloadSpec::memory_bound(1.2e6 * scale)
}

/// One CG iteration: three ring-exchange sub-loops (Fig. 4) plus the
/// residual allreduce.
fn cg_iteration(ctx: &mut RankCtx, params: &AppParams) {
    for sub in 0..3u64 {
        ctx.compute(&matvec_spec(params.scale));
        crate::helpers::ring_exchange(ctx, 64 * 1024, sub, IRECV, SEND, WAIT);
        ctx.compute(&axpy_spec(params.scale));
    }
    let local = [1.0];
    ctx.allreduce(&local, ReduceOp::Sum, ALLRED);
}

/// Run mini-CG.
pub fn run(ctx: &mut RankCtx, params: &AppParams) {
    // Warm-up: one untimed iteration, reached through a different call
    // path than the measured loop.
    ctx.region("warmup", |ctx| cg_iteration(ctx, params));
    ctx.region("timed", |ctx| {
        for _ in 0..params.iterations {
            cg_iteration(ctx, params);
        }
    });
}

/// Call-sites whose *preceding computation snippet* a static analyser can
/// prove fixed-workload. The sparse mat-vec's trip counts depend on the
/// runtime matrix structure (indirect CSR indices — the alias-analysis
/// wall the paper cites), so only the dense axpy before the allreduce is
/// statically provable. That snippet is a small share of the iteration,
/// reproducing vSensor's low CG coverage (19.5 % vs Vapro's 78.2 % in
/// Table 1).
pub const STATIC_FIXED_SITES: &[&str] = &["cg.f:1332:MPI_Allreduce"];

#[cfg(test)]
mod tests {
    use super::*;
    use vapro_sim::{run_simulation, Interceptor, NullInterceptor, SimConfig};

    fn null(_: usize) -> Box<dyn Interceptor> {
        Box::new(NullInterceptor)
    }

    #[test]
    fn runs_to_completion_with_expected_invocations() {
        let params = AppParams::default().with_iterations(4);
        let cfg = SimConfig::new(4);
        let res = run_simulation(&cfg, null, |ctx| run(ctx, &params));
        // Per iteration: 3 sub-loops × 3 p2p + 1 allreduce = 10; plus the
        // warm-up iteration.
        assert_eq!(res.ranks[0].invocations, 10 * 5);
        // All ranks leave at the same time (the allreduce synchronises).
        let clocks: Vec<u64> = res.ranks.iter().map(|r| r.clock.ns()).collect();
        assert!(clocks.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn iteration_workload_is_fixed() {
        // Same seed, two runs with different iteration counts: per-iteration
        // time is stable (fixed workload ⇒ linear scaling).
        let cfg = SimConfig::new(2);
        let t4 = run_simulation(&cfg, null, |ctx| {
            run(ctx, &AppParams::default().with_iterations(4))
        })
        .makespan()
        .ns() as f64;
        let t8 = run_simulation(&cfg, null, |ctx| {
            run(ctx, &AppParams::default().with_iterations(8))
        })
        .makespan()
        .ns() as f64;
        // (8+1 warmup)/(4+1 warmup) = 1.8.
        let ratio = t8 / t4;
        assert!((ratio - 1.8).abs() < 0.05, "ratio {ratio}");
    }
}
