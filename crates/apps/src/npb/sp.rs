//! Mini NPB-SP: scalar penta-diagonal solver. Per iteration, three
//! directional sweeps (x, y, z) each with a halo exchange and an ADI
//! line-solve, then an rhs recomputation. SP is the subject of the
//! paper's Fig. 12 coverage comparison (1024 processes under a 1-second
//! computing noise).

use crate::params::AppParams;
use vapro_pmu::{Locality, WorkloadSpec};
use vapro_sim::comm::ReduceOp;
use vapro_sim::{CallSite, RankCtx};

/// Per-direction communication call-sites: the original has separate
/// `copy_faces` paths for the x, y and z sweeps, each its own source
/// location — giving the STG distinct vertices per direction.
const SITES: [(CallSite, CallSite, CallSite); 3] = [
    (
        CallSite("sp.f:x_solve:MPI_Irecv"),
        CallSite("sp.f:x_solve:MPI_Isend"),
        CallSite("sp.f:x_solve:MPI_Waitall"),
    ),
    (
        CallSite("sp.f:y_solve:MPI_Irecv"),
        CallSite("sp.f:y_solve:MPI_Isend"),
        CallSite("sp.f:y_solve:MPI_Waitall"),
    ),
    (
        CallSite("sp.f:z_solve:MPI_Irecv"),
        CallSite("sp.f:z_solve:MPI_Isend"),
        CallSite("sp.f:z_solve:MPI_Waitall"),
    ),
];
const ALLRED: CallSite = CallSite("sp.f:adi:MPI_Allreduce");

/// The three directional sweeps differ in stride pattern: x is
/// unit-stride (cache friendly), y strides by a row, z by a plane
/// (progressively worse locality) — per-direction fixed workloads.
fn sweep_spec(dir: usize, scale: f64) -> WorkloadSpec {
    let locality = match dir {
        0 => Locality { l1: 0.86, l2: 0.08, l3: 0.04, dram: 0.02 },
        1 => Locality { l1: 0.76, l2: 0.12, l3: 0.08, dram: 0.04 },
        _ => Locality { l1: 0.66, l2: 0.15, l3: 0.11, dram: 0.08 },
    };
    WorkloadSpec {
        instructions: 2.4e6 * scale,
        mem_refs: 8.5e5 * scale,
        locality,
        branch_fraction: 0.07,
        branch_miss_rate: 0.008,
        ..WorkloadSpec::default()
    }
}

fn rhs_spec(scale: f64) -> WorkloadSpec {
    WorkloadSpec::memory_bound(9.0e5 * scale)
}

/// Run mini-SP.
pub fn run(ctx: &mut RankCtx, params: &AppParams) {
    for it in 0..params.iterations {
        for (dir, (irecv, isend, waitall)) in SITES.iter().enumerate() {
            crate::helpers::halo_exchange(
                ctx,
                48 * 1024,
                it as u64 * 8 + dir as u64 * 2,
                *irecv,
                *isend,
                *waitall,
            );
            ctx.compute(&sweep_spec(dir, params.scale));
        }
        ctx.compute(&rhs_spec(params.scale));
        let res = [2.0];
        ctx.allreduce(&res, ReduceOp::Sum, ALLRED);
    }
}

/// Only the x sweep's line solve has statically constant bounds; the y/z
/// sweeps and the rhs recomputation depend on runtime cell counts (SP's
/// multi-zone heritage). The x sweep is the snippet *ending at* the
/// y-solve's first receive — giving vSensor its partial 29.4 % coverage
/// in Table 1.
pub const STATIC_FIXED_SITES: &[&str] = &["sp.f:y_solve:MPI_Irecv"];

#[cfg(test)]
mod tests {
    use super::*;
    use vapro_sim::{run_simulation, Interceptor, NullInterceptor, SimConfig};

    fn null(_: usize) -> Box<dyn Interceptor> {
        Box::new(NullInterceptor)
    }

    #[test]
    fn three_sweeps_per_iteration() {
        let cfg = SimConfig::new(4);
        let res = run_simulation(&cfg, null, |ctx| {
            run(ctx, &AppParams::default().with_iterations(3))
        });
        // Per iteration: 3 × 5 halo invocations + 1 allreduce.
        assert_eq!(res.ranks[0].invocations, 3 * 16);
    }
}
