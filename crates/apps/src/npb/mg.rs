//! Mini NPB-MG: V-cycle multigrid. Each cycle descends and ascends a
//! grid hierarchy; every level has a *different* (but per-level fixed)
//! smoothing workload and a halo exchange whose message shrinks with the
//! grid. The level-dependent workloads make MG the poster child for
//! *runtime-classed* fixed workload: one call-site, several workload
//! classes — which is why context-aware STGs without clustering score
//! only 5.1 % coverage in Table 1 while context-free + clustering reaches
//! 77.7 %.

use crate::params::AppParams;
use vapro_pmu::WorkloadSpec;
use vapro_sim::{CallSite, RankCtx};

const IRECV: CallSite = CallSite("mg.f:comm3:MPI_Irecv");
const ISEND: CallSite = CallSite("mg.f:comm3:MPI_Isend");
const WAITALL: CallSite = CallSite("mg.f:comm3:MPI_Waitall");
const ALLRED: CallSite = CallSite("mg.f:norm2u3:MPI_Allreduce");

/// Number of grid levels in the mini hierarchy.
pub const LEVELS: usize = 4;

fn smooth_spec(level: usize, scale: f64) -> WorkloadSpec {
    // Each coarser level has 1/8 the points.
    let points = 2.0e6 * scale / 8f64.powi(level as i32);
    WorkloadSpec::memory_bound(points.max(1e4))
}

fn halo_bytes(level: usize) -> u64 {
    (64 * 1024) >> (2 * level as u64)
}

/// Run mini-MG.
pub fn run(ctx: &mut RankCtx, params: &AppParams) {
    for it in 0..params.iterations {
        // Descend: restrict + smooth at each level.
        for level in 0..LEVELS {
            ctx.compute(&smooth_spec(level, params.scale));
            crate::helpers::halo_exchange(
                ctx,
                halo_bytes(level),
                (it * LEVELS + level) as u64 * 4,
                IRECV,
                ISEND,
                WAITALL,
            );
        }
        // Ascend: prolongate + smooth.
        for level in (0..LEVELS).rev() {
            ctx.compute(&smooth_spec(level, params.scale));
            crate::helpers::halo_exchange(
                ctx,
                halo_bytes(level),
                (it * LEVELS + level) as u64 * 4 + 2,
                IRECV,
                ISEND,
                WAITALL,
            );
        }
        let norm = [0.5];
        ctx.allreduce(&norm, vapro_sim::comm::ReduceOp::Sum, ALLRED);
    }
}

/// The grid hierarchy is built from compile-time class constants, so the
/// smoothing loops (which end at the halo exchange's first receive) are
/// statically provable — MG is one of vSensor's better cases (76.2 % in
/// the paper's Table 1).
pub const STATIC_FIXED_SITES: &[&str] = &["mg.f:comm3:MPI_Irecv"];

#[cfg(test)]
mod tests {
    use super::*;
    use vapro_sim::{run_simulation, Interceptor, NullInterceptor, SimConfig};

    fn null(_: usize) -> Box<dyn Interceptor> {
        Box::new(NullInterceptor)
    }

    #[test]
    fn v_cycle_invocation_count() {
        let cfg = SimConfig::new(4);
        let res = run_simulation(&cfg, null, |ctx| {
            run(ctx, &AppParams::default().with_iterations(3))
        });
        // Per iteration: 2·LEVELS halo exchanges × 5 invocations + 1 allreduce.
        assert_eq!(res.ranks[0].invocations as usize, 3 * (2 * LEVELS * 5 + 1));
    }

    #[test]
    fn levels_have_distinct_workloads() {
        let w0 = smooth_spec(0, 1.0);
        let w3 = smooth_spec(3, 1.0);
        assert!(w0.instructions > 50.0 * w3.instructions);
    }
}
