//! Mini NPB-EP: embarrassingly parallel random-number kernel. Long
//! compute stretches with almost no external invocations — exactly the
//! program class the paper says needs Dyninst-inserted user markers
//! (§5), and on which vSensor scores **zero** coverage (Table 1): the
//! batch count comes from command-line input, so no snippet is provably
//! fixed at compile time, while at runtime every batch has identical
//! workload.

use crate::params::AppParams;
use vapro_pmu::WorkloadSpec;
use vapro_sim::comm::ReduceOp;
use vapro_sim::{CallSite, RankCtx};

const MARK: CallSite = CallSite("ep.f:batch:user_marker");
const ALLRED: CallSite = CallSite("ep.f:220:MPI_Allreduce");

/// One batch of Gaussian-pair generation: pure compute, cache-hot.
fn batch_spec(scale: f64) -> WorkloadSpec {
    WorkloadSpec::compute_bound(6.0e6 * scale)
}

/// Run mini-EP: `iterations` marker-delimited batches, one final
/// reduction of the tallies.
pub fn run(ctx: &mut RankCtx, params: &AppParams) {
    for _ in 0..params.iterations {
        ctx.user_marker("ep_batch", MARK);
        ctx.compute(&batch_spec(params.scale));
    }
    ctx.user_marker("ep_batch", MARK);
    let counts = [1.0, 2.0, 3.0];
    ctx.allreduce(&counts, ReduceOp::Sum, ALLRED);
}

/// Nothing is statically provable: the batch loop bound is runtime input.
pub const STATIC_FIXED_SITES: &[&str] = &[];

#[cfg(test)]
mod tests {
    use super::*;
    use vapro_sim::{run_simulation, Interceptor, NullInterceptor, SimConfig};

    fn null(_: usize) -> Box<dyn Interceptor> {
        Box::new(NullInterceptor)
    }

    #[test]
    fn markers_delimit_every_batch() {
        let cfg = SimConfig::new(2);
        let res = run_simulation(&cfg, null, |ctx| {
            run(ctx, &AppParams::default().with_iterations(10))
        });
        // 11 markers + 1 allreduce.
        assert_eq!(res.ranks[0].invocations, 12);
    }

    #[test]
    fn compute_dominates_runtime() {
        let cfg = SimConfig::new(2);
        let res = run_simulation(&cfg, null, |ctx| {
            run(ctx, &AppParams::default().with_iterations(10))
        });
        // 10 batches × 6e6 ins at ≤ 4 IPC, 2.2 GHz ⇒ ≥ 6.8 ms.
        assert!(res.makespan().ns() > 5_000_000);
    }
}
