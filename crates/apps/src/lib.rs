#![warn(missing_docs)]

//! # vapro-apps — the evaluation application suite
//!
//! Miniature re-creations of every application in the paper's evaluation
//! (§6.1), written against the `vapro-sim` runtime: the NPB benchmarks
//! (BT, CG, EP, FT, LU, MG, SP), AMG, CESM, HPL, Nekbone, RAxML, and the
//! multi-threaded set (BERT, PageRank, WordCount, and six PARSEC
//! programs). Each mini-app reproduces the original's *invocation
//! structure* — which call-sites fire, in which loops, with which
//! workload distribution — because that structure is what determines
//! Vapro's coverage, overhead and clustering behaviour.
//!
//! [`registry`] maps app names to runners plus the static-analysis
//! annotations the vSensor baseline consumes.

pub mod amg;
pub mod bert;
pub mod cesm;
pub mod helpers;
pub mod hpl;
pub mod nekbone;
pub mod npb;
pub mod pagerank;
pub mod params;
pub mod parsec;
pub mod raxml;
pub mod registry;
pub mod wordcount;

pub use params::AppParams;
pub use registry::{all_apps, find_app, AppKind, AppSpec};
