//! Common building blocks for the mini-apps: neighbour exchanges,
//! ring shifts, and deterministic per-app RNG derivation.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use vapro_sim::{CallSite, RankCtx};

/// An app-level RNG independent of the runtime's (so workload *shape*
/// draws — e.g. AMG's runtime trip counts — are reproducible regardless
/// of how much randomness the CPU model consumed).
pub fn app_rng(ctx: &RankCtx, seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed ^ 0xA5A5_0000 ^ ctx.rank() as u64)
}

/// A deterministic draw shared by *all* ranks (seeded by iteration, not
/// rank) — used when every rank must pick the same runtime workload class
/// in the same iteration, as SPMD programs do when the class comes from
/// global problem state.
pub fn shared_draw(seed: u64, iteration: usize, classes: usize) -> usize {
    let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(iteration as u64 * 0x9E37));
    rng.gen_range(0..classes)
}

/// Exchange `bytes` with both ring neighbours using the
/// irecv → send → wait pattern of NPB CG's inner loops (paper Fig. 4).
pub fn ring_exchange(
    ctx: &mut RankCtx,
    bytes: u64,
    tag: u64,
    irecv_site: CallSite,
    send_site: CallSite,
    wait_site: CallSite,
) {
    let n = ctx.size();
    if n < 2 {
        return;
    }
    let right = (ctx.rank() + 1) % n;
    let left = (ctx.rank() + n - 1) % n;
    let req = ctx.irecv(Some(left), Some(tag), irecv_site);
    ctx.send(right, tag, bytes, None, send_site);
    ctx.wait(req, wait_site);
}

/// Halo exchange with both neighbours (send and receive in both
/// directions), the SP/BT/LU sweep pattern.
pub fn halo_exchange(
    ctx: &mut RankCtx,
    bytes: u64,
    tag: u64,
    irecv_site: CallSite,
    isend_site: CallSite,
    waitall_site: CallSite,
) {
    let n = ctx.size();
    if n < 2 {
        return;
    }
    let right = (ctx.rank() + 1) % n;
    let left = (ctx.rank() + n - 1) % n;
    let r1 = ctx.irecv(Some(left), Some(tag), irecv_site);
    let r2 = ctx.irecv(Some(right), Some(tag + 1), irecv_site);
    let s1 = ctx.isend(right, tag, bytes, None, isend_site);
    let s2 = ctx.isend(left, tag + 1, bytes, None, isend_site);
    ctx.waitall(vec![r1, r2, s1, s2], waitall_site);
}

#[cfg(test)]
mod tests {
    use super::*;
    use vapro_sim::{run_simulation, Interceptor, NullInterceptor, SimConfig};

    fn null(_: usize) -> Box<dyn Interceptor> {
        Box::new(NullInterceptor)
    }

    #[test]
    fn shared_draw_is_rank_independent_and_iteration_dependent() {
        let a = shared_draw(1, 5, 7);
        let b = shared_draw(1, 5, 7);
        assert_eq!(a, b);
        let seq: Vec<usize> = (0..50).map(|i| shared_draw(1, i, 7)).collect();
        let distinct: std::collections::HashSet<_> = seq.iter().collect();
        assert!(distinct.len() > 3, "draws not spread: {seq:?}");
        assert!(seq.iter().all(|&c| c < 7));
    }

    #[test]
    fn ring_exchange_completes_on_a_ring() {
        let cfg = SimConfig::new(4);
        let res = run_simulation(&cfg, null, |ctx| {
            for it in 0..3 {
                ring_exchange(
                    ctx,
                    1024,
                    it,
                    CallSite("t:irecv"),
                    CallSite("t:send"),
                    CallSite("t:wait"),
                );
            }
        });
        assert_eq!(res.ranks.len(), 4);
        // 3 iterations × 3 invocations each.
        assert_eq!(res.ranks[0].invocations, 9);
    }

    #[test]
    fn halo_exchange_completes_and_counts_invocations() {
        let cfg = SimConfig::new(3);
        let res = run_simulation(&cfg, null, |ctx| {
            halo_exchange(
                ctx,
                512,
                10,
                CallSite("t:irecv"),
                CallSite("t:isend"),
                CallSite("t:waitall"),
            );
        });
        // 2 irecv + 2 isend + 1 waitall.
        assert_eq!(res.ranks[0].invocations, 5);
    }

    #[test]
    fn exchanges_are_noops_on_one_rank() {
        let cfg = SimConfig::new(1);
        let res = run_simulation(&cfg, null, |ctx| {
            ring_exchange(ctx, 8, 0, CallSite("a"), CallSite("b"), CallSite("c"));
            halo_exchange(ctx, 8, 0, CallSite("d"), CallSite("e"), CallSite("f"));
        });
        assert_eq!(res.ranks[0].invocations, 0);
    }
}
