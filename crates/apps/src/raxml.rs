//! Mini RAxML: the phylogenetic-analysis application of the paper's IO
//! case study (§6.5.3, 512 processes). Rank 0 merges data from many
//! *small files* on the shared distributed filesystem before broadcasting
//! work — making it hypersensitive to shared-FS latency variance. The
//! paper's fix, a simple client-side file buffer, cut the run-time
//! standard deviation by 73.5 % and sped the run up 17.5 %; the
//! `fs_buffered` flag of the runtime enables the same fix here.

use crate::params::AppParams;
use vapro_pmu::WorkloadSpec;
use vapro_sim::comm::ReduceOp;
use vapro_sim::{CallSite, RankCtx};

const OPEN: CallSite = CallSite("axml.c:read_msa:open");
const READ: CallSite = CallSite("axml.c:read_msa:read");
const WRITE: CallSite = CallSite("axml.c:checkpoint:write");
const BCAST: CallSite = CallSite("axml.c:bcast_msa:MPI_Bcast");
const SCATTER: CallSite = CallSite("axml.c:distribute_partitions:MPI_Scatter");
const ALLRED: CallSite = CallSite("evaluateGeneric.c:MPI_Allreduce");

/// Number of small alignment files rank 0 merges per round.
pub const FILES_PER_ROUND: u64 = 24;

/// Per-site likelihood evaluation: the compute kernel. Likelihood work
/// dominates RAxML's iterations (the paper's runs are tens of seconds of
/// mostly computation); the file merging is the smaller, *varying* part.
fn likelihood_spec(scale: f64) -> WorkloadSpec {
    WorkloadSpec::mixed(3.0e7 * scale)
}

/// Run mini-RAxML.
pub fn run(ctx: &mut RankCtx, params: &AppParams) {
    // Once at start-up: the master distributes per-rank alignment
    // partitions (real RAxML assigns partition ranges to workers).
    let per_rank = 4usize;
    if ctx.rank() == 0 {
        let all: Vec<f64> = (0..ctx.size() * per_rank).map(|i| i as f64).collect();
        ctx.scatter(0, Some(&all), per_rank, SCATTER);
    } else {
        let mine = ctx.scatter(0, None, per_rank, SCATTER);
        debug_assert_eq!(mine.len(), per_rank);
    }
    for it in 0..params.iterations {
        // Rank 0 merges many small files (repeatedly re-reading shared
        // partition files — the pattern the buffer fix targets).
        if ctx.rank() == 0 {
            for f in 0..FILES_PER_ROUND {
                let fd = 100 + (f % 8); // 8 distinct files, re-read often
                ctx.fs_open(fd, OPEN);
                ctx.fs_read(fd, 4 * 1024, READ);
            }
        }
        // Broadcast the merged data.
        let payload = [0.0; 32];
        let bytes = (payload.len() * 8) as u64;
        if ctx.rank() == 0 {
            ctx.bcast(0, Some(&payload), bytes, BCAST);
        } else {
            ctx.bcast(0, None, bytes, BCAST);
        }
        // Likelihood evaluation and reduction.
        ctx.compute(&likelihood_spec(params.scale));
        let lnl = [-1234.5];
        ctx.allreduce(&lnl, ReduceOp::Sum, ALLRED);
        // Periodic checkpoint from rank 0.
        if it % 4 == 3 && ctx.rank() == 0 {
            ctx.fs_write(200, 64 * 1024, WRITE);
        }
    }
}

/// The likelihood loops depend on runtime alignment widths.
pub const STATIC_FIXED_SITES: &[&str] = &[];

#[cfg(test)]
mod tests {
    use super::*;
    use vapro_sim::{run_simulation, Interceptor, NullInterceptor, SimConfig};
    use vapro_sim::{NoiseEvent, NoiseKind, NoiseSchedule, TargetSet};

    fn null(_: usize) -> Box<dyn Interceptor> {
        Box::new(NullInterceptor)
    }

    fn fs_noise() -> NoiseSchedule {
        NoiseSchedule::quiet().with(NoiseEvent::always(
            NoiseKind::FsInterference { max_slowdown: 12.0 },
            TargetSet::All,
        ))
    }

    #[test]
    fn rank0_bears_the_io() {
        let cfg = SimConfig::new(4);
        let res = run_simulation(&cfg, null, |ctx| {
            run(ctx, &AppParams::default().with_iterations(4))
        });
        assert!(res.ranks[0].invocations > res.ranks[1].invocations + 50);
    }

    #[test]
    fn file_buffer_reduces_variance_across_runs() {
        let app = |ctx: &mut RankCtx| run(ctx, &AppParams::default().with_iterations(6));
        let times = |buffered: bool| -> Vec<f64> {
            (0..8)
                .map(|seed| {
                    let mut cfg = SimConfig::new(4)
                        .with_noise(fs_noise())
                        .with_seed(1000 + seed);
                    cfg.fs_buffered = buffered;
                    run_simulation(&cfg, null, app).makespan().ns() as f64
                })
                .collect()
        };
        let unbuffered = times(false);
        let buffered = times(true);
        let std_u = vapro_stats_std(&unbuffered);
        let std_b = vapro_stats_std(&buffered);
        let mean_u = unbuffered.iter().sum::<f64>() / 8.0;
        let mean_b = buffered.iter().sum::<f64>() / 8.0;
        assert!(std_b < std_u, "σ buffered {std_b} vs unbuffered {std_u}");
        assert!(mean_b < mean_u, "mean buffered {mean_b} vs {mean_u}");
    }

    fn vapro_stats_std(xs: &[f64]) -> f64 {
        let m = xs.iter().sum::<f64>() / xs.len() as f64;
        (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
    }
}
