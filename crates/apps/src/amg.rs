//! Mini AMG: algebraic multigrid solver. The paper's Fig. 3 example comes
//! from AMG: a vector-scaling loop between `MPI_Comm_size` and
//! `MPI_Waitall` whose bound is `num_cols * num_vectors` — two
//! non-constant variables, so *not* statically fixed workload — yet a
//! whole execution only ever sees **7 distinct workloads** at that site.
//! Vapro's runtime clustering identifies all 7 classes; vSensor scores
//! 0 % coverage (Table 1).

use crate::helpers::shared_draw;
use crate::params::AppParams;
use vapro_pmu::WorkloadSpec;
use vapro_sim::comm::ReduceOp;
use vapro_sim::{CallSite, RankCtx};

const IRECV: CallSite = CallSite("par_csr_matvec.c:188:MPI_Irecv");
const ISEND: CallSite = CallSite("par_csr_matvec.c:196:MPI_Isend");
const WAITALL: CallSite = CallSite("par_csr_matvec.c:204:MPI_Waitall");
const ALLRED: CallSite = CallSite("par_cg.c:310:MPI_Allreduce");

/// The number of distinct runtime workload classes at the scaling site
/// (the paper's "only 7 different workloads").
pub const WORKLOAD_CLASSES: usize = 7;

/// The Fig. 3 snippet: `y_data[i] *= alpha` over `num_cols*num_vectors`
/// elements, where the bound is one of 7 runtime values shared by all
/// ranks in a given iteration.
fn scaling_spec(class: usize, scale: f64) -> WorkloadSpec {
    // Classes are distinct multiples so clustering must separate them.
    let elems = 1.0e5 * (1.0 + class as f64) * scale;
    WorkloadSpec::memory_bound(8.0 * elems)
}

/// The level-solve work between exchanges (per-class fixed as well).
fn relax_spec(class: usize, scale: f64) -> WorkloadSpec {
    WorkloadSpec::mixed(3.0e5 * (1.0 + class as f64) * scale)
}

/// Run mini-AMG.
pub fn run(ctx: &mut RankCtx, params: &AppParams) {
    for it in 0..params.iterations {
        // All ranks see the same runtime class this iteration (it derives
        // from shared problem state, not rank-local data).
        let class = shared_draw(params.seed, it, WORKLOAD_CLASSES);
        ctx.compute(&scaling_spec(class, params.scale));
        crate::helpers::halo_exchange(ctx, 16 * 1024, it as u64 * 2, IRECV, ISEND, WAITALL);
        ctx.compute(&relax_spec(class, params.scale));
        let rho = [1.0];
        ctx.allreduce(&rho, ReduceOp::Sum, ALLRED);
    }
}

/// Nothing at the matvec site is statically provable: the loop bound is
/// `num_cols * num_vectors`, both runtime values behind pointer aliases.
pub const STATIC_FIXED_SITES: &[&str] = &[];

#[cfg(test)]
mod tests {
    use super::*;
    use vapro_sim::{run_simulation, Interceptor, NullInterceptor, SimConfig};

    fn null(_: usize) -> Box<dyn Interceptor> {
        Box::new(NullInterceptor)
    }

    #[test]
    fn exactly_seven_workload_classes() {
        let specs: std::collections::BTreeSet<u64> = (0..200)
            .map(|it| scaling_spec(shared_draw(7, it, WORKLOAD_CLASSES), 1.0))
            .map(|s| s.instructions as u64)
            .collect();
        assert_eq!(specs.len(), WORKLOAD_CLASSES);
    }

    #[test]
    fn all_ranks_agree_on_the_class_per_iteration() {
        // The class is a shared draw, so the same iteration gives the same
        // spec everywhere — otherwise the allreduce-synchronised ranks
        // would diverge in compute time every iteration.
        let cfg = SimConfig::new(4);
        let res = run_simulation(&cfg, null, |ctx| {
            run(ctx, &AppParams::default().with_iterations(6))
        });
        let clocks: Vec<u64> = res.ranks.iter().map(|r| r.clock.ns()).collect();
        assert!(clocks.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn invocation_count() {
        let cfg = SimConfig::new(2);
        let res = run_simulation(&cfg, null, |ctx| {
            run(ctx, &AppParams::default().with_iterations(4))
        });
        // Per iteration: 5 halo + 1 allreduce.
        assert_eq!(res.ranks[0].invocations, 24);
    }
}
