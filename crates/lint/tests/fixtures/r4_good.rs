//! R4 good twin: every push loop sits in a function that sized its
//! buffer first, and pushes outside loops are always fine.

fn build_lane(src: &[f64]) -> Vec<f64> {
    let mut lane = Vec::with_capacity(src.len());
    for &v in src {
        lane.push(v * 2.0);
    }
    lane
}

fn drain_queue(n: usize) -> Vec<usize> {
    let mut out = Vec::new();
    out.reserve(n);
    let mut k = n;
    while k > 0 {
        out.push(k);
        k -= 1;
    }
    out
}

fn single_push(v: f64) -> Vec<f64> {
    let mut out = Vec::new();
    out.push(v);
    out
}

fn hrtb_is_not_a_loop(f: impl for<'a> Fn(&'a f64) -> f64, v: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(v.len());
    out.extend(v.iter().map(f));
    out
}
