// R3 fixture twin: total-order float comparison and NaN handled via
// predicates rather than a NaN constant.

pub fn rank(norms: &mut Vec<f64>) {
    norms.sort_by(|a, b| a.total_cmp(b));
}

pub fn finite_only(values: &[f64]) -> Vec<f64> {
    values.iter().copied().filter(|v| v.is_finite() && !v.is_nan()).collect()
}
