// R2 fixture twin: the same decode written totally — checked `get`,
// structured errors, saturating arithmetic — plus the shapes the rule
// must NOT confuse with indexing (attributes, slice patterns, array
// types) and the test-module exemption.

#[derive(Debug)]
pub enum WireError {
    ShortFrame,
}

#[derive(Debug, Clone, Copy)]
pub struct Header {
    pub declared: usize,
}

pub fn decode(bytes: &[u8]) -> Result<u32, WireError> {
    let declared = bytes.first().copied().ok_or(WireError::ShortFrame)? as usize;
    let total = declared.saturating_mul(4).saturating_add(2);
    let word: [u8; 4] = bytes
        .get(2..6)
        .and_then(|w| w.try_into().ok())
        .ok_or(WireError::ShortFrame)?;
    let _ = bytes.get(total).copied().ok_or(WireError::ShortFrame)?;
    let [lo, _, _, hi] = word;
    let _ = (lo, hi, Header { declared });
    Ok(u32::from_le_bytes(word))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_index_and_unwrap() {
        let bytes = [9u8; 64];
        assert_eq!(bytes[0], 9);
        let v = decode(&bytes).unwrap();
        assert!(v > 0);
    }
}
