//! R7 good fixture: the guard is dropped before the rayon region, so
//! the parallel closures never contend with a held lock.

pub fn rebalance(m: &std::sync::Mutex<Vec<u64>>) -> u64 {
    let guard = m.lock();
    let n = guard.len() as u64;
    drop(guard);
    rayon::join(|| n, || 0).0
}
