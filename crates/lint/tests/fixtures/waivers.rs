// Waiver fixture: one trailing waiver, one whole-line waiver, one
// unused waiver, one malformed directive.

pub struct Fragment {
    pub args: Vec<u64>,
}

pub fn cold_copy(frags: &Vec<Fragment>) -> Vec<Fragment> {
    frags.clone() // vapro-lint: allow(R1, cold path, runs once per report)
}

pub fn cold_args(f: &Fragment) -> Vec<u64> {
    // vapro-lint: allow(R1, snapshot for the report)
    f.args.to_vec()
}

pub fn clean() -> u32 {
    // vapro-lint: allow(R1, nothing on the next line allocates)
    42
}

pub fn noisy() -> u32 {
    // vapro-lint: allow(R2)
    7
}
