//! R5 bad fixture: the panic sits two calls below the entry point, so
//! only the transitive walk can see it — a per-body scan of `entry`
//! finds nothing.

pub fn entry(bytes: &[u8]) -> u32 {
    helper(bytes)
}

fn helper(bytes: &[u8]) -> u32 {
    leaf(bytes)
}

fn leaf(bytes: &[u8]) -> u32 {
    let first = bytes.first().unwrap();
    u32::from(*first)
}
