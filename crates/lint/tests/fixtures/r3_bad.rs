// R3 fixture: float comparisons that silently misbehave under NaN in
// numeric ranking code.

pub fn rank(norms: &mut Vec<f64>) {
    norms.sort_by(|a, b| a.partial_cmp(b).unwrap()); // finding: partial_cmp
}

pub fn poison() -> f64 {
    f64::NAN // finding: NaN constant
}
