//! R7 bad fixture: a mutex guard stays live across `rayon::join` — the
//! closures run on pool threads while the caller holds the lock.

pub fn rebalance(m: &std::sync::Mutex<Vec<u64>>) -> u64 {
    let guard = m.lock();
    rayon::join(|| guard.len() as u64, || 0).0
}
