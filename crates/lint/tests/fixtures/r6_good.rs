//! R6 good fixture: the same call shape reduces in place — no owned
//! copies anywhere on the tree.

pub fn close_entry(ready: &[u64]) -> u64 {
    finalize(ready)
}

fn finalize(ready: &[u64]) -> u64 {
    snapshot(ready)
}

fn snapshot(ready: &[u64]) -> u64 {
    let mut acc = 0;
    for v in ready.iter() {
        acc += *v;
    }
    acc
}
