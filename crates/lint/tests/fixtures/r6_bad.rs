//! R6 bad fixture: the allocation is two calls below the window-close
//! entry point — invisible to R1's per-body scan, caught transitively.

pub fn close_entry(ready: &[u64]) -> Vec<u64> {
    finalize(ready)
}

fn finalize(ready: &[u64]) -> Vec<u64> {
    snapshot(ready)
}

fn snapshot(ready: &[u64]) -> Vec<u64> {
    ready.to_vec()
}
