// R2 fixture: a decode function exercising every way the rule can fire —
// panicking method calls, panicking macros, direct slice indexing, and
// unchecked size arithmetic.

pub fn decode(bytes: &[u8]) -> u32 {
    assert!(bytes.len() >= 8); // finding: panicking macro
    let declared = bytes[0] as usize; // finding: direct indexing
    let total = declared * 4 + 2; // findings: unchecked `*` and `+`
    let word: [u8; 4] = bytes[2..6].try_into().expect("4 bytes"); // findings: indexing + expect
    let _ = bytes.get(total).copied().unwrap(); // finding: unwrap
    u32::from_le_bytes(word)
}
