//! R5 good fixture: the same two-hop call shape, but the leaf handles
//! the empty case instead of unwrapping.

pub fn entry(bytes: &[u8]) -> u32 {
    helper(bytes)
}

fn helper(bytes: &[u8]) -> u32 {
    leaf(bytes)
}

fn leaf(bytes: &[u8]) -> u32 {
    match bytes.first() {
        Some(b) => u32::from(*b),
        None => 0,
    }
}
