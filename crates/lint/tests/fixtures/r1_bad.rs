// R1 fixture: every method here allocates an owned copy of a fragment
// population and must fire in a hot-path module.

pub struct Fragment {
    pub args: Vec<u64>,
}

pub fn take_population(frags: &Vec<Fragment>) -> Vec<Vec<u64>> {
    let copied = frags.clone(); // finding: full-population clone
    let args: Vec<Vec<u64>> = copied.iter().map(|f| f.args.to_vec()).collect(); // finding
    let again = args.iter().cloned().collect(); // finding
    again
}

pub fn take_owned(label: &str) -> String {
    label.to_owned() // finding
}
