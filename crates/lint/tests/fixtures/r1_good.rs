// R1 fixture twin: the borrow-based versions of r1_bad.rs, plus the
// allowed escape hatches — `.copied()` (only compiles for Copy element
// types) and clones inside test modules.

pub struct Fragment {
    pub args: Vec<u64>,
}

pub fn view_population<'a>(frags: &'a [Fragment]) -> Vec<&'a [u64]> {
    frags.iter().map(|f| f.args.as_slice()).collect()
}

pub fn sum_args(frags: &[Fragment]) -> u64 {
    frags.iter().flat_map(|f| f.args.iter().copied()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_clone_freely() {
        let frags = vec![Fragment { args: vec![1, 2] }];
        let copied = frags.clone();
        let owned: Vec<u64> = copied[0].args.to_vec();
        assert_eq!(owned, vec![1, 2]);
    }
}
