//! R4 bad twin: per-element pushes in loops, no capacity reservation
//! anywhere in the enclosing functions.

fn build_lane(src: &[f64]) -> Vec<f64> {
    let mut lane = Vec::new();
    for &v in src {
        lane.push(v * 2.0);
    }
    lane
}

fn drain_queue(mut n: usize) -> Vec<usize> {
    let mut out = Vec::new();
    while n > 0 {
        out.push(n);
        n -= 1;
    }
    out
}

fn nested(src: &[Vec<f64>]) -> Vec<f64> {
    let mut flat = Vec::new();
    for row in src {
        if !row.is_empty() {
            flat.push(row[0]);
        }
    }
    flat
}
