//! Fixture-driven rule tests: each rule must fire on its known-bad
//! fixture and stay silent on the known-good twin, and the waiver
//! machinery must suppress, report, and complain exactly as specified.

use std::fs;
use std::path::PathBuf;

use vapro_lint::rules::{scan_file, FnScope, LintConfig, META_RULE};

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("fixture {name}: {e}"))
}

/// Config that applies every rule to exactly one fixture file. R2 is
/// scoped to the fixture's `decode` function, mirroring the workspace
/// config's function-level scoping.
fn cfg_for(file: &str) -> LintConfig {
    let scope = FnScope { file: file.into(), funcs: vec!["decode".into()] };
    LintConfig {
        r1_files: vec![file.into()],
        r2_scopes: vec![scope.clone()],
        r2_arith: vec![scope],
        r2_no_waiver_files: vec![],
        r3_files: vec![file.into()],
        r4_files: vec![],
        ..Default::default()
    }
}

/// Config that applies only R4 to one fixture file.
fn cfg_r4(file: &str) -> LintConfig {
    LintConfig { r4_files: vec![file.into()], ..Default::default() }
}

#[test]
fn r1_fires_on_every_owned_copy() {
    let f = scan_file("r1_bad.rs", &fixture("r1_bad.rs"), &cfg_for("r1_bad.rs"));
    let r1: Vec<_> = f.iter().filter(|x| x.rule == "R1").collect();
    assert_eq!(r1.len(), 4, "clone/to_vec/cloned/to_owned each fire: {f:#?}");
    assert!(f.iter().all(|x| x.waived.is_none()));
}

#[test]
fn r1_silent_on_borrow_based_twin() {
    let f = scan_file("r1_good.rs", &fixture("r1_good.rs"), &cfg_for("r1_good.rs"));
    assert!(f.is_empty(), "good twin must be silent: {f:#?}");
}

#[test]
fn r2_fires_on_panicking_decode() {
    let f = scan_file("r2_bad.rs", &fixture("r2_bad.rs"), &cfg_for("r2_bad.rs"));
    let r2: Vec<_> = f.iter().filter(|x| x.rule == "R2").collect();
    assert_eq!(r2.len(), 7, "macro+2 indexing+2 arith+expect+unwrap: {f:#?}");
    let msgs: Vec<&str> = r2.iter().map(|x| x.message.as_str()).collect();
    assert!(msgs.iter().any(|m| m.contains("assert!")));
    assert!(msgs.iter().any(|m| m.contains("slice indexing")));
    assert!(msgs.iter().any(|m| m.contains("overflow")));
    assert!(msgs.iter().any(|m| m.contains(".unwrap()")));
    assert!(msgs.iter().any(|m| m.contains(".expect()")));
}

#[test]
fn r2_silent_on_total_decode_twin() {
    let f = scan_file("r2_good.rs", &fixture("r2_good.rs"), &cfg_for("r2_good.rs"));
    assert!(f.is_empty(), "good twin must be silent: {f:#?}");
}

#[test]
fn r2_ignores_functions_outside_its_scope() {
    // Same bad source, but scoped to a function that does not exist:
    // nothing may fire.
    let scope = FnScope { file: "r2_bad.rs".into(), funcs: vec!["other_fn".into()] };
    let cfg = LintConfig {
        r2_scopes: vec![scope.clone()],
        r2_arith: vec![scope],
        ..Default::default()
    };
    let f = scan_file("r2_bad.rs", &fixture("r2_bad.rs"), &cfg);
    assert!(f.is_empty(), "out-of-scope fn must be exempt: {f:#?}");
}

#[test]
fn r3_fires_on_partial_cmp_and_nan() {
    let f = scan_file("r3_bad.rs", &fixture("r3_bad.rs"), &cfg_for("r3_bad.rs"));
    let r3: Vec<_> = f.iter().filter(|x| x.rule == "R3").collect();
    assert_eq!(r3.len(), 2, "partial_cmp and NAN each fire: {f:#?}");
}

#[test]
fn r3_silent_on_total_cmp_twin() {
    let f = scan_file("r3_good.rs", &fixture("r3_good.rs"), &cfg_for("r3_good.rs"));
    assert!(f.is_empty(), "good twin must be silent: {f:#?}");
}

#[test]
fn r4_fires_on_unreserved_push_loops() {
    let f = scan_file("r4_bad.rs", &fixture("r4_bad.rs"), &cfg_r4("r4_bad.rs"));
    let r4: Vec<_> = f.iter().filter(|x| x.rule == "R4").collect();
    assert_eq!(r4.len(), 3, "for-, while- and nested-loop pushes each fire: {f:#?}");
    assert!(r4.iter().all(|x| x.message.contains("with_capacity/reserve")));
}

#[test]
fn r4_silent_on_reserving_twin() {
    let f = scan_file("r4_good.rs", &fixture("r4_good.rs"), &cfg_r4("r4_good.rs"));
    assert!(f.is_empty(), "good twin must be silent: {f:#?}");
}

#[test]
fn waivers_suppress_report_and_complain() {
    let f = scan_file("waivers.rs", &fixture("waivers.rs"), &cfg_for("waivers.rs"));
    let waived: Vec<_> = f.iter().filter(|x| x.waived.is_some()).collect();
    let meta: Vec<_> = f.iter().filter(|x| x.rule == META_RULE).collect();
    // Trailing + whole-line waivers suppress their R1 findings…
    assert_eq!(waived.len(), 2, "{f:#?}");
    assert!(waived.iter().any(|x| x.waived.as_deref() == Some("cold path, runs once per report")));
    assert!(waived.iter().any(|x| x.waived.as_deref() == Some("snapshot for the report")));
    // …while the unused and the malformed directives become findings.
    assert_eq!(meta.len(), 2, "{f:#?}");
    assert!(meta.iter().any(|x| x.message.contains("unused waiver")));
    assert!(meta.iter().any(|x| x.message.contains("malformed directive")));
    // Nothing else slipped through unwaived.
    assert_eq!(f.len(), 4, "{f:#?}");
}
