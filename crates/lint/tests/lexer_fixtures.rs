//! Lexer regression fixtures: the exact token streams for the corners
//! that historically produce false findings in token-based linters —
//! multi-hash raw strings, byte and byte-raw strings, nested block
//! comments containing quotes, and lifetime-vs-char disambiguation
//! after `::` and `<`. Each test asserts the *whole* stream, so any
//! drift in the lexer shows up as a diff here, not as a phantom
//! finding three crates away.

use vapro_lint::lexer::{lex, Tok, Token};

fn ident(s: &str, line: u32) -> Token {
    Token { tok: Tok::Ident(s.into()), line }
}

fn punct(s: &str, line: u32) -> Token {
    Token { tok: Tok::Punct(s.into()), line }
}

fn lit(line: u32) -> Token {
    Token { tok: Tok::Lit, line }
}

#[test]
fn multi_hash_raw_string_swallows_quotes_and_hashes() {
    // The `"#` inside the r##"..."## body must not terminate the
    // literal, and `.unwrap()` spelled inside it must never tokenize.
    let src = "let s = r##\"quote \" and hash-quote \"# and .unwrap() stay inside\"##;\nlet t = r\"plain raw\";\n";
    let lexed = lex(src);
    assert_eq!(
        lexed.tokens,
        vec![
            ident("let", 1),
            ident("s", 1),
            punct("=", 1),
            lit(1),
            punct(";", 1),
            ident("let", 2),
            ident("t", 2),
            punct("=", 2),
            lit(2),
            punct(";", 2),
        ]
    );
}

#[test]
fn byte_and_byte_raw_strings_are_single_literals() {
    let src = "let a = b\"bytes with \\\" escape\";\nlet b2 = br#\"raw bytes \" inside\"#;\nlet c = b'x';\n";
    let lexed = lex(src);
    assert_eq!(
        lexed.tokens,
        vec![
            ident("let", 1),
            ident("a", 1),
            punct("=", 1),
            lit(1),
            punct(";", 1),
            ident("let", 2),
            ident("b2", 2),
            punct("=", 2),
            lit(2),
            punct(";", 2),
            ident("let", 3),
            ident("c", 3),
            punct("=", 3),
            lit(3),
            punct(";", 3),
        ]
    );
}

#[test]
fn nested_block_comments_with_quotes_never_leak_tokens() {
    // The unbalanced quote inside the outer comment must not open a
    // string that swallows the following code, and the inner /* */
    // nesting must be tracked.
    let src = "/* outer \" quote /* inner .expect(\" */ still comment */ fn after() {}\n";
    let lexed = lex(src);
    assert_eq!(
        lexed.tokens,
        vec![
            ident("fn", 1),
            ident("after", 1),
            punct("(", 1),
            punct(")", 1),
            punct("{", 1),
            punct("}", 1),
        ]
    );
    // The comment text is preserved (waiver scanning reads it) and is
    // marked leading: no code precedes it on the line.
    assert_eq!(lexed.comments.len(), 1);
    assert!(!lexed.comments[0].trailing);
    assert!(lexed.comments[0].text.contains("inner .expect("));
}

#[test]
fn lifetime_after_path_sep_and_angle_is_not_a_char_literal() {
    // `'a` in `<'a>` and `&'a` is a lifetime (no token at all); `'a'`
    // is a char literal. Getting this wrong desynchronizes the stream
    // for the rest of the file.
    let src = "fn f<'a>(x: &'a str) -> Foo::<'a> { 'q' }\n";
    let lexed = lex(src);
    assert_eq!(
        lexed.tokens,
        vec![
            ident("fn", 1),
            ident("f", 1),
            punct("<", 1),
            punct(">", 1),
            punct("(", 1),
            ident("x", 1),
            punct(":", 1),
            punct("&", 1),
            ident("str", 1),
            punct(")", 1),
            punct("->", 1),
            ident("Foo", 1),
            punct("::", 1),
            punct("<", 1),
            punct(">", 1),
            punct("{", 1),
            lit(1),
            punct("}", 1),
        ]
    );
}

#[test]
fn labelled_loops_and_static_lifetimes_stay_silent() {
    let src = "'outer: loop { break 'outer; }\nconst S: &'static str = \"s\";\n";
    let lexed = lex(src);
    assert_eq!(
        lexed.tokens,
        vec![
            punct(":", 1),
            ident("loop", 1),
            punct("{", 1),
            ident("break", 1),
            punct(";", 1),
            punct("}", 1),
            ident("const", 2),
            ident("S", 2),
            punct(":", 2),
            punct("&", 2),
            ident("str", 2),
            punct("=", 2),
            lit(2),
            punct(";", 2),
        ]
    );
}
