//! Whole-workspace self-check: the committed source must carry zero
//! unwaived findings under the checked-in configuration — including the
//! transitive rules R5/R6/R7 — and the wire decode scope must carry
//! zero waivers of any kind (the never-panic property there is
//! structural, not budgeted). The fixture tests then prove each
//! transitive rule actually fires on a known-bad shape and stays quiet
//! on the repaired one.

use std::path::PathBuf;

use vapro_lint::rules::{FnScope, LintConfig};
use vapro_lint::{run_files, run_workspace, workspace_config, WorkspaceReport};

fn workspace_root() -> PathBuf {
    // crates/lint -> crates -> workspace root
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().expect("workspace root")
}

fn render(report: &WorkspaceReport, pred: impl Fn(&vapro_lint::ReportFinding) -> bool) -> String {
    report
        .findings
        .iter()
        .filter(|f| pred(f))
        .map(|f| {
            format!("  {}: {}:{}: {}", f.finding.rule, f.finding.file, f.finding.line, f.finding.message)
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn workspace_has_zero_unwaived_findings() {
    let report = run_workspace(&workspace_root());
    let shown = render(&report, |f| f.finding.waived.is_none());
    assert!(shown.is_empty(), "unwaived findings in the workspace:\n{shown}");
}

#[test]
fn transitive_rules_are_clean_over_their_entry_trees() {
    let report = run_workspace(&workspace_root());
    let shown = render(&report, |f| {
        f.finding.waived.is_none() && matches!(f.finding.rule.as_str(), "R5" | "R6" | "R7")
    });
    assert!(shown.is_empty(), "unwaived transitive findings:\n{shown}");

    // Every configured R5 entry point must actually resolve to a
    // function and reach at least itself; a typo in the entry list
    // would otherwise pass vacuously.
    let cfg = workspace_config();
    let want: usize = cfg.r5_entries.iter().map(|s| s.funcs.len()).sum();
    let r5_entries: Vec<_> = report.entries.iter().filter(|e| e.stat.rule == "R5").collect();
    assert!(
        r5_entries.len() >= want,
        "expected at least {want} R5 entry lines, got {}",
        r5_entries.len()
    );
    for e in &r5_entries {
        assert!(e.stat.reachable_fns >= 1, "empty walk for {}", e.stat.entry);
    }

    // The R6 window-close tree must reach past its own file: close_ready
    // fans out into clustering/columnar/diagnosis code, so a walk that
    // stays inside server.rs means call resolution broke.
    let close = report
        .entries
        .iter()
        .find(|e| e.stat.rule == "R6" && e.stat.entry.ends_with("::close_ready"))
        .expect("close_ready entry line");
    assert!(
        close.stat.reachable_files.len() > 1,
        "close_ready tree collapsed to {:?}",
        close.stat.reachable_files
    );
    assert!(
        close.stat.reachable_files.iter().any(|f| f != "crates/core/src/detect/server.rs"),
        "close_ready reaches only its own file"
    );
    // Cross-check against the dynamic instrumentation: the runtime
    // clone counter lives in fragment.rs, so the static tree must
    // cover the same code the counter proves clone-free at runtime.
    assert!(
        close.stat.reachable_files.contains("crates/core/src/fragment.rs"),
        "close_ready tree misses fragment.rs (clone-counter coverage): {:?}",
        close.stat.reachable_files
    );
}

#[test]
fn wire_decode_scope_has_zero_waivers() {
    let report = run_workspace(&workspace_root());
    let shown = render(&report, |f| {
        f.finding.file == "crates/core/src/wire.rs" && f.finding.rule == "R2"
    });
    assert!(
        shown.is_empty(),
        "R2 findings (waived or not) in wire.rs — the decode path must be total:\n{shown}"
    );
}

#[test]
fn waiver_budget_stays_reviewed() {
    // The budget cap mirrors the committed LINT_report.json; bumping it
    // is a deliberate, reviewed act (re-run with --accept-waivers).
    const BUDGET: usize = 80;
    let report = run_workspace(&workspace_root());
    let waived = report.findings.iter().filter(|f| f.finding.waived.is_some()).count();
    assert!(waived <= BUDGET, "waiver budget exceeded: {waived} > {BUDGET}");
}

// ---- transitive-rule fixtures --------------------------------------

const R5_BAD: &str = include_str!("fixtures/r5_bad.rs");
const R5_GOOD: &str = include_str!("fixtures/r5_good.rs");
const R6_BAD: &str = include_str!("fixtures/r6_bad.rs");
const R6_GOOD: &str = include_str!("fixtures/r6_good.rs");
const R7_BAD: &str = include_str!("fixtures/r7_bad.rs");
const R7_GOOD: &str = include_str!("fixtures/r7_good.rs");

fn r5_cfg() -> LintConfig {
    LintConfig {
        r5_entries: vec![FnScope { file: "fix/r5.rs".into(), funcs: vec!["entry".into()] }],
        ..Default::default()
    }
}

fn r6_cfg() -> LintConfig {
    LintConfig {
        r6_entries: vec![FnScope { file: "fix/r6.rs".into(), funcs: vec!["close_entry".into()] }],
        ..Default::default()
    }
}

fn r7_cfg() -> LintConfig {
    LintConfig { r7_files: vec!["fix/".into()], ..Default::default() }
}

#[test]
fn r5_two_hop_panic_is_found_with_full_path() {
    let report = run_files(&[("fix/r5.rs", R5_BAD)], &r5_cfg());
    let hit = report
        .findings
        .iter()
        .find(|f| f.finding.rule == "R5" && f.finding.message.contains("unwrap"))
        .expect("two-hop unwrap must be reported");
    assert!(hit.finding.waived.is_none());
    // The finding carries the whole chain entry → helper → leaf.
    let funcs: Vec<&str> = hit.path.iter().map(|h| h.func.as_str()).collect();
    assert_eq!(funcs, ["entry", "helper", "leaf"], "path: {:?}", hit.path);
}

#[test]
fn r5_handled_leaf_is_clean() {
    let report = run_files(&[("fix/r5.rs", R5_GOOD)], &r5_cfg());
    let shown = render(&report, |f| f.finding.rule == "R5");
    assert!(shown.is_empty(), "good fixture flagged:\n{shown}");
    // The walk still covered all three functions.
    let entry = report.entries.iter().find(|e| e.stat.rule == "R5").expect("entry line");
    assert_eq!(entry.stat.reachable_fns, 3);
}

#[test]
fn r6_allocation_two_calls_deep_is_found() {
    let report = run_files(&[("fix/r6.rs", R6_BAD)], &r6_cfg());
    let hit = report
        .findings
        .iter()
        .find(|f| f.finding.rule == "R6" && f.finding.message.contains("to_vec"))
        .expect("deep to_vec must be reported");
    assert!(hit.finding.waived.is_none());
    let funcs: Vec<&str> = hit.path.iter().map(|h| h.func.as_str()).collect();
    assert_eq!(funcs, ["close_entry", "finalize", "snapshot"], "path: {:?}", hit.path);
}

#[test]
fn r6_in_place_reduction_is_clean() {
    let report = run_files(&[("fix/r6.rs", R6_GOOD)], &r6_cfg());
    let shown = render(&report, |f| f.finding.rule == "R6");
    assert!(shown.is_empty(), "good fixture flagged:\n{shown}");
    let entry = report.entries.iter().find(|e| e.stat.rule == "R6").expect("entry line");
    assert_eq!(entry.stat.reachable_fns, 3);
}

#[test]
fn r7_guard_across_rayon_join_is_found() {
    let report = run_files(&[("fix/r7.rs", R7_BAD)], &r7_cfg());
    let hit = report
        .findings
        .iter()
        .find(|f| f.finding.rule == "R7" && f.finding.message.contains("rayon"))
        .expect("guard across rayon::join must be reported");
    assert!(hit.finding.waived.is_none());
    assert!(hit.finding.message.contains("guard `m`"), "message: {}", hit.finding.message);
}

#[test]
fn r7_dropped_guard_is_clean() {
    let report = run_files(&[("fix/r7.rs", R7_GOOD)], &r7_cfg());
    let shown = render(&report, |f| f.finding.rule == "R7");
    assert!(shown.is_empty(), "good fixture flagged:\n{shown}");
}
