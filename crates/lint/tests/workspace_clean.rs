//! Whole-workspace self-check: the committed source must carry zero
//! unwaived findings under the checked-in configuration, and the wire
//! decode scope must carry zero waivers of any kind — the never-panic
//! property there is structural, not budgeted.

use std::path::PathBuf;

use vapro_lint::run_workspace;

fn workspace_root() -> PathBuf {
    // crates/lint -> crates -> workspace root
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().expect("workspace root")
}

#[test]
fn workspace_has_zero_unwaived_findings() {
    let findings = run_workspace(&workspace_root());
    let unwaived: Vec<_> = findings.iter().filter(|f| f.waived.is_none()).collect();
    assert!(
        unwaived.is_empty(),
        "unwaived findings in the workspace:\n{}",
        unwaived
            .iter()
            .map(|f| format!("  {}: {}:{}: {}", f.rule, f.file, f.line, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn wire_decode_scope_has_zero_waivers() {
    let findings = run_workspace(&workspace_root());
    let wire_r2: Vec<_> = findings
        .iter()
        .filter(|f| f.file == "crates/core/src/wire.rs" && f.rule == "R2")
        .collect();
    assert!(
        wire_r2.is_empty(),
        "R2 findings (waived or not) in wire.rs — the decode path must be total:\n{wire_r2:#?}"
    );
}

#[test]
fn waiver_budget_stays_reviewed() {
    // The budget cap mirrors the committed LINT_report.json; bumping it
    // is a deliberate, reviewed act (run `make lint-accept`).
    const BUDGET: usize = 22;
    let findings = run_workspace(&workspace_root());
    let waived = findings.iter().filter(|f| f.waived.is_some()).count();
    assert!(waived <= BUDGET, "waiver budget exceeded: {waived} > {BUDGET}");
}
