//! The rule set and the waiver machinery.
//!
//! Three project rules, each scoped to the files (and for R2, the
//! functions) where the invariant is load-bearing:
//!
//! * **R1 no-hot-path-clone** — `.clone()` / `.cloned()` / `.to_vec()` /
//!   `.to_owned()` in the detection/diagnosis hot-path modules. `.copied()`
//!   is deliberately allowed: it only compiles for `Copy` element types,
//!   so it is its own proof that no allocation happens.
//! * **R2 no-panic-decode** — `unwrap`/`expect`-family calls, panicking
//!   macros, direct slice indexing, and unchecked `+ - *` arithmetic in
//!   the wire decode and server ingest functions.
//! * **R3 float-hygiene** — `partial_cmp` comparisons and `NAN`
//!   constants in normalization / heatmap / region / clustering code,
//!   where a NaN comparison silently corrupts ordering.
//! * **R4 reserve-before-push** — a per-element `.push(…)` inside a
//!   `for`/`while`/`loop` body, in a function that never calls
//!   `with_capacity` / `reserve` / `reserve_exact`, in the lane-building
//!   modules. Growing a lane one doubling at a time is exactly the
//!   allocation churn the columnar layout exists to avoid; size the
//!   buffer first or waive with the reason it cannot be sized.
//!
//! A finding can be waived with `// vapro-lint: allow(R1, reason)` —
//! trailing on the offending line, or on the whole line directly above
//! it. Waivers are collected into the report as an explicit budget.
//! Malformed and unused waivers are themselves (unwaivable) findings, as
//! is any waiver that tries to touch the R2 decode scope of a
//! no-waiver file.

use std::collections::HashMap;

use crate::analyze::{contexts, TokenCtx};
use crate::lexer::{lex, Tok, Token};

/// Rule id for meta findings about the waiver mechanism itself.
pub const META_RULE: &str = "LINT";

pub(crate) const R1_METHODS: &[&str] = &["clone", "cloned", "to_vec", "to_owned"];
pub(crate) const R2_METHODS: &[&str] = &[
    "unwrap",
    "expect",
    "unwrap_err",
    "expect_err",
    "unwrap_unchecked",
    "get_unchecked",
    "get_unchecked_mut",
];
pub(crate) const R2_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
];

/// Keywords that can precede `[` or an operator without being a value
/// (so `let [a, b] = …` and `return -1` never look like indexing or
/// arithmetic). `self` is intentionally absent: it is a value.
const NON_VALUE_KEYWORDS: &[&str] = &[
    "let", "in", "if", "while", "match", "return", "else", "move", "mut", "ref",
    "as", "break", "continue", "where", "const", "static", "fn", "pub", "use",
    "mod", "enum", "struct", "union", "trait", "unsafe", "for", "loop", "impl",
    "dyn", "box", "type", "crate", "super", "async", "await", "yield",
];

/// One diagnostic. `waived` carries the reason when a waiver matched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: String,
    pub file: String,
    pub line: u32,
    pub message: String,
    pub waived: Option<String>,
}

/// A file (prefix) plus the function names a rule applies to inside it.
/// An empty `funcs` list means "every function, including module level".
#[derive(Debug, Clone, Default)]
pub struct FnScope {
    pub file: String,
    pub funcs: Vec<String>,
}

/// The full rule configuration. File entries are `/`-separated
/// workspace-relative prefixes (`crates/core/src/detect/` matches the
/// whole module directory, `…/wire.rs` a single file).
#[derive(Debug, Clone, Default)]
pub struct LintConfig {
    /// R1 applies to files matching these prefixes.
    pub r1_files: Vec<String>,
    /// R2 panic/indexing rules apply inside these function scopes.
    pub r2_scopes: Vec<FnScope>,
    /// R2 unchecked-arithmetic rule additionally applies here.
    pub r2_arith: Vec<FnScope>,
    /// Files whose R2 scope accepts no waivers at all.
    pub r2_no_waiver_files: Vec<String>,
    /// R3 applies to files matching these prefixes.
    pub r3_files: Vec<String>,
    /// R4 applies to files matching these prefixes.
    pub r4_files: Vec<String>,
    /// R5 transitive panic-freedom entry points: every function named
    /// here must be panic-free across its entire reachable call tree.
    pub r5_entries: Vec<FnScope>,
    /// Function names at which the R5 walk stops descending: the
    /// sealed-data boundary where the hostile-input contract ends and
    /// dynamically-verified analysis code begins.
    pub r5_frontier: Vec<String>,
    /// R6 transitive hot-path-allocation entry points (the steady-state
    /// window-close tree).
    pub r6_entries: Vec<FnScope>,
    /// Files R6 skips because their allocation sites are already
    /// budgeted per-body by R1/R4 (normally `r1_files` ∪ `r4_files`).
    pub r6_budgeted_files: Vec<String>,
    /// R7 lock hygiene applies to files matching these prefixes
    /// (empty = disabled; `["crates/"]` = the whole workspace).
    pub r7_files: Vec<String>,
}

/// Function names whose presence in a function body counts as "the
/// buffer was sized" for R4.
pub(crate) const R4_RESERVERS: &[&str] = &["with_capacity", "reserve", "reserve_exact"];

fn file_matches(rel: &str, prefixes: &[String]) -> bool {
    prefixes.iter().any(|p| rel.starts_with(p.as_str()))
}

fn scope_funcs<'a>(rel: &str, scopes: &'a [FnScope]) -> Option<&'a [String]> {
    scopes.iter().find(|s| rel.starts_with(s.file.as_str())).map(|s| s.funcs.as_slice())
}

fn in_scope(ctx: &TokenCtx, funcs: &[String]) -> bool {
    if ctx.test {
        return false;
    }
    if funcs.is_empty() {
        return true;
    }
    ctx.func.as_ref().is_some_and(|f| funcs.iter().any(|s| s == f))
}

pub(crate) fn is_value_end(tok: &Tok) -> bool {
    match tok {
        Tok::Lit => true,
        Tok::Punct(p) => p == ")" || p == "]",
        Tok::Ident(s) => !NON_VALUE_KEYWORDS.iter().any(|k| k == s),
    }
}

fn is_value_start(tok: &Tok) -> bool {
    match tok {
        Tok::Lit => true,
        Tok::Punct(p) => p == "(",
        Tok::Ident(s) => !NON_VALUE_KEYWORDS.iter().any(|k| k == s),
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Waiver {
    pub(crate) rule: String,
    pub(crate) reason: String,
    /// Line of the comment itself (for diagnostics).
    pub(crate) line: u32,
    /// Code line the waiver annotates.
    pub(crate) target: Option<u32>,
    pub(crate) used: bool,
    /// The waiver sits in a no-waiver scope: it already produced a meta
    /// finding and suppresses nothing, locally or transitively.
    pub(crate) forbidden: bool,
}

/// Everything one file contributes to the workspace pass: its local
/// findings (waivers applied), the waiver table for the global
/// transitive rules to consume, and the item index the call graph is
/// built from. Unused-waiver detection is deferred until after the
/// transitive rules have had their chance to use each waiver.
#[derive(Debug, Clone, Default)]
pub(crate) struct FileScan {
    pub(crate) findings: Vec<Finding>,
    pub(crate) waivers: Vec<Waiver>,
    pub(crate) index: crate::items::FileIndex,
}

/// Run every configured rule over one file. `rel` is the
/// workspace-relative path used for scoping and in diagnostics.
/// Single-file entry point: unused waivers are flagged immediately.
pub fn scan_file(rel: &str, src: &str, cfg: &LintConfig) -> Vec<Finding> {
    let mut scan = scan_file_deferred(rel, src, cfg);
    finish_waivers(rel, &scan.waivers, &mut scan.findings);
    scan.findings.sort_by(|a, b| (a.line, &a.rule).cmp(&(b.line, &b.rule)));
    scan.findings
}

/// Append unused-waiver findings for every waiver still unconsumed.
pub(crate) fn finish_waivers(rel: &str, waivers: &[Waiver], findings: &mut Vec<Finding>) {
    for w in waivers {
        if !w.used && !w.forbidden {
            findings.push(Finding {
                rule: META_RULE.into(),
                file: rel.into(),
                line: w.line,
                message: format!("unused waiver for {} (nothing to allow here)", w.rule),
                waived: None,
            });
        }
    }
}

/// The per-file phase: local rules + waiver collection + item index.
pub(crate) fn scan_file_deferred(rel: &str, src: &str, cfg: &LintConfig) -> FileScan {
    let lexed = lex(src);
    let toks = &lexed.tokens;
    let ctxs = contexts(toks);
    let ctx_at = |i: usize| -> TokenCtx {
        ctxs.get(i).cloned().unwrap_or(TokenCtx { test: false, func: None })
    };

    let mut raw: Vec<(String, u32, String)> = Vec::new();

    let r1 = file_matches(rel, &cfg.r1_files);
    let r2_funcs = scope_funcs(rel, &cfg.r2_scopes);
    let r2_arith_funcs = scope_funcs(rel, &cfg.r2_arith);
    let r3 = file_matches(rel, &cfg.r3_files);
    let r4 = file_matches(rel, &cfg.r4_files);

    // R4 pre-pass: which functions size their buffers at all? A single
    // `with_capacity`/`reserve` anywhere in the function is taken as
    // evidence the author thought about growth.
    let mut reserving: std::collections::HashSet<Option<String>> =
        std::collections::HashSet::new();
    if r4 {
        for (i, t) in toks.iter().enumerate() {
            if let Tok::Ident(m) = &t.tok {
                if R4_RESERVERS.iter().any(|x| x == m) {
                    reserving.insert(ctx_at(i).func);
                }
            }
        }
    }

    // Loop-body tracking for R4: brace depth plus the depths at which
    // `for`/`while`/`loop` bodies opened.
    let mut depth = 0u32;
    let mut pending_loop = false;
    let mut loop_depths: Vec<u32> = Vec::new();

    for i in 0..toks.len() {
        let t = &toks[i];
        let ctx = ctx_at(i);

        match &t.tok {
            Tok::Ident(s) if s == "for" || s == "while" || s == "loop" => {
                // `for<'a>` HRTBs are type syntax, not loops.
                let hrtb = s == "for"
                    && toks.get(i + 1).is_some_and(|n| n.tok == Tok::Punct("<".into()));
                // `.for_each`-style method names never lex as bare `for`,
                // but a `loop` struct field access (`x.loop`) cannot occur
                // (keyword), so no dot guard is needed.
                if !hrtb {
                    pending_loop = true;
                }
            }
            Tok::Punct(p) if p == ";" => pending_loop = false,
            Tok::Punct(p) if p == "{" => {
                depth += 1;
                if pending_loop {
                    loop_depths.push(depth);
                    pending_loop = false;
                }
            }
            Tok::Punct(p) if p == "}" => {
                if loop_depths.last() == Some(&depth) {
                    loop_depths.pop();
                }
                depth = depth.saturating_sub(1);
            }
            _ => {}
        }

        // `.method(` patterns.
        if let (Tok::Punct(dot), Some(Token { tok: Tok::Ident(m), line }), Some(paren)) =
            (&t.tok, toks.get(i + 1), toks.get(i + 2))
        {
            if dot == "." && paren.tok == Tok::Punct("(".into()) {
                let mctx = ctx_at(i + 1);
                if r1 && !mctx.test && R1_METHODS.iter().any(|x| x == m) {
                    raw.push((
                        "R1".into(),
                        *line,
                        format!(".{m}() allocates an owned copy in a hot-path module"),
                    ));
                }
                if let Some(funcs) = r2_funcs {
                    if in_scope(&mctx, funcs) && R2_METHODS.iter().any(|x| x == m) {
                        raw.push((
                            "R2".into(),
                            *line,
                            format!(".{m}() can panic in a decode/ingest path"),
                        ));
                    }
                }
                if r3 && !mctx.test && m == "partial_cmp" {
                    raw.push((
                        "R3".into(),
                        *line,
                        "partial_cmp is not a total order under NaN (use total_cmp)".into(),
                    ));
                }
                if r4
                    && !mctx.test
                    && m == "push"
                    && !loop_depths.is_empty()
                    && !reserving.contains(&mctx.func)
                {
                    raw.push((
                        "R4".into(),
                        *line,
                        "per-element .push() in a loop without with_capacity/reserve grows the lane one doubling at a time".into(),
                    ));
                }
            }
        }

        // Panicking macros: `ident!`.
        if let (Tok::Ident(m), Some(Token { tok: Tok::Punct(bang), .. })) =
            (&t.tok, toks.get(i + 1))
        {
            if bang == "!" {
                if let Some(funcs) = r2_funcs {
                    if in_scope(&ctx, funcs) && R2_MACROS.iter().any(|x| x == m) {
                        raw.push((
                            "R2".into(),
                            t.line,
                            format!("{m}! can panic in a decode/ingest path"),
                        ));
                    }
                }
            }
        }

        // Direct indexing: `value[`.
        if t.tok == Tok::Punct("[".into()) && i > 0 {
            if let Some(funcs) = r2_funcs {
                if in_scope(&ctx, funcs) && is_value_end(&toks[i - 1].tok) {
                    raw.push((
                        "R2".into(),
                        t.line,
                        "direct slice indexing can panic in a decode/ingest path (use get)"
                            .into(),
                    ));
                }
            }
        }

        // Unchecked binary arithmetic: `value (+|-|*) value`.
        if let Tok::Punct(op) = &t.tok {
            if (op == "+" || op == "-" || op == "*") && i > 0 {
                if let Some(funcs) = r2_arith_funcs {
                    if in_scope(&ctx, funcs)
                        && is_value_end(&toks[i - 1].tok)
                        && toks.get(i + 1).is_some_and(|n| is_value_start(&n.tok))
                    {
                        raw.push((
                            "R2".into(),
                            t.line,
                            format!(
                                "unchecked `{op}` can overflow in a decode path (use checked/saturating forms)"
                            ),
                        ));
                    }
                }
            }
        }

        // NaN constant in float-hygiene files.
        if r3 && !ctx.test {
            if let Tok::Ident(m) = &t.tok {
                if m == "NAN" {
                    raw.push((
                        "R3".into(),
                        t.line,
                        "NAN constant in a numeric path corrupts ordering silently".into(),
                    ));
                }
            }
        }
    }

    // ---- waivers ------------------------------------------------------
    let mut waivers: Vec<Waiver> = Vec::new();
    let mut findings: Vec<Finding> = Vec::new();

    for c in &lexed.comments {
        // Doc comments talk *about* the grammar; only plain comments
        // carry directives.
        let doc = c.text.starts_with("///")
            || c.text.starts_with("//!")
            || c.text.starts_with("/**")
            || c.text.starts_with("/*!");
        if doc {
            continue;
        }
        let Some(pos) = c.text.find("vapro-lint") else { continue };
        let directive = &c.text[pos + "vapro-lint".len()..];
        let parsed = parse_allow(directive);
        match parsed {
            Some((rule, reason)) => {
                let target = if c.trailing {
                    Some(c.line)
                } else {
                    toks.iter().find(|t| t.line > c.line).map(|t| t.line)
                };
                waivers.push(Waiver {
                    rule,
                    reason,
                    line: c.line,
                    target,
                    used: false,
                    forbidden: false,
                });
            }
            None => findings.push(Finding {
                rule: META_RULE.into(),
                file: rel.into(),
                line: c.line,
                message: "malformed directive (expected `vapro-lint: allow(RULE, reason)`)"
                    .into(),
                waived: None,
            }),
        }
    }

    // In a no-waiver file, any waiver naming R2 — or targeting a line
    // inside an R2-scoped function — is itself a finding and suppresses
    // nothing.
    let no_waiver = file_matches(rel, &cfg.r2_no_waiver_files);
    let mut line_func: HashMap<u32, Option<String>> = HashMap::new();
    for (i, t) in toks.iter().enumerate() {
        line_func.entry(t.line).or_insert_with(|| ctx_at(i).func);
    }
    for w in &mut waivers {
        let mut bad = false;
        if no_waiver {
            if w.rule == "R2" {
                bad = true;
            } else if let (Some(target), Some(funcs)) = (w.target, r2_funcs) {
                if let Some(func) = line_func.get(&target) {
                    bad = funcs.is_empty()
                        || func.as_ref().is_some_and(|f| funcs.iter().any(|s| s == f));
                }
            }
        }
        if bad {
            findings.push(Finding {
                rule: META_RULE.into(),
                file: rel.into(),
                line: w.line,
                message: format!(
                    "waiver for {} not permitted inside the no-waiver decode scope",
                    w.rule
                ),
                waived: None,
            });
        }
        w.forbidden = bad;
    }

    // Apply waivers to raw findings.
    for (rule, line, message) in raw {
        let waived = consume_waiver(&mut waivers, &rule, line);
        findings.push(Finding { rule, file: rel.into(), line, message, waived });
    }

    FileScan { findings, waivers, index: crate::items::index_tokens(toks) }
}

/// Mark the first matching waiver used and return its reason. A waiver
/// suppresses any number of findings of its rule on its target line
/// (several findings can share a line).
pub(crate) fn consume_waiver(
    waivers: &mut [Waiver],
    rule: &str,
    line: u32,
) -> Option<String> {
    for w in waivers.iter_mut() {
        if !w.forbidden && w.rule == rule && w.target == Some(line) {
            w.used = true;
            return Some(w.reason.clone());
        }
    }
    None
}

/// Parse the tail of a directive: `: allow(RULE, reason)`.
fn parse_allow(directive: &str) -> Option<(String, String)> {
    let rest = directive.trim_start().strip_prefix(':')?.trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let inner = &rest[..rest.rfind(')')?];
    let (rule, reason) = inner.split_once(',')?;
    let rule = rule.trim();
    let reason = reason.trim();
    let rule_ok = !rule.is_empty()
        && rule.chars().all(|c| c.is_ascii_alphanumeric())
        && rule.chars().next().is_some_and(|c| c.is_ascii_uppercase());
    if !rule_ok || reason.is_empty() {
        return None;
    }
    Some((rule.to_string(), reason.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_all(file: &str) -> LintConfig {
        LintConfig {
            r1_files: vec![file.into()],
            r2_scopes: vec![FnScope { file: file.into(), funcs: vec![] }],
            r2_arith: vec![FnScope { file: file.into(), funcs: vec![] }],
            r2_no_waiver_files: vec![],
            r3_files: vec![file.into()],
            r4_files: vec![file.into()],
            ..Default::default()
        }
    }

    #[test]
    fn trailing_waiver_suppresses_same_line() {
        let src = "fn f(x: &Vec<u32>) -> Vec<u32> {\n    x.clone() // vapro-lint: allow(R1, cold path)\n}\n";
        let f = scan_file("a.rs", src, &cfg_all("a.rs"));
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "R1");
        assert_eq!(f[0].waived.as_deref(), Some("cold path"));
    }

    #[test]
    fn whole_line_waiver_covers_next_code_line() {
        let src = "fn f(x: &Vec<u32>) -> Vec<u32> {\n    // vapro-lint: allow(R1, cold path)\n    x.clone()\n}\n";
        let f = scan_file("a.rs", src, &cfg_all("a.rs"));
        assert_eq!(f.len(), 1);
        assert!(f[0].waived.is_some());
    }

    #[test]
    fn unused_and_malformed_waivers_are_findings() {
        let src = "// vapro-lint: allow(R1, nothing here)\nfn ok() {}\n// vapro-lint: allow(R9)\nfn also_ok() {}\n";
        let f = scan_file("a.rs", src, &cfg_all("a.rs"));
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|x| x.rule == META_RULE && x.waived.is_none()));
    }

    #[test]
    fn waiver_rule_must_match_finding_rule() {
        let src = "fn f(x: &Vec<u32>) -> Vec<u32> {\n    x.clone() // vapro-lint: allow(R2, wrong rule)\n}\n";
        let f = scan_file("a.rs", src, &cfg_all("a.rs"));
        // The R1 finding stays unwaived and the R2 waiver is unused.
        assert_eq!(f.iter().filter(|x| x.rule == "R1" && x.waived.is_none()).count(), 1);
        assert_eq!(f.iter().filter(|x| x.rule == META_RULE).count(), 1);
    }

    #[test]
    fn no_waiver_files_reject_r2_waivers() {
        let src = "fn decode(b: &[u8]) -> u8 {\n    b[0] // vapro-lint: allow(R2, trust me)\n}\n";
        let mut cfg = cfg_all("wire.rs");
        cfg.r2_no_waiver_files = vec!["wire.rs".into()];
        let f = scan_file("wire.rs", src, &cfg);
        // The indexing finding survives unwaived AND the waiver itself is
        // flagged.
        assert!(f.iter().any(|x| x.rule == "R2" && x.waived.is_none()));
        assert!(f.iter().any(|x| x.rule == META_RULE));
    }

    #[test]
    fn slice_patterns_and_attrs_are_not_indexing() {
        let src = "#[derive(Debug)]\nstruct S;\nfn f(v: &[u8]) -> Option<u8> {\n    let [a, _b]: [u8; 2] = [1, 2];\n    let _ = a;\n    v.get(0).copied()\n}\n";
        let f = scan_file("a.rs", src, &cfg_all("a.rs"));
        assert!(f.is_empty(), "unexpected findings: {f:?}");
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { let v = vec![1]; let _ = v.clone(); let _ = v[0]; }\n}\n";
        let f = scan_file("a.rs", src, &cfg_all("a.rs"));
        assert!(f.is_empty(), "unexpected findings: {f:?}");
    }
}
