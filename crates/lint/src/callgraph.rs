//! The whole-workspace conservative call graph and the three transitive
//! rules built on it:
//!
//! * **R5 transitive panic-freedom** — every configured entry point
//!   (wire decode, server admission, fleet routing, VOPR oracle) must be
//!   panic-free across its entire reachable call tree. Findings carry
//!   the full call path `entry → helper → panic site`.
//! * **R6 transitive hot-path allocation** — R1/R4's per-body checks
//!   extended along the steady-state window-close tree; files already
//!   budgeted per-body by R1/R4 are skipped so a site never needs two
//!   waivers.
//! * **R7 lock hygiene** — no guard held across a rayon entry, a
//!   channel send, or a call into another lock-taking function, plus
//!   lock-order cycle detection over the held-edge digraph.
//!
//! Resolution is deliberately conservative. Free and `module::`-path
//! calls resolve by name against workspace free functions; `Type::assoc`
//! calls against the impl index; methods by inferred receiver type
//! (self → impl type, typed params/locals, struct-field chains). A
//! method whose receiver cannot be inferred falls back to *every*
//! workspace method of that name — unless the name is on the
//! total-by-contract std list (`KNOWN_TOTAL`), where by-name taint would
//! drown the signal (`.push()` would otherwise pull in every workspace
//! `push`). External calls not on that list are tainted-unless-waived
//! inside an R5 tree.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

use crate::items::{CallSite, FileIndex, FnItem, Recv, CLOSURE_TY};
use crate::rules::{FnScope, LintConfig, R1_METHODS, R2_METHODS};

/// (file index, fn index) into the workspace file list.
pub(crate) type FnId = (usize, usize);

/// One hop of a reported call path: where the function is defined.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hop {
    pub file: String,
    pub line: u32,
    pub func: String,
}

/// A transitive finding before waiver application.
#[derive(Debug, Clone)]
pub(crate) struct RawTransitive {
    pub rule: &'static str,
    pub file: String,
    pub line: u32,
    pub message: String,
    /// Call path from the entry point to the function holding the site.
    pub path: Vec<Hop>,
    /// Entry-point labels (`file::fn`) whose trees reach this site.
    pub entries: Vec<String>,
}

/// Per-entry-point reachability statistics for the report.
#[derive(Debug, Clone)]
pub struct EntryStat {
    pub rule: String,
    /// `file::fn` label of the entry point.
    pub entry: String,
    pub reachable_fns: usize,
    pub reachable_files: BTreeSet<String>,
}

/// Method/function names assumed total (non-panicking) when they
/// resolve outside the workspace. The contract is by *name*: a name
/// shared between a panicking and a total std API (`Vec::insert` vs
/// `HashMap::insert`) is admitted when the workspace's dominant use is
/// the total one — positional slice/Vec panics are covered by the
/// direct-indexing rule instead. See DESIGN.md §15.
const KNOWN_TOTAL: &[&str] = &[
    // Option/Result plumbing.
    "unwrap_or", "unwrap_or_else", "unwrap_or_default", "ok", "err", "ok_or",
    "ok_or_else", "map_err", "and_then", "or_else", "is_some", "is_none", "is_ok",
    "is_err", "as_ref", "as_mut", "as_deref", "take", "replace", "get_or_insert_with",
    "get_or_init", "unwrap_unchecked_never", "into_inner", "map_or", "map_or_else",
    // Containers and slices (total surface).
    "get", "get_mut", "len", "is_empty", "iter", "iter_mut", "into_iter", "push",
    "push_back", "push_front", "pop", "pop_front", "pop_back", "insert", "remove",
    "entry", "or_insert", "or_insert_with", "or_default", "contains", "contains_key",
    "keys", "values", "values_mut", "clear", "truncate", "retain", "extend", "append",
    "drain", "first", "last", "first_mut", "last_mut", "split_first", "split_last",
    "binary_search", "binary_search_by", "binary_search_by_key", "partition_point",
    "sort", "sort_by", "sort_by_key", "sort_unstable", "sort_unstable_by",
    "sort_unstable_by_key", "dedup", "dedup_by", "dedup_by_key", "fill", "swap_remove",
    "reserve", "reserve_exact", "with_capacity", "capacity", "shrink_to_fit",
    "as_slice", "as_bytes", "as_str", "to_string", "starts_with", "ends_with",
    "trim", "split", "splitn", "split_once", "find", "chars", "bytes", "parse",
    "get_unchecked_never", "concat", "join", "repeat", "make_ascii_lowercase",
    "first_key_value", "last_key_value", "pop_first", "pop_last", "split_at_checked",
    "remainder", "into_boxed_str", "into_boxed_slice", "is_some_and", "is_none_or",
    "then_with", "then", "reverse",
    // Iterator adapters and consumers.
    "map", "filter", "filter_map", "flat_map", "flatten", "chain", "zip", "enumerate",
    "rev", "skip", "take_while", "skip_while", "step_by", "cloned", "copied", "fuse",
    "peekable", "peek", "next", "next_back", "nth", "count", "sum", "product", "fold",
    "try_fold", "all", "any", "position", "max", "min", "max_by", "min_by",
    "max_by_key", "min_by_key", "collect", "for_each", "by_ref", "windows", "chunks",
    "chunks_exact", "unzip", "partition", "scan", "cycle_never", "last_never",
    // Numeric total ops.
    "saturating_add", "saturating_sub", "saturating_mul", "checked_add", "checked_sub",
    "checked_mul", "checked_div", "checked_rem", "wrapping_add", "wrapping_sub",
    "wrapping_mul", "overflowing_add", "overflowing_sub", "abs", "signum", "powi",
    "powf", "sqrt", "ln", "log2", "log10", "exp", "floor", "ceil", "round", "trunc",
    "fract", "hypot", "mul_add", "recip", "to_bits", "from_bits", "to_le_bytes",
    "to_be_bytes", "from_le_bytes", "from_be_bytes", "leading_zeros", "trailing_zeros",
    "count_ones", "rotate_left", "rotate_right", "is_finite", "is_nan", "is_infinite",
    "is_sign_negative", "is_sign_positive", "clamp", "total_cmp", "partial_cmp",
    "cmp", "eq", "ne", "hash", "min_val", "max_val", "rem_euclid", "div_euclid",
    "is_power_of_two", "next_power_of_two", "checked_next_power_of_two", "midpoint",
    // Constructors and conversions.
    "new", "default", "from", "into", "try_into", "try_from", "from_utf8",
    "from_utf8_lossy", "to_owned", "to_vec", "clone", "borrow", "borrow_mut",
    "as_ptr", "as_mut_ptr", "cast", "boxed", "leak", "pin", "id", "name",
    // Sync primitives (parking_lot never panics; std poison is surfaced
    // by the unwrap/expect the caller writes, which R5 flags itself).
    "lock", "try_lock", "read", "write", "wait", "notify_one", "notify_all",
    "load", "store", "fetch_add", "fetch_sub", "fetch_or", "fetch_and", "swap",
    "compare_exchange", "compare_exchange_weak", "fetch_update_never",
    // Time and misc (total by contract).
    "elapsed", "duration_since_never", "as_nanos", "as_micros", "as_millis",
    "as_secs", "as_secs_f64", "saturating_duration_since", "min_stack_never",
    "current_num_threads", "available_parallelism", "hash_one", "finish",
    "write_u64", "write_u32", "write_u8", "write_usize",
    // Rayon (vendored stub and real crate alike: totality is the
    // closure's business, and closure bodies are scanned inline).
    "par_iter", "into_par_iter", "par_chunks", "par_bridge",
    // `thread::Builder::spawn` / `serde_json::from_slice` return
    // `Result`; the caller's unwrap/expect is what R5 flags.
    "spawn", "from_slice",
    // Free fns / assoc constructors commonly called bare.
    "Some", "Ok", "Err", "None", "size_of", "align_of", "drop", "min_of", "max_of",
    "format", "vec", "mem_take", "mem_replace", "mem_swap", "identity", "once",
    "empty", "repeat_with", "from_fn", "successors", "black_box",
];

/// Receiver types that are std/vendored containers: methods on them are
/// resolved externally (never against same-named workspace methods).
const STD_TYPES: &[&str] = &[
    "Vec", "VecDeque", "BTreeMap", "BTreeSet", "HashMap", "HashSet", "String",
    "Option", "Result", "Box", "Arc", "Rc", "Cow", "Cell", "RefCell", "Mutex",
    "RwLock", "Condvar", "OnceLock", "OnceCell", "LazyLock", "AtomicU64",
    "AtomicU32", "AtomicUsize", "AtomicBool", "AtomicI64", "Instant", "Duration",
    "PathBuf", "Path", "Ordering", "Range", "RangeInclusive", "DefaultHasher",
    "JoinHandle", "Builder", "MutexGuard", "RwLockReadGuard", "RwLockWriteGuard",
];

fn is_total(name: &str) -> bool {
    KNOWN_TOTAL.iter().any(|x| x == &name)
}

/// Where a call lands.
pub(crate) enum Target {
    Workspace(Vec<FnId>),
    External { total: bool },
}

pub(crate) struct Graph<'a> {
    pub files: &'a [(String, FileIndex)],
    /// Methods (fns with an impl type) by name, workspace-wide.
    methods_by_name: HashMap<&'a str, Vec<FnId>>,
    /// Free fns (no impl type) by name.
    free_by_name: HashMap<&'a str, Vec<FnId>>,
    /// (impl type, method name) → fns.
    by_impl: HashMap<(&'a str, &'a str), Vec<FnId>>,
    /// (owner type, field name) → field outer type.
    fields: HashMap<(&'a str, &'a str), &'a str>,
    /// `type A = B;` — alias name → target, workspace-wide.
    aliases: HashMap<&'a str, &'a str>,
    /// Memoised transitive lock-acquire sets (R7).
    acquires: std::cell::RefCell<HashMap<FnId, BTreeSet<String>>>,
}

impl<'a> Graph<'a> {
    pub(crate) fn build(files: &'a [(String, FileIndex)]) -> Self {
        let mut methods_by_name: HashMap<&str, Vec<FnId>> = HashMap::new();
        let mut free_by_name: HashMap<&str, Vec<FnId>> = HashMap::new();
        let mut by_impl: HashMap<(&str, &str), Vec<FnId>> = HashMap::new();
        let mut fields: HashMap<(&str, &str), &str> = HashMap::new();
        let mut aliases: HashMap<&str, &str> = HashMap::new();
        for (_, ix) in files {
            for (name, target) in &ix.aliases {
                aliases.insert(name.as_str(), target.as_str());
            }
        }
        // Chase alias chains once (bounded: an alias of an alias).
        let canon = |ty: &'a str| -> &'a str {
            let mut ty = ty;
            for _ in 0..8 {
                match aliases.get(ty) {
                    Some(next) => ty = next,
                    None => break,
                }
            }
            ty
        };
        for (fi, (_, ix)) in files.iter().enumerate() {
            for (ni, f) in ix.fns.iter().enumerate() {
                if f.test {
                    continue;
                }
                let id = (fi, ni);
                match &f.impl_type {
                    Some(ty) => {
                        methods_by_name.entry(f.name.as_str()).or_default().push(id);
                        by_impl
                            .entry((canon(ty.as_str()), f.name.as_str()))
                            .or_default()
                            .push(id);
                    }
                    None => free_by_name.entry(f.name.as_str()).or_default().push(id),
                }
            }
            for fd in &ix.fields {
                fields.insert(
                    (fd.owner.as_str(), fd.field.as_str()),
                    canon(fd.ty.as_str()),
                );
            }
        }
        Graph {
            files,
            methods_by_name,
            free_by_name,
            by_impl,
            fields,
            aliases,
            acquires: std::cell::RefCell::new(HashMap::new()),
        }
    }

    /// Resolve `type A = B;` alias chains to their final type name.
    fn canon(&self, ty: &'a str) -> &'a str {
        let mut ty = ty;
        for _ in 0..8 {
            match self.aliases.get(ty) {
                Some(next) => ty = next,
                None => break,
            }
        }
        ty
    }

    pub(crate) fn item(&self, id: FnId) -> &'a FnItem {
        &self.files[id.0].1.fns[id.1]
    }

    pub(crate) fn file(&self, id: FnId) -> &'a str {
        &self.files[id.0].0
    }

    /// Infer the outer type of a receiver chain in `caller`'s scope.
    /// Every source (impl type, locals, field table) borrows from
    /// `files`, so the result lives as long as the graph.
    fn chain_type(&self, caller: FnId, chain: &[String]) -> Option<&'a str> {
        let item = self.item(caller);
        let first = chain.first()?;
        let mut ty: &'a str = if first == "self" {
            item.impl_type.as_deref()?
        } else {
            // Last binding wins (shadowing).
            item.locals.iter().rev().find(|(n, _)| n == first).map(|(_, t)| t.as_str())?
        };
        ty = self.canon(ty);
        for seg in &chain[1..] {
            ty = self.fields.get(&(ty, seg.as_str())).copied()?;
        }
        Some(ty)
    }

    pub(crate) fn resolve(&self, caller: FnId, call: &CallSite) -> Target {
        let callee = call.callee.as_str();
        // `Site(x)`, `StateKey::Site(x)`: an uppercase name that is no
        // workspace fn is a tuple-struct or enum-variant constructor —
        // pure construction, total by definition.
        let ctor = callee.chars().next().is_some_and(|c| c.is_ascii_uppercase());
        match &call.recv {
            Recv::Free { qualifier } => match qualifier {
                // `Self::helper(..)` — the caller's own impl type.
                Some(q) if q == "Self" => match self
                    .item(caller)
                    .impl_type
                    .as_deref()
                    .and_then(|ty| self.by_impl.get(&(self.canon(ty), callee)))
                {
                    Some(t) => Target::Workspace(t.clone()),
                    None => Target::External { total: ctor || is_total(callee) },
                },
                Some(q) if q.chars().next().is_some_and(|c| c.is_ascii_uppercase()) => {
                    match self.by_impl.get(&(self.canon(q.as_str()), callee)) {
                        Some(t) => Target::Workspace(t.clone()),
                        None => Target::External { total: ctor || is_total(callee) },
                    }
                }
                _ => {
                    // A closure binding shadows any same-named free fn;
                    // its body was already scanned inline in the caller.
                    let closure = qualifier.is_none()
                        && self
                            .item(caller)
                            .locals
                            .iter()
                            .rev()
                            .find(|(n, _)| n == callee)
                            .is_some_and(|(_, t)| t == CLOSURE_TY);
                    if closure {
                        return Target::External { total: true };
                    }
                    match self.free_by_name.get(callee) {
                        Some(t) => Target::Workspace(t.clone()),
                        None => Target::External { total: ctor || is_total(callee) },
                    }
                }
            },
            // Bare ident in argument position: resolve against workspace
            // free fns only; anything else is a plain variable.
            Recv::FnRef => match self.free_by_name.get(callee) {
                Some(t) => Target::Workspace(t.clone()),
                None => Target::External { total: true },
            },
            Recv::Chain(chain) => match self.chain_type(caller, chain) {
                Some(ty) if STD_TYPES.contains(&ty) => {
                    Target::External { total: is_total(callee) }
                }
                Some(ty) => match self.by_impl.get(&(ty, callee)) {
                    Some(t) => Target::Workspace(t.clone()),
                    None => Target::External { total: is_total(callee) },
                },
                None => self.fallback(callee),
            },
            Recv::Opaque => self.fallback(callee),
        }
    }

    /// Unresolvable receiver: taint every workspace method of that name,
    /// unless the name is total-by-contract (where taint would pull in
    /// `Vec::push`-style noise for every unresolved container).
    fn fallback(&self, callee: &str) -> Target {
        if is_total(callee) {
            return Target::External { total: true };
        }
        match self.methods_by_name.get(callee) {
            Some(t) => Target::Workspace(t.clone()),
            None => Target::External { total: is_total(callee) },
        }
    }

    /// BFS over workspace edges from `entry`. Functions whose *name* is
    /// on the frontier are not visited (nor their bodies scanned).
    pub(crate) fn walk(&self, entry: FnId, frontier: &[String]) -> Walk {
        let mut parent: HashMap<FnId, FnId> = HashMap::new();
        let mut order: Vec<FnId> = Vec::new();
        let mut seen: BTreeSet<FnId> = BTreeSet::new();
        let mut queue: VecDeque<FnId> = VecDeque::new();
        seen.insert(entry);
        queue.push_back(entry);
        while let Some(id) = queue.pop_front() {
            order.push(id);
            for call in &self.item(id).calls {
                if let Target::Workspace(targets) = self.resolve(id, call) {
                    for t in targets {
                        let f = self.item(t);
                        if f.test || frontier.iter().any(|n| n == &f.name) {
                            continue;
                        }
                        if seen.insert(t) {
                            parent.insert(t, id);
                            queue.push_back(t);
                        }
                    }
                }
            }
        }
        Walk { order, parent }
    }

    /// Transitive set of lock ids `id` (or anything it can reach) may
    /// acquire. Memoised; in-progress cycles contribute nothing extra.
    pub(crate) fn acquire_set(&self, id: FnId) -> BTreeSet<String> {
        if let Some(cached) = self.acquires.borrow().get(&id) {
            return cached.clone();
        }
        let mut set = BTreeSet::new();
        let mut seen = BTreeSet::new();
        self.collect_acquires(id, &mut set, &mut seen);
        self.acquires.borrow_mut().insert(id, set.clone());
        set
    }

    fn collect_acquires(
        &self,
        id: FnId,
        set: &mut BTreeSet<String>,
        seen: &mut BTreeSet<FnId>,
    ) {
        if !seen.insert(id) {
            return;
        }
        let item = self.item(id);
        for r in &item.lock_regions {
            set.insert(r.lock_id.clone());
            for (n, _) in &r.nested_locks {
                set.insert(n.clone());
            }
        }
        for call in &item.calls {
            if let Target::Workspace(targets) = self.resolve(id, call) {
                for t in targets {
                    if !self.item(t).test {
                        self.collect_acquires(t, set, seen);
                    }
                }
            }
        }
    }
}

pub(crate) struct Walk {
    pub order: Vec<FnId>,
    parent: HashMap<FnId, FnId>,
}

impl Walk {
    /// Call path from the entry to `id`, as definition-site hops.
    fn path(&self, graph: &Graph, mut id: FnId) -> Vec<Hop> {
        let mut hops = Vec::new();
        loop {
            let item = graph.item(id);
            hops.push(Hop {
                file: graph.file(id).to_string(),
                line: item.line,
                func: item.name.clone(),
            });
            match self.parent.get(&id) {
                Some(p) => id = *p,
                None => break,
            }
        }
        hops.reverse();
        hops
    }
}

fn path_suffix(path: &[Hop]) -> String {
    path.iter().map(|h| h.func.as_str()).collect::<Vec<_>>().join(" → ")
}

/// Entry points named by a scope list: `(label, FnId)` pairs.
fn entry_fns(
    files: &[(String, FileIndex)],
    scopes: &[FnScope],
) -> Vec<(String, FnId)> {
    let mut out = Vec::new();
    for scope in scopes {
        for (fi, (rel, ix)) in files.iter().enumerate() {
            if !rel.starts_with(scope.file.as_str()) {
                continue;
            }
            for (ni, f) in ix.fns.iter().enumerate() {
                if f.test {
                    continue;
                }
                let named = scope.funcs.is_empty()
                    || scope.funcs.iter().any(|n| n == &f.name);
                if named {
                    out.push((format!("{rel}::{}", f.name), (fi, ni)));
                }
            }
        }
    }
    out
}

/// Is `name` inside an R2 per-body scope for `rel`? Those panic sites
/// are already R2 findings; R5 must not demand a second waiver.
fn r2_covered(cfg: &LintConfig, rel: &str, name: &str) -> bool {
    cfg.r2_scopes.iter().any(|s| {
        rel.starts_with(s.file.as_str())
            && (s.funcs.is_empty() || s.funcs.iter().any(|f| f == name))
    })
}

/// Run R5/R6/R7 over the workspace. Returns raw findings (waivers are
/// applied by the caller, which owns the per-file waiver tables) and
/// per-entry reachability stats.
pub(crate) fn run_transitive(
    files: &[(String, FileIndex)],
    cfg: &LintConfig,
) -> (Vec<RawTransitive>, Vec<EntryStat>) {
    let graph = Graph::build(files);
    let mut raws: Vec<RawTransitive> = Vec::new();
    let mut stats: Vec<EntryStat> = Vec::new();
    // Dedup: one finding per (rule, file, line, message); later entries
    // reaching the same site only append their label.
    let mut seen: HashMap<(String, String, u32, String), usize> = HashMap::new();

    let mut push_raw = |raws: &mut Vec<RawTransitive>,
                        rule: &'static str,
                        file: &str,
                        line: u32,
                        message: String,
                        path: Vec<Hop>,
                        entry: &str| {
        let key = (rule.to_string(), file.to_string(), line, message.clone());
        match seen.get(&key) {
            Some(&i) => {
                if !raws[i].entries.iter().any(|e| e == entry) {
                    raws[i].entries.push(entry.to_string());
                }
            }
            None => {
                seen.insert(key, raws.len());
                raws.push(RawTransitive {
                    rule,
                    file: file.to_string(),
                    line,
                    message,
                    path,
                    entries: vec![entry.to_string()],
                });
            }
        }
    };

    // ---- R5: transitive panic-freedom --------------------------------
    for (label, entry) in entry_fns(files, &cfg.r5_entries) {
        let walk = graph.walk(entry, &cfg.r5_frontier);
        let mut files_seen = BTreeSet::new();
        for &id in &walk.order {
            let rel = graph.file(id);
            files_seen.insert(rel.to_string());
            let item = graph.item(id);
            let path = walk.path(&graph, id);
            let via = path_suffix(&path);
            if !r2_covered(cfg, rel, &item.name) {
                for site in &item.panic_sites {
                    push_raw(
                        &mut raws,
                        "R5",
                        rel,
                        site.line,
                        format!("{} reached from {via}", site.what),
                        path.clone(),
                        &label,
                    );
                }
            }
            for call in &item.calls {
                if let Target::External { total: false } = graph.resolve(id, call) {
                    // unwrap/expect-family calls are the panic sites
                    // themselves; clone-family is R1/R6 business.
                    if R2_METHODS.iter().any(|m| m == &call.callee)
                        || R1_METHODS.iter().any(|m| m == &call.callee)
                    {
                        continue;
                    }
                    push_raw(
                        &mut raws,
                        "R5",
                        rel,
                        call.line,
                        format!(
                            "call to `{}` (external, not on the total-by-contract list) reached from {via}",
                            call.callee
                        ),
                        path.clone(),
                        &label,
                    );
                }
            }
        }
        stats.push(EntryStat {
            rule: "R5".into(),
            entry: label,
            reachable_fns: walk.order.len(),
            reachable_files: files_seen,
        });
    }

    // ---- R6: transitive hot-path allocation --------------------------
    for (label, entry) in entry_fns(files, &cfg.r6_entries) {
        let walk = graph.walk(entry, &[]);
        let mut files_seen = BTreeSet::new();
        for &id in &walk.order {
            let rel = graph.file(id);
            files_seen.insert(rel.to_string());
            if rel.starts_with("crates/lint/") {
                continue;
            }
            let budgeted = cfg.r6_budgeted_files.iter().any(|p| rel.starts_with(p.as_str()));
            if budgeted {
                continue;
            }
            let item = graph.item(id);
            let path = walk.path(&graph, id);
            let via = path_suffix(&path);
            for site in &item.alloc_sites {
                push_raw(
                    &mut raws,
                    "R6",
                    rel,
                    site.line,
                    format!("{} on the window-close tree ({via})", site.what),
                    path.clone(),
                    &label,
                );
            }
            if !item.reserves {
                for site in &item.push_loops {
                    push_raw(
                        &mut raws,
                        "R6",
                        rel,
                        site.line,
                        format!("{} on the window-close tree ({via})", site.what),
                        path.clone(),
                        &label,
                    );
                }
            }
        }
        stats.push(EntryStat {
            rule: "R6".into(),
            entry: label,
            reachable_fns: walk.order.len(),
            reachable_files: files_seen,
        });
    }

    // ---- R7: lock hygiene --------------------------------------------
    let mut edges: BTreeMap<(String, String), (String, u32)> = BTreeMap::new();
    for (fi, (rel, ix)) in files.iter().enumerate() {
        if !cfg.r7_files.iter().any(|p| rel.starts_with(p.as_str())) {
            continue;
        }
        for (ni, item) in ix.fns.iter().enumerate() {
            if item.test {
                continue;
            }
            let id = (fi, ni);
            let hop = vec![Hop { file: rel.clone(), line: item.line, func: item.name.clone() }];
            for region in &item.lock_regions {
                for site in &region.rayon_sites {
                    push_raw(
                        &mut raws,
                        "R7",
                        rel,
                        site.line,
                        format!(
                            "guard `{}` held across a rayon parallel region ({})",
                            region.lock_id, site.what
                        ),
                        hop.clone(),
                        "workspace",
                    );
                }
                for site in &region.send_sites {
                    push_raw(
                        &mut raws,
                        "R7",
                        rel,
                        site.line,
                        format!(
                            "guard `{}` held across a channel send ({})",
                            region.lock_id, site.what
                        ),
                        hop.clone(),
                        "workspace",
                    );
                }
                for (nested, line) in &region.nested_locks {
                    if nested == &region.lock_id {
                        push_raw(
                            &mut raws,
                            "R7",
                            rel,
                            *line,
                            format!(
                                "guard `{}` re-acquired while already held (self-deadlock)",
                                region.lock_id
                            ),
                            hop.clone(),
                            "workspace",
                        );
                    } else {
                        edges
                            .entry((region.lock_id.clone(), nested.clone()))
                            .or_insert((rel.clone(), *line));
                    }
                }
                for call in &region.calls {
                    if call.callee == "lock" {
                        continue; // nested acquires handled above
                    }
                    if let Target::Workspace(targets) = graph.resolve(id, call) {
                        let mut acquired: BTreeSet<String> = BTreeSet::new();
                        for t in &targets {
                            acquired.extend(graph.acquire_set(*t));
                        }
                        if acquired.is_empty() {
                            continue;
                        }
                        push_raw(
                            &mut raws,
                            "R7",
                            rel,
                            call.line,
                            format!(
                                "guard `{}` held across call into lock-taking `{}` (acquires {})",
                                region.lock_id,
                                call.callee,
                                acquired
                                    .iter()
                                    .map(|s| format!("`{s}`"))
                                    .collect::<Vec<_>>()
                                    .join(", ")
                            ),
                            hop.clone(),
                            "workspace",
                        );
                        for a in acquired {
                            if a != region.lock_id {
                                edges
                                    .entry((region.lock_id.clone(), a))
                                    .or_insert((rel.clone(), call.line));
                            }
                        }
                    }
                }
            }
        }
    }
    for cycle in find_cycles(&edges) {
        let (file, line) = edges
            .get(&(cycle[0].clone(), cycle[1].clone()))
            .cloned()
            .unwrap_or_else(|| ("<workspace>".into(), 0));
        push_raw(
            &mut raws,
            "R7",
            &file,
            line,
            format!(
                "lock-order cycle: {}",
                cycle.iter().map(|s| format!("`{s}`")).collect::<Vec<_>>().join(" → ")
            ),
            Vec::new(),
            "workspace",
        );
    }

    (raws, stats)
}

/// Elementary cycles in the lock-order digraph, canonicalised (rotated
/// so the smallest node leads, closing node repeated at the end).
fn find_cycles(edges: &BTreeMap<(String, String), (String, u32)>) -> Vec<Vec<String>> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        adj.entry(a.as_str()).or_default().push(b.as_str());
    }
    let mut found: BTreeSet<Vec<String>> = BTreeSet::new();
    for &start in adj.keys().collect::<Vec<_>>().iter() {
        let mut stack: Vec<&str> = vec![start];
        let mut on_stack: Vec<&str> = vec![start];
        dfs_cycles(start, start, &adj, &mut stack, &mut on_stack, &mut found);
    }
    found.into_iter().collect()
}

fn dfs_cycles<'s>(
    node: &'s str,
    start: &'s str,
    adj: &BTreeMap<&'s str, Vec<&'s str>>,
    stack: &mut Vec<&'s str>,
    on_stack: &mut Vec<&'s str>,
    found: &mut BTreeSet<Vec<String>>,
) {
    let Some(nexts) = adj.get(node) else { return };
    for &next in nexts {
        if next == start {
            // Canonicalise: rotate so the lexicographically smallest
            // node leads, then close the loop.
            let min_pos = stack
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| **s)
                .map(|(i, _)| i)
                .unwrap_or(0);
            let mut cyc: Vec<String> =
                stack[min_pos..].iter().chain(stack[..min_pos].iter()).map(|s| s.to_string()).collect();
            let head = cyc[0].clone();
            cyc.push(head);
            found.insert(cyc);
        } else if !on_stack.contains(&next) && next > start {
            // `next > start` keeps each cycle discovered exactly once
            // (only from its smallest node).
            stack.push(next);
            on_stack.push(next);
            dfs_cycles(next, start, adj, stack, on_stack, found);
            stack.pop();
            on_stack.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::index_file;

    fn files(srcs: &[(&str, &str)]) -> Vec<(String, FileIndex)> {
        srcs.iter().map(|(rel, src)| (rel.to_string(), index_file(src))).collect()
    }

    fn cfg_r5(entry_file: &str, entry_fn: &str) -> LintConfig {
        LintConfig {
            r5_entries: vec![FnScope {
                file: entry_file.into(),
                funcs: vec![entry_fn.into()],
            }],
            ..LintConfig::default()
        }
    }

    #[test]
    fn two_hop_panic_is_reported_with_path() {
        let fs = files(&[(
            "a.rs",
            "pub fn entry(v: &[u8]) -> u8 { helper_one(v) }\n\
             fn helper_one(v: &[u8]) -> u8 { helper_two(v) }\n\
             fn helper_two(v: &[u8]) -> u8 { *v.first().unwrap() }\n",
        )]);
        let (raws, stats) = run_transitive(&fs, &cfg_r5("a.rs", "entry"));
        let r5: Vec<_> = raws.iter().filter(|r| r.rule == "R5").collect();
        assert!(
            r5.iter().any(|r| r.message.contains("unwrap")
                && r.message.contains("entry → helper_one → helper_two")),
            "missing pathful finding: {r5:?}"
        );
        assert_eq!(stats[0].reachable_fns, 3);
    }

    #[test]
    fn methods_resolve_through_fields_and_impls() {
        let fs = files(&[
            (
                "a.rs",
                "pub struct Outer { inner: Inner }\n\
                 impl Outer {\n\
                     pub fn entry(&self) { self.inner.go(); }\n\
                 }\n",
            ),
            (
                "b.rs",
                "pub struct Inner;\n\
                 impl Inner {\n\
                     pub fn go(&self) { boom!(); }\n\
                 }\n",
            ),
        ]);
        let mut cfg = cfg_r5("a.rs", "entry");
        cfg.r5_frontier = vec![];
        let (raws, _) = run_transitive(&fs, &cfg);
        // boom! is not a panic macro, but the cross-file edge must exist:
        // check via reachability instead.
        let graph = Graph::build(&fs);
        let entry = (0usize, 0usize);
        let walk = graph.walk(entry, &[]);
        assert_eq!(walk.order.len(), 2, "entry should reach Inner::go");
        assert!(raws.iter().all(|r| r.rule != "R5"));
    }

    #[test]
    fn frontier_stops_the_walk() {
        let fs = files(&[(
            "a.rs",
            "pub fn entry(v: &[u8]) { sealed(v); }\n\
             fn sealed(v: &[u8]) { let _ = v[0]; }\n",
        )]);
        let mut cfg = cfg_r5("a.rs", "entry");
        cfg.r5_frontier = vec!["sealed".into()];
        let (raws, stats) = run_transitive(&fs, &cfg);
        assert!(raws.is_empty(), "frontier fn body must not be scanned: {raws:?}");
        assert_eq!(stats[0].reachable_fns, 1);
    }

    #[test]
    fn unknown_external_calls_are_tainted() {
        let fs = files(&[(
            "a.rs",
            "pub fn entry(v: &[u8]) -> usize { mystery_extern(v) }\n",
        )]);
        let (raws, _) = run_transitive(&fs, &cfg_r5("a.rs", "entry"));
        assert!(
            raws.iter().any(|r| r.rule == "R5" && r.message.contains("mystery_extern")),
            "{raws:?}"
        );
    }

    #[test]
    fn lock_cycles_are_detected() {
        let fs = files(&[(
            "a.rs",
            "pub fn ab(a: &Mutex<u32>, b: &Mutex<u32>) { let g = a.lock(); let h = b.lock(); }\n\
             pub fn ba(a: &Mutex<u32>, b: &Mutex<u32>) { let g = b.lock(); let h = a.lock(); }\n",
        )]);
        let cfg = LintConfig { r7_files: vec!["a.rs".into()], ..LintConfig::default() };
        let (raws, _) = run_transitive(&fs, &cfg);
        assert!(
            raws.iter().any(|r| r.rule == "R7" && r.message.contains("lock-order cycle")),
            "{raws:?}"
        );
    }

    #[test]
    fn call_into_lock_taking_fn_is_flagged() {
        let fs = files(&[(
            "a.rs",
            "pub struct S { m: Mutex<u32>, n: Mutex<u32> }\n\
             impl S {\n\
                 pub fn outer(&self) { let g = self.m.lock(); self.inner(); }\n\
                 fn inner(&self) { let h = self.n.lock(); }\n\
             }\n",
        )]);
        let cfg = LintConfig { r7_files: vec!["a.rs".into()], ..LintConfig::default() };
        let (raws, _) = run_transitive(&fs, &cfg);
        assert!(
            raws.iter().any(|r| r.rule == "R7"
                && r.message.contains("lock-taking `inner`")
                && r.message.contains("`n`")),
            "{raws:?}"
        );
    }
}
