//! `vapro-lint` driver.
//!
//! Usage: `vapro-lint [--root DIR] [--report FILE] [--sarif FILE]
//! [--cache FILE | --no-cache] [--accept-waivers]`
//!
//! Exit codes: 0 clean, 1 unwaived findings, 2 waiver budget grew
//! without `--accept-waivers`, 3 bad invocation.
//!
//! The report file doubles as the committed waiver baseline: a run that
//! passes rewrites it; a run that would *increase* any rule's waived
//! count fails unless the increase is explicitly accepted, so new
//! waivers are always a reviewed, deliberate act. The ratchet is
//! per-rule — an R1 decrease can no longer mask an R4 increase.
//!
//! `--cache` points at the content-hash result cache (default
//! `target/vapro-lint-cache.tsv` under the root); unchanged files skip
//! lexing and extraction. `--sarif` additionally writes a SARIF 2.1 log
//! for code scanning.

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use vapro_lint::report::{baseline_rule_waived, baseline_waived, render_json};
use vapro_lint::sarif::render_sarif;
use vapro_lint::{run_workspace_cached, WorkspaceReport};

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut report_path = PathBuf::from("LINT_report.json");
    let mut sarif_path: Option<PathBuf> = None;
    let mut cache_path: Option<PathBuf> = None;
    let mut no_cache = false;
    let mut accept_waivers = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a value"),
            },
            "--report" => match args.next() {
                Some(v) => report_path = PathBuf::from(v),
                None => return usage("--report needs a value"),
            },
            "--sarif" => match args.next() {
                Some(v) => sarif_path = Some(PathBuf::from(v)),
                None => return usage("--sarif needs a value"),
            },
            "--cache" => match args.next() {
                Some(v) => cache_path = Some(PathBuf::from(v)),
                None => return usage("--cache needs a value"),
            },
            "--no-cache" => no_cache = true,
            "--accept-waivers" => accept_waivers = true,
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    let abs = |p: PathBuf| if p.is_absolute() { p } else { root.join(p) };
    report_path = abs(report_path);
    sarif_path = sarif_path.map(abs);
    let cache_path = if no_cache {
        None
    } else {
        Some(abs(cache_path.unwrap_or_else(|| PathBuf::from("target/vapro-lint-cache.tsv"))))
    };

    let report: WorkspaceReport = run_workspace_cached(&root, cache_path.as_deref());
    let unwaived =
        report.findings.iter().filter(|f| f.finding.waived.is_none()).count();
    let waived = report.findings.len() - unwaived;

    for f in &report.findings {
        let fin = &f.finding;
        match &fin.waived {
            None => eprintln!("{}: {}:{}: {}", fin.rule, fin.file, fin.line, fin.message),
            Some(reason) => {
                eprintln!("{}: {}:{}: waived — {}", fin.rule, fin.file, fin.line, reason)
            }
        }
    }
    for e in &report.entries {
        eprintln!(
            "vapro-lint: {} {}: {} reachable fns, {} unwaived, {} waived",
            e.stat.rule, e.stat.entry, e.stat.reachable_fns, e.unwaived, e.waived
        );
    }
    eprintln!(
        "vapro-lint: {} files ({} cached), {} unwaived, {} waived",
        report.files_scanned, report.cache_hits, unwaived, waived
    );

    if let Some(path) = &sarif_path {
        if let Err(e) = fs::write(path, render_sarif(&report)) {
            eprintln!("vapro-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(3);
        }
        eprintln!("vapro-lint: SARIF written to {}", path.display());
    }

    if unwaived > 0 {
        eprintln!("vapro-lint: FAIL (unwaived findings above)");
        return ExitCode::from(1);
    }

    // Per-rule ratchet: every rule's waived count is its own budget.
    let baseline_text = fs::read_to_string(&report_path).ok();
    if let Some(text) = &baseline_text {
        let prev_rules = baseline_rule_waived(text);
        let mut grew: Vec<String> = Vec::new();
        let mut current: std::collections::BTreeMap<&str, u64> =
            std::collections::BTreeMap::new();
        for f in &report.findings {
            if f.finding.waived.is_some() {
                *current.entry(f.finding.rule.as_str()).or_insert(0) += 1;
            }
        }
        for (rule, now) in &current {
            let prev = prev_rules.get(*rule).copied().unwrap_or(0);
            if *now > prev {
                grew.push(format!("{rule} {prev} → {now}"));
            }
        }
        // A baseline without a rules section still ratchets the total.
        if prev_rules.is_empty() {
            if let Some(prev) = baseline_waived(text) {
                if (waived as u64) > prev {
                    grew.push(format!("total {prev} → {waived}"));
                }
            }
        }
        if !grew.is_empty() && !accept_waivers {
            eprintln!(
                "vapro-lint: FAIL — waiver budget grew ({}); \
                 rerun with --accept-waivers to accept the new budget",
                grew.join(", ")
            );
            return ExitCode::from(2);
        }
    }

    let json = render_json(&report);
    if let Err(e) = fs::write(&report_path, json) {
        eprintln!("vapro-lint: cannot write {}: {e}", report_path.display());
        return ExitCode::from(3);
    }
    eprintln!("vapro-lint: OK — report written to {}", report_path.display());
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    eprintln!("vapro-lint: {err}");
    eprintln!(
        "usage: vapro-lint [--root DIR] [--report FILE] [--sarif FILE] \
         [--cache FILE | --no-cache] [--accept-waivers]"
    );
    ExitCode::from(3)
}
