//! `vapro-lint` driver.
//!
//! Usage: `vapro-lint [--root DIR] [--report FILE] [--accept-waivers]`
//!
//! Exit codes: 0 clean, 1 unwaived findings, 2 waiver budget grew
//! without `--accept-waivers`, 3 bad invocation.
//!
//! The report file doubles as the committed waiver baseline: a run that
//! passes rewrites it; a run that would *increase* the waived count
//! fails unless the increase is explicitly accepted, so new waivers are
//! always a reviewed, deliberate act.

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use vapro_lint::report::{baseline_waived, render_json};
use vapro_lint::run_workspace;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut report_path = PathBuf::from("LINT_report.json");
    let mut accept_waivers = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a value"),
            },
            "--report" => match args.next() {
                Some(v) => report_path = PathBuf::from(v),
                None => return usage("--report needs a value"),
            },
            "--accept-waivers" => accept_waivers = true,
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    if !report_path.is_absolute() {
        report_path = root.join(report_path);
    }

    let findings = run_workspace(&root);
    let unwaived: Vec<_> = findings.iter().filter(|f| f.waived.is_none()).collect();
    let waived = findings.len() - unwaived.len();

    for f in &findings {
        match &f.waived {
            None => eprintln!("{}: {}:{}: {}", f.rule, f.file, f.line, f.message),
            Some(reason) => {
                eprintln!("{}: {}:{}: waived — {}", f.rule, f.file, f.line, reason)
            }
        }
    }
    eprintln!("vapro-lint: {} unwaived, {} waived", unwaived.len(), waived);

    if !unwaived.is_empty() {
        eprintln!("vapro-lint: FAIL (unwaived findings above)");
        return ExitCode::from(1);
    }

    let baseline = fs::read_to_string(&report_path).ok().and_then(|s| baseline_waived(&s));
    if let Some(prev) = baseline {
        if (waived as u64) > prev && !accept_waivers {
            eprintln!(
                "vapro-lint: FAIL — waiver budget grew from {prev} to {waived}; \
                 rerun with --accept-waivers to accept the new budget"
            );
            return ExitCode::from(2);
        }
    }

    let json = render_json(&findings);
    if let Err(e) = fs::write(&report_path, json) {
        eprintln!("vapro-lint: cannot write {}: {e}", report_path.display());
        return ExitCode::from(3);
    }
    eprintln!("vapro-lint: OK — report written to {}", report_path.display());
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    eprintln!("vapro-lint: {err}");
    eprintln!("usage: vapro-lint [--root DIR] [--report FILE] [--accept-waivers]");
    ExitCode::from(3)
}
