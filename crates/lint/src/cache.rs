//! Per-file result caching keyed by content hash.
//!
//! A cache entry stores everything `scan_file_deferred` produces for one
//! file — local findings, the waiver table, and the item index — so an
//! unchanged file skips lexing and extraction entirely on the next run.
//! The key is FNV-1a over the file bytes; the whole cache is salted with
//! a schema version and a fingerprint of the active `LintConfig`, so a
//! rule-scope change invalidates every entry at once. The global
//! call-graph phase is always recomputed: it is cheap relative to
//! lexing, and its inputs span files.
//!
//! The format is a line-oriented, tab-separated text file (hand-rolled:
//! the lint crate stays serde-free). Unreadable or version-mismatched
//! caches are silently treated as empty — the cache can only make the
//! run faster, never change its result.

use std::collections::HashMap;
use std::fs;
use std::path::Path;

use crate::items::{CallSite, FieldDef, FnItem, LockRegion, Recv, Site};
use crate::rules::{FileScan, Finding, LintConfig, Waiver};

/// Bump when the serialized shape changes.
const VERSION: &str = "vapro-lint-cache/2";

/// FNV-1a over arbitrary bytes — same construction the fleet router
/// uses for shard keys.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Salt derived from the rule configuration: any scope change must miss.
pub fn config_fingerprint(cfg: &LintConfig) -> u64 {
    fnv1a(format!("{cfg:?}").as_bytes())
}

#[derive(Default)]
pub struct Cache {
    entries: HashMap<(String, u64), FileScan>,
    pub hits: usize,
    pub misses: usize,
}

impl Cache {
    /// Load a cache written by [`Cache::store`]. Anything unexpected —
    /// missing file, stale version, wrong config salt, torn write —
    /// yields an empty cache.
    pub(crate) fn load(path: &Path, cfg: &LintConfig) -> Cache {
        let Ok(text) = fs::read_to_string(path) else { return Cache::default() };
        let mut lines = text.lines();
        let expected = format!("{VERSION}\t{:016x}", config_fingerprint(cfg));
        if lines.next() != Some(expected.as_str()) {
            return Cache::default();
        }
        let mut cache = Cache::default();
        let mut cur: Option<((String, u64), FileScan)> = None;
        for line in lines {
            let fields: Vec<String> = decode_fields(line);
            let Some(tag) = fields.first() else { continue };
            if tag == "FILE" {
                if let Some(entry) = cur.take() {
                    cache.entries.insert(entry.0, entry.1);
                }
                let (Some(rel), Some(hash)) = (fields.get(1), fields.get(2)) else {
                    return Cache::default();
                };
                let Ok(hash) = u64::from_str_radix(hash, 16) else {
                    return Cache::default();
                };
                cur = Some(((rel.clone(), hash), FileScan::default()));
                continue;
            }
            let Some((_, scan)) = cur.as_mut() else { return Cache::default() };
            if !decode_record(tag, &fields, scan) {
                return Cache::default();
            }
        }
        if let Some(entry) = cur.take() {
            cache.entries.insert(entry.0, entry.1);
        }
        cache
    }

    pub(crate) fn get(&mut self, rel: &str, hash: u64) -> Option<FileScan> {
        match self.entries.get(&(rel.to_string(), hash)) {
            Some(scan) => {
                self.hits += 1;
                Some(scan.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Write the cache for the given scans (pairs of `(rel, hash)` keys
    /// and their results). Failures are ignored: a read-only target
    /// directory costs speed, not correctness.
    pub(crate) fn store(path: &Path, cfg: &LintConfig, scans: &[((String, u64), &FileScan)]) {
        let mut out = String::new();
        out.push_str(&format!("{VERSION}\t{:016x}\n", config_fingerprint(cfg)));
        for ((rel, hash), scan) in scans {
            encode_line(&mut out, &["FILE", rel, &format!("{hash:016x}")]);
            encode_scan(&mut out, scan);
        }
        if let Some(parent) = path.parent() {
            let _ = fs::create_dir_all(parent);
        }
        let _ = fs::write(path, out);
    }
}

fn encode_scan(out: &mut String, scan: &FileScan) {
    for f in &scan.findings {
        encode_line(
            out,
            &[
                "FIND",
                &f.rule,
                &f.file,
                &f.line.to_string(),
                f.waived.as_deref().unwrap_or("\u{1}"),
                &f.message,
            ],
        );
    }
    for w in &scan.waivers {
        encode_line(
            out,
            &[
                "WAIV",
                &w.rule,
                &w.line.to_string(),
                &w.target.map(|t| t.to_string()).unwrap_or_else(|| "-".into()),
                if w.used { "1" } else { "0" },
                if w.forbidden { "1" } else { "0" },
                &w.reason,
            ],
        );
    }
    for fd in &scan.index.fields {
        encode_line(out, &["FIELD", &fd.owner, &fd.field, &fd.ty]);
    }
    for (name, target) in &scan.index.aliases {
        encode_line(out, &["ALIAS", name, target]);
    }
    for f in &scan.index.fns {
        encode_line(
            out,
            &[
                "FN",
                &f.name,
                f.impl_type.as_deref().unwrap_or("\u{1}"),
                &f.line.to_string(),
                if f.test { "1" } else { "0" },
                if f.reserves { "1" } else { "0" },
            ],
        );
        for (n, t) in &f.locals {
            encode_line(out, &["LOCAL", n, t]);
        }
        for c in &f.calls {
            encode_call(out, "CALL", c);
        }
        for s in &f.panic_sites {
            encode_line(out, &["PANIC", &s.line.to_string(), &s.what]);
        }
        for s in &f.alloc_sites {
            encode_line(out, &["ALLOC", &s.line.to_string(), &s.what]);
        }
        for s in &f.push_loops {
            encode_line(out, &["PUSHL", &s.line.to_string(), &s.what]);
        }
        for r in &f.lock_regions {
            encode_line(out, &["REGION", &r.lock_id, &r.line.to_string()]);
            for c in &r.calls {
                encode_call(out, "RCALL", c);
            }
            for s in &r.rayon_sites {
                encode_line(out, &["RRAY", &s.line.to_string(), &s.what]);
            }
            for s in &r.send_sites {
                encode_line(out, &["RSEND", &s.line.to_string(), &s.what]);
            }
            for (id, line) in &r.nested_locks {
                encode_line(out, &["RNEST", id, &line.to_string()]);
            }
        }
    }
}

fn encode_call(out: &mut String, tag: &str, c: &CallSite) {
    let (kind, detail) = match &c.recv {
        Recv::Free { qualifier } => ("free", qualifier.clone().unwrap_or_else(|| "\u{1}".into())),
        Recv::Chain(chain) => ("chain", chain.join("\u{2}")),
        Recv::Opaque => ("opaque", String::new()),
        Recv::FnRef => ("fnref", String::new()),
    };
    encode_line(out, &[tag, &c.line.to_string(), &c.callee, kind, &detail]);
}

/// Apply one record line to the in-progress scan. Returns false on any
/// malformed record (the whole cache is then discarded).
fn decode_record(tag: &str, fields: &[String], scan: &mut FileScan) -> bool {
    let get = |i: usize| fields.get(i).map(|s| s.as_str());
    let num = |i: usize| get(i).and_then(|s| s.parse::<u32>().ok());
    let flag = |i: usize| get(i) == Some("1");
    let opt = |i: usize| match get(i) {
        Some("\u{1}") | None => None,
        Some(s) => Some(s.to_string()),
    };
    match tag {
        "FIND" => {
            let (Some(rule), Some(file), Some(line), Some(message)) =
                (get(1), get(2), num(3), get(5))
            else {
                return false;
            };
            scan.findings.push(Finding {
                rule: rule.into(),
                file: file.into(),
                line,
                message: message.into(),
                waived: opt(4),
            });
        }
        "WAIV" => {
            let (Some(rule), Some(line), Some(target), Some(reason)) =
                (get(1), num(2), get(3), get(6))
            else {
                return false;
            };
            scan.waivers.push(Waiver {
                rule: rule.into(),
                reason: reason.into(),
                line,
                target: if target == "-" { None } else { target.parse().ok() },
                used: flag(4),
                forbidden: flag(5),
            });
        }
        "FIELD" => {
            let (Some(owner), Some(field), Some(ty)) = (get(1), get(2), get(3)) else {
                return false;
            };
            scan.index.fields.push(FieldDef {
                owner: owner.into(),
                field: field.into(),
                ty: ty.into(),
            });
        }
        "ALIAS" => {
            let (Some(name), Some(target)) = (get(1), get(2)) else { return false };
            scan.index.aliases.push((name.into(), target.into()));
        }
        "FN" => {
            let (Some(name), Some(line)) = (get(1), num(3)) else { return false };
            scan.index.fns.push(FnItem {
                name: name.into(),
                impl_type: opt(2),
                line,
                test: flag(4),
                reserves: flag(5),
                ..FnItem::default()
            });
        }
        "LOCAL" | "CALL" | "PANIC" | "ALLOC" | "PUSHL" | "REGION" => {
            let Some(f) = scan.index.fns.last_mut() else { return false };
            match tag {
                "LOCAL" => {
                    let (Some(n), Some(t)) = (get(1), get(2)) else { return false };
                    f.locals.push((n.into(), t.into()));
                }
                "CALL" => match decode_call(fields) {
                    Some(c) => f.calls.push(c),
                    None => return false,
                },
                "PANIC" | "ALLOC" | "PUSHL" => {
                    let (Some(line), Some(what)) = (num(1), get(2)) else { return false };
                    let site = Site { line, what: what.into() };
                    match tag {
                        "PANIC" => f.panic_sites.push(site),
                        "ALLOC" => f.alloc_sites.push(site),
                        _ => f.push_loops.push(site),
                    }
                }
                _ => {
                    let (Some(id), Some(line)) = (get(1), num(2)) else { return false };
                    f.lock_regions.push(LockRegion {
                        lock_id: id.into(),
                        line,
                        ..LockRegion::default()
                    });
                }
            }
        }
        "RCALL" | "RRAY" | "RSEND" | "RNEST" => {
            let Some(r) = scan
                .index
                .fns
                .last_mut()
                .and_then(|f| f.lock_regions.last_mut())
            else {
                return false;
            };
            match tag {
                "RCALL" => match decode_call(fields) {
                    Some(c) => r.calls.push(c),
                    None => return false,
                },
                "RNEST" => {
                    let (Some(id), Some(line)) = (get(1), num(2)) else { return false };
                    r.nested_locks.push((id.into(), line));
                }
                _ => {
                    let (Some(line), Some(what)) = (num(1), get(2)) else { return false };
                    let site = Site { line, what: what.into() };
                    if tag == "RRAY" {
                        r.rayon_sites.push(site);
                    } else {
                        r.send_sites.push(site);
                    }
                }
            }
        }
        _ => return false,
    }
    true
}

fn decode_call(fields: &[String]) -> Option<CallSite> {
    let line: u32 = fields.get(1)?.parse().ok()?;
    let callee = fields.get(2)?.clone();
    let recv = match fields.get(3)?.as_str() {
        "free" => Recv::Free {
            qualifier: match fields.get(4).map(|s| s.as_str()) {
                Some("\u{1}") | None => None,
                Some(q) => Some(q.to_string()),
            },
        },
        "chain" => Recv::Chain(
            fields.get(4)?.split('\u{2}').map(|s| s.to_string()).collect(),
        ),
        "opaque" => Recv::Opaque,
        "fnref" => Recv::FnRef,
        _ => return None,
    };
    Some(CallSite { callee, recv, line })
}

fn encode_line(out: &mut String, fields: &[&str]) {
    for (i, f) in fields.iter().enumerate() {
        if i > 0 {
            out.push('\t');
        }
        for c in f.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '\t' => out.push_str("\\t"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                c => out.push(c),
            }
        }
    }
    out.push('\n');
}

fn decode_fields(line: &str) -> Vec<String> {
    let mut fields = vec![String::new()];
    let mut chars = line.chars();
    while let Some(c) = chars.next() {
        match c {
            '\t' => fields.push(String::new()),
            '\\' => {
                let Some(f) = fields.last_mut() else { break };
                match chars.next() {
                    Some('t') => f.push('\t'),
                    Some('n') => f.push('\n'),
                    Some('r') => f.push('\r'),
                    Some('\\') => f.push('\\'),
                    Some(other) => f.push(other),
                    None => {}
                }
            }
            c => {
                if let Some(f) = fields.last_mut() {
                    f.push(c);
                }
            }
        }
    }
    fields
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::scan_file_deferred;

    #[test]
    fn round_trips_a_real_scan() {
        let src = "
            struct S { inner: Vec<u32>, m: Mutex<u32> }
            impl S {
                fn f(&self, n: usize) {
                    let mut out = Vec::new();
                    for i in 0..n { out.push(i); }
                    let g = self.m.lock();
                    helper(n); // vapro-lint: allow(R7, test waiver)
                    drop(g);
                    self.inner.clone();
                }
            }
            fn helper(_n: usize) {}
        ";
        let cfg = LintConfig {
            r1_files: vec!["s.rs".into()],
            ..LintConfig::default()
        };
        let scan = scan_file_deferred("s.rs", src, &cfg);
        let dir = std::env::temp_dir().join("vapro-lint-cache-test");
        let path = dir.join("cache.tsv");
        let key = ("s.rs".to_string(), fnv1a(src.as_bytes()));
        Cache::store(&path, &cfg, &[(key.clone(), &scan)]);
        let mut loaded = Cache::load(&path, &cfg);
        let hit = loaded.get("s.rs", key.1).expect("cache hit");
        assert_eq!(hit.findings, scan.findings);
        assert_eq!(hit.waivers, scan.waivers);
        assert_eq!(hit.index.fields, scan.index.fields);
        assert_eq!(hit.index.fns.len(), scan.index.fns.len());
        let (a, b) = (&hit.index.fns[0], &scan.index.fns[0]);
        assert_eq!(a.calls, b.calls);
        assert_eq!(a.lock_regions.len(), b.lock_regions.len());
        assert_eq!(a.lock_regions[0].calls, b.lock_regions[0].calls);
        assert_eq!(a.push_loops, b.push_loops);
        // Wrong config salt must miss.
        let other = LintConfig::default();
        let mut stale = Cache::load(&path, &other);
        assert!(stale.get("s.rs", key.1).is_none());
    }

    #[test]
    fn corrupt_cache_is_empty_not_fatal() {
        let dir = std::env::temp_dir().join("vapro-lint-cache-test2");
        let path = dir.join("cache.tsv");
        let _ = std::fs::create_dir_all(&dir);
        let cfg = LintConfig::default();
        std::fs::write(
            &path,
            format!("{VERSION}\t{:016x}\nGARBAGE\trecord\n", config_fingerprint(&cfg)),
        )
        .unwrap();
        let mut c = Cache::load(&path, &cfg);
        assert!(c.get("x.rs", 1).is_none());
    }
}
