//! vapro-lint: the workspace static-analysis pass.
//!
//! PRs 1–4 proved two invariants dynamically — zero full-population
//! `Fragment` clones on the detection/diagnosis hot paths (runtime clone
//! counters) and no panics on hostile wire bytes (byte-mutation
//! proptests). This crate re-states both as *source-level* rules that
//! every future change is checked against, plus a float-hygiene rule for
//! the numeric code. See `rules` for the rule definitions and the
//! waiver grammar, `report` for the `LINT_report.json` budget format.
//!
//! The pass is built on a small self-contained lexer rather than `syn`:
//! the workspace builds fully offline against vendored stubs, and the
//! rules only need token patterns plus function-scope attribution, which
//! `lexer` + `analyze` provide exactly (strings, comments, lifetimes and
//! nested block comments are handled; a banned token spelled inside a
//! string can never fire).

pub mod analyze;
pub mod lexer;
pub mod report;
pub mod rules;

use std::fs;
use std::path::{Path, PathBuf};

use rules::{Finding, FnScope, LintConfig};

/// The checked-in rule scope for this workspace.
///
/// * R1 covers the hot-path modules named by the design docs:
///   `detect/`, `diagnose/`, `wire.rs`, `clustering.rs`, `columnar.rs`.
/// * R2 covers the wire decode functions, the server ingest admission
///   functions, the fleet plane's admission/routing functions and the
///   VOPR admission oracle (`crates/vopr/src/model.rs` — it faces the
///   same hostile deliveries the server does, and an oracle that
///   panics cannot falsify anything); the arithmetic sub-rule applies
///   to the wire decoders, where attacker-controlled lengths feed size
///   math.
/// * `wire.rs` accepts no waivers in its R2 scope at all: the decode
///   path must be structurally total.
/// * R3 covers normalization, heatmap, region ranking and clustering —
///   everywhere a float ordering decides detection output.
/// * R4 covers the lane-building modules (`columnar.rs`,
///   `clustering.rs`) and the pipelined analysis stage
///   (`detect/stage.rs`, whose reorder buffer and worker queues sit on
///   the per-window hot path): per-element pushes in loops must be
///   preceded by a capacity reservation somewhere in the same function.
pub fn workspace_config() -> LintConfig {
    let wire_fns = [
        "take",
        "u8",
        "u16",
        "u32",
        "u64",
        "f64",
        "array",
        "decode",
        "decode_frame",
        "decode_payload",
        "decode_stream",
        "kind_from_byte",
        "from_json_bytes",
    ];
    let server_fns = ["push_encoded", "admit", "is_duplicate", "gaps", "count_decode_error"];
    let fleet_fns = [
        "push_encoded",
        "push_batch",
        "register_job",
        "shard_of",
        "drain",
        "refresh_in_flight",
    ];
    let vopr_model_fns = [
        "accept",
        "predict",
        "classify",
        "absorb",
        "record_birth",
        "watermark_ns",
        "update_liveness",
        "outcome_name",
    ];
    let wire_scope = FnScope {
        file: "crates/core/src/wire.rs".into(),
        funcs: wire_fns.iter().map(|s| s.to_string()).collect(),
    };
    LintConfig {
        r1_files: vec![
            "crates/core/src/detect/".into(),
            "crates/core/src/diagnose/".into(),
            "crates/core/src/wire.rs".into(),
            "crates/core/src/clustering.rs".into(),
            "crates/core/src/columnar.rs".into(),
        ],
        r2_scopes: vec![
            wire_scope.clone(),
            FnScope {
                file: "crates/core/src/detect/server.rs".into(),
                funcs: server_fns.iter().map(|s| s.to_string()).collect(),
            },
            FnScope {
                file: "crates/core/src/fleet.rs".into(),
                funcs: fleet_fns.iter().map(|s| s.to_string()).collect(),
            },
            FnScope {
                file: "crates/vopr/src/model.rs".into(),
                funcs: vopr_model_fns.iter().map(|s| s.to_string()).collect(),
            },
        ],
        r2_arith: vec![wire_scope],
        r2_no_waiver_files: vec!["crates/core/src/wire.rs".into()],
        r3_files: vec![
            "crates/core/src/detect/normalize.rs".into(),
            "crates/core/src/detect/heatmap.rs".into(),
            "crates/core/src/detect/region.rs".into(),
            "crates/core/src/clustering.rs".into(),
        ],
        r4_files: vec![
            "crates/core/src/columnar.rs".into(),
            "crates/core/src/clustering.rs".into(),
            "crates/core/src/detect/stage.rs".into(),
        ],
    }
}

/// Collect the workspace source files to scan: every `.rs` under
/// `crates/*/src`, excluding vendored code, integration tests and
/// fixtures. Returned as sorted `(workspace-relative, absolute)` pairs
/// so runs are deterministic.
pub fn collect_sources(root: &Path) -> Vec<(String, PathBuf)> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    let Ok(entries) = fs::read_dir(&crates) else { return out };
    let mut crate_dirs: Vec<PathBuf> =
        entries.flatten().map(|e| e.path()).filter(|p| p.is_dir()).collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        walk(&dir.join("src"), root, &mut out);
    }
    out.sort();
    out
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<(String, PathBuf)>) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(name.as_ref(), "tests" | "fixtures" | "benches" | "examples") {
                continue;
            }
            walk(&path, root, out);
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push((rel, path));
        }
    }
}

/// Scan the whole workspace rooted at `root` with the checked-in
/// configuration. Unreadable files become `LINT` findings rather than
/// panics.
pub fn run_workspace(root: &Path) -> Vec<Finding> {
    let cfg = workspace_config();
    let mut findings = Vec::new();
    for (rel, path) in collect_sources(root) {
        match fs::read_to_string(&path) {
            Ok(src) => findings.extend(rules::scan_file(&rel, &src, &cfg)),
            Err(e) => findings.push(Finding {
                rule: rules::META_RULE.into(),
                file: rel,
                line: 0,
                message: format!("unreadable source file: {e}"),
                waived: None,
            }),
        }
    }
    findings
}
