//! vapro-lint: the workspace static-analysis pass.
//!
//! PRs 1–4 proved two invariants dynamically — zero full-population
//! `Fragment` clones on the detection/diagnosis hot paths (runtime clone
//! counters) and no panics on hostile wire bytes (byte-mutation
//! proptests). This crate re-states both as *source-level* rules that
//! every future change is checked against, plus a float-hygiene rule for
//! the numeric code. See `rules` for the per-body rule definitions and
//! the waiver grammar, `items`/`callgraph` for the whole-workspace item
//! index and conservative call graph behind the transitive rules
//! (R5 panic-freedom, R6 hot-path allocation, R7 lock hygiene),
//! `report` for the `LINT_report.json` budget format, `sarif` for the
//! code-scanning output, and `cache` for the content-hash result cache.
//!
//! The pass is built on a small self-contained lexer rather than `syn`:
//! the workspace builds fully offline against vendored stubs, and the
//! rules only need token patterns plus function-scope attribution, which
//! `lexer` + `analyze` provide exactly (strings, comments, lifetimes and
//! nested block comments are handled; a banned token spelled inside a
//! string can never fire). Per-file scans run in parallel on the
//! vendored rayon pool; the call-graph phase is global and sequential.

pub mod analyze;
pub mod cache;
pub mod callgraph;
pub mod items;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod sarif;

use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};

use rayon::prelude::*;

pub use callgraph::{EntryStat, Hop};
use rules::{FileScan, Finding, FnScope, LintConfig};

/// One finding plus (for transitive rules) the call path from the entry
/// point to the function containing the site.
#[derive(Debug, Clone)]
pub struct ReportFinding {
    pub finding: Finding,
    pub path: Vec<Hop>,
}

/// Everything one workspace run produced.
#[derive(Debug, Clone, Default)]
pub struct WorkspaceReport {
    pub findings: Vec<ReportFinding>,
    /// Per-entry-point reachability + finding counts (R5/R6).
    pub entries: Vec<EntryLine>,
    pub files_scanned: usize,
    pub cache_hits: usize,
}

/// An [`EntryStat`] with waiver-resolved finding counts.
#[derive(Debug, Clone)]
pub struct EntryLine {
    pub stat: EntryStat,
    pub unwaived: usize,
    pub waived: usize,
}

/// The checked-in rule scope for this workspace.
///
/// * R1 covers the hot-path modules named by the design docs:
///   `detect/`, `diagnose/`, `wire.rs`, `clustering.rs`, `columnar.rs`.
/// * R2 covers the wire decode functions, the server ingest admission
///   functions, the fleet plane's admission/routing functions and the
///   VOPR admission oracle (`crates/vopr/src/model.rs` — it faces the
///   same hostile deliveries the server does, and an oracle that
///   panics cannot falsify anything); the arithmetic sub-rule applies
///   to the wire decoders, where attacker-controlled lengths feed size
///   math.
/// * `wire.rs` accepts no waivers in its R2 scope at all: the decode
///   path must be structurally total.
/// * R3 covers normalization, heatmap, region ranking and clustering —
///   everywhere a float ordering decides detection output — plus the
///   `crates/stats` estimators and the bench variance gates
///   (noise-fraction and trend comparisons), where a NaN comparison
///   silently corrupts a CI verdict.
/// * R4 covers the lane-building modules (`columnar.rs`,
///   `clustering.rs`) and the pipelined analysis stage
///   (`detect/stage.rs`, whose reorder buffer and worker queues sit on
///   the per-window hot path): per-element pushes in loops must be
///   preceded by a capacity reservation somewhere in the same function.
/// * R5 extends R2's panic-freedom *transitively*: the wire-decode,
///   server-admission, fleet-routing and VOPR-oracle entry points must
///   be panic-free across their whole reachable call trees. The walk
///   stops at the sealed-data frontier (`analyze_view_columnar`,
///   `refill_from_merged`): past admission, data is validated and the
///   analysis tree is covered dynamically by chaos/VOPR/soak instead.
/// * R6 extends R1/R4 along the steady-state window-close tree rooted
///   at `close_ready`; files already under per-body R1/R4 budgets are
///   skipped so one allocation never needs two waivers.
/// * R7 applies workspace-wide: no lock guard held across a rayon
///   region, a channel send, or a call into another lock-taking
///   function, and no lock-order cycles.
pub fn workspace_config() -> LintConfig {
    let wire_fns = [
        "take",
        "u8",
        "u16",
        "u32",
        "u64",
        "f64",
        "array",
        "decode",
        "decode_frame",
        "decode_payload",
        "decode_stream",
        "kind_from_byte",
        "from_json_bytes",
    ];
    let server_fns = ["push_encoded", "admit", "is_duplicate", "gaps", "count_decode_error"];
    let fleet_fns = [
        "push_encoded",
        "push_batch",
        "register_job",
        "shard_of",
        "drain",
        "refresh_in_flight",
    ];
    let vopr_model_fns = [
        "accept",
        "predict",
        "classify",
        "absorb",
        "record_birth",
        "watermark_ns",
        "update_liveness",
        "outcome_name",
    ];
    let wire_scope = FnScope {
        file: "crates/core/src/wire.rs".into(),
        funcs: wire_fns.iter().map(|s| s.to_string()).collect(),
    };
    let server_scope = FnScope {
        file: "crates/core/src/detect/server.rs".into(),
        funcs: server_fns.iter().map(|s| s.to_string()).collect(),
    };
    let fleet_scope = FnScope {
        file: "crates/core/src/fleet.rs".into(),
        funcs: fleet_fns.iter().map(|s| s.to_string()).collect(),
    };
    let vopr_scope = FnScope {
        file: "crates/vopr/src/model.rs".into(),
        funcs: vopr_model_fns.iter().map(|s| s.to_string()).collect(),
    };
    let r1_files = vec![
        "crates/core/src/detect/".to_string(),
        "crates/core/src/diagnose/".to_string(),
        "crates/core/src/wire.rs".to_string(),
        "crates/core/src/clustering.rs".to_string(),
        "crates/core/src/columnar.rs".to_string(),
    ];
    let r4_files = vec![
        "crates/core/src/columnar.rs".to_string(),
        "crates/core/src/clustering.rs".to_string(),
        "crates/core/src/detect/stage.rs".to_string(),
    ];
    let mut r6_budgeted = r1_files.clone();
    r6_budgeted.extend(r4_files.iter().cloned());
    LintConfig {
        r1_files,
        r2_scopes: vec![
            wire_scope.clone(),
            server_scope.clone(),
            fleet_scope.clone(),
            vopr_scope.clone(),
        ],
        r2_arith: vec![wire_scope.clone()],
        r2_no_waiver_files: vec!["crates/core/src/wire.rs".into()],
        r3_files: vec![
            "crates/core/src/detect/normalize.rs".into(),
            "crates/core/src/detect/heatmap.rs".into(),
            "crates/core/src/detect/region.rs".into(),
            "crates/core/src/clustering.rs".into(),
            "crates/stats/src/".into(),
            "crates/bench/src/stats.rs".into(),
            "crates/bench/src/regression.rs".into(),
        ],
        r4_files,
        r5_entries: vec![wire_scope, server_scope, fleet_scope, vopr_scope],
        r5_frontier: vec!["analyze_view_columnar".into(), "refill_from_merged".into()],
        r6_entries: vec![FnScope {
            file: "crates/core/src/detect/server.rs".into(),
            funcs: vec!["close_ready".into()],
        }],
        r6_budgeted_files: r6_budgeted,
        r7_files: vec!["crates/".into()],
    }
}

/// Collect the workspace source files to scan: every `.rs` under
/// `crates/*/src`, excluding vendored code, integration tests and
/// fixtures. Returned as sorted `(workspace-relative, absolute)` pairs
/// so runs are deterministic.
pub fn collect_sources(root: &Path) -> Vec<(String, PathBuf)> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    let Ok(entries) = fs::read_dir(&crates) else { return out };
    let mut crate_dirs: Vec<PathBuf> =
        entries.flatten().map(|e| e.path()).filter(|p| p.is_dir()).collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        walk(&dir.join("src"), root, &mut out);
    }
    out.sort();
    out
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<(String, PathBuf)>) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(name.as_ref(), "tests" | "fixtures" | "benches" | "examples") {
                continue;
            }
            walk(&path, root, out);
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push((rel, path));
        }
    }
}

/// Scan the whole workspace rooted at `root` with the checked-in
/// configuration. `cache_path`, when given, is read before and written
/// after the per-file phase. Unreadable files become `LINT` findings
/// rather than panics.
pub fn run_workspace_cached(root: &Path, cache_path: Option<&Path>) -> WorkspaceReport {
    let cfg = workspace_config();
    let mut meta: Vec<ReportFinding> = Vec::new();
    let mut inputs: Vec<(String, String, u64)> = Vec::new();
    for (rel, path) in collect_sources(root) {
        match fs::read_to_string(&path) {
            Ok(src) => {
                let hash = cache::fnv1a(src.as_bytes());
                inputs.push((rel, src, hash));
            }
            Err(e) => meta.push(ReportFinding {
                finding: Finding {
                    rule: rules::META_RULE.into(),
                    file: rel,
                    line: 0,
                    message: format!("unreadable source file: {e}"),
                    waived: None,
                },
                path: Vec::new(),
            }),
        }
    }

    let mut loaded = cache_path.map(|p| cache::Cache::load(p, &cfg));
    // Pull cache hits first (sequential: the cache is one mutable map),
    // then fan the misses out over the rayon pool.
    let mut scans: Vec<Option<FileScan>> = Vec::with_capacity(inputs.len());
    for (rel, _, hash) in &inputs {
        scans.push(loaded.as_mut().and_then(|c| c.get(rel, *hash)));
    }
    let cache_hits = scans.iter().filter(|s| s.is_some()).count();
    let missing: Vec<(usize, &str, &str)> = inputs
        .iter()
        .enumerate()
        .filter(|(i, _)| scans[*i].is_none())
        .map(|(i, (rel, src, _))| (i, rel.as_str(), src.as_str()))
        .collect();
    let fresh: Vec<(usize, FileScan)> = missing
        .into_par_iter()
        .map(|(i, rel, src)| (i, rules::scan_file_deferred(rel, src, &cfg)))
        .collect();
    for (i, scan) in fresh {
        scans[i] = Some(scan);
    }
    let keyed: Vec<((String, u64), FileScan)> = inputs
        .into_iter()
        .zip(scans)
        .map(|((rel, _, hash), scan)| ((rel, hash), scan.unwrap_or_default()))
        .collect();
    if let Some(path) = cache_path {
        let refs: Vec<((String, u64), &FileScan)> =
            keyed.iter().map(|(k, s)| (k.clone(), s)).collect();
        cache::Cache::store(path, &cfg, &refs);
    }
    let scans: Vec<(String, FileScan)> =
        keyed.into_iter().map(|((rel, _), scan)| (rel, scan)).collect();
    finish_workspace(scans, meta, &cfg, cache_hits)
}

/// Run the full pipeline over in-memory sources — used by the fixture
/// tests for the transitive rules.
pub fn run_files(files: &[(&str, &str)], cfg: &LintConfig) -> WorkspaceReport {
    let scans: Vec<(String, FileScan)> = files
        .iter()
        .map(|(rel, src)| (rel.to_string(), rules::scan_file_deferred(rel, src, cfg)))
        .collect();
    finish_workspace(scans, Vec::new(), cfg, 0)
}

/// Scan the whole workspace with no cache.
pub fn run_workspace(root: &Path) -> WorkspaceReport {
    run_workspace_cached(root, None)
}

/// The global phase: transitive rules over the merged item index,
/// waiver application (transitive findings may consume waivers), then
/// unused-waiver detection.
fn finish_workspace(
    scans: Vec<(String, FileScan)>,
    mut findings: Vec<ReportFinding>,
    cfg: &LintConfig,
    cache_hits: usize,
) -> WorkspaceReport {
    let files_scanned = scans.len();
    let mut waivers: HashMap<String, Vec<rules::Waiver>> = HashMap::new();
    let mut indexes: Vec<(String, items::FileIndex)> = Vec::with_capacity(scans.len());
    for (rel, scan) in scans {
        findings.extend(
            scan.findings.into_iter().map(|finding| ReportFinding { finding, path: Vec::new() }),
        );
        waivers.insert(rel.clone(), scan.waivers);
        indexes.push((rel, scan.index));
    }

    let (raws, stats) = callgraph::run_transitive(&indexes, cfg);
    let mut entry_counts: HashMap<String, (usize, usize)> = HashMap::new();
    for raw in raws {
        let waived = waivers
            .get_mut(&raw.file)
            .and_then(|ws| rules::consume_waiver(ws, raw.rule, raw.line));
        for entry in &raw.entries {
            let counts = entry_counts.entry(format!("{}\u{0}{}", raw.rule, entry)).or_insert((0, 0));
            if waived.is_some() {
                counts.1 += 1;
            } else {
                counts.0 += 1;
            }
        }
        findings.push(ReportFinding {
            finding: Finding {
                rule: raw.rule.into(),
                file: raw.file,
                line: raw.line,
                message: raw.message,
                waived,
            },
            path: raw.path,
        });
    }

    for (rel, ws) in &waivers {
        let mut extra = Vec::new();
        rules::finish_waivers(rel, ws, &mut extra);
        findings
            .extend(extra.into_iter().map(|finding| ReportFinding { finding, path: Vec::new() }));
    }

    findings.sort_by(|a, b| {
        (&a.finding.file, a.finding.line, &a.finding.rule, &a.finding.message)
            .cmp(&(&b.finding.file, b.finding.line, &b.finding.rule, &b.finding.message))
    });

    let entries = stats
        .into_iter()
        .map(|stat| {
            let (unwaived, waived) = entry_counts
                .get(&format!("{}\u{0}{}", stat.rule, stat.entry))
                .copied()
                .unwrap_or((0, 0));
            EntryLine { stat, unwaived, waived }
        })
        .collect();

    WorkspaceReport { findings, entries, files_scanned, cache_hits }
}
