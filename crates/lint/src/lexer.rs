//! A minimal Rust lexer — just enough token structure for the lint
//! rules. Identifiers, punctuation and literals come out as a flat token
//! stream with line numbers; comments are collected separately so waiver
//! directives can be matched to the code lines they annotate.
//!
//! The lexer is exact about the things that would otherwise cause false
//! findings: string literals (including raw and byte strings), char
//! literals vs lifetimes, and nested block comments. A banned token
//! spelled inside a string or comment can never fire a rule.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Punctuation, multi-character operators combined (`->`, `..=`, …).
    Punct(String),
    /// Any literal (string, char, number); the value is irrelevant to
    /// the rules, only that it is *not* an identifier.
    Lit,
}

/// A token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
}

/// A comment with its 1-based starting line. `trailing` is true when
/// code tokens precede it on the same line (a trailing waiver annotates
/// its own line; a whole-line waiver annotates the next code line).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    pub line: u32,
    pub text: String,
    pub trailing: bool,
}

/// The output of [`lex`].
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Multi-character operators, longest first so maximal munch works.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "->", "=>", "::", "==", "!=", "<=", ">=", "&&",
    "||", "<<", ">>", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

/// Lex one source file. The lexer is total: any byte sequence produces
/// *some* token stream (unterminated literals run to end of input), so
/// the lint can never panic on source it does not understand.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut out = Lexed::default();
    let mut line_has_token = false;

    macro_rules! push_tok {
        ($tok:expr, $line:expr) => {{
            out.tokens.push(Token { tok: $tok, line: $line });
            line_has_token = true;
        }};
    }

    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            line_has_token = false;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment.
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            let start = i;
            while i < n && chars[i] != '\n' {
                i += 1;
            }
            out.comments.push(Comment {
                line,
                text: chars[start..i].iter().collect(),
                trailing: line_has_token,
            });
            continue;
        }
        // Block comment, nested.
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let start = i;
            let start_line = line;
            let mut depth = 1usize;
            i += 2;
            while i < n && depth > 0 {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            out.comments.push(Comment {
                line: start_line,
                text: chars[start..i.min(n)].iter().collect(),
                trailing: line_has_token,
            });
            continue;
        }
        // Raw strings: r"…", r#"…"#, and byte variants br…; must be
        // checked before identifiers so `r` / `br` prefixes don't lex as
        // idents.
        if c == 'r' || (c == 'b' && chars.get(i + 1) == Some(&'r')) {
            let mut j = i + if c == 'b' { 2 } else { 1 };
            let mut hashes = 0usize;
            while chars.get(j) == Some(&'#') {
                hashes += 1;
                j += 1;
            }
            if chars.get(j) == Some(&'"') {
                // Scan for closing quote + same number of hashes.
                j += 1;
                let tok_line = line;
                loop {
                    match chars.get(j) {
                        None => break,
                        Some('\n') => {
                            line += 1;
                            j += 1;
                        }
                        Some('"') => {
                            let mut k = j + 1;
                            let mut seen = 0usize;
                            while seen < hashes && chars.get(k) == Some(&'#') {
                                seen += 1;
                                k += 1;
                            }
                            j = k;
                            if seen == hashes {
                                break;
                            }
                        }
                        Some(_) => j += 1,
                    }
                }
                i = j;
                push_tok!(Tok::Lit, tok_line);
                continue;
            }
            // Raw identifier r#foo.
            if c == 'r' && hashes == 1 && chars.get(j).copied().is_some_and(is_ident_start) {
                let mut k = j;
                while k < n && is_ident_continue(chars[k]) {
                    k += 1;
                }
                let ident: String = chars[j..k].iter().collect();
                i = k;
                push_tok!(Tok::Ident(ident), line);
                continue;
            }
            // Fall through: plain identifier starting with r/b.
        }
        // Plain and byte strings.
        if c == '"' || (c == 'b' && chars.get(i + 1) == Some(&'"')) {
            let tok_line = line;
            let mut j = i + if c == 'b' { 2 } else { 1 };
            while j < n {
                match chars[j] {
                    '\\' => j += 2,
                    '"' => {
                        j += 1;
                        break;
                    }
                    '\n' => {
                        line += 1;
                        j += 1;
                    }
                    _ => j += 1,
                }
            }
            i = j;
            push_tok!(Tok::Lit, tok_line);
            continue;
        }
        // Byte char b'x'.
        if c == 'b' && chars.get(i + 1) == Some(&'\'') {
            let mut j = i + 2;
            while j < n {
                match chars[j] {
                    '\\' => j += 2,
                    '\'' => {
                        j += 1;
                        break;
                    }
                    _ => j += 1,
                }
            }
            i = j;
            push_tok!(Tok::Lit, line);
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            let next = chars.get(i + 1).copied();
            let is_char = match next {
                Some('\\') => true,
                Some(_) => chars.get(i + 2) == Some(&'\''),
                None => false,
            };
            if is_char {
                let mut j = i + 1;
                while j < n {
                    match chars[j] {
                        '\\' => j += 2,
                        '\'' => {
                            j += 1;
                            break;
                        }
                        _ => j += 1,
                    }
                }
                i = j;
                push_tok!(Tok::Lit, line);
            } else {
                // Lifetime: skip the quote and its identifier.
                i += 1;
                while i < n && is_ident_continue(chars[i]) {
                    i += 1;
                }
            }
            continue;
        }
        // Identifier / keyword.
        if is_ident_start(c) {
            let mut j = i;
            while j < n && is_ident_continue(chars[j]) {
                j += 1;
            }
            let ident: String = chars[i..j].iter().collect();
            i = j;
            push_tok!(Tok::Ident(ident), line);
            continue;
        }
        // Number literal: digits, then letters/underscores (suffixes,
        // hex), a fractional part only when a digit follows the dot (so
        // `0..x` stays a range), and e+/e- exponents.
        if c.is_ascii_digit() {
            let mut j = i;
            while j < n {
                let d = chars[j];
                if d.is_ascii_alphanumeric() || d == '_' {
                    j += 1;
                } else if d == '.'
                    && chars.get(j + 1).is_some_and(|x| x.is_ascii_digit())
                {
                    j += 2;
                } else if (d == '+' || d == '-')
                    && j > i
                    && matches!(chars[j - 1], 'e' | 'E')
                {
                    j += 1;
                } else {
                    break;
                }
            }
            i = j;
            push_tok!(Tok::Lit, line);
            continue;
        }
        // Punctuation, longest match first.
        let mut matched = None;
        for p in PUNCTS {
            let pc: Vec<char> = p.chars().collect();
            if chars[i..].starts_with(&pc) {
                matched = Some(p.to_string());
                break;
            }
        }
        let p = matched.unwrap_or_else(|| c.to_string());
        i += p.chars().count();
        push_tok!(Tok::Punct(p), line);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let src = r##"
            let a = "x.clone()"; // .unwrap() in a comment
            let b = r#"panic!("no")"#;
            /* block .expect( */
            let c = 'c';
        "##;
        let ids = idents(src);
        assert!(ids.iter().all(|s| s != "clone" && s != "unwrap" && s != "panic"));
        assert_eq!(lex(src).comments.len(), 2);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> &'a str { x }").tokens;
        assert!(toks.iter().any(|t| t.tok == Tok::Ident("str".into())));
        assert!(!toks.iter().any(|t| t.tok == Tok::Lit));
    }

    #[test]
    fn ranges_do_not_eat_numbers() {
        let toks = lex("for i in 0..10 {}").tokens;
        assert!(toks.iter().any(|t| t.tok == Tok::Punct("..".into())));
        assert_eq!(toks.iter().filter(|t| t.tok == Tok::Lit).count(), 2);
    }

    #[test]
    fn trailing_comments_are_marked() {
        let lexed = lex("let x = 1; // here\n// whole line\nlet y = 2;");
        assert!(lexed.comments[0].trailing);
        assert!(!lexed.comments[1].trailing);
        assert_eq!(lexed.comments[1].line, 2);
    }

    #[test]
    fn line_numbers_survive_multiline_literals() {
        let src = "let s = \"a\nb\nc\";\nlet t = 1;";
        let lexed = lex(src);
        let t_line = lexed
            .tokens
            .iter()
            .find(|t| t.tok == Tok::Ident("t".into()))
            .map(|t| t.line);
        assert_eq!(t_line, Some(4));
    }
}
