//! `LINT_report.json` rendering — hand-rolled so the lint crate carries
//! zero external dependencies. The report is the reviewable waiver
//! budget: the driver compares waived counts against the committed
//! report — per rule, not just in total — and fails on any increase
//! that was not explicitly accepted.
//!
//! Schema v2 adds an `entry_points` section (per-entry reachability and
//! finding counts for the transitive rules) and a `path` array on
//! transitive findings (`entry → helper → site` function names). The
//! `rules` section keeps its v1 shape so baselines parse across the
//! schema bump.

use std::collections::BTreeMap;

use crate::{ReportFinding, WorkspaceReport};

/// Render a workspace run as stable, sorted JSON.
pub fn render_json(report: &WorkspaceReport) -> String {
    let mut sorted: Vec<&ReportFinding> = report.findings.iter().collect();
    sorted.sort_by(|a, b| {
        (&a.finding.file, a.finding.line, &a.finding.rule, &a.finding.message)
            .cmp(&(&b.finding.file, b.finding.line, &b.finding.rule, &b.finding.message))
    });

    let unwaived = sorted.iter().filter(|f| f.finding.waived.is_none()).count();
    let waived = sorted.len() - unwaived;

    let mut per_rule: BTreeMap<&str, (usize, usize)> = BTreeMap::new();
    for f in &sorted {
        let e = per_rule.entry(f.finding.rule.as_str()).or_insert((0, 0));
        if f.finding.waived.is_none() {
            e.0 += 1;
        } else {
            e.1 += 1;
        }
    }

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"vapro-lint/2\",\n");
    out.push_str(&format!("  \"unwaived\": {unwaived},\n"));
    out.push_str(&format!("  \"waived\": {waived},\n"));
    out.push_str("  \"rules\": {");
    let mut first = true;
    for (rule, (u, w)) in &per_rule {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\n    {}: {{\"unwaived\": {u}, \"waived\": {w}}}",
            json_str(rule)
        ));
    }
    if !per_rule.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("},\n");

    out.push_str("  \"entry_points\": [");
    let mut first = true;
    for e in &report.entries {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\n    {{\"rule\": {}, \"entry\": {}, \"reachable_fns\": {}, \"unwaived\": {}, \"waived\": {}}}",
            json_str(&e.stat.rule),
            json_str(&e.stat.entry),
            e.stat.reachable_fns,
            e.unwaived,
            e.waived
        ));
    }
    if !report.entries.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n");

    out.push_str("  \"findings\": [");
    let mut first = true;
    for f in &sorted {
        if !first {
            out.push(',');
        }
        first = false;
        let waiver = match &f.finding.waived {
            Some(r) => json_str(r),
            None => "null".to_string(),
        };
        let path = if f.path.len() > 1 {
            format!(
                ", \"path\": [{}]",
                f.path.iter().map(|h| json_str(&h.func)).collect::<Vec<_>>().join(", ")
            )
        } else {
            String::new()
        };
        out.push_str(&format!(
            "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}, \"waiver\": {}{}}}",
            json_str(&f.finding.rule),
            json_str(&f.finding.file),
            f.finding.line,
            json_str(&f.finding.message),
            waiver,
            path
        ));
    }
    if !sorted.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Extract the top-level `"waived"` count from a previously written
/// report (it is the first occurrence by construction). Returns `None`
/// for missing/foreign content, which callers treat as "no baseline".
pub fn baseline_waived(json: &str) -> Option<u64> {
    let pos = json.find("\"waived\":")?;
    let rest = json[pos + "\"waived\":".len()..].trim_start();
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

/// Extract the per-rule waived counts from the `rules` section of a
/// committed report (v1 or v2: the section shape is identical). The
/// parse targets exactly what [`render_json`] writes; anything foreign
/// yields an empty map, which callers treat as "no baseline".
pub fn baseline_rule_waived(json: &str) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    let Some(start) = json.find("\"rules\": {") else { return out };
    let body = &json[start + "\"rules\": {".len()..];
    // The section closes with a brace at two-space indent; the per-rule
    // lines sit at four spaces, so this cannot match one of them.
    let Some(end) = body.find("\n  }") else { return out };
    for line in body[..end].lines() {
        let line = line.trim().trim_end_matches(',');
        // `"R1": {"unwaived": 0, "waived": 19}`
        let Some(rest) = line.strip_prefix('"') else { continue };
        let Some((rule, rest)) = rest.split_once('"') else { continue };
        let Some(pos) = rest.find("\"waived\":") else { continue };
        let digits: String = rest[pos + "\"waived\":".len()..]
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_digit())
            .collect();
        if let Ok(n) = digits.parse() {
            out.insert(rule.to_string(), n);
        }
    }
    out
}

pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Finding;
    use crate::Hop;

    fn finding(rule: &str, file: &str, line: u32, waived: Option<&str>) -> ReportFinding {
        ReportFinding {
            finding: Finding {
                rule: rule.into(),
                file: file.into(),
                line,
                message: format!("msg {rule}"),
                waived: waived.map(|s| s.into()),
            },
            path: Vec::new(),
        }
    }

    fn report(findings: Vec<ReportFinding>) -> WorkspaceReport {
        WorkspaceReport { findings, ..WorkspaceReport::default() }
    }

    #[test]
    fn report_counts_and_baseline_round_trip() {
        let findings = vec![
            finding("R1", "b.rs", 3, Some("cold")),
            finding("R2", "a.rs", 1, None),
            finding("R1", "a.rs", 2, Some("cold")),
        ];
        let json = render_json(&report(findings));
        assert!(json.contains("\"unwaived\": 1"));
        assert!(json.contains("\"waived\": 2"));
        assert_eq!(baseline_waived(&json), Some(2));
        let per_rule = baseline_rule_waived(&json);
        assert_eq!(per_rule.get("R1"), Some(&2));
        assert_eq!(per_rule.get("R2"), Some(&0));
        // Sorted by file then line.
        let a1 = json.find("\"a.rs\", \"line\": 1").unwrap();
        let a2 = json.find("\"a.rs\", \"line\": 2").unwrap();
        let b3 = json.find("\"b.rs\", \"line\": 3").unwrap();
        assert!(a1 < a2 && a2 < b3);
    }

    #[test]
    fn empty_report_is_valid() {
        let json = render_json(&report(vec![]));
        assert!(json.contains("\"findings\": []"));
        assert!(json.contains("\"entry_points\": []"));
        assert_eq!(baseline_waived(&json), Some(0));
        assert!(baseline_rule_waived(&json).is_empty());
    }

    #[test]
    fn strings_are_escaped() {
        let f = finding("R1", "a\"b.rs", 1, Some("line\nbreak"));
        let json = render_json(&report(vec![f]));
        assert!(json.contains("a\\\"b.rs"));
        assert!(json.contains("line\\nbreak"));
    }

    #[test]
    fn transitive_findings_carry_their_path() {
        let mut f = finding("R5", "a.rs", 9, None);
        f.path = vec![
            Hop { file: "a.rs".into(), line: 1, func: "entry".into() },
            Hop { file: "a.rs".into(), line: 5, func: "helper".into() },
        ];
        let json = render_json(&report(vec![f]));
        assert!(json.contains("\"path\": [\"entry\", \"helper\"]"), "{json}");
    }

    #[test]
    fn v1_rules_section_still_parses_as_baseline() {
        let v1 = "{\n  \"schema\": \"vapro-lint/1\",\n  \"unwaived\": 0,\n  \"waived\": 22,\n  \"rules\": {\n    \"R1\": {\"unwaived\": 0, \"waived\": 19},\n    \"R4\": {\"unwaived\": 0, \"waived\": 3}\n  },\n  \"findings\": []\n}\n";
        let per_rule = baseline_rule_waived(v1);
        assert_eq!(per_rule.get("R1"), Some(&19));
        assert_eq!(per_rule.get("R4"), Some(&3));
        assert_eq!(baseline_waived(v1), Some(22));
    }
}
