//! `LINT_report.json` rendering — hand-rolled so the lint crate carries
//! zero dependencies. The report is the reviewable waiver budget: the
//! driver compares the `waived` count against the committed report and
//! fails on any increase that was not explicitly accepted.

use std::collections::BTreeMap;

use crate::rules::Finding;

/// Render findings as stable, sorted JSON.
pub fn render_json(findings: &[Finding]) -> String {
    let mut sorted: Vec<&Finding> = findings.iter().collect();
    sorted.sort_by(|a, b| {
        (&a.file, a.line, &a.rule, &a.message).cmp(&(&b.file, b.line, &b.rule, &b.message))
    });

    let unwaived = sorted.iter().filter(|f| f.waived.is_none()).count();
    let waived = sorted.len() - unwaived;

    let mut per_rule: BTreeMap<&str, (usize, usize)> = BTreeMap::new();
    for f in &sorted {
        let e = per_rule.entry(f.rule.as_str()).or_insert((0, 0));
        if f.waived.is_none() {
            e.0 += 1;
        } else {
            e.1 += 1;
        }
    }

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"vapro-lint/1\",\n");
    out.push_str(&format!("  \"unwaived\": {unwaived},\n"));
    out.push_str(&format!("  \"waived\": {waived},\n"));
    out.push_str("  \"rules\": {");
    let mut first = true;
    for (rule, (u, w)) in &per_rule {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\n    {}: {{\"unwaived\": {u}, \"waived\": {w}}}",
            json_str(rule)
        ));
    }
    if !per_rule.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("},\n");
    out.push_str("  \"findings\": [");
    let mut first = true;
    for f in &sorted {
        if !first {
            out.push(',');
        }
        first = false;
        let waiver = match &f.waived {
            Some(r) => json_str(r),
            None => "null".to_string(),
        };
        out.push_str(&format!(
            "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}, \"waiver\": {}}}",
            json_str(&f.rule),
            json_str(&f.file),
            f.line,
            json_str(&f.message),
            waiver
        ));
    }
    if !sorted.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Extract the top-level `"waived"` count from a previously written
/// report (it is the first occurrence by construction). Returns `None`
/// for missing/foreign content, which callers treat as "no baseline".
pub fn baseline_waived(json: &str) -> Option<u64> {
    let pos = json.find("\"waived\":")?;
    let rest = json[pos + "\"waived\":".len()..].trim_start();
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &str, file: &str, line: u32, waived: Option<&str>) -> Finding {
        Finding {
            rule: rule.into(),
            file: file.into(),
            line,
            message: format!("msg {rule}"),
            waived: waived.map(|s| s.into()),
        }
    }

    #[test]
    fn report_counts_and_baseline_round_trip() {
        let findings = vec![
            finding("R1", "b.rs", 3, Some("cold")),
            finding("R2", "a.rs", 1, None),
            finding("R1", "a.rs", 2, Some("cold")),
        ];
        let json = render_json(&findings);
        assert!(json.contains("\"unwaived\": 1"));
        assert!(json.contains("\"waived\": 2"));
        assert_eq!(baseline_waived(&json), Some(2));
        // Sorted by file then line.
        let a1 = json.find("\"a.rs\", \"line\": 1").unwrap();
        let a2 = json.find("\"a.rs\", \"line\": 2").unwrap();
        let b3 = json.find("\"b.rs\", \"line\": 3").unwrap();
        assert!(a1 < a2 && a2 < b3);
    }

    #[test]
    fn empty_report_is_valid() {
        let json = render_json(&[]);
        assert!(json.contains("\"findings\": []"));
        assert_eq!(baseline_waived(&json), Some(0));
    }

    #[test]
    fn strings_are_escaped() {
        let f = finding("R1", "a\"b.rs", 1, Some("line\nbreak"));
        let json = render_json(&[f]);
        assert!(json.contains("a\\\"b.rs"));
        assert!(json.contains("line\\nbreak"));
    }
}
