//! Token context: which function each token sits in, and whether it is
//! test-only code. This is a single forward pass that tracks brace
//! scopes, `fn`/`mod` items, and `#[test]` / `#[cfg(test)]` attributes —
//! enough structure for function-scoped rules without a full parser.

use crate::lexer::{Tok, Token};

/// The context of one token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenCtx {
    /// Inside `#[cfg(test)]` / `#[test]` items (or a `mod tests`).
    pub test: bool,
    /// Name of the innermost enclosing function, if any. Closures and
    /// nested blocks inherit their function's name.
    pub func: Option<String>,
}

#[derive(Debug, Clone)]
struct Scope {
    test: bool,
    func: Option<String>,
}

#[derive(Debug)]
enum PendingKind {
    /// `fn name` awaiting its body brace.
    Fn(String),
    /// `mod name` awaiting its body brace.
    Mod(String),
    /// Any other attributed item (`struct`/`impl`/…) whose body must
    /// inherit a pending `#[cfg(test)]`.
    Item,
}

/// Compute the context of every token (parallel to the token slice).
pub fn contexts(tokens: &[Token]) -> Vec<TokenCtx> {
    let mut ctxs = Vec::with_capacity(tokens.len());
    let mut stack: Vec<Scope> = Vec::new();
    let mut root = Scope { test: false, func: None };

    // Attribute scanning state: Some(depth) while inside `#[...]`.
    let mut attr_depth: Option<u32> = None;
    let mut attr_inner = false; // `#![...]`
    let mut attr_has_test = false;
    let mut pending_attr_test = false;

    // Item scanning state: between an item keyword and its `{` or `;`.
    let mut pending: Option<(PendingKind, bool)> = None;
    let mut pending_nest: i64 = 0; // () and [] depth inside the signature

    let mut i = 0usize;
    while i < tokens.len() {
        let top = stack.last().unwrap_or(&root).clone();
        ctxs.push(TokenCtx { test: top.test, func: top.func.clone() });
        let t = &tokens[i];

        // Inside an attribute: look for the `test` ident, find the end.
        if let Some(depth) = attr_depth {
            match &t.tok {
                Tok::Ident(s) if s == "test" => attr_has_test = true,
                Tok::Punct(p) if p == "[" => attr_depth = Some(depth + 1),
                Tok::Punct(p) if p == "]" => {
                    if depth == 0 {
                        attr_depth = None;
                        if attr_has_test {
                            if attr_inner {
                                // `#![cfg(test)]`: marks the enclosing
                                // scope itself.
                                match stack.last_mut() {
                                    Some(s) => s.test = true,
                                    None => root.test = true,
                                }
                            } else {
                                pending_attr_test = true;
                            }
                        }
                        attr_has_test = false;
                    } else {
                        attr_depth = Some(depth - 1);
                    }
                }
                _ => {}
            }
            i += 1;
            continue;
        }

        // Attribute start: `#[` or `#![`.
        if let Tok::Punct(p) = &t.tok {
            if p == "#" {
                let (bang, bracket) = match (tokens.get(i + 1), tokens.get(i + 2)) {
                    (Some(a), b) => {
                        if a.tok == Tok::Punct("!".into()) {
                            (true, b.map(|x| x.tok == Tok::Punct("[".into())).unwrap_or(false))
                        } else {
                            (false, a.tok == Tok::Punct("[".into()))
                        }
                    }
                    _ => (false, false),
                };
                if bracket {
                    attr_depth = Some(0);
                    attr_inner = bang;
                    attr_has_test = false;
                    i += if bang { 3 } else { 2 };
                    // Context entries for the skipped tokens.
                    while ctxs.len() < i.min(tokens.len()) {
                        ctxs.push(TokenCtx { test: top.test, func: top.func.clone() });
                    }
                    continue;
                }
            }
        }

        // Signature scanning for a pending item.
        if pending.is_some() {
            match &t.tok {
                Tok::Punct(p) if p == "(" || p == "[" => pending_nest += 1,
                Tok::Punct(p) if p == ")" || p == "]" => pending_nest -= 1,
                Tok::Punct(p) if p == ";" && pending_nest == 0 => {
                    pending = None;
                }
                Tok::Punct(p) if p == "{" && pending_nest == 0 => {
                    let (kind, attr_test) = pending.take().unwrap_or((PendingKind::Item, false));
                    let test = top.test
                        || attr_test
                        || matches!(&kind, PendingKind::Mod(n) if n == "tests");
                    let func = match kind {
                        PendingKind::Fn(name) => Some(name),
                        _ => top.func.clone(),
                    };
                    stack.push(Scope { test, func });
                    i += 1;
                    continue;
                }
                _ => {}
            }
            i += 1;
            continue;
        }

        match &t.tok {
            Tok::Ident(kw) if kw == "fn" => {
                // `fn` as an item (next token is the name); `fn(…)`
                // pointer types have `(` next and are not items.
                if let Some(Token { tok: Tok::Ident(name), .. }) = tokens.get(i + 1) {
                    pending = Some((PendingKind::Fn(name.clone()), pending_attr_test));
                    pending_attr_test = false;
                    pending_nest = 0;
                    i += 2;
                    while ctxs.len() < i.min(tokens.len()) {
                        ctxs.push(TokenCtx { test: top.test, func: top.func.clone() });
                    }
                    continue;
                }
            }
            Tok::Ident(kw) if kw == "mod" => {
                if let Some(Token { tok: Tok::Ident(name), .. }) = tokens.get(i + 1) {
                    pending = Some((PendingKind::Mod(name.clone()), pending_attr_test));
                    pending_attr_test = false;
                    pending_nest = 0;
                    i += 2;
                    while ctxs.len() < i.min(tokens.len()) {
                        ctxs.push(TokenCtx { test: top.test, func: top.func.clone() });
                    }
                    continue;
                }
            }
            Tok::Ident(kw)
                if pending_attr_test
                    && matches!(
                        kw.as_str(),
                        "struct" | "enum" | "union" | "impl" | "trait" | "macro_rules"
                    ) =>
            {
                // A `#[cfg(test)] struct/impl/…`: its body is test-only.
                pending = Some((PendingKind::Item, true));
                pending_attr_test = false;
                pending_nest = 0;
            }
            Tok::Punct(p) if p == "{" => {
                stack.push(Scope { test: top.test, func: top.func.clone() });
            }
            Tok::Punct(p) if p == "}" => {
                stack.pop();
            }
            _ => {}
        }
        i += 1;
    }
    ctxs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn ctx_of(src: &str, ident: &str) -> TokenCtx {
        let lexed = lex(src);
        let ctxs = contexts(&lexed.tokens);
        for (t, c) in lexed.tokens.iter().zip(&ctxs) {
            if t.tok == Tok::Ident(ident.into()) {
                return c.clone();
            }
        }
        panic!("ident {ident} not found");
    }

    #[test]
    fn function_bodies_are_attributed() {
        let src = "fn outer() { let marker = 1; }";
        let c = ctx_of(src, "marker");
        assert_eq!(c.func.as_deref(), Some("outer"));
        assert!(!c.test);
    }

    #[test]
    fn closures_inherit_the_enclosing_fn() {
        let src = "fn host() { let f = |x: u32| { let inner_marker = x; }; }";
        assert_eq!(ctx_of(src, "inner_marker").func.as_deref(), Some("host"));
    }

    #[test]
    fn cfg_test_modules_are_test_context() {
        let src = "
            fn prod() { let live = 1; }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { let testy = 2; }
            }
        ";
        assert!(!ctx_of(src, "live").test);
        assert!(ctx_of(src, "testy").test);
        assert_eq!(ctx_of(src, "testy").func.as_deref(), Some("t"));
    }

    #[test]
    fn test_attribute_marks_single_fns() {
        let src = "#[test]\nfn alone() { let inside = 3; }\nfn after() { let outside = 4; }";
        assert!(ctx_of(src, "inside").test);
        assert!(!ctx_of(src, "outside").test);
    }

    #[test]
    fn signatures_with_nested_parens_find_their_body() {
        let src = "fn f(keep: impl Fn(&str) -> bool, xs: [u8; 4]) -> Vec<u8> { let body_marker = 0; }";
        assert_eq!(ctx_of(src, "body_marker").func.as_deref(), Some("f"));
    }

    #[test]
    fn trait_decls_without_bodies_do_not_leak() {
        let src = "trait T { fn sig(&self); }\nfn real() { let here = 1; }";
        assert_eq!(ctx_of(src, "here").func.as_deref(), Some("real"));
    }
}
