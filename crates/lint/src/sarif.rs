//! SARIF v2.1.0 output for GitHub code scanning.
//!
//! Hand-rolled like the JSON report (the lint crate stays serde-free).
//! Unwaived findings are `error`-level results; waived findings are
//! emitted with an in-source suppression carrying the waiver reason, so
//! code scanning shows them as reviewed rather than open. Transitive
//! findings (R5/R6) attach their call path as a `codeFlows` thread flow,
//! entry point first.

use crate::{ReportFinding, WorkspaceReport};

/// Static rule metadata for `tool.driver.rules`.
const RULES: &[(&str, &str)] = &[
    ("R1", "no-hot-path-clone: no owned copies in detection/diagnosis hot-path modules"),
    ("R2", "no-panic-decode: no panics, indexing, or unchecked arithmetic in decode/ingest functions"),
    ("R3", "float-hygiene: no partial_cmp or NAN where float ordering decides output"),
    ("R4", "reserve-before-push: size lanes before per-element pushes in loops"),
    ("R5", "transitive panic-freedom: entry-point call trees must be panic-free end to end"),
    ("R6", "transitive hot-path allocation: no unbudgeted allocation on the window-close tree"),
    ("R7", "lock hygiene: no guard held across rayon/sends/lock-taking calls; no lock-order cycles"),
    ("LINT", "waiver mechanism: malformed, unused, or forbidden waivers"),
];

fn rule_index(rule: &str) -> usize {
    RULES.iter().position(|(id, _)| *id == rule).unwrap_or(RULES.len() - 1)
}

/// Render the workspace report as a SARIF 2.1.0 log.
pub fn render_sarif(report: &WorkspaceReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"vapro-lint\",\n");
    out.push_str("          \"informationUri\": \"https://example.invalid/vapro-lint\",\n");
    out.push_str("          \"version\": \"2.0.0\",\n");
    out.push_str("          \"rules\": [\n");
    for (i, (id, desc)) in RULES.iter().enumerate() {
        out.push_str(&format!(
            "            {{\"id\": {}, \"shortDescription\": {{\"text\": {}}}}}{}\n",
            q(id),
            q(desc),
            if i + 1 < RULES.len() { "," } else { "" }
        ));
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"columnKind\": \"utf16CodeUnits\",\n");
    out.push_str("      \"results\": [\n");
    let mut sorted: Vec<&ReportFinding> = report.findings.iter().collect();
    sorted.sort_by(|a, b| {
        (&a.finding.file, a.finding.line, &a.finding.rule, &a.finding.message)
            .cmp(&(&b.finding.file, b.finding.line, &b.finding.rule, &b.finding.message))
    });
    for (i, rf) in sorted.iter().enumerate() {
        render_result(&mut out, rf, i + 1 < sorted.len());
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

fn render_result(out: &mut String, rf: &ReportFinding, comma: bool) {
    let f = &rf.finding;
    let level = if f.waived.is_some() { "note" } else { "error" };
    out.push_str("        {\n");
    out.push_str(&format!("          \"ruleId\": {},\n", q(&f.rule)));
    out.push_str(&format!("          \"ruleIndex\": {},\n", rule_index(&f.rule)));
    out.push_str(&format!("          \"level\": {},\n", q(level)));
    out.push_str(&format!("          \"message\": {{\"text\": {}}},\n", q(&f.message)));
    if let Some(reason) = &f.waived {
        out.push_str(&format!(
            "          \"suppressions\": [{{\"kind\": \"inSource\", \"justification\": {}}}],\n",
            q(reason)
        ));
    }
    if rf.path.len() > 1 {
        out.push_str("          \"codeFlows\": [{\"threadFlows\": [{\"locations\": [\n");
        for (i, hop) in rf.path.iter().enumerate() {
            out.push_str(&format!(
                "            {{\"location\": {{\"physicalLocation\": {}, \"message\": {{\"text\": {}}}}}}}{}\n",
                physical(&hop.file, hop.line),
                q(&hop.func),
                if i + 1 < rf.path.len() { "," } else { "" }
            ));
        }
        out.push_str("          ]}]}],\n");
    }
    out.push_str(&format!(
        "          \"locations\": [{{\"physicalLocation\": {}}}]\n",
        physical(&f.file, f.line)
    ));
    out.push_str(&format!("        }}{}\n", if comma { "," } else { "" }));
}

fn physical(file: &str, line: u32) -> String {
    // SARIF regions require startLine >= 1; line 0 marks file-level
    // findings (unreadable file), anchored to the first line.
    format!(
        "{{\"artifactLocation\": {{\"uri\": {}, \"uriBaseId\": \"SRCROOT\"}}, \"region\": {{\"startLine\": {}}}}}",
        q(file),
        line.max(1)
    )
}

fn q(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
