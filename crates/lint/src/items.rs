//! The per-file item index: functions (with enclosing impl types),
//! struct fields, and per-function *body facts* — call sites with
//! receiver chains, panic/allocation sites, unreserved push loops, and
//! lock regions. One structural pass over the token stream produces
//! everything the whole-workspace call graph (`callgraph`) needs, so a
//! file is lexed exactly once per content hash (`cache`).
//!
//! The index is deliberately *syntactic*: receiver types are recorded as
//! ident chains (`self.arena`) plus a per-function table of typed
//! params/locals, and resolution against other files' items happens
//! later in `callgraph` with the global field/impl tables. Anything the
//! heuristics cannot resolve stays `Opaque`/external and is treated
//! conservatively by the transitive rules.

use crate::lexer::{lex, Tok, Token};
use crate::rules::{is_value_end, R1_METHODS, R2_MACROS, R2_METHODS, R4_RESERVERS};

/// One indexed source file.
#[derive(Debug, Clone, Default)]
pub struct FileIndex {
    pub fns: Vec<FnItem>,
    pub fields: Vec<FieldDef>,
    /// `type A = B;` aliases: alias name → outer segment of the target
    /// (`type CounterDelta = CounterVector;` records
    /// `("CounterDelta", "CounterVector")`).
    pub aliases: Vec<(String, String)>,
}

/// A named struct field and the outermost path segment of its type
/// (`frames: Vec<Frame>` records `Vec`; `arena: IngestArena` records
/// `IngestArena`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDef {
    pub owner: String,
    pub field: String,
    pub ty: String,
}

/// One function item and the facts extracted from its body. Closures
/// and nested blocks belong to their enclosing function; nested `fn`
/// items own their bodies.
#[derive(Debug, Clone, Default)]
pub struct FnItem {
    pub name: String,
    /// Enclosing `impl`/`trait` type's last path segment, if any.
    pub impl_type: Option<String>,
    pub line: u32,
    pub test: bool,
    /// The body calls `with_capacity`/`reserve`/`reserve_exact` —
    /// evidence the author sized their buffers (R4/R6).
    pub reserves: bool,
    /// Typed params and `let` locals: name → outer type segment.
    pub locals: Vec<(String, String)>,
    pub calls: Vec<CallSite>,
    /// `unwrap`/`expect`-family methods, panicking macros and direct
    /// indexing, each with a human-readable description.
    pub panic_sites: Vec<Site>,
    /// `clone`/`cloned`/`to_vec`/`to_owned` call sites.
    pub alloc_sites: Vec<Site>,
    /// `.push(...)` inside a `for`/`while`/`loop` body.
    pub push_loops: Vec<Site>,
    pub lock_regions: Vec<LockRegion>,
}

/// A flagged body location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Site {
    pub line: u32,
    pub what: String,
}

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    pub callee: String,
    pub recv: Recv,
    pub line: u32,
}

/// How a call names its target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Recv {
    /// `name(...)` or `path::name(...)`; the qualifier is the path
    /// segment directly before the name, when present.
    Free { qualifier: Option<String> },
    /// `.name(...)` on an ident chain, e.g. `self.arena.push_batch(..)`
    /// records `["self", "arena"]`.
    Chain(Vec<String>),
    /// `.name(...)` on a non-ident expression (call result, literal…).
    Opaque,
    /// A bare ident in argument position — `sort_by(fragment_order)`.
    /// Usually a plain variable, so it resolves only against workspace
    /// free fns and never taints when unresolved.
    FnRef,
}

/// The tokens between a `.lock()` acquire and the end of its guard's
/// life (end of statement for temporaries, end of the enclosing block or
/// an explicit `drop(guard)` for `let`-bound guards), with everything R7
/// cares about collected from that extent.
#[derive(Debug, Clone, Default)]
pub struct LockRegion {
    /// Normalised lock identity: the last segment of the receiver chain
    /// (`self.shared.state` and `shared.state` both map to `state`).
    pub lock_id: String,
    pub line: u32,
    /// Calls made while the guard is (conservatively) held.
    pub calls: Vec<CallSite>,
    /// Rayon entry points inside the extent (`rayon::join`, `.par_iter()`…).
    pub rayon_sites: Vec<Site>,
    /// Channel sends inside the extent.
    pub send_sites: Vec<Site>,
    /// Further `.lock()` acquires inside the extent: `(lock_id, line)`.
    pub nested_locks: Vec<(String, u32)>,
}

/// Methods that enter a rayon parallel region.
const RAYON_METHODS: &[&str] = &["par_iter", "into_par_iter", "par_chunks", "par_bridge"];
/// Free/path calls that enter a rayon parallel region when qualified
/// with `rayon::`.
const RAYON_FREE: &[&str] = &["join", "scope", "spawn"];
/// Channel-send method names.
const SEND_METHODS: &[&str] = &["send", "try_send", "send_timeout"];
/// Pseudo-type recorded for `let f = |..| ..` closure bindings; a call
/// through such a binding runs code already scanned inline.
pub const CLOSURE_TY: &str = "{closure}";

#[derive(Debug, Clone, PartialEq)]
enum ScopeKind {
    Block,
    Fn(usize),
    Impl(Option<String>),
    Struct(String),
}

#[derive(Debug, Clone)]
struct Scope {
    kind: ScopeKind,
    test: bool,
}

#[derive(Debug)]
enum Pending {
    Fn { sig_start: usize },
    Mod(String),
    Impl(Option<String>),
    Struct(String),
    Item,
}

/// Ownership of each token: the innermost enclosing `fn` item, if any.
struct Structure {
    owner: Vec<Option<usize>>,
    fns: Vec<FnItem>,
    fields: Vec<FieldDef>,
    aliases: Vec<(String, String)>,
    /// Signature token range per fn (between the name and the body `{`).
    sigs: Vec<(usize, usize)>,
}

/// Index one source file.
pub fn index_file(src: &str) -> FileIndex {
    let lexed = lex(src);
    index_tokens(&lexed.tokens)
}

/// Index an already-lexed token stream.
pub fn index_tokens(tokens: &[Token]) -> FileIndex {
    let st = structure(tokens);
    let mut fns = st.fns;
    for (f, item) in fns.iter_mut().enumerate() {
        let (sig_start, sig_end) = st.sigs[f];
        collect_params(&tokens[sig_start..sig_end], item);
    }
    facts(tokens, &st.owner, &mut fns);
    FileIndex { fns, fields: st.fields, aliases: st.aliases }
}

/// Pass A: brace-scope structure — which fn owns each token, impl types,
/// struct fields, test attribution. Modeled on `analyze::contexts` but
/// tracking item identity rather than just names.
fn structure(tokens: &[Token]) -> Structure {
    let mut owner: Vec<Option<usize>> = Vec::with_capacity(tokens.len());
    let mut fns: Vec<FnItem> = Vec::new();
    let mut sigs: Vec<(usize, usize)> = Vec::new();
    let mut fields: Vec<FieldDef> = Vec::new();
    let mut aliases: Vec<(String, String)> = Vec::new();

    let mut stack: Vec<Scope> = Vec::new();
    let mut attr_depth: Option<u32> = None;
    let mut attr_inner = false;
    let mut attr_has_test = false;
    let mut pending_attr_test = false;
    let mut pending: Option<(Pending, bool)> = None;
    let mut pending_nest: i64 = 0;
    let mut root_test = false;

    let cur_fn = |stack: &[Scope]| -> Option<usize> {
        stack.iter().rev().find_map(|s| match s.kind {
            ScopeKind::Fn(f) => Some(f),
            _ => None,
        })
    };
    let cur_impl = |stack: &[Scope]| -> Option<String> {
        stack.iter().rev().find_map(|s| match &s.kind {
            ScopeKind::Impl(t) => t.clone(),
            _ => None,
        })
    };

    let mut i = 0usize;
    while i < tokens.len() {
        let top_test = stack.last().map(|s| s.test).unwrap_or(root_test);
        while owner.len() < i {
            owner.push(cur_fn(&stack));
        }
        owner.push(cur_fn(&stack));
        let t = &tokens[i];

        if let Some(depth) = attr_depth {
            match &t.tok {
                Tok::Ident(s) if s == "test" => attr_has_test = true,
                Tok::Punct(p) if p == "[" => attr_depth = Some(depth + 1),
                Tok::Punct(p) if p == "]" => {
                    if depth == 0 {
                        attr_depth = None;
                        if attr_has_test {
                            if attr_inner {
                                match stack.last_mut() {
                                    Some(s) => s.test = true,
                                    None => root_test = true,
                                }
                            } else {
                                pending_attr_test = true;
                            }
                        }
                        attr_has_test = false;
                    } else {
                        attr_depth = Some(depth - 1);
                    }
                }
                _ => {}
            }
            i += 1;
            continue;
        }

        if let Tok::Punct(p) = &t.tok {
            if p == "#" {
                let (bang, bracket) = match (tokens.get(i + 1), tokens.get(i + 2)) {
                    (Some(a), b) => {
                        if a.tok == Tok::Punct("!".into()) {
                            (true, b.map(|x| x.tok == Tok::Punct("[".into())).unwrap_or(false))
                        } else {
                            (false, a.tok == Tok::Punct("[".into()))
                        }
                    }
                    _ => (false, false),
                };
                if bracket {
                    attr_depth = Some(0);
                    attr_inner = bang;
                    attr_has_test = false;
                    i += if bang { 3 } else { 2 };
                    continue;
                }
            }
        }

        if pending.is_some() {
            match &t.tok {
                Tok::Punct(p) if p == "(" || p == "[" => pending_nest += 1,
                Tok::Punct(p) if p == ")" || p == "]" => pending_nest -= 1,
                Tok::Punct(p) if p == ";" && pending_nest == 0 => {
                    if let Some((Pending::Fn { sig_start, .. }, _)) = &pending {
                        // Body-less signature (trait decl, extern): the
                        // fn was registered; give it empty ranges.
                        let f = fns.len() - 1;
                        sigs[f] = (*sig_start, i);
                    }
                    pending = None;
                }
                Tok::Punct(p) if p == "{" && pending_nest == 0 => {
                    let (kind, attr_test) = pending.take().unwrap_or((Pending::Item, false));
                    let test = top_test
                        || attr_test
                        || matches!(&kind, Pending::Mod(n) if n == "tests");
                    let scope_kind = match kind {
                        Pending::Fn { sig_start, .. } => {
                            let f = fns.len() - 1;
                            fns[f].test = test;
                            sigs[f] = (sig_start, i);
                            ScopeKind::Fn(f)
                        }
                        Pending::Impl(t) => ScopeKind::Impl(t),
                        Pending::Struct(n) => ScopeKind::Struct(n),
                        Pending::Mod(_) | Pending::Item => ScopeKind::Block,
                    };
                    stack.push(Scope { kind: scope_kind, test });
                    i += 1;
                    continue;
                }
                _ => {}
            }
            i += 1;
            continue;
        }

        match &t.tok {
            Tok::Ident(kw) if kw == "fn" => {
                if let Some(Token { tok: Tok::Ident(name), line }) = tokens.get(i + 1) {
                    fns.push(FnItem {
                        name: name.clone(),
                        impl_type: cur_impl(&stack),
                        line: *line,
                        test: top_test || pending_attr_test,
                        ..FnItem::default()
                    });
                    sigs.push((i + 2, i + 2));
                    pending = Some((
                        Pending::Fn { sig_start: i + 2 },
                        pending_attr_test,
                    ));
                    pending_attr_test = false;
                    pending_nest = 0;
                    i += 2;
                    continue;
                }
            }
            Tok::Ident(kw) if kw == "mod" => {
                if let Some(Token { tok: Tok::Ident(name), .. }) = tokens.get(i + 1) {
                    pending = Some((Pending::Mod(name.clone()), pending_attr_test));
                    pending_attr_test = false;
                    pending_nest = 0;
                    i += 2;
                    continue;
                }
            }
            Tok::Ident(kw) if kw == "impl" || kw == "trait" => {
                let (ty, next) = impl_target(tokens, i + 1, kw == "trait");
                pending = Some((Pending::Impl(ty), pending_attr_test));
                pending_attr_test = false;
                pending_nest = 0;
                i = next;
                continue;
            }
            Tok::Ident(kw) if kw == "struct" => {
                if let Some(Token { tok: Tok::Ident(name), .. }) = tokens.get(i + 1) {
                    pending = Some((Pending::Struct(name.clone()), pending_attr_test));
                    pending_attr_test = false;
                    pending_nest = 0;
                    i += 2;
                    continue;
                }
            }
            // `type A = ...;` — record the alias target's outer segment
            // (last uppercase ident at angle-depth 0 before the `;`).
            Tok::Ident(kw) if kw == "type" => {
                if let (Some(Token { tok: Tok::Ident(name), .. }), true) = (
                    tokens.get(i + 1),
                    tokens.get(i + 2).is_some_and(|n| n.tok == Tok::Punct("=".into())),
                ) {
                    let mut j = i + 3;
                    let mut angle = 0i64;
                    let mut target: Option<String> = None;
                    while let Some(t) = tokens.get(j) {
                        match &t.tok {
                            Tok::Punct(p) if p == ";" => break,
                            Tok::Punct(p) if p == "<" => angle += 1,
                            Tok::Punct(p) if p == ">" => angle -= 1,
                            Tok::Ident(seg)
                                if angle == 0
                                    && seg
                                        .chars()
                                        .next()
                                        .is_some_and(|c| c.is_ascii_uppercase()) =>
                            {
                                target = Some(seg.clone());
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    if let Some(target) = target {
                        if &target != name {
                            aliases.push((name.clone(), target));
                        }
                    }
                    i = j;
                    continue;
                }
            }
            Tok::Ident(kw)
                if pending_attr_test
                    && matches!(kw.as_str(), "enum" | "union" | "macro_rules") =>
            {
                pending = Some((Pending::Item, true));
                pending_attr_test = false;
                pending_nest = 0;
            }
            Tok::Punct(p) if p == "{" => {
                let test = top_test;
                stack.push(Scope { kind: ScopeKind::Block, test });
            }
            Tok::Punct(p) if p == "}" => {
                stack.pop();
            }
            // Struct field: `name :` directly inside a struct body.
            Tok::Ident(name)
                if tokens.get(i + 1).is_some_and(|n| n.tok == Tok::Punct(":".into()))
                    && !tokens.get(i + 2).is_some_and(|n| n.tok == Tok::Punct(":".into())) =>
            {
                if let (Some(ScopeKind::Struct(owner_name)), Some(ty)) =
                    (stack.last().map(|s| s.kind.clone()), outer_type(tokens, i + 2))
                {
                    fields.push(FieldDef { owner: owner_name, field: name.clone(), ty });
                }
            }
            _ => {}
        }
        i += 1;
    }
    while owner.len() < tokens.len() {
        owner.push(None);
    }
    Structure { owner, fns, fields, aliases, sigs }
}

/// Parse the target type of an `impl`/`trait` item starting at `i`
/// (right after the keyword): skip generics, read the type path, prefer
/// the path after `for` when present. Returns the type's last path
/// segment and the index to resume scanning from (unchanged semantics:
/// the caller's pending-item machinery finds the `{`).
fn impl_target(tokens: &[Token], mut i: usize, is_trait: bool) -> (Option<String>, usize) {
    let start = i;
    i = skip_generics(tokens, i);
    if is_trait {
        // `trait Name` — the name is the first ident.
        if let Some(Token { tok: Tok::Ident(name), .. }) = tokens.get(i) {
            return (Some(name.clone()), i + 1);
        }
        return (None, start);
    }
    let mut last: Option<String> = None;
    let mut chosen: Option<String> = None;
    while let Some(t) = tokens.get(i) {
        match &t.tok {
            Tok::Ident(s) if s == "for" => {
                chosen = None; // the trait path was first; the type follows
                last = None;
                i += 1;
            }
            Tok::Ident(s) if s == "where" => break,
            Tok::Ident(s) => {
                last = Some(s.clone());
                i += 1;
            }
            Tok::Punct(p) if p == "::" || p == "&" || p == "(" || p == ")" || p == "," => {
                i += 1;
            }
            Tok::Punct(p) if p == "<" || p == "<<" => {
                chosen = chosen.or(last.take());
                i = skip_generics(tokens, i);
            }
            Tok::Punct(p) if p == "{" => break,
            _ => {
                i += 1;
            }
        }
        if matches!(tokens.get(i).map(|t| &t.tok), Some(Tok::Punct(p)) if p == "{") {
            break;
        }
    }
    (chosen.or(last), start)
}

/// Skip a `<...>` generics group starting at `i` (when present),
/// counting `<<`/`>>` as two brackets.
fn skip_generics(tokens: &[Token], mut i: usize) -> usize {
    let mut depth = 0i64;
    let starts = matches!(
        tokens.get(i).map(|t| &t.tok),
        Some(Tok::Punct(p)) if p == "<" || p == "<<"
    );
    if !starts {
        return i;
    }
    while let Some(t) = tokens.get(i) {
        if let Tok::Punct(p) = &t.tok {
            match p.as_str() {
                "<" => depth += 1,
                "<<" => depth += 2,
                ">" | ">=" => depth -= 1,
                ">>" | ">>=" => depth -= 2,
                _ => {}
            }
        }
        i += 1;
        if depth <= 0 {
            break;
        }
    }
    i
}

/// The outermost path segment of a type starting at token `i`:
/// `Vec<Frame>` → `Vec`, `crate::detect::window::Window` → `Window`,
/// `&mut IngestArena` → `IngestArena`.
fn outer_type(tokens: &[Token], mut i: usize) -> Option<String> {
    let mut last: Option<String> = None;
    while let Some(t) = tokens.get(i) {
        match &t.tok {
            Tok::Punct(p) if p == "&" => i += 1,
            Tok::Ident(s) if s == "mut" || s == "dyn" || s == "impl" => i += 1,
            Tok::Ident(s) => {
                last = Some(s.clone());
                if tokens.get(i + 1).is_some_and(|n| n.tok == Tok::Punct("::".into())) {
                    i += 2;
                } else {
                    break;
                }
            }
            _ => break,
        }
    }
    last
}

/// Extract `name: Type` params from a signature token range.
fn collect_params(sig: &[Token], item: &mut FnItem) {
    let mut depth = 0i64;
    let mut i = 0usize;
    while i < sig.len() {
        match &sig[i].tok {
            Tok::Punct(p) if p == "(" => depth += 1,
            Tok::Punct(p) if p == ")" => depth -= 1,
            Tok::Ident(name)
                if depth == 1
                    && sig.get(i + 1).is_some_and(|n| n.tok == Tok::Punct(":".into()))
                    && !sig.get(i + 2).is_some_and(|n| n.tok == Tok::Punct(":".into()))
                    && (i == 0
                        || matches!(&sig[i - 1].tok, Tok::Punct(p) if p == "(" || p == ","))
                    =>
            {
                let rel = i + 2;
                let abs_tokens = &sig[rel..];
                if let Some(ty) = outer_type(abs_tokens, 0) {
                    item.locals.push((name.clone(), ty));
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// Pass B: body facts. One forward walk with rules.rs-compatible loop
/// tracking; every fact lands on the fn that owns the token.
fn facts(tokens: &[Token], owner: &[Option<usize>], fns: &mut [FnItem]) {
    let mut depth = 0u32;
    let mut pending_loop = false;
    let mut loop_depths: Vec<u32> = Vec::new();
    let in_attr = attr_mask(tokens);

    for i in 0..tokens.len() {
        if in_attr[i] {
            continue;
        }
        let t = &tokens[i];
        let f = owner[i];

        match &t.tok {
            Tok::Ident(s) if s == "for" || s == "while" || s == "loop" => {
                let hrtb = s == "for"
                    && tokens.get(i + 1).is_some_and(|n| n.tok == Tok::Punct("<".into()));
                if !hrtb {
                    pending_loop = true;
                }
            }
            Tok::Punct(p) if p == ";" => pending_loop = false,
            Tok::Punct(p) if p == "{" => {
                depth += 1;
                if pending_loop {
                    loop_depths.push(depth);
                    pending_loop = false;
                }
            }
            Tok::Punct(p) if p == "}" => {
                if loop_depths.last() == Some(&depth) {
                    loop_depths.pop();
                }
                depth = depth.saturating_sub(1);
            }
            _ => {}
        }

        let Some(f) = f else { continue };

        // `let name = Type::...` / `let name: Type` locals.
        if t.tok == Tok::Ident("let".into()) {
            let mut j = i + 1;
            if tokens.get(j).is_some_and(|n| n.tok == Tok::Ident("mut".into())) {
                j += 1;
            }
            if let Some(Token { tok: Tok::Ident(name), .. }) = tokens.get(j) {
                let after = tokens.get(j + 1).map(|n| &n.tok);
                if after == Some(&Tok::Punct(":".into())) {
                    if let Some(ty) = outer_type(tokens, j + 2) {
                        fns[f].locals.push((name.clone(), ty));
                    }
                } else if after == Some(&Tok::Punct("=".into())) {
                    match tokens.get(j + 2).map(|n| &n.tok) {
                        Some(Tok::Ident(ty)) => {
                            if ty == "move"
                                && tokens
                                    .get(j + 3)
                                    .is_some_and(|n| n.tok == Tok::Punct("|".into()))
                            {
                                fns[f].locals.push((name.clone(), CLOSURE_TY.into()));
                            } else if tokens
                                .get(j + 3)
                                .is_some_and(|n| n.tok == Tok::Punct("::".into()))
                                && ty.chars().next().is_some_and(|c| c.is_ascii_uppercase())
                            {
                                fns[f].locals.push((name.clone(), ty.clone()));
                            }
                        }
                        // `let f = |x| ...` / `let f = || ...`: a closure
                        // binding — calls through it run code already
                        // scanned inline in this fn.
                        Some(Tok::Punct(p)) if p == "|" || p == "||" => {
                            fns[f].locals.push((name.clone(), CLOSURE_TY.into()));
                        }
                        _ => {}
                    }
                }
            }
        }

        // `.method(` sites.
        if let (Tok::Punct(dot), Some(Token { tok: Tok::Ident(m), line }), Some(paren)) =
            (&t.tok, tokens.get(i + 1), tokens.get(i + 2))
        {
            if dot == "." && paren.tok == Tok::Punct("(".into()) {
                let recv = receiver_chain(tokens, i);
                if R1_METHODS.iter().any(|x| x == m) {
                    fns[f].alloc_sites.push(Site {
                        line: *line,
                        what: format!(".{m}() allocates an owned copy"),
                    });
                }
                if R2_METHODS.iter().any(|x| x == m) {
                    fns[f].panic_sites.push(Site {
                        line: *line,
                        what: format!(".{m}() can panic"),
                    });
                }
                if m == "push" && !loop_depths.is_empty() {
                    fns[f].push_loops.push(Site {
                        line: *line,
                        what: "per-element .push() in a loop".into(),
                    });
                }
                if R4_RESERVERS.iter().any(|x| x == m) {
                    fns[f].reserves = true;
                }
                if m == "lock" {
                    let region = lock_region(tokens, i, *line, &recv);
                    fns[f].lock_regions.push(region);
                }
                fns[f].calls.push(CallSite { callee: m.clone(), recv, line: *line });
            }
        }

        // Free and path calls: `name(` not preceded by `.` or `fn`.
        if let (Tok::Ident(m), Some(paren)) = (&t.tok, tokens.get(i + 1)) {
            if paren.tok == Tok::Punct("(".into())
                && !is_keyword(m)
                && i > 0
                && !matches!(&tokens[i - 1].tok, Tok::Punct(p) if p == "." || p == "#")
                && tokens[i - 1].tok != Tok::Ident("fn".into())
            {
                let qualifier = if tokens[i - 1].tok == Tok::Punct("::".into()) {
                    match tokens.get(i.wrapping_sub(2)).map(|t| &t.tok) {
                        Some(Tok::Ident(q)) => Some(q.clone()),
                        _ => None,
                    }
                } else {
                    None
                };
                if R4_RESERVERS.iter().any(|x| x == m) {
                    fns[f].reserves = true;
                }
                fns[f].calls.push(CallSite {
                    callee: m.clone(),
                    recv: Recv::Free { qualifier },
                    line: t.line,
                });
            }
        }

        // Panicking macros.
        if let (Tok::Ident(m), Some(Token { tok: Tok::Punct(bang), .. })) =
            (&t.tok, tokens.get(i + 1))
        {
            if bang == "!" && R2_MACROS.iter().any(|x| x == m) {
                fns[f].panic_sites.push(Site { line: t.line, what: format!("{m}! can panic") });
            }
        }

        // Direct indexing.
        if t.tok == Tok::Punct("[".into()) && i > 0 && is_value_end(&tokens[i - 1].tok) {
            fns[f].panic_sites.push(Site {
                line: t.line,
                what: "direct slice indexing can panic".into(),
            });
        }
    }

    // Function references passed as arguments: a bare ident followed by
    // `)` or `,` — recorded so `sort_by(fragment_order)` keeps
    // `fragment_order` in the reachable set. Almost all such idents are
    // plain variables, so these sites carry `Recv::FnRef` and resolve
    // only against workspace free fns, never tainting when unresolved.
    for i in 1..tokens.len() {
        let Some(f) = owner[i] else { continue };
        if let Tok::Ident(m) = &tokens[i].tok {
            let before = matches!(&tokens[i - 1].tok, Tok::Punct(p) if p == "(" || p == ",");
            let after = matches!(
                tokens.get(i + 1).map(|t| &t.tok),
                Some(Tok::Punct(p)) if p == ")" || p == ","
            );
            if before && after && !is_keyword(m) {
                fns[f].calls.push(CallSite {
                    callee: m.clone(),
                    recv: Recv::FnRef,
                    line: tokens[i].line,
                });
            }
        }
    }
}

/// Token positions inside `#[...]` / `#![...]` attributes: their
/// contents (`#[cfg(feature = "x")]`) look like calls but run nothing.
fn attr_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].tok == Tok::Punct("#".into()) {
            let mut j = i + 1;
            if tokens.get(j).is_some_and(|t| t.tok == Tok::Punct("!".into())) {
                j += 1;
            }
            if tokens.get(j).is_some_and(|t| t.tok == Tok::Punct("[".into())) {
                let mut bracket = 0i64;
                let mut k = j;
                while let Some(t) = tokens.get(k) {
                    match &t.tok {
                        Tok::Punct(p) if p == "[" => bracket += 1,
                        Tok::Punct(p) if p == "]" => {
                            bracket -= 1;
                            if bracket == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                for m in mask.iter_mut().take((k + 1).min(tokens.len())).skip(i) {
                    *m = true;
                }
                i = k + 1;
                continue;
            }
        }
        i += 1;
    }
    mask
}

/// Walk backwards from a `.` token collecting the receiver ident chain.
fn receiver_chain(tokens: &[Token], dot: usize) -> Recv {
    let mut chain: Vec<String> = Vec::new();
    let mut i = dot;
    loop {
        if i == 0 {
            break;
        }
        match &tokens[i - 1].tok {
            Tok::Ident(s) if !is_keyword(s) || s == "self" => {
                chain.push(s.clone());
                if i >= 2 && tokens[i - 2].tok == Tok::Punct(".".into()) {
                    i -= 2;
                    continue;
                }
                // Chain start must not be a call/index result.
                if i >= 2
                    && matches!(&tokens[i - 2].tok, Tok::Punct(p) if p == ")" || p == "]" || p == "." || p == "?")
                {
                    return Recv::Opaque;
                }
                break;
            }
            _ => return Recv::Opaque,
        }
    }
    if chain.is_empty() {
        return Recv::Opaque;
    }
    chain.reverse();
    Recv::Chain(chain)
}

/// Scan forward from a `.lock(` site and collect the guard's extent.
fn lock_region(tokens: &[Token], dot: usize, line: u32, recv: &Recv) -> LockRegion {
    let lock_id = match recv {
        Recv::Chain(chain) => chain.last().cloned().unwrap_or_else(|| "<expr>".into()),
        _ => "<expr>".into(),
    };
    // Is the guard `let`-bound? Walk back past the receiver chain to
    // look for `let [mut] name =`.
    let mut start = dot;
    while start >= 2 && matches!(&tokens[start - 1].tok, Tok::Ident(_)) {
        if tokens[start - 2].tok == Tok::Punct(".".into()) {
            start -= 2;
        } else {
            start -= 1;
            break;
        }
    }
    let mut guard: Option<String> = None;
    if start >= 2 && tokens[start - 1].tok == Tok::Punct("=".into()) {
        if let Tok::Ident(name) = &tokens[start - 2].tok {
            let let_pos = if start >= 3 && tokens[start - 3].tok == Tok::Ident("mut".into()) {
                start.checked_sub(4)
            } else {
                start.checked_sub(3)
            };
            if let_pos
                .and_then(|p| tokens.get(p))
                .is_some_and(|t| t.tok == Tok::Ident("let".into()))
            {
                guard = Some(name.clone());
            }
        }
    }

    let mut region = LockRegion { lock_id, line, ..LockRegion::default() };
    let mut depth = 0i64;
    let mut i = dot + 3; // past `.` `lock` `(`
    // Skip the (normally empty) lock argument list.
    let mut arg_depth = 1i64;
    while let Some(t) = tokens.get(i) {
        if let Tok::Punct(p) = &t.tok {
            if p == "(" {
                arg_depth += 1;
            } else if p == ")" {
                arg_depth -= 1;
                if arg_depth == 0 {
                    i += 1;
                    break;
                }
            }
        }
        i += 1;
    }
    while let Some(t) = tokens.get(i) {
        match &t.tok {
            Tok::Punct(p) if p == "{" => depth += 1,
            Tok::Punct(p) if p == "}" => {
                depth -= 1;
                if depth < 0 {
                    break; // enclosing block closed: guard dropped
                }
            }
            Tok::Punct(p) if p == ";" && depth == 0 && guard.is_none() => break,
            Tok::Ident(s) if s == "drop" => {
                // `drop(guard)` ends a let-bound region.
                if let (Some(g), Some(Token { tok: Tok::Punct(open), .. }), Some(arg)) =
                    (&guard, tokens.get(i + 1), tokens.get(i + 2))
                {
                    if open == "(" && arg.tok == Tok::Ident(g.clone()) {
                        break;
                    }
                }
            }
            _ => {}
        }

        if let (Tok::Punct(dot2), Some(Token { tok: Tok::Ident(m), line }), Some(paren)) =
            (&t.tok, tokens.get(i + 1), tokens.get(i + 2))
        {
            if dot2 == "." && paren.tok == Tok::Punct("(".into()) {
                if RAYON_METHODS.iter().any(|x| x == m) {
                    region
                        .rayon_sites
                        .push(Site { line: *line, what: format!(".{m}() enters rayon") });
                }
                if SEND_METHODS.iter().any(|x| x == m) {
                    region
                        .send_sites
                        .push(Site { line: *line, what: format!(".{m}() is a channel send") });
                }
                if m == "lock" {
                    let nested = match receiver_chain(tokens, i) {
                        Recv::Chain(chain) => {
                            chain.last().cloned().unwrap_or_else(|| "<expr>".into())
                        }
                        _ => "<expr>".into(),
                    };
                    region.nested_locks.push((nested, *line));
                }
                region.calls.push(CallSite {
                    callee: m.clone(),
                    recv: receiver_chain(tokens, i),
                    line: *line,
                });
            }
        }
        if let (Tok::Ident(m), Some(paren)) = (&t.tok, tokens.get(i + 1)) {
            if paren.tok == Tok::Punct("(".into())
                && !is_keyword(m)
                && i > 0
                && !matches!(&tokens[i - 1].tok, Tok::Punct(p) if p == "." || p == "#")
                && tokens[i - 1].tok != Tok::Ident("fn".into())
            {
                let qualifier = if tokens[i - 1].tok == Tok::Punct("::".into()) {
                    match tokens.get(i.wrapping_sub(2)).map(|t| &t.tok) {
                        Some(Tok::Ident(q)) => Some(q.clone()),
                        _ => None,
                    }
                } else {
                    None
                };
                if RAYON_FREE.iter().any(|x| x == m)
                    && qualifier.as_deref() == Some("rayon")
                {
                    region
                        .rayon_sites
                        .push(Site { line: t.line, what: format!("rayon::{m} entered") });
                }
                region.calls.push(CallSite {
                    callee: m.clone(),
                    recv: Recv::Free { qualifier },
                    line: t.line,
                });
            }
        }
        i += 1;
    }
    region
}

fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "let" | "in" | "if" | "while" | "match" | "return" | "else" | "move" | "mut"
            | "ref" | "as" | "break" | "continue" | "where" | "const" | "static" | "fn"
            | "pub" | "use" | "mod" | "enum" | "struct" | "union" | "trait" | "unsafe"
            | "for" | "loop" | "impl" | "dyn" | "box" | "type" | "crate" | "super"
            | "async" | "await" | "yield" | "true" | "false"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index(src: &str) -> FileIndex {
        index_file(src)
    }

    fn find<'a>(ix: &'a FileIndex, name: &str) -> &'a FnItem {
        ix.fns.iter().find(|f| f.name == name).unwrap_or_else(|| panic!("fn {name}"))
    }

    #[test]
    fn impl_types_and_methods_are_indexed() {
        let src = "
            struct Arena { pools: Vec<u32>, tracker: RankTracker }
            impl Arena {
                fn absorb(&mut self) { self.tracker.admit(); }
            }
            impl Iterator for RankTracker {
                fn next(&mut self) -> Option<u32> { None }
            }
            fn free_helper(x: u32) -> u32 { x }
        ";
        let ix = index(src);
        assert_eq!(find(&ix, "absorb").impl_type.as_deref(), Some("Arena"));
        assert_eq!(find(&ix, "next").impl_type.as_deref(), Some("RankTracker"));
        assert_eq!(find(&ix, "free_helper").impl_type, None);
        assert!(ix.fields.contains(&FieldDef {
            owner: "Arena".into(),
            field: "pools".into(),
            ty: "Vec".into()
        }));
        assert!(ix.fields.contains(&FieldDef {
            owner: "Arena".into(),
            field: "tracker".into(),
            ty: "RankTracker".into()
        }));
        let absorb = find(&ix, "absorb");
        assert!(absorb
            .calls
            .iter()
            .any(|c| c.callee == "admit"
                && c.recv == Recv::Chain(vec!["self".into(), "tracker".into()])));
    }

    #[test]
    fn params_and_locals_are_typed() {
        let src = "
            fn f(arena: &mut IngestArena, n: usize) {
                let pool = ColumnarPool::new();
                let other: RankTracker = make();
                pool.refill(arena);
                other.admit(n);
            }
        ";
        let ix = index(src);
        let f = find(&ix, "f");
        assert!(f.locals.contains(&("arena".into(), "IngestArena".into())));
        assert!(f.locals.contains(&("pool".into(), "ColumnarPool".into())));
        assert!(f.locals.contains(&("other".into(), "RankTracker".into())));
    }

    #[test]
    fn panic_alloc_and_push_sites_are_collected() {
        let src = "
            fn f(v: &[u8], xs: &Vec<u8>) -> u8 {
                let mut out = Vec::new();
                for x in xs.iter() {
                    out.push(*x);
                }
                let _c = xs.clone();
                assert!(v.len() > 0);
                v[0]
            }
        ";
        let ix = index(src);
        let f = find(&ix, "f");
        assert_eq!(f.push_loops.len(), 1);
        assert_eq!(f.alloc_sites.len(), 1);
        assert!(f.panic_sites.iter().any(|s| s.what.contains("assert!")));
        assert!(f.panic_sites.iter().any(|s| s.what.contains("indexing")));
        assert!(!f.reserves);
    }

    #[test]
    fn lock_regions_track_extent_and_rayon() {
        let src = "
            fn bad(m: &Mutex<Vec<u32>>) {
                let g = m.lock();
                rayon::join(|| g.len(), || 0);
            }
            fn good(m: &Mutex<Vec<u32>>) {
                let g = m.lock();
                drop(g);
                rayon::join(|| 1, || 0);
            }
            fn temporary(m: &Mutex<Vec<u32>>) {
                m.lock().push(1);
                rayon::join(|| 1, || 0);
            }
        ";
        let ix = index(src);
        let bad = find(&ix, "bad");
        assert_eq!(bad.lock_regions.len(), 1);
        assert_eq!(bad.lock_regions[0].lock_id, "m");
        assert_eq!(bad.lock_regions[0].rayon_sites.len(), 1);
        let good = find(&ix, "good");
        assert!(good.lock_regions[0].rayon_sites.is_empty(), "drop(g) ends the region");
        let temp = find(&ix, "temporary");
        assert!(temp.lock_regions[0].rayon_sites.is_empty(), "statement ends the region");
    }

    #[test]
    fn nested_locks_are_recorded() {
        let src = "
            fn f(a: &Mutex<u32>, b: &Mutex<u32>) {
                let g = a.lock();
                let h = b.lock();
                let _ = *g + *h;
            }
        ";
        let ix = index(src);
        let f = find(&ix, "f");
        assert_eq!(f.lock_regions.len(), 2);
        assert_eq!(f.lock_regions[0].nested_locks, vec![("b".into(), 4)]);
    }

    #[test]
    fn test_functions_are_marked() {
        let src = "
            fn prod() {}
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { let v = vec![1]; v[0]; }
            }
        ";
        let ix = index(src);
        assert!(!find(&ix, "prod").test);
        assert!(find(&ix, "t").test);
    }
}
