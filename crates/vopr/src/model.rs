//! The independent admission oracle: a from-scratch reimplementation of
//! the `WindowedIngestor` admission contract — dedup, late-data policy,
//! backpressure, liveness latching, and the shipping low-watermark —
//! over transport metadata alone. The oracle never reads the server's
//! bookkeeping and never decodes a frame; it predicts what the server
//! *must* do with each delivery from what the transport says it did to
//! it ([`Delivery`]), and the driver compares prediction against the
//! observed outcome frame by frame. A canary mutation in the server
//! (skipped CRC, skewed watermark, disabled dedup) therefore shows up
//! as a prediction mismatch on the first affected delivery.
//!
//! Every function here is total: no panics, no unwraps, no direct
//! indexing (enforced by the workspace lint's R2 scope) — a hostile or
//! nonsensical delivery yields a rejection prediction, never a crash.

use std::collections::BTreeMap;
use vapro_core::{LateDataPolicy, VaproConfig};

/// Sequence number that opts out of dedup/ordering (wire v1 frames).
const SEQ_UNSEQUENCED: u64 = 0;

/// Everything the oracle may know about one delivery: transport-side
/// metadata, never server state. `corrupted`/`malformed` reflect what
/// the fault injector actually did to the bytes — the oracle holds the
/// codec to its contract (a flipped CRC-covered byte MUST be rejected)
/// instead of re-deriving the checksum.
#[derive(Debug, Clone, Copy)]
pub struct Delivery {
    pub rank: usize,
    pub seq: u64,
    pub window_start_ns: u64,
    pub window_end_ns: u64,
    /// Encoded frame length, charged against the backpressure budget.
    pub frame_bytes: u64,
    /// A CRC-covered byte was flipped in transit.
    pub corrupted: bool,
    /// The frame is structurally broken (truncated, garbage).
    pub malformed: bool,
}

/// What the server must do with a delivery, as the oracle predicts it
/// and as the driver classifies the observed behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Decoded, admitted into the arena, mark advanced.
    Admitted,
    /// Rejected at decode with a checksum mismatch.
    RejectedCorrupt,
    /// Rejected at decode as structurally invalid.
    RejectedMalformed,
    /// Decoded, rejected at admission: rank outside the deployment.
    RejectedUnknownRank,
    /// Decoded, rejected at admission: sequence number already seen.
    RejectedDuplicate,
    /// Accepted but discarded under the dead-rank late-data policy.
    DroppedLate,
    /// Accepted but discarded by the ahead-of-watermark byte cap.
    DroppedBackpressure,
}

/// Stable snake_case name of an outcome, for journals and reports.
pub fn outcome_name(outcome: Outcome) -> &'static str {
    match outcome {
        Outcome::Admitted => "admitted",
        Outcome::RejectedCorrupt => "rejected_corrupt",
        Outcome::RejectedMalformed => "rejected_malformed",
        Outcome::RejectedUnknownRank => "rejected_unknown_rank",
        Outcome::RejectedDuplicate => "rejected_duplicate",
        Outcome::DroppedLate => "dropped_late",
        Outcome::DroppedBackpressure => "dropped_backpressure",
    }
}

/// The oracle's view of one rank: mirror of the server's `RankTracker`
/// semantics, independently maintained.
#[derive(Debug, Default)]
struct RankModel {
    /// Largest window end contiguously shipped.
    mark_ns: u64,
    /// Highest sequence number with every predecessor admitted.
    contig: u64,
    /// Out-of-order admissions ahead of the contiguous prefix.
    pending: BTreeMap<u64, u64>,
    /// Latched death flag.
    dead: bool,
}

impl RankModel {
    /// Record an accepted delivery: unsequenced frames advance the mark
    /// directly, sequenced frames only along the contiguous prefix.
    fn accept(&mut self, seq: u64, window_end_ns: u64) {
        if seq == SEQ_UNSEQUENCED {
            self.mark_ns = self.mark_ns.max(window_end_ns);
            return;
        }
        self.pending.insert(seq, window_end_ns);
        while let Some(end) = self.pending.remove(&self.contig.saturating_add(1)) {
            self.contig = self.contig.saturating_add(1);
            self.mark_ns = self.mark_ns.max(end);
        }
    }
}

/// The admission oracle. Constructed from the same `VaproConfig` the
/// server under test runs with (policy is the *specification* shared by
/// both; state is not).
#[derive(Debug)]
pub struct AdmissionModel {
    ranks: Vec<RankModel>,
    dead_horizon_ns: Option<u64>,
    drop_late: bool,
    cap: Option<u64>,
    /// Ahead-of-watermark bytes, keyed by shipped window end — released
    /// once the watermark passes them, exactly as the server releases
    /// its backpressure budget on window close.
    buffered: BTreeMap<u64, u64>,
    buffered_bytes: u64,
}

impl AdmissionModel {
    pub fn new(nranks: usize, cfg: &VaproConfig) -> AdmissionModel {
        AdmissionModel {
            ranks: (0..nranks).map(|_| RankModel::default()).collect(),
            dead_horizon_ns: cfg.fault.dead_horizon.map(|h| h.ns()),
            drop_late: cfg.fault.late_data == LateDataPolicy::Drop,
            cap: cfg.fault.max_buffered_bytes,
            buffered: BTreeMap::new(),
            buffered_bytes: 0,
        }
    }

    /// Predict the server's outcome for one delivery and absorb the
    /// delivery into the oracle's own state. Total over any input.
    pub fn predict(&mut self, d: &Delivery) -> Outcome {
        let outcome = self.classify(d);
        self.absorb(d, outcome);
        outcome
    }

    /// Pure classification against current state, mirroring the server's
    /// decode-then-admit order: structural decode failures first, then
    /// checksum, then rank validation, dedup, the dead-rank late policy,
    /// and last the backpressure cap.
    fn classify(&self, d: &Delivery) -> Outcome {
        if d.malformed {
            return Outcome::RejectedMalformed;
        }
        if d.corrupted {
            return Outcome::RejectedCorrupt;
        }
        let Some(rank) = self.ranks.get(d.rank) else {
            return Outcome::RejectedUnknownRank;
        };
        if d.seq != SEQ_UNSEQUENCED
            && (d.seq <= rank.contig || rank.pending.contains_key(&d.seq))
        {
            return Outcome::RejectedDuplicate;
        }
        if rank.dead && self.drop_late {
            return Outcome::DroppedLate;
        }
        if d.window_start_ns > self.watermark_ns() {
            if let Some(cap) = self.cap {
                if self.buffered_bytes.saturating_add(d.frame_bytes) > cap {
                    return Outcome::DroppedBackpressure;
                }
            }
        }
        Outcome::Admitted
    }

    /// Mirror the server's state change for a classified delivery.
    /// Rejections (`Err` returns in the server) change nothing; accepted
    /// deliveries — including policy drops — advance the rank's mark,
    /// and only then does liveness latch and the backpressure budget
    /// release, exactly as the server's post-admission window close.
    fn absorb(&mut self, d: &Delivery, outcome: Outcome) {
        match outcome {
            Outcome::RejectedCorrupt
            | Outcome::RejectedMalformed
            | Outcome::RejectedUnknownRank
            | Outcome::RejectedDuplicate => return,
            Outcome::Admitted | Outcome::DroppedLate | Outcome::DroppedBackpressure => {}
        }
        // "Ahead" is judged against the pre-acceptance watermark, as in
        // the server's admission path.
        let ahead = d.window_start_ns > self.watermark_ns();
        if let Some(rank) = self.ranks.get_mut(d.rank) {
            rank.accept(d.seq, d.window_end_ns);
        }
        if outcome == Outcome::Admitted && ahead && self.cap.is_some() {
            let slot = self.buffered.entry(d.window_end_ns).or_insert(0);
            *slot = slot.saturating_add(d.frame_bytes);
            self.buffered_bytes = self.buffered_bytes.saturating_add(d.frame_bytes);
        }
        self.update_liveness();
        let low = self.watermark_ns();
        while let Some((&end, _)) = self.buffered.first_key_value() {
            if end > low {
                break;
            }
            if let Some(bytes) = self.buffered.remove(&end) {
                self.buffered_bytes = self.buffered_bytes.saturating_sub(bytes);
            }
        }
    }

    /// A rank joins the deployment: its mark starts at the current
    /// watermark (it owes nothing already closed), its sequence space is
    /// fresh. Returns the rank id the newborn must stamp.
    pub fn record_birth(&mut self) -> usize {
        let rank = self.ranks.len();
        let mark_ns = self.watermark_ns();
        self.ranks.push(RankModel { mark_ns, ..RankModel::default() });
        rank
    }

    /// The shipping low-watermark: minimum mark over live ranks, or the
    /// maximum over all when every rank is dead, `0` with no ranks.
    pub fn watermark_ns(&self) -> u64 {
        match self.ranks.iter().filter(|r| !r.dead).map(|r| r.mark_ns).min() {
            Some(low) => low,
            None => self.ranks.iter().map(|r| r.mark_ns).max().unwrap_or(0),
        }
    }

    /// Latch death onto every rank trailing the fastest mark by more
    /// than the configured horizon.
    fn update_liveness(&mut self) {
        let Some(horizon) = self.dead_horizon_ns else { return };
        let fastest = self.ranks.iter().map(|r| r.mark_ns).max().unwrap_or(0);
        for rank in &mut self.ranks {
            if !rank.dead && fastest.saturating_sub(rank.mark_ns) > horizon {
                rank.dead = true;
            }
        }
    }

    /// Whether the oracle has latched `rank` dead.
    pub fn is_dead(&self, rank: usize) -> bool {
        self.ranks.get(rank).is_some_and(|r| r.dead)
    }

    /// Ranks currently in the oracle's deployment.
    pub fn nranks(&self) -> usize {
        self.ranks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vapro_core::{FaultTolerance, LateDataPolicy};
    use vapro_sim::VirtualTime;

    fn cfg(period_ns: u64, cap: Option<u64>) -> VaproConfig {
        VaproConfig {
            report_period: VirtualTime::from_ns(period_ns),
            fault: FaultTolerance {
                straggler_horizon: Some(VirtualTime::from_ns(period_ns * 2)),
                dead_horizon: Some(VirtualTime::from_ns(period_ns * 4)),
                late_data: LateDataPolicy::Drop,
                max_buffered_bytes: cap,
            },
            ..VaproConfig::default()
        }
    }

    fn frame(rank: usize, seq: u64, start: u64, end: u64) -> Delivery {
        Delivery {
            rank,
            seq,
            window_start_ns: start,
            window_end_ns: end,
            frame_bytes: 100,
            corrupted: false,
            malformed: false,
        }
    }

    #[test]
    fn duplicates_unknown_ranks_and_corruption_are_rejected() {
        let mut m = AdmissionModel::new(2, &cfg(100, None));
        assert_eq!(m.predict(&frame(0, 1, 0, 100)), Outcome::Admitted);
        assert_eq!(m.predict(&frame(0, 1, 0, 100)), Outcome::RejectedDuplicate);
        assert_eq!(m.predict(&frame(7, 1, 0, 100)), Outcome::RejectedUnknownRank);
        let corrupt = Delivery { corrupted: true, ..frame(1, 1, 0, 100) };
        assert_eq!(m.predict(&corrupt), Outcome::RejectedCorrupt);
        // Rejections leave no trace: the same frame is then admitted.
        assert_eq!(m.predict(&frame(1, 1, 0, 100)), Outcome::Admitted);
    }

    #[test]
    fn a_silent_rank_latches_dead_and_its_late_data_drops() {
        let mut m = AdmissionModel::new(2, &cfg(100, None));
        for k in 1..=8u64 {
            assert_eq!(m.predict(&frame(0, k, (k - 1) * 100, k * 100)), Outcome::Admitted);
        }
        assert!(m.is_dead(1), "rank 1 never shipped and must latch dead");
        // Dead ranks stop gating the watermark...
        assert_eq!(m.watermark_ns(), 800);
        // ...and their late data is dropped under the Drop policy.
        assert_eq!(m.predict(&frame(1, 1, 0, 100)), Outcome::DroppedLate);
    }

    #[test]
    fn the_byte_cap_sheds_ahead_of_watermark_frames() {
        let mut m = AdmissionModel::new(2, &cfg(100, Some(150)));
        // Rank 0 ships ahead while rank 1 holds the watermark at 0.
        assert_eq!(m.predict(&frame(0, 1, 100, 200)), Outcome::Admitted);
        assert_eq!(m.predict(&frame(0, 2, 200, 300)), Outcome::DroppedBackpressure);
        // Rank 1 catches up, the watermark passes, the budget releases.
        assert_eq!(m.predict(&frame(1, 1, 0, 100)), Outcome::Admitted);
        assert_eq!(m.predict(&frame(1, 2, 100, 200)), Outcome::Admitted);
        assert_eq!(m.predict(&frame(0, 3, 200, 300)), Outcome::Admitted);
    }

    #[test]
    fn a_born_rank_starts_at_the_watermark_with_a_fresh_sequence_space() {
        let mut m = AdmissionModel::new(1, &cfg(100, None));
        assert_eq!(m.predict(&frame(0, 1, 0, 100)), Outcome::Admitted);
        assert_eq!(m.predict(&frame(0, 2, 100, 200)), Outcome::Admitted);
        let rank = m.record_birth();
        assert_eq!(rank, 1);
        assert_eq!(m.nranks(), 2);
        // The newborn's seq 1 is valid even though rank 0 is on seq 2.
        assert_eq!(m.predict(&frame(1, 1, 200, 300)), Outcome::Admitted);
    }
}
