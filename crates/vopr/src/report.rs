//! `VOPR_report.json`: the machine-readable record of one VOPR run and
//! the gates computed from it. The JSON is hand-rendered with sorted
//! keys and no timestamps so the committed report is byte-stable — CI
//! regenerates it and `git diff --exit-code` turns any regression in
//! coverage, invariant counts, determinism, or canary score into a
//! visible diff (the same ratchet `LINT_report.json` uses).

use crate::invariant::InvariantTracker;
use crate::invariant::Violation;
use std::collections::BTreeMap;
use vapro_core::vopr::fault_points;

/// The fraction of registered fault points a passing run must hit.
pub const COVERAGE_GATE: f64 = 0.8;

/// One canary's hunt outcome.
#[derive(Debug, Clone)]
pub struct CanaryOutcome {
    pub name: &'static str,
    pub caught: bool,
    pub attempts: u64,
}

/// Everything one VOPR run measured.
#[derive(Debug)]
pub struct VoprReport {
    pub profile: String,
    pub seeds: Vec<u64>,
    /// Fault-point name → hits across the measurement seeds.
    pub fault_points: BTreeMap<&'static str, u64>,
    /// Fraction of registered fault points with ≥ 1 hit.
    pub coverage: f64,
    /// Invariant name → execution count.
    pub invariants: BTreeMap<&'static str, u64>,
    /// Required invariants that never executed.
    pub missing_required: Vec<&'static str>,
    pub violations: Vec<Violation>,
    /// Same first seed replayed → identical journal.
    pub determinism_ok: bool,
    pub journal_hash: u64,
    pub journal_events: u64,
    /// `None` when the binary was built without canary support.
    pub canaries: Option<Vec<CanaryOutcome>>,
}

impl VoprReport {
    #[allow(clippy::too_many_arguments)] // internal assembly seam, one caller
    pub fn assemble(
        profile: &str,
        seeds: &[u64],
        hits: &[u64; fault_points::COUNT],
        tracker: &InvariantTracker,
        journal_hash: u64,
        journal_events: u64,
        determinism_ok: bool,
        canaries: Option<Vec<CanaryOutcome>>,
    ) -> VoprReport {
        let fault_pts: BTreeMap<&'static str, u64> = fault_points::ALL
            .iter()
            .zip(hits.iter())
            .map(|(&p, &n)| (fault_points::name(p), n))
            .collect();
        let hit_count = hits.iter().filter(|&&n| n > 0).count();
        VoprReport {
            profile: profile.to_string(),
            seeds: seeds.to_vec(),
            fault_points: fault_pts,
            coverage: hit_count as f64 / fault_points::COUNT as f64,
            invariants: tracker.counts().clone(),
            missing_required: tracker.missing_required(),
            violations: tracker.violations().to_vec(),
            determinism_ok,
            journal_hash,
            journal_events,
            canaries,
        }
    }

    /// Canary-mutation score: caught / total. `None` without canary
    /// support.
    pub fn canary_score(&self) -> Option<f64> {
        self.canaries.as_ref().map(|cs| {
            if cs.is_empty() {
                return 1.0;
            }
            cs.iter().filter(|c| c.caught).count() as f64 / cs.len() as f64
        })
    }

    /// Every failed gate, as human-readable descriptions. Empty ⇒ pass.
    pub fn failed_gates(&self) -> Vec<String> {
        let mut failed = Vec::new();
        if !self.violations.is_empty() {
            failed.push(format!("{} invariant violation(s)", self.violations.len()));
        }
        if !self.missing_required.is_empty() {
            failed.push(format!(
                "required invariants never executed: {:?}",
                self.missing_required
            ));
        }
        if self.coverage < COVERAGE_GATE {
            let cold: Vec<&str> = self
                .fault_points
                .iter()
                .filter(|&(_, &n)| n == 0)
                .map(|(&name, _)| name)
                .collect();
            failed.push(format!(
                "fault-point coverage {:.2} below {COVERAGE_GATE} (cold: {cold:?})",
                self.coverage
            ));
        }
        if !self.determinism_ok {
            failed.push("nondeterministic: replaying the first seed changed the journal".into());
        }
        if let Some(cs) = &self.canaries {
            let missed: Vec<&str> = cs.iter().filter(|c| !c.caught).map(|c| c.name).collect();
            if !missed.is_empty() {
                failed.push(format!(
                    "canary-mutation score {:.2} below 1.00 (missed: {missed:?})",
                    self.canary_score().unwrap_or(0.0)
                ));
            }
        }
        failed
    }

    /// Render the stable JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(2_048);
        out.push_str("{\n");
        out.push_str("  \"schema\": \"vapro-vopr/1\",\n");
        out.push_str(&format!("  \"profile\": {},\n", json_str(&self.profile)));
        let seeds: Vec<String> = self.seeds.iter().map(u64::to_string).collect();
        out.push_str(&format!("  \"seeds\": [{}],\n", seeds.join(", ")));
        out.push_str("  \"fault_points\": {\n");
        push_map(&mut out, self.fault_points.iter().map(|(&k, &v)| (k, v.to_string())));
        out.push_str("  },\n");
        out.push_str(&format!("  \"fault_point_coverage\": {:.4},\n", self.coverage));
        out.push_str("  \"invariants\": {\n");
        push_map(&mut out, self.invariants.iter().map(|(&k, &v)| (k, v.to_string())));
        out.push_str("  },\n");
        out.push_str(&format!(
            "  \"missing_required\": [{}],\n",
            self.missing_required
                .iter()
                .map(|name| json_str(name))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        out.push_str("  \"violations\": [");
        let rendered: Vec<String> = self.violations.iter().map(|v| json_str(&v.to_string())).collect();
        out.push_str(&rendered.join(", "));
        out.push_str("],\n");
        out.push_str(&format!("  \"determinism_ok\": {},\n", self.determinism_ok));
        out.push_str(&format!("  \"journal_hash\": \"{:#018x}\",\n", self.journal_hash));
        out.push_str(&format!("  \"journal_events\": {},\n", self.journal_events));
        match &self.canaries {
            None => out.push_str("  \"canaries\": null,\n  \"canary_score\": null,\n"),
            Some(cs) => {
                out.push_str("  \"canaries\": {\n");
                push_map(
                    &mut out,
                    cs.iter().map(|c| {
                        (
                            c.name,
                            format!(
                                "{{\"caught\": {}, \"attempts\": {}}}",
                                c.caught, c.attempts
                            ),
                        )
                    }),
                );
                out.push_str("  },\n");
                out.push_str(&format!(
                    "  \"canary_score\": {:.2},\n",
                    self.canary_score().unwrap_or(0.0)
                ));
            }
        }
        out.push_str(&format!("  \"pass\": {}\n", self.failed_gates().is_empty()));
        out.push_str("}\n");
        out
    }
}

/// Append `"key": value` lines (values pre-rendered), comma-separated.
fn push_map<'a>(out: &mut String, entries: impl Iterator<Item = (&'a str, String)>) {
    let lines: Vec<String> =
        entries.map(|(k, v)| format!("    {}: {}", json_str(k), v)).collect();
    out.push_str(&lines.join(",\n"));
    out.push('\n');
}

/// Minimal JSON string escaping: quotes, backslashes, control bytes.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(canaries: Option<Vec<CanaryOutcome>>) -> VoprReport {
        let mut tracker = InvariantTracker::new();
        tracker.enter("clean_solo", 7);
        tracker.check("window_tiling", true, String::new);
        let mut hits = [0u64; fault_points::COUNT];
        for h in hits.iter_mut() {
            *h = 3;
        }
        VoprReport::assemble("pr", &[7, 8], &hits, &tracker, 0xDEAD, 42, true, canaries)
    }

    #[test]
    fn full_coverage_clean_run_passes_every_gate_it_can() {
        let report = sample(None);
        assert_eq!(report.coverage, 1.0);
        // window_tiling executed, but the other required invariants did
        // not — the gate must say so.
        assert!(!report.missing_required.is_empty());
        let gates = report.failed_gates();
        assert_eq!(gates.len(), 1, "{gates:?}");
        assert!(gates[0].contains("never executed"));
    }

    #[test]
    fn a_missed_canary_fails_the_score_gate() {
        let report = sample(Some(vec![
            CanaryOutcome { name: "skip_crc_check", caught: true, attempts: 1 },
            CanaryOutcome { name: "dedup_disabled", caught: false, attempts: 4 },
        ]));
        assert_eq!(report.canary_score(), Some(0.5));
        assert!(report
            .failed_gates()
            .iter()
            .any(|g| g.contains("canary-mutation score") && g.contains("dedup_disabled")));
    }

    #[test]
    fn json_is_stable_and_structurally_sound() {
        let report = sample(Some(vec![CanaryOutcome {
            name: "skip_crc_check",
            caught: true,
            attempts: 2,
        }]));
        let a = report.to_json();
        let b = report.to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"schema\": \"vapro-vopr/1\""));
        assert!(a.contains("\"fault_point_coverage\": 1.0000"));
        assert!(a.contains("\"canary_score\": 1.00"));
        assert_eq!(a.matches('{').count(), a.matches('}').count());
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }
}
