//! The VOPR driver binary.
//!
//! ```text
//! vopr [--profile pr|nightly] [--seed N] [-v] [--report PATH]
//! ```
//!
//! Runs the deterministic simulation suite, prints the gate verdicts,
//! optionally writes the byte-stable `VOPR_report.json`, and exits
//! non-zero on any failed gate. Every failure prints the seed and a
//! copy-pasteable repro line.

use std::process::ExitCode;
use vapro_vopr::{repro_line, run_vopr, Profile};

fn main() -> ExitCode {
    let mut profile = Profile::Pr;
    let mut seeds: Option<Vec<u64>> = None;
    let mut verbose = false;
    let mut report_path: Option<String> = None;

    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--profile" => match argv.next().as_deref() {
                Some("pr") => profile = Profile::Pr,
                Some("nightly") => profile = Profile::Nightly,
                Some("quick") => profile = Profile::Quick,
                other => return usage(&format!("unknown profile {other:?}")),
            },
            "--seed" => match argv.next().and_then(|s| s.parse::<u64>().ok()) {
                Some(seed) => seeds = Some(vec![seed]),
                None => return usage("--seed needs an unsigned integer"),
            },
            "-v" | "--verbose" => verbose = true,
            "--report" => match argv.next() {
                Some(path) => report_path = Some(path),
                None => return usage("--report needs a path"),
            },
            "-h" | "--help" => return usage(""),
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }

    let mut log: Vec<String> = Vec::new();
    let report = run_vopr(profile, seeds.clone(), verbose.then_some(&mut log));
    if verbose {
        for line in &log {
            println!("  {line}");
        }
    }

    println!(
        "vopr: profile={} seeds={:?} canaries={}",
        report.profile,
        report.seeds,
        if report.canaries.is_some() { "compiled" } else { "not compiled" },
    );
    println!(
        "vopr: fault-point coverage {:.0}% ({} of {} hit)",
        report.coverage * 100.0,
        report.fault_points.values().filter(|&&n| n > 0).count(),
        report.fault_points.len(),
    );
    let executions: u64 = report.invariants.values().sum();
    println!(
        "vopr: {} invariants executed {} times, {} violation(s)",
        report.invariants.len(),
        executions,
        report.violations.len(),
    );
    println!(
        "vopr: determinism {} (journal {:#018x}, {} events)",
        if report.determinism_ok { "ok" } else { "FAILED" },
        report.journal_hash,
        report.journal_events,
    );
    if let Some(canaries) = &report.canaries {
        for c in canaries {
            println!(
                "vopr: canary {:<28} {} in {} seed(s)",
                c.name,
                if c.caught { "caught" } else { "MISSED" },
                c.attempts,
            );
        }
        println!(
            "vopr: canary-mutation score {:.2}",
            report.canary_score().unwrap_or(0.0)
        );
    }

    for v in &report.violations {
        eprintln!("vopr: FAIL {v}");
        eprintln!("vopr:   repro: {}", repro_line(v.seed));
    }

    if let Some(path) = report_path {
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("vopr: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("vopr: wrote {path}");
    }

    let failed = report.failed_gates();
    if failed.is_empty() {
        println!("vopr: PASS");
        ExitCode::SUCCESS
    } else {
        for gate in &failed {
            eprintln!("vopr: GATE FAILED: {gate}");
        }
        if let Some(&seed) = report.seeds.first() {
            eprintln!("vopr: repro: {}", repro_line(seed));
        }
        ExitCode::FAILURE
    }
}

fn usage(error: &str) -> ExitCode {
    if !error.is_empty() {
        eprintln!("vopr: {error}");
    }
    eprintln!("usage: vopr [--profile pr|nightly|quick] [--seed N] [-v] [--report PATH]");
    if error.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
