//! The event journal: a running FNV-1a 64 hash over every observable
//! event of a VOPR run (frame outcomes, watermarks, window closes,
//! report fingerprints). Two runs of the same seed are *defined* as
//! deterministic iff their journal hashes and event counts are equal —
//! the hash is the whole history compressed to one comparable word, so
//! the determinism gate costs one `u64` comparison instead of a
//! transcript diff.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An append-only event hash. Recording is infallible and allocation
/// free; the journal never stores the lines themselves (the verbose
/// log, when requested, is kept separately by the driver).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Journal {
    hash: u64,
    events: u64,
}

impl Default for Journal {
    fn default() -> Journal {
        Journal::new()
    }
}

impl Journal {
    pub fn new() -> Journal {
        Journal { hash: FNV_OFFSET, events: 0 }
    }

    /// Fold one event line into the hash. A newline separator is mixed
    /// in after the payload so `"ab" + "c"` and `"a" + "bc"` diverge.
    pub fn record(&mut self, line: &str) {
        for &byte in line.as_bytes() {
            self.hash ^= u64::from(byte);
            self.hash = self.hash.wrapping_mul(FNV_PRIME);
        }
        self.hash ^= u64::from(b'\n');
        self.hash = self.hash.wrapping_mul(FNV_PRIME);
        self.events += 1;
    }

    pub fn hash(&self) -> u64 {
        self.hash
    }

    pub fn events(&self) -> u64 {
        self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_histories_hash_identically() {
        let mut a = Journal::new();
        let mut b = Journal::new();
        for line in ["frame rank=0 -> admitted", "close [0..10)"] {
            a.record(line);
            b.record(line);
        }
        assert_eq!(a, b);
        assert_eq!(a.events(), 2);
    }

    #[test]
    fn boundary_shifts_change_the_hash() {
        let mut a = Journal::new();
        a.record("ab");
        a.record("c");
        let mut b = Journal::new();
        b.record("a");
        b.record("bc");
        assert_ne!(a.hash(), b.hash());
    }
}
