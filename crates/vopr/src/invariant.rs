//! The invariant registry: every correctness property the VOPR harness
//! asserts is a *named, counted* check. Counting matters as much as
//! passing — an invariant that executed zero times proves nothing, so
//! the report gates on execution counts for the required set, not just
//! on the absence of violations.

use std::collections::BTreeMap;

/// The invariants whose execution count must be ≥ 1 for a run to pass:
/// each one names a distinct correctness property of the pipeline, and
/// a run that never exercised one of them has a coverage hole, not a
/// clean bill.
pub const REQUIRED_INVARIANTS: &[&str] = &[
    "model_admission_agreement",
    "watermark_agreement",
    "watermark_monotone",
    "window_tiling",
    "stream_one_shot_identity",
    "pipeline_inline_equivalence",
    "delivery_accounting",
    "eviction_safety",
    "backpressure_bound",
    "birth_equivalence",
    "tenant_isolation",
];

/// One observed violation, with everything needed to reproduce it.
#[derive(Debug, Clone)]
pub struct Violation {
    pub scenario: &'static str,
    pub invariant: &'static str,
    pub seed: u64,
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] invariant `{}` violated (seed {}): {}",
            self.scenario, self.invariant, self.seed, self.message
        )
    }
}

/// Counts every invariant execution and records every violation. One
/// tracker spans one suite run; the driver merges trackers across
/// seeds.
#[derive(Debug, Default)]
pub struct InvariantTracker {
    counts: BTreeMap<&'static str, u64>,
    violations: Vec<Violation>,
    scenario: &'static str,
    seed: u64,
}

impl InvariantTracker {
    pub fn new() -> InvariantTracker {
        InvariantTracker::default()
    }

    /// Set the scenario context stamped onto subsequent violations.
    pub fn enter(&mut self, scenario: &'static str, seed: u64) {
        self.scenario = scenario;
        self.seed = seed;
    }

    /// Execute one invariant: count it, record a violation if it failed.
    /// The message closure only runs on failure.
    pub fn check(&mut self, invariant: &'static str, ok: bool, message: impl FnOnce() -> String) {
        *self.counts.entry(invariant).or_insert(0) += 1;
        if !ok {
            self.violations.push(Violation {
                scenario: self.scenario,
                invariant,
                seed: self.seed,
                message: message(),
            });
        }
    }

    /// Execute one invariant expressed as a `Result` check.
    pub fn check_result(&mut self, invariant: &'static str, result: Result<(), String>) {
        let ok = result.is_ok();
        self.check(invariant, ok, || result.err().unwrap_or_default());
    }

    /// Record a scenario panic as a violation (a deterministic harness
    /// never panics; a canary mutation may).
    pub fn record_panic(&mut self, scenario: &'static str, seed: u64, message: String) {
        self.violations.push(Violation { scenario, invariant: "no_panic", seed, message });
    }

    pub fn counts(&self) -> &BTreeMap<&'static str, u64> {
        &self.counts
    }

    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Required invariants that never executed in this tracker.
    pub fn missing_required(&self) -> Vec<&'static str> {
        REQUIRED_INVARIANTS
            .iter()
            .filter(|name| self.counts.get(*name).copied().unwrap_or(0) == 0)
            .copied()
            .collect()
    }

    /// Fold another tracker's counts and violations into this one.
    pub fn merge(&mut self, other: InvariantTracker) {
        for (name, n) in other.counts {
            *self.counts.entry(name).or_insert(0) += n;
        }
        self.violations.extend(other.violations);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate_and_violations_carry_context() {
        let mut t = InvariantTracker::new();
        t.enter("clean_solo", 42);
        t.check("window_tiling", true, String::new);
        t.check("window_tiling", false, || "hole at window 3".to_string());
        assert_eq!(t.counts().get("window_tiling"), Some(&2));
        assert_eq!(t.violations().len(), 1);
        let v = &t.violations()[0];
        assert_eq!((v.scenario, v.invariant, v.seed), ("clean_solo", "window_tiling", 42));
        assert!(v.to_string().contains("hole at window 3"));
    }

    #[test]
    fn missing_required_lists_unexecuted_invariants_only() {
        let mut t = InvariantTracker::new();
        for name in REQUIRED_INVARIANTS {
            t.check(name, true, String::new);
        }
        assert!(t.missing_required().is_empty());
        let fresh = InvariantTracker::new();
        assert_eq!(fresh.missing_required().len(), REQUIRED_INVARIANTS.len());
    }

    #[test]
    fn merge_folds_counts_and_violations() {
        let mut a = InvariantTracker::new();
        a.check("delivery_accounting", true, String::new);
        let mut b = InvariantTracker::new();
        b.enter("hostile_solo", 7);
        b.check("delivery_accounting", false, || "off by one".to_string());
        a.merge(b);
        assert_eq!(a.counts().get("delivery_accounting"), Some(&2));
        assert_eq!(a.violations().len(), 1);
    }
}
