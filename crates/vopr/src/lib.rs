//! VOPR-style deterministic simulation tester for the vapro ingest
//! pipeline (the name nods to TigerBeetle's VOPR: a Viewstamped
//! Operation Replicator that earns trust by *measured* falsification
//! power, not by passing tests).
//!
//! One seeded event loop drives ranks, the wire codec, the
//! `WindowedIngestor`/`AnalysisStage` pipeline, and the `FleetIngestor`
//! through a single interleaved fault schedule (reusing the chaos
//! harness's [`TransportEvent`] model). Three registries make a run
//! auditable instead of merely green:
//!
//! * **Fault points** — every server-side rejection/recovery site
//!   (`vapro_core::vopr::fault_points`) counts its executions; the
//!   report gates on ≥ 80 % of them firing, so a suite that silently
//!   stopped exercising, say, backpressure, fails loudly.
//! * **Invariants** — every correctness property is a named, counted
//!   check ([`invariant::InvariantTracker`]); required invariants must
//!   execute at least once.
//! * **Canaries** — five deliberately broken server variants compiled
//!   behind `vapro-core/vopr-canary` (skip CRC, skewed watermark,
//!   disabled dedup, over-eager eviction, out-of-order release). Each
//!   must be flagged within a bounded seed budget; the canary-mutation
//!   score is the harness's measured ability to detect real bugs and
//!   is a hard gate at 100 %.
//!
//! The centrepiece oracle is [`model::AdmissionModel`]: an independent
//! reimplementation of the admission contract that predicts every
//! delivery's outcome from transport metadata alone; the driver
//! compares prediction to observation frame by frame and the shipping
//! watermark after every push.
//!
//! Every run appends each observable event to a [`journal::Journal`];
//! the same seed must produce the same journal hash (the determinism
//! gate) and any failure prints the seed plus a copy-pasteable repro.

pub mod invariant;
pub mod journal;
pub mod model;
pub mod report;

use invariant::InvariantTracker;
use journal::Journal;
use model::{outcome_name, AdmissionModel, Delivery, Outcome};
use report::{CanaryOutcome, VoprReport};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Mutex, MutexGuard};
use vapro_bench::chaos::{
    birth_equivalence, fleet_job_events, fleet_period_ns, one_shot_reference, plan_config,
    plan_events, plan_period_ns, plan_summary, reports_identical, FaultPlan, FleetPlan, JobPlan,
    TransportEvent,
};
use vapro_bench::perf::synthetic_stgs;
use vapro_core::detect::window::{windows_covering, Window};
use vapro_core::vopr::{canary, fault_points};
use vapro_core::{
    FleetConfig, FleetIngestor, FragmentBatch, IngestStats, VaproConfig, WindowReport,
    WindowedIngestor, WireError,
};
use vapro_sim::VirtualTime;

/// Global run lock: fault-point counters and canary arming are
/// process-wide statics, so concurrent suites (e.g. parallel tests)
/// must serialise. Poisoning is tolerated — a panicked run already
/// recorded its failure.
static RUN_LOCK: Mutex<()> = Mutex::new(());

/// Seeds a canary hunt may spend per canary before declaring it missed.
pub const CANARY_SEED_BUDGET: u64 = 4;

/// Base seed for hunt attempts, disjoint from measurement seeds.
const HUNT_SEED_BASE: u64 = 0x5EED_1000;

/// Execution profiles: how many measurement seeds a run spends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// PR gate: small fixed seed set, runs in `make check`.
    Pr,
    /// Nightly sweep: a wider fixed seed set.
    Nightly,
    /// One-seed smoke, used by the crate's own tests.
    Quick,
}

impl Profile {
    pub fn name(self) -> &'static str {
        match self {
            Profile::Pr => "pr",
            Profile::Nightly => "nightly",
            Profile::Quick => "quick",
        }
    }

    pub fn seeds(self) -> Vec<u64> {
        match self {
            Profile::Pr => (0..3).map(|i| 0x56A9_0001 + i).collect(),
            Profile::Nightly => (0..12).map(|i| 0x56A9_1001 + i).collect(),
            Profile::Quick => vec![0x56A9_0001],
        }
    }
}

/// The copy-pasteable command replaying one seed with the verbose log.
pub fn repro_line(seed: u64) -> String {
    format!("cargo run --release -p vapro-vopr --features canary --bin vopr -- --seed {seed} -v")
}

// ---------------------------------------------------------------------
// The solo driver: one ingestor, one oracle, one interleaved schedule.

/// Scenario context threaded through every driver.
struct Cx<'a> {
    seed: u64,
    inv: &'a mut InvariantTracker,
    journal: &'a mut Journal,
    log: Option<&'a mut Vec<String>>,
}

impl Cx<'_> {
    fn note(&mut self, line: String) {
        self.journal.record(&line);
        if let Some(log) = self.log.as_deref_mut() {
            log.push(line);
        }
    }

    /// Verbose-log only — for events whose *timing* is legitimately
    /// nondeterministic (pipelined window closes surface at whichever
    /// push their analysis finishes by) even though their content and
    /// final order are not. The deterministic end-of-drive `report`
    /// lines cover the same facts for the journal.
    fn note_log_only(&mut self, line: String) {
        if let Some(log) = self.log.as_deref_mut() {
            log.push(line);
        }
    }
}

/// An extra delivery injected by a scenario around the plan's schedule
/// (hostile structural garbage, zombie late data).
struct Extra {
    bytes: Vec<u8>,
    delivery: Delivery,
}

/// What one driven run produced.
struct Drive {
    reports: Vec<WindowReport>,
    delivered: u64,
    stats: IngestStats,
    /// Per-outcome tallies as observed (post-agreement they equal the
    /// oracle's predictions).
    dropped_late: u64,
    dropped_backpressure: u64,
    /// The run aborted on a model disagreement (canary behaviour);
    /// end-of-stream checks were skipped.
    poisoned: bool,
}

/// Drive one plan's schedule (plus scenario extras) through a
/// `WindowedIngestor`, predicting every delivery with the admission
/// oracle and checking the per-push invariants. The loop aborts on the
/// first model disagreement: once the server has observably diverged
/// from the specification (only canary mutations do), its subsequent
/// state — possibly holding garbage data — is not worth simulating.
fn drive_solo(
    cx: &mut Cx<'_>,
    label: &str,
    plan: &FaultPlan,
    pipeline_depth: usize,
    extras_pre: &[Extra],
    extras_post: &[Extra],
) -> Drive {
    let period_ns = plan_period_ns(plan);
    let mut cfg = VaproConfig { pipeline_depth, ..plan_config(period_ns) };
    cfg.fault.max_buffered_bytes = plan.max_buffered_bytes;
    let cap = cfg.fault.max_buffered_bytes;

    let mut ing = WindowedIngestor::new(plan.nranks, 8, cfg.clone());
    let mut oracle = AdmissionModel::new(plan.nranks, &cfg);
    let (events, _) = plan_events(plan);

    let mut reports = Vec::new();
    let mut delivered = 0u64;
    let (mut dropped_late, mut dropped_backpressure) = (0u64, 0u64);
    let mut prev_watermark = 0u64;
    let mut poisoned = false;

    let frame_steps = extras_pre
        .iter()
        .map(|e| (e.bytes.clone(), e.delivery))
        .map(Some)
        .map(|f| (f, None))
        .chain(events.into_iter().map(|ev| match ev {
            TransportEvent::Frame(f) => {
                let d = Delivery {
                    rank: f.rank,
                    seq: f.seq,
                    window_start_ns: f.window_start_ns,
                    window_end_ns: f.window_end_ns,
                    frame_bytes: f.bytes.len() as u64,
                    corrupted: f.corrupted,
                    malformed: f.malformed,
                };
                (Some((f.bytes, d)), None)
            }
            TransportEvent::Birth { rank } => (None, Some(rank)),
        }))
        .chain(extras_post.iter().map(|e| (Some((e.bytes.clone(), e.delivery)), None)));

    for (frame, birth) in frame_steps {
        if let Some(scheduled) = birth {
            let got = ing.add_rank();
            let predicted = oracle.record_birth();
            cx.inv.check("birth_registration", got == scheduled && predicted == scheduled, || {
                format!("birth assigned rank {got}, oracle {predicted}, schedule {scheduled}")
            });
            cx.note(format!("{label} birth rank={got}"));
            continue;
        }
        let Some((bytes, d)) = frame else { continue };
        delivered += 1;
        let predicted = oracle.predict(&d);
        let before = ing.stats().clone();
        let (actual, closed) = match ing.push_encoded(&bytes) {
            Ok(closed) => {
                let after = ing.stats();
                let outcome = if after.frames_admitted > before.frames_admitted {
                    Outcome::Admitted
                } else if after.dropped_late_frames > before.dropped_late_frames {
                    Outcome::DroppedLate
                } else if after.dropped_backpressure_frames > before.dropped_backpressure_frames {
                    Outcome::DroppedBackpressure
                } else {
                    Outcome::Admitted // unaccounted accept: agreement check will flag it
                };
                (outcome, closed)
            }
            Err(WireError::BadChecksum { .. }) => (Outcome::RejectedCorrupt, Vec::new()),
            Err(WireError::DuplicateSequence { .. }) => (Outcome::RejectedDuplicate, Vec::new()),
            Err(WireError::UnknownRank { .. }) => (Outcome::RejectedUnknownRank, Vec::new()),
            Err(_) => (Outcome::RejectedMalformed, Vec::new()),
        };
        match actual {
            Outcome::DroppedLate => dropped_late += 1,
            Outcome::DroppedBackpressure => dropped_backpressure += 1,
            _ => {}
        }
        let watermark = ing.watermark_ns();
        cx.note(format!(
            "{label} frame rank={} seq={} -> {} wm={}",
            d.rank,
            d.seq,
            outcome_name(actual),
            watermark
        ));
        for r in &closed {
            cx.note_log_only(format!(
                "{label} close [{}..{}) complete={}/{}",
                r.window.start.ns(),
                r.window.end.ns(),
                r.coverage.ranks_complete,
                r.coverage.nranks
            ));
        }
        reports.extend(closed);

        cx.inv.check("model_admission_agreement", predicted == actual, || {
            format!(
                "delivery rank={} seq={} predicted {} but server {} ({})",
                d.rank,
                d.seq,
                outcome_name(predicted),
                outcome_name(actual),
                plan_summary(plan)
            )
        });
        cx.inv.check("watermark_agreement", watermark == oracle.watermark_ns(), || {
            format!(
                "server watermark {} ns, oracle {} ns after rank={} seq={}",
                watermark,
                oracle.watermark_ns(),
                d.rank,
                d.seq
            )
        });
        cx.inv.check("watermark_monotone", watermark >= prev_watermark, || {
            format!("watermark regressed {prev_watermark} -> {watermark} ns")
        });
        prev_watermark = watermark;
        cx.inv.check(
            "eviction_safety",
            ing.arena().resident_bytes() <= ing.arena().high_water_bytes(),
            || {
                format!(
                    "arena resident {} above high water {}",
                    ing.arena().resident_bytes(),
                    ing.arena().high_water_bytes()
                )
            },
        );
        if let Some(cap) = cap {
            cx.inv.check("backpressure_bound", ing.buffered_ahead_bytes() <= cap, || {
                format!(
                    "buffered {} bytes ahead of the watermark with a {} byte cap",
                    ing.buffered_ahead_bytes(),
                    cap
                )
            });
        }
        if predicted != actual || watermark != oracle.watermark_ns() {
            poisoned = true;
            cx.note(format!("{label} ABORT on model disagreement"));
            break;
        }
    }

    let stats = ing.stats().clone();
    let max_seen_ns = ing.arena().max_end_ns();
    if poisoned {
        // Dropping the ingestor joins the analysis stage without
        // analysing the tail — the diverged server may hold garbage
        // (e.g. admitted corrupt fragments) that is unsafe to simulate.
        return Drive {
            reports,
            delivered,
            stats,
            dropped_late,
            dropped_backpressure,
            poisoned,
        };
    }
    reports.extend(ing.finish());

    for r in &reports {
        cx.note(format!(
            "{label} report [{}..{}) complete={}/{} dead={:?} diag={}",
            r.window.start.ns(),
            r.window.end.ns(),
            r.coverage.ranks_complete,
            r.coverage.nranks,
            r.coverage.ranks_dead,
            r.diagnoses.len()
        ));
    }

    // The emitted windows are exactly the canonical half-overlap cover
    // of the admitted data, in order.
    let expected = windows_covering(
        VirtualTime::ZERO,
        VirtualTime::from_ns(max_seen_ns),
        VirtualTime::from_ns(period_ns),
    );
    let tiled = reports.len() == expected.len()
        && reports.iter().zip(&expected).all(|(r, w)| r.window == *w);
    cx.inv.check("window_tiling", tiled, || {
        format!(
            "{} windows closed vs {} expected for data up to {} ns ({})",
            reports.len(),
            expected.len(),
            max_seen_ns,
            plan_summary(plan)
        )
    });
    // Every delivery is admitted, rejected, or a counted policy drop.
    let accounted = stats.frames_admitted + stats.frames_rejected();
    cx.inv.check("delivery_accounting", accounted == delivered, || {
        format!("{delivered} deliveries but {accounted} accounted: {stats}")
    });

    Drive { reports, delivered, stats, dropped_late, dropped_backpressure, poisoned }
}

/// A structurally broken (truncated) frame plus its oracle metadata.
fn truncated_extra(period_ns: u64) -> Extra {
    let bytes = template_frame_bytes(0, period_ns);
    let cut = bytes.len() / 2;
    Extra {
        bytes: bytes.into_iter().take(cut).collect(),
        delivery: Delivery {
            rank: 0,
            seq: 0,
            window_start_ns: 0,
            window_end_ns: period_ns,
            frame_bytes: cut as u64,
            corrupted: false,
            malformed: true,
        },
    }
}

/// A well-formed frame claiming a rank far outside the deployment.
fn unknown_rank_extra(period_ns: u64) -> Extra {
    let bytes = template_frame_bytes(250, period_ns);
    let frame_bytes = bytes.len() as u64;
    Extra {
        bytes,
        delivery: Delivery {
            rank: 250,
            seq: 1,
            window_start_ns: 0,
            window_end_ns: period_ns,
            frame_bytes,
            corrupted: false,
            malformed: false,
        },
    }
}

/// A valid encoded frame for `rank` covering the first period — the
/// template the hostile extras mutate.
fn template_frame_bytes(rank: usize, period_ns: u64) -> Vec<u8> {
    let stgs = synthetic_stgs(1, 40, 8, 0xE81A);
    let window = Window {
        start: VirtualTime::ZERO,
        end: VirtualTime::from_ns(period_ns),
    };
    FragmentBatch::from_stg_starting_in(&stgs[0], rank, window).with_seq(1).encode()
}

// ---------------------------------------------------------------------
// Scenarios. Each exercises a distinct slice of the fault-point space;
// together they are the measurement suite run per seed.

const DEFAULT_DEPTH_LABEL: &str = "piped";

fn default_depth() -> usize {
    VaproConfig::default().pipeline_depth
}

/// Clean transport: the oracle agrees on every delivery, the stream is
/// bit-identical to the one-shot analysis, and the pipelined stage
/// emits exactly what inline analysis does.
fn clean_solo(cx: &mut Cx<'_>) {
    cx.inv.enter("clean_solo", cx.seed);
    let plan = FaultPlan::fault_free(cx.seed);
    let piped = drive_solo(cx, DEFAULT_DEPTH_LABEL, &plan, default_depth(), &[], &[]);
    if piped.poisoned {
        return;
    }
    let inline = drive_solo(cx, "inline", &plan, 0, &[], &[]);
    cx.inv.check_result(
        "stream_one_shot_identity",
        reports_identical(&piped.reports, &one_shot_reference(&plan)),
    );
    cx.inv.check_result(
        "pipeline_inline_equivalence",
        reports_identical(&piped.reports, &inline.reports),
    );
    cx.inv.check("clean_no_loss", piped.stats.frames_admitted == piped.delivered, || {
        format!(
            "clean plan lost frames: {} delivered, {} admitted",
            piped.delivered, piped.stats.frames_admitted
        )
    });
}

/// Hostile transport: every fault axis at once plus structurally broken
/// and unknown-rank extras; the oracle must still predict every outcome
/// and the pipelined/inline runs must still agree bit for bit.
fn hostile_solo(cx: &mut Cx<'_>) {
    cx.inv.enter("hostile_solo", cx.seed);
    let mut plan = FaultPlan::random(cx.seed);
    plan.drop = plan.drop.max(0.1);
    plan.duplicate = plan.duplicate.max(0.25);
    plan.reorder = plan.reorder.max(0.3);
    plan.corrupt = plan.corrupt.max(0.2);
    plan.delay = plan.delay.max(0.15);
    if plan.deaths.is_empty() {
        plan.deaths = vec![(0, 1)];
    }
    let period_ns = plan_period_ns(&plan);
    let extras = [truncated_extra(period_ns), unknown_rank_extra(period_ns)];
    let piped = drive_solo(cx, DEFAULT_DEPTH_LABEL, &plan, default_depth(), &extras, &[]);
    if piped.poisoned {
        return;
    }
    let inline = drive_solo(cx, "inline", &plan, 0, &extras, &[]);
    cx.inv.check_result(
        "pipeline_inline_equivalence",
        reports_identical(&piped.reports, &inline.reports),
    );
}

/// Zombie rank: a rank dies mid-run, is latched dead, and then its
/// stale frames arrive *after* the latch — they must be acknowledged
/// but dropped, exactly as the oracle predicts.
fn zombie_solo(cx: &mut Cx<'_>) {
    cx.inv.enter("zombie_solo", cx.seed);
    let dead_rank = 1usize;
    let last_period = 1usize;
    let plan =
        FaultPlan { deaths: vec![(dead_rank, last_period)], ..FaultPlan::fault_free(cx.seed) };
    let period_ns = plan_period_ns(&plan);
    let stgs = synthetic_stgs(plan.nranks, plan.frags_per_rank, 8, plan.seed ^ 0xBAD_F00D);
    let late: Vec<Extra> = (1..=2u64)
        .map(|i| {
            let k = last_period as u64 + i;
            let window = Window {
                start: VirtualTime::from_ns(k * period_ns),
                end: VirtualTime::from_ns((k + 1) * period_ns),
            };
            let bytes = FragmentBatch::from_stg_starting_in(&stgs[dead_rank], dead_rank, window)
                .with_seq(k + 1)
                .encode();
            let frame_bytes = bytes.len() as u64;
            Extra {
                bytes,
                delivery: Delivery {
                    rank: dead_rank,
                    seq: k + 1,
                    window_start_ns: window.start.ns(),
                    window_end_ns: window.end.ns(),
                    frame_bytes,
                    corrupted: false,
                    malformed: false,
                },
            }
        })
        .collect();
    let drive = drive_solo(cx, DEFAULT_DEPTH_LABEL, &plan, default_depth(), &[], &late);
    if drive.poisoned {
        return;
    }
    cx.inv.check("late_data_dropped", drive.dropped_late >= late.len() as u64, || {
        format!(
            "{} late zombie frames delivered but only {} dropped under the late policy",
            late.len(),
            drive.dropped_late
        )
    });
}

/// Backpressure: a small ahead-of-watermark byte cap under heavy delay
/// and reorder must shed frames — and the buffered bytes must never
/// exceed the cap at any push.
fn backpressure_solo(cx: &mut Cx<'_>) {
    cx.inv.enter("backpressure_solo", cx.seed);
    let plan = FaultPlan {
        reorder: 0.7,
        delay: 0.6,
        max_buffered_bytes: Some(2_048),
        ..FaultPlan::fault_free(cx.seed)
    };
    let drive = drive_solo(cx, DEFAULT_DEPTH_LABEL, &plan, default_depth(), &[], &[]);
    if drive.poisoned {
        return;
    }
    cx.inv.check("backpressure_engaged", drive.dropped_backpressure > 0, || {
        "the byte cap never shed a frame; shrink the cap or raise the delay axis".to_string()
    });
}

/// Elastic membership: a rank born mid-stream widens coverage exactly
/// once, and every post-birth window is bit-identical to a run where
/// the rank was always present.
fn birth_solo(cx: &mut Cx<'_>) {
    cx.inv.enter("birth_solo", cx.seed);
    let first = 1 + (cx.seed % 3) as usize;
    let plan = FaultPlan { births: vec![first], ..FaultPlan::fault_free(cx.seed) };
    let drive = drive_solo(cx, DEFAULT_DEPTH_LABEL, &plan, default_depth(), &[], &[]);
    if drive.poisoned {
        return;
    }
    cx.inv.check_result("birth_equivalence", birth_equivalence(&plan));
    let widened = drive
        .reports
        .last()
        .is_some_and(|r| r.coverage.nranks == plan.total_ranks());
    cx.inv.check("birth_widening", widened, || {
        format!(
            "final window closed at width {:?}, expected {}",
            drive.reports.last().map(|r| r.coverage.nranks),
            plan.total_ranks()
        )
    });
}

/// Clean fleet: several tenants through the sharded plane, each job
/// bit-identical to its solo run.
fn clean_fleet(cx: &mut Cx<'_>) {
    cx.inv.enter("clean_fleet", cx.seed);
    let plan = FleetPlan::fault_free(cx.seed, 3);
    fleet_scenario(cx, "clean_fleet", &plan);
}

/// Hostile fleet: random per-job fault mixes (job 0 clean); isolation
/// must hold regardless.
fn hostile_fleet(cx: &mut Cx<'_>) {
    cx.inv.enter("hostile_fleet", cx.seed);
    let plan = FleetPlan::random(cx.seed);
    fleet_scenario(cx, "hostile_fleet", &plan);
}

fn fleet_scenario(cx: &mut Cx<'_>, label: &str, plan: &FleetPlan) {
    let outcome = vapro_bench::chaos::run_fleet_plan(plan);
    for j in &outcome.per_job {
        cx.note(format!(
            "{label} job t{}j{} delivered={} rejected={} windows={}",
            j.key.tenant,
            j.key.job,
            j.delivered,
            j.rejected_decode,
            j.reports.len()
        ));
        for r in &j.reports {
            cx.note(format!(
                "{label} job t{}j{} report [{}..{}) complete={}/{}",
                j.key.tenant,
                j.key.job,
                r.window.start.ns(),
                r.window.end.ns(),
                r.coverage.ranks_complete,
                r.coverage.nranks
            ));
        }
    }
    cx.inv.check_result(
        "tenant_isolation",
        vapro_bench::chaos::check_fleet_invariants(plan, &outcome),
    );
}

/// Tenant budgets: a starved tenant's frames are rejected over budget,
/// an unregistered tenant is rejected outright, structural garbage
/// lands in the unattributed bucket — and the well-budgeted tenant's
/// output stays bit-identical to its solo run through all of it.
fn budget_fleet(cx: &mut Cx<'_>) {
    cx.inv.enter("budget_fleet", cx.seed);
    let plan = FleetPlan {
        seed: cx.seed,
        shards: 2,
        queue_capacity_frames: 4,
        periods: 6,
        jobs: vec![JobPlan::clean(1, 0), JobPlan::clean(2, 1)],
    };
    let period_ns = fleet_period_ns(&plan);
    let cfg = plan_config(period_ns);
    let mut fleet = FleetIngestor::new(FleetConfig {
        shards: plan.shards,
        default_nranks: 1,
        bins_per_window: 8,
        vapro: cfg.clone(),
        queue_capacity_frames: plan.queue_capacity_frames,
        default_tenant_budget_bytes: u64::MAX,
    });
    fleet.register_tenant(1, u64::MAX);
    fleet.register_tenant(2, 1_000); // starved: a frame or two per drain
    for jp in &plan.jobs {
        fleet.register_job(jp.key(), jp.nranks, jp.tenant);
    }

    let streams: Vec<Vec<Vec<u8>>> = plan
        .jobs
        .iter()
        .map(|jp| {
            fleet_job_events(&plan, jp, period_ns)
                .0
                .into_iter()
                .filter_map(|e| match e {
                    TransportEvent::Frame(f) => Some(f.bytes),
                    TransportEvent::Birth { .. } => None,
                })
                .collect()
        })
        .collect();

    // Hostile injections: an unregistered tenant and a truncated frame.
    let stgs = synthetic_stgs(1, 40, 8, cx.seed ^ 0x99);
    let w0 = Window { start: VirtualTime::ZERO, end: VirtualTime::from_ns(period_ns) };
    let ghost = FragmentBatch::from_stg_starting_in(&stgs[0], 0, w0)
        .with_seq(1)
        .with_job(99, 0)
        .encode_v3();
    let truncated: Vec<u8> = ghost.iter().copied().take(ghost.len() / 2).collect();
    let ghost_rejected = matches!(fleet.push_encoded(&ghost), Err(WireError::UnknownTenant { .. }));
    cx.inv.check("unknown_tenant_rejected", ghost_rejected, || {
        "a frame from unregistered tenant 99 was not rejected as UnknownTenant".to_string()
    });
    let truncated_rejected = fleet.push_encoded(&truncated).is_err();
    cx.inv.check("structural_garbage_rejected", truncated_rejected, || {
        "a truncated frame was accepted by the fleet plane".to_string()
    });

    let mut windows = Vec::new();
    let longest = streams.iter().map(Vec::len).max().unwrap_or(0);
    let mut over_budget_seen = 0u64;
    for i in 0..longest {
        for stream in &streams {
            let Some(bytes) = stream.get(i) else { continue };
            match fleet.push_encoded(bytes) {
                Ok(closed) => windows.extend(closed),
                Err(WireError::TenantOverBudget { tenant, .. }) => {
                    over_budget_seen += 1;
                    cx.note(format!("budget_fleet over-budget reject tenant={tenant}"));
                }
                Err(e) => cx.note(format!("budget_fleet unexpected rejection: {e:?}")),
            }
        }
    }
    cx.inv.check(
        "budget_enforced",
        over_budget_seen > 0
            && fleet.tenant_stats(2).is_some_and(|s| s.over_budget_frames == over_budget_seen),
        || {
            format!(
                "expected over-budget rejections on tenant 2, saw {} (stats {:?})",
                over_budget_seen,
                fleet.tenant_stats(2).map(|s| s.over_budget_frames)
            )
        },
    );
    let unattributed = fleet.unattributed_stats().clone();
    cx.inv.check(
        "structural_garbage_unattributed",
        unattributed.malformed_frames >= 1 && unattributed.unknown_tenant_frames >= 1,
        || format!("unattributed bucket did not absorb the injections: {unattributed}"),
    );
    let (_report, flushed) = fleet.into_report();
    windows.extend(flushed);

    // The well-budgeted tenant's output is bit-identical to a solo
    // ingestor fed exactly its delivery sequence — the starved tenant's
    // rejections cannot leak across.
    let clean_key = plan.jobs[0].key();
    let clean_reports: Vec<WindowReport> = windows
        .into_iter()
        .filter(|w| w.key == clean_key)
        .map(|w| w.report)
        .collect();
    let mut solo = WindowedIngestor::new(plan.jobs[0].nranks, 8, cfg);
    let mut solo_reports = Vec::new();
    for bytes in &streams[0] {
        if let Ok(closed) = solo.push_encoded(bytes) {
            solo_reports.extend(closed);
        }
    }
    solo_reports.extend(solo.finish());
    cx.inv.check_result(
        "tenant_isolation",
        reports_identical(&clean_reports, &solo_reports)
            .map_err(|e| format!("budgeted fleet diverged from tenant 1's solo run: {e}")),
    );
    for r in &clean_reports {
        cx.note(format!(
            "budget_fleet clean-tenant report [{}..{}) complete={}/{}",
            r.window.start.ns(),
            r.window.end.ns(),
            r.coverage.ranks_complete,
            r.coverage.nranks
        ));
    }
}

// ---------------------------------------------------------------------
// Suite orchestration.

type Scenario = (&'static str, fn(&mut Cx<'_>));

/// Every measurement scenario, in a fixed order (the journal depends on
/// it).
const SCENARIOS: &[Scenario] = &[
    ("clean_solo", clean_solo),
    ("hostile_solo", hostile_solo),
    ("zombie_solo", zombie_solo),
    ("backpressure_solo", backpressure_solo),
    ("birth_solo", birth_solo),
    ("clean_fleet", clean_fleet),
    ("hostile_fleet", hostile_fleet),
    ("budget_fleet", budget_fleet),
];

/// One suite run over one seed: its tracker and journal.
pub struct SuiteRun {
    pub seed: u64,
    pub tracker: InvariantTracker,
    pub journal: Journal,
}

/// Run every scenario against one seed. Panics inside a scenario are
/// caught and recorded as `no_panic` violations (deterministic
/// harnesses never panic; canary mutations may).
pub fn run_suite(seed: u64, mut log: Option<&mut Vec<String>>) -> SuiteRun {
    let mut tracker = InvariantTracker::new();
    let mut journal = Journal::new();
    for &(name, scenario) in SCENARIOS {
        journal.record(name);
        let panicked = catch_unwind(AssertUnwindSafe(|| {
            let mut cx = Cx {
                seed,
                inv: &mut tracker,
                journal: &mut journal,
                log: log.as_deref_mut(),
            };
            scenario(&mut cx);
        }))
        .is_err();
        if panicked {
            tracker.record_panic(name, seed, "scenario panicked".to_string());
            journal.record("PANIC");
        }
    }
    SuiteRun { seed, tracker, journal }
}

fn lock_run() -> MutexGuard<'static, ()> {
    RUN_LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Run `f` holding the global run lock — for integration tests that
/// call [`run_suite`] directly and must not race another suite's
/// fault-point counters or canary arming.
pub fn with_run_lock<T>(f: impl FnOnce() -> T) -> T {
    let _guard = lock_run();
    f()
}

/// Hunt one canary: arm it, replay the catching scenarios over a
/// bounded seed budget, and report whether any run flagged it (a
/// violation or a panic both count — the harness noticed).
fn hunt_canary(c: canary::Canary) -> CanaryOutcome {
    let mut attempts = 0u64;
    let mut caught = false;
    for i in 0..CANARY_SEED_BUDGET {
        attempts += 1;
        canary::arm(Some(c));
        let flagged = catch_unwind(AssertUnwindSafe(|| {
            let run = run_suite_subset(HUNT_SEED_BASE + i, &["clean_solo", "hostile_solo"]);
            !run.tracker.violations().is_empty()
        }))
        .unwrap_or(true);
        canary::arm(None);
        if flagged {
            caught = true;
            break;
        }
    }
    CanaryOutcome { name: canary::name(c), caught, attempts }
}

/// Run only the named scenarios (the canary-hunt fast path).
fn run_suite_subset(seed: u64, names: &[&str]) -> SuiteRun {
    let mut tracker = InvariantTracker::new();
    let mut journal = Journal::new();
    for &(name, scenario) in SCENARIOS {
        if !names.contains(&name) {
            continue;
        }
        let panicked = catch_unwind(AssertUnwindSafe(|| {
            let mut cx = Cx { seed, inv: &mut tracker, journal: &mut journal, log: None };
            scenario(&mut cx);
        }))
        .is_err();
        if panicked {
            tracker.record_panic(name, seed, "scenario panicked".to_string());
        }
    }
    SuiteRun { seed, tracker, journal }
}

/// Run the full VOPR suite: measurement seeds, fault-point coverage,
/// the determinism double-run, and (on canary builds) the canary hunt.
/// The returned report carries everything the gates need.
pub fn run_vopr(profile: Profile, seeds: Option<Vec<u64>>, mut log: Option<&mut Vec<String>>) -> VoprReport {
    let _guard = lock_run();
    let seeds = seeds.unwrap_or_else(|| profile.seeds());

    canary::arm(None);
    fault_points::reset();

    let mut merged = InvariantTracker::new();
    let mut first_journal: Option<Journal> = None;
    for &seed in &seeds {
        let run = run_suite(seed, log.as_deref_mut());
        if first_journal.is_none() {
            first_journal = Some(run.journal);
        }
        merged.merge(run.tracker);
    }
    let hits = fault_points::snapshot();

    // Determinism: replaying the first seed must reproduce its journal
    // hash and event count exactly.
    let (journal_hash, journal_events, determinism_ok) = match (seeds.first(), first_journal) {
        (Some(&seed), Some(first)) => {
            let replay = run_suite(seed, None);
            (
                first.hash(),
                first.events(),
                replay.journal.hash() == first.hash()
                    && replay.journal.events() == first.events(),
            )
        }
        _ => (0, 0, true),
    };

    // The canary hunt runs after measurement so armed mutations cannot
    // pollute the coverage counters above.
    let canaries: Option<Vec<CanaryOutcome>> = if canary::compiled() {
        Some(canary::CANARIES.iter().map(|&c| hunt_canary(c)).collect())
    } else {
        None
    };

    VoprReport::assemble(
        profile.name(),
        &seeds,
        &hits,
        &merged,
        journal_hash,
        journal_events,
        determinism_ok,
        canaries,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full measurement suite over one seed: no violations, every
    /// required invariant executed, high fault-point coverage.
    #[test]
    fn quick_profile_passes_every_gate_available_without_canaries() {
        let report = run_vopr(Profile::Quick, None, None);
        assert!(
            report.violations.is_empty(),
            "violations: {:#?}",
            report.violations
        );
        assert!(report.missing_required.is_empty(), "never executed: {:?}", report.missing_required);
        assert!(report.determinism_ok, "same seed produced different journals");
        assert!(
            report.coverage >= 0.8,
            "fault-point coverage {:.2} below 0.8: {:?}",
            report.coverage,
            report.fault_points
        );
    }
}
