//! Property: the VOPR suite is deterministic — the same seed always
//! produces the same journal (hash and event count) and the same
//! invariant execution counts. This is the foundation the whole
//! harness stands on: a failure seed that cannot be replayed exactly
//! is a failure that cannot be debugged.

use proptest::prelude::*;
use vapro_vopr::run_suite;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn same_seed_twice_is_bit_identical(seed in 0u64..1u64 << 32) {
        let a = vapro_vopr::with_run_lock(|| run_suite(seed, None));
        let b = vapro_vopr::with_run_lock(|| run_suite(seed, None));
        prop_assert_eq!(a.journal.hash(), b.journal.hash(), "journal hash diverged");
        prop_assert_eq!(a.journal.events(), b.journal.events(), "journal length diverged");
        prop_assert_eq!(a.tracker.counts(), b.tracker.counts(), "invariant counts diverged");
        prop_assert_eq!(
            a.tracker.violations().len(),
            b.tracker.violations().len(),
            "violation counts diverged"
        );
    }
}

/// Distinct seeds drive distinct schedules: the journal must not be a
/// constant function of the scenario list alone.
#[test]
fn distinct_seeds_produce_distinct_journals() {
    let a = vapro_vopr::with_run_lock(|| run_suite(1, None));
    let b = vapro_vopr::with_run_lock(|| run_suite(2, None));
    assert_ne!(a.journal.hash(), b.journal.hash());
}
