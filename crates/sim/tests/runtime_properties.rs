//! Runtime-level properties: determinism under host-scheduling chaos,
//! virtual-time causality, collective algebra, and noise-schedule
//! correctness — the guarantees the detection results rest on.

use proptest::prelude::*;
use vapro_pmu::WorkloadSpec;
use vapro_sim::comm::ReduceOp;
use vapro_sim::{
    run_simulation, CallSite, Interceptor, NoiseEvent, NoiseKind, NoiseSchedule,
    NullInterceptor, RankCtx, SimConfig, TargetSet, VirtualTime,
};

fn null(_: usize) -> Box<dyn Interceptor> {
    Box::new(NullInterceptor)
}

#[test]
fn repeated_runs_are_bit_identical_despite_host_scheduling() {
    // 16 ranks, mixed compute / p2p / collectives, noise on two ranks.
    // Run the same configuration 5 times: the host scheduler interleaves
    // threads differently every time, but virtual outcomes must be
    // bit-identical.
    let cfg = SimConfig::new(16).with_noise(NoiseSchedule::quiet().with(NoiseEvent::always(
        NoiseKind::MemContention { intensity: 1.0 },
        TargetSet::Ranks(vec![3, 7]),
    )));
    let app = |ctx: &mut RankCtx| {
        for it in 0..5u64 {
            ctx.compute(&WorkloadSpec::mixed(2e5));
            let right = (ctx.rank() + 1) % ctx.size();
            let left = (ctx.rank() + ctx.size() - 1) % ctx.size();
            let req = ctx.irecv(Some(left), Some(it), CallSite("p:irecv"));
            ctx.send(right, it, 1024, None, CallSite("p:send"));
            ctx.wait(req, CallSite("p:wait"));
            ctx.allreduce(&[ctx.rank() as f64], ReduceOp::Sum, CallSite("p:allred"));
        }
    };
    let baseline: Vec<u64> = run_simulation(&cfg, null, app)
        .ranks
        .iter()
        .map(|r| r.clock.ns())
        .collect();
    for _ in 0..4 {
        let clocks: Vec<u64> = run_simulation(&cfg, null, app)
            .ranks
            .iter()
            .map(|r| r.clock.ns())
            .collect();
        assert_eq!(clocks, baseline);
    }
}

#[test]
fn message_arrival_never_precedes_sending() {
    // Causality: a receiver's clock after recv ≥ the sender's virtual
    // send time. The receiver reports its clock back so the sender can
    // check — over a chain of ranks.
    let cfg = SimConfig::new(4);
    let res = run_simulation(&cfg, null, |ctx| {
        let me = ctx.rank();
        if me == 0 {
            ctx.compute(&WorkloadSpec::compute_bound(1e6));
            let t_send = ctx.now();
            ctx.send(1, 0, 64, Some(std::sync::Arc::new(vec![t_send.ns() as f64])), CallSite("c:send"));
        } else if me < 3 {
            let m = ctx.recv(Some(me - 1), Some((me - 1) as u64), CallSite("c:recv"));
            let sender_time = m.data.expect("payload")[0];
            assert!(
                ctx.now().ns() as f64 >= sender_time,
                "rank {me} at {} before sender's {sender_time}",
                ctx.now()
            );
            let t = ctx.now();
            ctx.send(
                me + 1,
                me as u64,
                64,
                Some(std::sync::Arc::new(vec![t.ns() as f64])),
                CallSite("c:send"),
            );
        } else {
            let m = ctx.recv(Some(2), Some(2), CallSite("c:recv"));
            assert!(ctx.now().ns() as f64 >= m.data.expect("payload")[0]);
        }
    });
    // Clocks increase down the chain.
    let clocks: Vec<u64> = res.ranks.iter().map(|r| r.clock.ns()).collect();
    assert!(clocks[3] >= clocks[0]);
}

#[test]
fn allreduce_matches_sequential_reduction() {
    let n = 8;
    let cfg = SimConfig::new(n);
    run_simulation(&cfg, null, |ctx| {
        let mine = [ctx.rank() as f64 + 1.0, (ctx.rank() as f64 + 1.0).powi(2)];
        let sum = ctx.allreduce(&mine, ReduceOp::Sum, CallSite("a:sum"));
        assert_eq!(sum, vec![36.0, 204.0]); // Σ1..8, Σ k²
        let max = ctx.allreduce(&mine, ReduceOp::Max, CallSite("a:max"));
        assert_eq!(max, vec![8.0, 64.0]);
        let min = ctx.allreduce(&mine, ReduceOp::Min, CallSite("a:min"));
        assert_eq!(min, vec![1.0, 1.0]);
    });
}

#[test]
fn gather_collects_in_rank_order() {
    let n = 5;
    let cfg = SimConfig::new(n);
    run_simulation(&cfg, null, |ctx| {
        let mine = [ctx.rank() as f64 * 10.0, ctx.rank() as f64 * 10.0 + 1.0];
        let got = ctx.gather(2, &mine, CallSite("g:gather"));
        if ctx.rank() == 2 {
            assert_eq!(
                got,
                vec![0.0, 1.0, 10.0, 11.0, 20.0, 21.0, 30.0, 31.0, 40.0, 41.0]
            );
        } else {
            assert!(got.is_empty());
        }
    });
}

#[test]
fn scatter_distributes_slices() {
    let n = 4;
    let cfg = SimConfig::new(n);
    run_simulation(&cfg, null, |ctx| {
        let full: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let mine = if ctx.rank() == 1 {
            ctx.scatter(1, Some(&full), 2, CallSite("s:scatter"))
        } else {
            ctx.scatter(1, None, 2, CallSite("s:scatter"))
        };
        let r = ctx.rank() as f64;
        assert_eq!(mine, vec![r * 2.0, r * 2.0 + 1.0]);
    });
}

#[test]
fn sendrecv_pairwise_exchange_is_deadlock_free() {
    // Every rank sendrecvs with its ring partner simultaneously — the
    // pattern that deadlocks with naive blocking sends.
    let n = 6;
    let cfg = SimConfig::new(n);
    run_simulation(&cfg, null, |ctx| {
        let right = (ctx.rank() + 1) % ctx.size();
        let left = (ctx.rank() + ctx.size() - 1) % ctx.size();
        let got = ctx.sendrecv(
            right,
            ctx.rank() as u64,
            512,
            Some(left),
            Some(left as u64),
            CallSite("sr:sendrecv"),
        );
        assert_eq!(got.src, left);
    });
}

#[test]
fn bcast_delivers_the_root_payload_to_everyone() {
    let cfg = SimConfig::new(6);
    run_simulation(&cfg, null, |ctx| {
        let data = [3.25, -1.5, 42.0];
        let bytes = (data.len() * 8) as u64;
        let got = if ctx.rank() == 2 {
            ctx.bcast(2, Some(&data), bytes, CallSite("b:bcast"))
        } else {
            ctx.bcast(2, None, bytes, CallSite("b:bcast"))
        };
        assert_eq!(got, data.to_vec());
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Noise windows apply exactly inside their half-open interval for
    /// any rank/time combination.
    #[test]
    fn noise_window_edges_are_exact(
        start_ms in 1u64..1000,
        len_ms in 1u64..1000,
        rank in 0usize..64,
    ) {
        let topo = vapro_sim::Topology::tianhe_like(64);
        let s = NoiseSchedule::quiet().with(NoiseEvent::during(
            NoiseKind::CpuContention { steal: 0.5 },
            TargetSet::All,
            VirtualTime::from_ms(start_ms),
            VirtualTime::from_ms(start_ms + len_ms),
        ));
        let just_before = VirtualTime::from_ns(start_ms * 1_000_000 - 1);
        let at_start = VirtualTime::from_ms(start_ms);
        let just_inside = VirtualTime::from_ns((start_ms + len_ms) * 1_000_000 - 1);
        let at_end = VirtualTime::from_ms(start_ms + len_ms);
        prop_assert!(s.env_for(&topo, rank, just_before).is_quiet());
        prop_assert!(!s.env_for(&topo, rank, at_start).is_quiet());
        prop_assert!(!s.env_for(&topo, rank, just_inside).is_quiet());
        prop_assert!(s.env_for(&topo, rank, at_end).is_quiet());
    }

    /// Placement is a bijection onto cores (no two ranks share a core
    /// when ranks ≤ cores).
    #[test]
    fn placement_is_injective(ranks in 1usize..512) {
        let topo = vapro_sim::Topology::tianhe_like(ranks);
        let mut seen = std::collections::HashSet::new();
        for r in 0..ranks {
            let p = topo.place(r);
            prop_assert!(p.node < topo.nodes);
            prop_assert!(p.socket < topo.sockets_per_node);
            prop_assert!(p.core < topo.cores_per_socket);
            prop_assert!(
                seen.insert((p.node, p.socket, p.core)),
                "core collision at rank {r}"
            );
        }
    }

    /// Compute time scales linearly with instruction count on a quiet
    /// machine (no hidden super-linearity in the CPU model).
    #[test]
    fn compute_time_is_linear_in_work(ins in 1e5f64..1e7) {
        let cfg = SimConfig::new(1);
        let t1 = run_simulation(&cfg, null, |ctx| {
            ctx.compute(&WorkloadSpec::compute_bound(ins));
        })
        .makespan()
        .ns() as f64;
        let t2 = run_simulation(&cfg, null, |ctx| {
            ctx.compute(&WorkloadSpec::compute_bound(ins * 2.0));
        })
        .makespan()
        .ns() as f64;
        let ratio = t2 / t1;
        prop_assert!((ratio - 2.0).abs() < 0.01, "ratio {ratio}");
    }
}
