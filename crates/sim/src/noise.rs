//! The noise schedule: which perturbation is active, where, and when.
//!
//! The paper injects noise with `stress` (CPU contention on an
//! application core) and STREAM (memory-bandwidth contention from idle
//! cores), and studies naturally occurring perturbations: the Intel
//! L2-eviction hardware bug on a socket, a node with degraded memory
//! bandwidth, and shared-filesystem interference. Each becomes a
//! [`NoiseKind`]; a [`NoiseEvent`] scopes a kind to a [`TargetSet`] and a
//! virtual-time window, and [`NoiseSchedule::env_for`] resolves the active
//! events into the [`NoiseEnv`] the CPU model consumes.

use crate::time::VirtualTime;
use crate::topology::{Placement, Topology};
use serde::{Deserialize, Serialize};
use vapro_pmu::NoiseEnv;

/// One kind of performance perturbation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NoiseKind {
    /// A co-scheduled CPU hog on the same core (`stress`): the scheduler
    /// splits the core, stealing `steal` of wall time (0.5 = 50/50 split).
    CpuContention {
        /// Fraction of wall time stolen, in [0, 1).
        steal: f64,
    },
    /// Memory-bandwidth contention from neighbours (STREAM on idle cores):
    /// DRAM latency scales by `1 + intensity`.
    MemContention {
        /// Added DRAM latency factor ≥ 0.
        intensity: f64,
    },
    /// The Intel L2-eviction hardware bug (paper §6.5.1): with probability
    /// `prob` per fragment, a `severity` fraction of L2-resident lines is
    /// evicted to DRAM. Mitigated by huge pages in the paper (lower prob).
    L2CacheBug {
        /// Per-fragment firing probability.
        prob: f64,
        /// Fraction of L2 hits converted to DRAM accesses when fired.
        severity: f64,
    },
    /// A node with degraded memory bandwidth (paper §6.5.2: −15.5 %).
    SlowMemoryNode {
        /// Bandwidth factor in (0, 1].
        bw_factor: f64,
    },
    /// Shared distributed-filesystem interference (paper §6.5.3):
    /// IO latencies inflate by up to `max_slowdown`× with heavy-tailed
    /// draws while active.
    FsInterference {
        /// Maximum multiplicative IO slowdown.
        max_slowdown: f64,
    },
    /// Network latency/bandwidth jitter: communication costs inflate by a
    /// uniform draw in `[1, 1 + amplitude]`.
    NetworkJitter {
        /// Maximum relative slowdown of message transfers.
        amplitude: f64,
    },
    /// Swapping pressure: extra hard page faults per second of execution.
    SwapPressure {
        /// Hard faults per second.
        faults_per_sec: f64,
    },
    /// A signal storm: a co-located daemon (profiler, watchdog, timer
    /// broadcast) delivering signals at a steady rate — each delivery
    /// suspends the victim briefly.
    SignalStorm {
        /// Signals per second of execution.
        signals_per_sec: f64,
    },
}

/// Which ranks a noise event applies to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TargetSet {
    /// Every rank.
    All,
    /// An explicit rank list.
    Ranks(Vec<usize>),
    /// All ranks on these node indices.
    Nodes(Vec<usize>),
    /// All ranks on these global socket indices.
    Sockets(Vec<usize>),
}

impl TargetSet {
    /// Does this set include a rank at `place`?
    pub fn matches(&self, rank: usize, place: &Placement) -> bool {
        match self {
            TargetSet::All => true,
            TargetSet::Ranks(rs) => rs.contains(&rank),
            TargetSet::Nodes(ns) => ns.contains(&place.node),
            TargetSet::Sockets(ss) => ss.contains(&place.global_socket),
        }
    }
}

/// A noise kind scoped in space and time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NoiseEvent {
    /// What perturbation.
    pub kind: NoiseKind,
    /// Who it hits.
    pub targets: TargetSet,
    /// Active from (inclusive).
    pub start: VirtualTime,
    /// Active until (exclusive). `VirtualTime(u64::MAX)` = forever.
    pub end: VirtualTime,
}

impl NoiseEvent {
    /// An event active for the whole run.
    pub fn always(kind: NoiseKind, targets: TargetSet) -> Self {
        NoiseEvent { kind, targets, start: VirtualTime::ZERO, end: VirtualTime(u64::MAX) }
    }

    /// An event active during `[start, end)`.
    pub fn during(
        kind: NoiseKind,
        targets: TargetSet,
        start: VirtualTime,
        end: VirtualTime,
    ) -> Self {
        assert!(start < end, "empty noise window");
        NoiseEvent { kind, targets, start, end }
    }

    /// Is the event active at `t` for `rank`?
    pub fn active(&self, rank: usize, place: &Placement, t: VirtualTime) -> bool {
        t >= self.start && t < self.end && self.targets.matches(rank, place)
    }
}

/// The full schedule for one run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct NoiseSchedule {
    /// Events, in no particular order.
    pub events: Vec<NoiseEvent>,
}

impl NoiseSchedule {
    /// The quiet schedule.
    pub fn quiet() -> Self {
        NoiseSchedule::default()
    }

    /// Add an event (builder style).
    pub fn with(mut self, ev: NoiseEvent) -> Self {
        self.events.push(ev);
        self
    }

    /// Resolve the CPU-side noise environment for `rank` at time `t`.
    /// Filesystem and network kinds do not contribute here — they are
    /// consumed by the [`crate::fs`] and [`crate::comm`] cost models via
    /// [`NoiseSchedule::fs_slowdown`] / [`NoiseSchedule::net_amplitude`].
    pub fn env_for(&self, topo: &Topology, rank: usize, t: VirtualTime) -> NoiseEnv {
        let place = topo.place(rank);
        let mut env = NoiseEnv::quiet();
        for ev in &self.events {
            if !ev.active(rank, &place, t) {
                continue;
            }
            let contrib = match ev.kind {
                NoiseKind::CpuContention { steal } => {
                    NoiseEnv { cpu_steal: steal, ..NoiseEnv::default() }
                }
                NoiseKind::MemContention { intensity } => {
                    NoiseEnv { mem_contention: intensity, ..NoiseEnv::default() }
                }
                NoiseKind::L2CacheBug { prob, severity } => NoiseEnv {
                    l2_bug_prob: prob,
                    l2_bug_severity: severity,
                    ..NoiseEnv::default()
                },
                NoiseKind::SlowMemoryNode { bw_factor } => {
                    NoiseEnv { node_bw_factor: bw_factor, ..NoiseEnv::default() }
                }
                NoiseKind::SwapPressure { faults_per_sec } => {
                    NoiseEnv { hard_fault_rate: faults_per_sec, ..NoiseEnv::default() }
                }
                NoiseKind::SignalStorm { signals_per_sec } => {
                    NoiseEnv { signal_rate: signals_per_sec, ..NoiseEnv::default() }
                }
                NoiseKind::FsInterference { .. } | NoiseKind::NetworkJitter { .. } => {
                    continue
                }
            };
            env = env.combine(&contrib);
        }
        env
    }

    /// Maximum filesystem slowdown factor active for `rank` at `t`
    /// (1.0 = none).
    pub fn fs_slowdown(&self, topo: &Topology, rank: usize, t: VirtualTime) -> f64 {
        let place = topo.place(rank);
        self.events
            .iter()
            .filter(|ev| ev.active(rank, &place, t))
            .filter_map(|ev| match ev.kind {
                NoiseKind::FsInterference { max_slowdown } => Some(max_slowdown),
                _ => None,
            })
            .fold(1.0, f64::max)
    }

    /// Network jitter amplitude active for `rank` at `t` (0.0 = none).
    pub fn net_amplitude(&self, topo: &Topology, rank: usize, t: VirtualTime) -> f64 {
        let place = topo.place(rank);
        self.events
            .iter()
            .filter(|ev| ev.active(rank, &place, t))
            .filter_map(|ev| match ev.kind {
                NoiseKind::NetworkJitter { amplitude } => Some(amplitude),
                _ => None,
            })
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology::tianhe_like(48)
    }

    #[test]
    fn quiet_schedule_resolves_to_quiet_env() {
        let s = NoiseSchedule::quiet();
        assert!(s.env_for(&topo(), 0, VirtualTime::from_secs(1)).is_quiet());
    }

    #[test]
    fn time_window_is_half_open() {
        let s = NoiseSchedule::quiet().with(NoiseEvent::during(
            NoiseKind::CpuContention { steal: 0.5 },
            TargetSet::All,
            VirtualTime::from_secs(1),
            VirtualTime::from_secs(2),
        ));
        let t = topo();
        assert!(s.env_for(&t, 0, VirtualTime::from_ms(999)).is_quiet());
        assert!(!s.env_for(&t, 0, VirtualTime::from_secs(1)).is_quiet());
        assert!(!s.env_for(&t, 0, VirtualTime::from_ms(1999)).is_quiet());
        assert!(s.env_for(&t, 0, VirtualTime::from_secs(2)).is_quiet());
    }

    #[test]
    fn node_targeting_hits_all_ranks_of_the_node() {
        let s = NoiseSchedule::quiet().with(NoiseEvent::always(
            NoiseKind::SlowMemoryNode { bw_factor: 0.845 },
            TargetSet::Nodes(vec![1]),
        ));
        let t = topo();
        // Node 1 holds ranks 24..48 under block placement.
        assert!(s.env_for(&t, 23, VirtualTime::ZERO).is_quiet());
        let env = s.env_for(&t, 24, VirtualTime::ZERO);
        assert!((env.node_bw_factor - 0.845).abs() < 1e-12);
    }

    #[test]
    fn socket_targeting_for_the_hpl_bug() {
        let t = Topology::dual_socket(18);
        let s = NoiseSchedule::quiet().with(NoiseEvent::always(
            NoiseKind::L2CacheBug { prob: 0.3, severity: 0.5 },
            TargetSet::Sockets(vec![1]),
        ));
        assert!(s.env_for(&t, 0, VirtualTime::ZERO).is_quiet());
        assert!(s.env_for(&t, 20, VirtualTime::ZERO).l2_bug_prob > 0.0);
    }

    #[test]
    fn overlapping_events_combine() {
        let s = NoiseSchedule::quiet()
            .with(NoiseEvent::always(
                NoiseKind::CpuContention { steal: 0.5 },
                TargetSet::Ranks(vec![0]),
            ))
            .with(NoiseEvent::always(
                NoiseKind::MemContention { intensity: 1.0 },
                TargetSet::All,
            ));
        let env = s.env_for(&topo(), 0, VirtualTime::ZERO);
        assert_eq!(env.cpu_steal, 0.5);
        assert_eq!(env.mem_contention, 1.0);
        let other = s.env_for(&topo(), 5, VirtualTime::ZERO);
        assert_eq!(other.cpu_steal, 0.0);
    }

    #[test]
    fn fs_and_net_noise_do_not_pollute_cpu_env() {
        let s = NoiseSchedule::quiet()
            .with(NoiseEvent::always(
                NoiseKind::FsInterference { max_slowdown: 8.0 },
                TargetSet::All,
            ))
            .with(NoiseEvent::always(
                NoiseKind::NetworkJitter { amplitude: 0.4 },
                TargetSet::All,
            ));
        let t = topo();
        assert!(s.env_for(&t, 0, VirtualTime::ZERO).is_quiet());
        assert_eq!(s.fs_slowdown(&t, 0, VirtualTime::ZERO), 8.0);
        assert_eq!(s.net_amplitude(&t, 0, VirtualTime::ZERO), 0.4);
    }

    #[test]
    #[should_panic(expected = "empty noise window")]
    fn during_rejects_empty_window() {
        let _ = NoiseEvent::during(
            NoiseKind::CpuContention { steal: 0.1 },
            TargetSet::All,
            VirtualTime::from_secs(2),
            VirtualTime::from_secs(2),
        );
    }
}
