//! Machine topology: nodes containing sockets containing cores, and the
//! placement of ranks onto cores. Noise targeting in the paper happens at
//! different granularities — a noise process on one *core* (Fig. 12), a
//! hardware bug on one *socket* (§6.5.1), a degraded *node* (§6.5.2) — so
//! the schedule needs to resolve a rank to its (node, socket, core).

use serde::{Deserialize, Serialize};

/// Where one rank lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Placement {
    /// Node index in the cluster.
    pub node: usize,
    /// Socket index within the node.
    pub socket: usize,
    /// Global socket index across the cluster.
    pub global_socket: usize,
    /// Core index within the socket.
    pub core: usize,
}

/// A homogeneous cluster description with block rank placement
/// (consecutive ranks fill a node before spilling to the next, matching
/// common MPI defaults).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    /// Number of nodes.
    pub nodes: usize,
    /// Sockets per node.
    pub sockets_per_node: usize,
    /// Cores per socket.
    pub cores_per_socket: usize,
}

impl Topology {
    /// A cluster shaped like the paper's Tianhe-2A nodes: dual 12-core
    /// sockets, with enough nodes for `ranks` ranks.
    pub fn tianhe_like(ranks: usize) -> Topology {
        let per_node = 24;
        Topology {
            nodes: ranks.div_ceil(per_node).max(1),
            sockets_per_node: 2,
            cores_per_socket: 12,
        }
    }

    /// A single-node machine with one socket of `cores` cores
    /// (the multi-threaded evaluation platform).
    pub fn single_node(cores: usize) -> Topology {
        Topology { nodes: 1, sockets_per_node: 1, cores_per_socket: cores.max(1) }
    }

    /// A dual-socket single node (the HPL case-study machine: 2 × 18 cores).
    pub fn dual_socket(cores_per_socket: usize) -> Topology {
        Topology { nodes: 1, sockets_per_node: 2, cores_per_socket }
    }

    /// Cores per node.
    pub fn cores_per_node(&self) -> usize {
        self.sockets_per_node * self.cores_per_socket
    }

    /// Total cores in the cluster.
    pub fn total_cores(&self) -> usize {
        self.nodes * self.cores_per_node()
    }

    /// Placement of a rank under block placement. Ranks beyond the core
    /// count wrap around (oversubscription).
    pub fn place(&self, rank: usize) -> Placement {
        let core_id = rank % self.total_cores();
        let node = core_id / self.cores_per_node();
        let within = core_id % self.cores_per_node();
        let socket = within / self.cores_per_socket;
        let core = within % self.cores_per_socket;
        Placement { node, socket, global_socket: node * self.sockets_per_node + socket, core }
    }

    /// All ranks (out of `nranks`) placed on the given node.
    pub fn ranks_on_node(&self, node: usize, nranks: usize) -> Vec<usize> {
        (0..nranks).filter(|&r| self.place(r).node == node).collect()
    }

    /// All ranks (out of `nranks`) placed on the given global socket.
    pub fn ranks_on_socket(&self, global_socket: usize, nranks: usize) -> Vec<usize> {
        (0..nranks)
            .filter(|&r| self.place(r).global_socket == global_socket)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tianhe_like_allocates_enough_nodes() {
        let t = Topology::tianhe_like(256);
        assert_eq!(t.cores_per_node(), 24);
        assert!(t.total_cores() >= 256);
        assert_eq!(t.nodes, 11);
    }

    #[test]
    fn block_placement_fills_nodes_in_order() {
        let t = Topology::tianhe_like(48);
        assert_eq!(t.place(0), Placement { node: 0, socket: 0, global_socket: 0, core: 0 });
        assert_eq!(t.place(11).core, 11);
        let p12 = t.place(12);
        assert_eq!((p12.node, p12.socket, p12.core), (0, 1, 0));
        assert_eq!(t.place(24).node, 1);
    }

    #[test]
    fn hpl_machine_socket_split() {
        // 36 ranks on dual 18-core sockets: ranks 0-17 on socket 0,
        // 18-35 on socket 1 (the paper's Fig. 15 shows IDs 16-31 slow —
        // predominantly the second socket).
        let t = Topology::dual_socket(18);
        assert_eq!(t.place(17).global_socket, 0);
        assert_eq!(t.place(18).global_socket, 1);
        assert_eq!(t.ranks_on_socket(1, 36).len(), 18);
    }

    #[test]
    fn ranks_on_node_partition_everything() {
        let t = Topology::tianhe_like(100);
        let mut seen = vec![false; 100];
        for node in 0..t.nodes {
            for r in t.ranks_on_node(node, 100) {
                assert!(!seen[r]);
                seen[r] = true;
            }
        }
        assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn oversubscription_wraps() {
        let t = Topology::single_node(4);
        assert_eq!(t.place(5).core, 1);
    }
}
