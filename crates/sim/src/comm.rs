//! Message passing with virtual-time envelopes.
//!
//! Point-to-point sends are *eager*: the sender deposits the message in
//! the receiver's mailbox together with its virtual arrival timestamp and
//! never blocks. A receive matches on `(src, tag)` (FIFO per sender, like
//! MPI's non-overtaking rule) and advances the receiver's clock to
//! `max(own, arrival)` — so waiting time is modelled exactly, including
//! the load-imbalance waits Vapro observes as communication-fragment
//! variance. Collectives rendezvous all participants, take the maximum
//! clock, optionally reduce data, and land everyone at
//! `max_clock + cost(bytes, n)`.
//!
//! Host threads block on condition variables only when virtual causality
//! requires data that has not been produced yet.

use crate::time::VirtualTime;
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Network cost model (LogGP-flavoured).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetConfig {
    /// One-way wire latency, ns.
    pub latency_ns: f64,
    /// Link bandwidth, bytes per ns (6.25 = 50 Gb/s, the paper's fabric).
    pub bytes_per_ns: f64,
    /// Sender/receiver per-call software overhead, ns.
    pub overhead_ns: f64,
    /// Per-stage latency of collective algorithms, ns.
    pub coll_stage_ns: f64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            latency_ns: 1_500.0,
            bytes_per_ns: 6.25,
            overhead_ns: 300.0,
            coll_stage_ns: 1_000.0,
        }
    }
}

impl NetConfig {
    /// Transfer time of a `bytes`-sized message under `jitter` (relative
    /// slowdown ≥ 0 sampled by the caller).
    pub fn transfer_ns(&self, bytes: u64, jitter: f64) -> f64 {
        (self.latency_ns + bytes as f64 / self.bytes_per_ns) * (1.0 + jitter)
    }

    /// Cost of an `n`-rank collective moving `bytes` per rank
    /// (log-tree algorithm).
    pub fn collective_ns(&self, bytes: u64, n: usize, jitter: f64) -> f64 {
        let stages = (n.max(2) as f64).log2().ceil();
        stages * (self.coll_stage_ns + bytes as f64 / self.bytes_per_ns) * (1.0 + jitter)
    }
}

/// Optional numeric payload carried by a message or collective.
pub type Payload = Option<Arc<Vec<f64>>>;

/// A message in flight.
#[derive(Debug, Clone)]
pub struct Message {
    /// Sending rank.
    pub src: usize,
    /// Application tag.
    pub tag: u64,
    /// Declared message size in bytes.
    pub bytes: u64,
    /// Virtual time at which the message is available at the receiver.
    pub arrival: VirtualTime,
    /// Optional data payload.
    pub data: Payload,
}

/// Per-rank incoming mailbox.
#[derive(Default)]
struct Mailbox {
    queue: Mutex<VecDeque<Message>>,
    cond: Condvar,
}

impl Mailbox {
    fn deposit(&self, msg: Message) {
        self.queue.lock().push_back(msg);
        self.cond.notify_all();
    }

    /// Blocking match on `(src, tag)`; `None` in either position is a
    /// wildcard. FIFO per sender is preserved because a sender's deposits
    /// are ordered and we scan front-to-back.
    fn take_match(&self, src: Option<usize>, tag: Option<u64>) -> Message {
        let mut q = self.queue.lock();
        loop {
            if let Some(pos) = q
                .iter()
                .position(|m| src.is_none_or(|s| m.src == s) && tag.is_none_or(|t| m.tag == t))
            {
                return q.remove(pos).expect("position valid under lock");
            }
            self.cond.wait(&mut q);
        }
    }

    /// Non-blocking probe.
    fn probe(&self, src: Option<usize>, tag: Option<u64>) -> bool {
        self.queue
            .lock()
            .iter()
            .any(|m| src.is_none_or(|s| m.src == s) && tag.is_none_or(|t| m.tag == t))
    }
}

/// Reduction operators for `allreduce`/`reduce`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Element-wise sum.
    Sum,
    /// Element-wise maximum.
    Max,
    /// Element-wise minimum.
    Min,
}

impl ReduceOp {
    fn fold(self, acc: &mut [f64], x: &[f64]) {
        assert_eq!(acc.len(), x.len(), "reduce length mismatch");
        match self {
            ReduceOp::Sum => acc.iter_mut().zip(x).for_each(|(a, b)| *a += b),
            ReduceOp::Max => acc.iter_mut().zip(x).for_each(|(a, b)| *a = a.max(*b)),
            ReduceOp::Min => acc.iter_mut().zip(x).for_each(|(a, b)| *a = a.min(*b)),
        }
    }
}

/// State of one collective generation.
struct CollGen {
    arrived: usize,
    max_clock: VirtualTime,
    acc: Option<Vec<f64>>,
    op: Option<ReduceOp>,
    /// Result slot, populated when the last participant arrives.
    result: Option<(VirtualTime, Payload)>,
    /// How many participants still need to read the result.
    readers_left: usize,
}

/// A rendezvous shared by all ranks of a communicator: computes the max
/// clock and an optional reduction per generation.
pub struct Collective {
    n: usize,
    state: Mutex<CollectiveState>,
    cond: Condvar,
}

struct CollectiveState {
    gen: u64,
    gens: HashMap<u64, CollGen>,
}

impl Collective {
    /// A collective over `n` participants.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "empty communicator");
        Collective {
            n,
            state: Mutex::new(CollectiveState { gen: 0, gens: HashMap::new() }),
            cond: Condvar::new(),
        }
    }

    /// Number of participants.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Enter the collective with this rank's `clock` and optional data
    /// contribution; blocks until everyone has arrived; returns the
    /// rendezvous clock (max over participants) and the reduced payload.
    ///
    /// Every participant of one generation must pass the same `op`.
    pub fn sync(
        &self,
        clock: VirtualTime,
        contribution: Option<&[f64]>,
        op: Option<ReduceOp>,
    ) -> (VirtualTime, Payload) {
        let mut st = self.state.lock();
        let my_gen = st.gen;
        let n = self.n;
        {
            let g = st.gens.entry(my_gen).or_insert_with(|| CollGen {
                arrived: 0,
                max_clock: VirtualTime::ZERO,
                acc: None,
                op,
                result: None,
                readers_left: n,
            });
            debug_assert_eq!(g.op, op, "mixed collective ops in one generation");
            g.arrived += 1;
            g.max_clock = g.max_clock.max(clock);
            if let Some(data) = contribution {
                match (&mut g.acc, op) {
                    (Some(acc), Some(op)) => op.fold(acc, data),
                    (acc @ None, _) => *acc = Some(data.to_vec()),
                    (Some(_), None) => {
                        // Broadcast-style: single contributor wins; keep the
                        // first (the root is the only contributor by contract).
                    }
                }
            }
            if g.arrived == n {
                let payload = g.acc.take().map(Arc::new);
                g.result = Some((g.max_clock, payload));
                st.gen += 1;
                self.cond.notify_all();
            }
        }
        // Wait for this generation's result.
        loop {
            if let Some(g) = st.gens.get_mut(&my_gen) {
                if let Some((clk, payload)) = g.result.clone() {
                    g.readers_left -= 1;
                    if g.readers_left == 0 {
                        st.gens.remove(&my_gen);
                    }
                    return (clk, payload);
                }
            }
            self.cond.wait(&mut st);
        }
    }
}

/// The shared communication world: one mailbox per rank plus the
/// collective rendezvous.
pub struct CommWorld {
    mailboxes: Vec<Mailbox>,
    collective: Collective,
    /// Network cost model.
    pub net: NetConfig,
}

impl CommWorld {
    /// A world of `n` ranks with the given network model.
    pub fn new(n: usize, net: NetConfig) -> Self {
        CommWorld {
            mailboxes: (0..n).map(|_| Mailbox::default()).collect(),
            collective: Collective::new(n),
            net,
        }
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.mailboxes.len()
    }

    /// Deposit a message into `dst`'s mailbox.
    pub fn deposit(&self, dst: usize, msg: Message) {
        self.mailboxes[dst].deposit(msg);
    }

    /// Blocking matched receive for `dst`.
    pub fn take(&self, dst: usize, src: Option<usize>, tag: Option<u64>) -> Message {
        self.mailboxes[dst].take_match(src, tag)
    }

    /// Non-blocking probe for `dst`.
    pub fn probe(&self, dst: usize, src: Option<usize>, tag: Option<u64>) -> bool {
        self.mailboxes[dst].probe(src, tag)
    }

    /// The collective rendezvous.
    pub fn collective(&self) -> &Collective {
        &self.collective
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn transfer_cost_scales_with_bytes() {
        let net = NetConfig::default();
        assert!(net.transfer_ns(1 << 20, 0.0) > net.transfer_ns(1 << 10, 0.0));
        assert!(net.transfer_ns(0, 0.0) >= net.latency_ns);
        assert!(net.transfer_ns(1024, 0.5) > net.transfer_ns(1024, 0.0));
    }

    #[test]
    fn collective_cost_grows_logarithmically() {
        let net = NetConfig::default();
        let c2 = net.collective_ns(0, 2, 0.0);
        let c1024 = net.collective_ns(0, 1024, 0.0);
        assert!((c1024 / c2 - 10.0).abs() < 1e-9); // log2(1024) / log2(2)
    }

    #[test]
    fn mailbox_matches_src_and_tag_in_fifo_order() {
        let w = CommWorld::new(2, NetConfig::default());
        let mk = |src, tag, bytes| Message {
            src,
            tag,
            bytes,
            arrival: VirtualTime::ZERO,
            data: None,
        };
        w.deposit(1, mk(0, 7, 10));
        w.deposit(1, mk(0, 9, 20));
        w.deposit(1, mk(0, 7, 30));
        let a = w.take(1, Some(0), Some(7));
        assert_eq!(a.bytes, 10);
        let b = w.take(1, Some(0), Some(9));
        assert_eq!(b.bytes, 20);
        let c = w.take(1, Some(0), Some(7));
        assert_eq!(c.bytes, 30);
    }

    #[test]
    fn wildcard_receive_takes_first_available() {
        let w = CommWorld::new(2, NetConfig::default());
        w.deposit(
            0,
            Message { src: 1, tag: 42, bytes: 5, arrival: VirtualTime::ZERO, data: None },
        );
        let m = w.take(0, None, None);
        assert_eq!(m.src, 1);
        assert!(!w.probe(0, None, None));
    }

    #[test]
    fn blocking_receive_waits_for_deposit() {
        let w = Arc::new(CommWorld::new(2, NetConfig::default()));
        let w2 = w.clone();
        let h = thread::spawn(move || w2.take(1, Some(0), Some(1)).bytes);
        thread::sleep(std::time::Duration::from_millis(20));
        w.deposit(
            1,
            Message { src: 0, tag: 1, bytes: 77, arrival: VirtualTime::ZERO, data: None },
        );
        assert_eq!(h.join().unwrap(), 77);
    }

    #[test]
    fn collective_takes_max_clock() {
        let c = Arc::new(Collective::new(3));
        let clocks = [100u64, 500, 300];
        let handles: Vec<_> = clocks
            .iter()
            .map(|&ns| {
                let c = c.clone();
                thread::spawn(move || c.sync(VirtualTime::from_ns(ns), None, None).0)
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), VirtualTime::from_ns(500));
        }
    }

    #[test]
    fn allreduce_sums_elementwise() {
        let c = Arc::new(Collective::new(4));
        let handles: Vec<_> = (0..4)
            .map(|r| {
                let c = c.clone();
                thread::spawn(move || {
                    let data = vec![r as f64, 1.0];
                    let (_, payload) = c.sync(
                        VirtualTime::from_ns(r as u64),
                        Some(&data),
                        Some(ReduceOp::Sum),
                    );
                    payload.unwrap().to_vec()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), vec![6.0, 4.0]);
        }
    }

    #[test]
    fn consecutive_collectives_do_not_cross_generations() {
        let c = Arc::new(Collective::new(2));
        let handles: Vec<_> = (0..2)
            .map(|r| {
                let c = c.clone();
                thread::spawn(move || {
                    let mut results = vec![];
                    for round in 0..50u64 {
                        let (clk, _) = c.sync(
                            VirtualTime::from_ns(round * 10 + r),
                            None,
                            None,
                        );
                        results.push(clk.ns());
                    }
                    results
                })
            })
            .collect();
        let a = handles.into_iter().map(|h| h.join().unwrap()).collect::<Vec<_>>();
        // Every round's rendezvous clock is the max of the two inputs.
        for round in 0..50u64 {
            assert_eq!(a[0][round as usize], round * 10 + 1);
            assert_eq!(a[1][round as usize], round * 10 + 1);
        }
    }

    #[test]
    fn reduce_ops_fold_correctly() {
        let mut acc = vec![1.0, 5.0];
        ReduceOp::Max.fold(&mut acc, &[3.0, 2.0]);
        assert_eq!(acc, vec![3.0, 5.0]);
        ReduceOp::Min.fold(&mut acc, &[2.0, 1.0]);
        assert_eq!(acc, vec![2.0, 1.0]);
        ReduceOp::Sum.fold(&mut acc, &[1.0, 1.0]);
        assert_eq!(acc, vec![3.0, 2.0]);
    }
}
