//! Call-site and call-path identities.
//!
//! Real Vapro recovers a call-site from the return address of the
//! intercepted external function and (for context-aware STGs) the full
//! call stack from backtracing. Mini-apps here label their invocations
//! with static strings playing the role of return addresses, and maintain
//! a region stack (via [`crate::rank::RankCtx::region`]) that plays
//! the role of the call stack.

use std::fmt;

/// A call-site: the location of one external invocation in the program,
/// e.g. `"cg.f:1272:MPI_Send"`. Interned as a static string so comparison
/// and hashing are cheap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CallSite(pub &'static str);

impl CallSite {
    /// The site label.
    pub fn label(self) -> &'static str {
        self.0
    }
}

impl fmt::Display for CallSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

/// A call-path: the chain of enclosing regions plus the call-site —
/// what a backtrace would produce. Two invocations from the same call-site
/// reached through different paths (e.g. warm-up vs. measured phase) have
/// different `CallPath`s but the same `CallSite` (paper §3.2).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CallPath {
    /// Region labels from outermost to innermost.
    pub frames: Vec<&'static str>,
    /// The call-site at the leaf.
    pub site: CallSite,
}

impl CallPath {
    /// Build from a region stack and a leaf site.
    pub fn new(frames: &[&'static str], site: CallSite) -> Self {
        CallPath { frames: frames.to_vec(), site }
    }

    /// Path depth (frames plus the leaf).
    pub fn depth(&self) -> usize {
        self.frames.len() + 1
    }
}

impl fmt::Display for CallPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for frame in &self.frames {
            write!(f, "{frame}/")?;
        }
        write!(f, "{}", self.site)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_site_different_path_are_distinct() {
        let site = CallSite("cg.f:1272:MPI_Send");
        let warm = CallPath::new(&["main", "warmup"], site);
        let real = CallPath::new(&["main", "timed"], site);
        assert_ne!(warm, real);
        assert_eq!(warm.site, real.site);
    }

    #[test]
    fn display_is_readable() {
        let p = CallPath::new(&["main", "solve"], CallSite("a.c:10:MPI_Recv"));
        assert_eq!(p.to_string(), "main/solve/a.c:10:MPI_Recv");
        assert_eq!(p.depth(), 3);
    }

    #[test]
    fn callsite_equality_is_by_label() {
        assert_eq!(CallSite("x"), CallSite("x"));
        assert_ne!(CallSite("x"), CallSite("y"));
    }
}
